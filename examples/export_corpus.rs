//! Exports the synthetic corpus to WFDB Format-212 files (`.hea`/`.dat`),
//! the storage format of the real MIT-BIH Arrhythmia Database — so the
//! synthetic records can be inspected with standard WFDB tooling, and so
//! the read path that would ingest real PhysioNet files is exercised.
//!
//! ```sh
//! cargo run --release --example export_corpus -- [output-dir] [records]
//! ```

use hybridcs::ecg::{format212, Corpus, CorpusConfig};
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let dir = PathBuf::from(args.next().unwrap_or_else(|| "corpus_export".into()));
    let records: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(4);

    let corpus = Corpus::generate(&CorpusConfig {
        records,
        duration_s: 10.0,
        seed: 0xEC6,
    });

    for record in corpus.records() {
        let name = record.id().to_string();
        format212::write_record(&dir, &name, record)?;
        // Immediately read it back: the export is only useful if the
        // ingest path agrees with it.
        let back = format212::read_record(&dir.join(format!("{name}.hea")))?;
        let one_adu = 1.0 / record.calibration().gain_adu_per_mv;
        let max_err = record
            .samples_mv()
            .iter()
            .zip(back.samples_mv())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err <= one_adu, "roundtrip drift {max_err} mV");
        println!(
            "wrote {}/{name}.hea + .dat ({} samples @ {} Hz, roundtrip ok)",
            dir.display(),
            record.samples_mv().len(),
            record.fs_hz()
        );
    }
    println!();
    println!("These files follow the MIT-BIH conventions (Format 212, 200 adu/mV,");
    println!("11-bit, baseline 1024); conversely, real PhysioNet .hea/.dat pairs");
    println!("load with hybridcs::ecg::format212::read_record.");
    Ok(())
}
