//! Offline codebook workshop: train the low-resolution channel's Huffman
//! codebooks at every bit depth, report their on-node storage cost and
//! measured compression, and demonstrate the serialize → node → deserialize
//! flow (Section III-B of the paper).
//!
//! ```sh
//! cargo run --release --example codebook_tool
//! ```

use hybridcs::codec::experiment::default_training_windows;
use hybridcs::codec::train_lowres_codec;
use hybridcs::coding::HuffmanCodebook;
use hybridcs::ecg::{Corpus, CorpusConfig};
use hybridcs::frontend::LowResChannel;
use hybridcs::metrics::lowres_overhead_percent;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let training = default_training_windows(512);
    let corpus = Corpus::generate(&CorpusConfig {
        records: 8,
        duration_s: 8.0,
        seed: 0xC0DE,
    });

    println!("bits | codebook B | measured CR | overhead Di(%) vs 12-bit");
    println!("-----+------------+-------------+-------------------------");
    for bits in 3..=10u32 {
        let codec = train_lowres_codec(bits, &training)?;
        let channel = LowResChannel::new(bits)?;

        // Measure the achieved compression fraction on unseen records.
        let mut encoded_bits = 0usize;
        let mut raw_bits = 0usize;
        for record in corpus.records() {
            for window in record.windows(512) {
                let frame = channel.acquire(window);
                encoded_bits += codec.encoded_bits(frame.codes())?;
                raw_bits += frame.raw_payload_bits();
            }
        }
        let cr_fraction = encoded_bits as f64 / raw_bits as f64;
        let overhead = lowres_overhead_percent(cr_fraction, bits, 12);
        println!(
            "{bits:>4} | {:>8} B | {:>10.3} | {overhead:>6.2}",
            codec.codebook().storage_bytes(),
            cr_fraction
        );
    }

    // The deployment flow: serialize the chosen codebook, "flash" it to the
    // node, reload it, and prove the reloaded copy encodes identically.
    let codec = train_lowres_codec(7, &training)?;
    let flashed = codec.codebook().serialize();
    let reloaded = HuffmanCodebook::deserialize(&flashed)?;
    assert_eq!(&reloaded, codec.codebook());
    println!();
    println!(
        "7-bit codebook serialized to {} bytes; reload roundtrip verified.",
        flashed.len()
    );
    println!("(The paper stores 68 bytes on-node at the same operating point.)");
    Ok(())
}
