//! Decoder bake-off on one real window: the two convex solvers (PDHG,
//! ADMM) with and without the box constraint, plus the greedy baselines
//! (OMP, CoSaMP, IHT) on the explicit ΦΨ dictionary.
//!
//! Every solve runs through its instrumented entry point, so alongside the
//! SNR table the example prints each solver's convergence trace (stop
//! reason, wall time) and exports the full run — metrics registry plus all
//! traces — as JSONL under `results/obs/solver_comparison.jsonl`.
//!
//! ```sh
//! cargo run --release --example solver_comparison
//! ```

use hybridcs::codec::SensingOperator;
use hybridcs::dsp::{Dwt, Wavelet};
use hybridcs::ecg::{EcgGenerator, GeneratorConfig};
use hybridcs::frontend::{LowResChannel, MeasurementQuantizer, SensingMatrix};
use hybridcs::linalg::Matrix;
use hybridcs::metrics::snr_db;
use hybridcs::obs::export;
use hybridcs::solver::{
    solve_admm_observed, solve_cosamp_observed, solve_fista_observed, solve_iht_observed,
    solve_omp_observed, solve_pdhg_observed, AdmmOptions, BpdnProblem, ConvergenceTrace,
    FistaOptions, GreedyOptions, PdhgOptions, RecordingObserver,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 512;
    let m = 96;
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus())?;
    let window = &generator.generate(2.0, 0x50F7)[..n];

    let phi = SensingMatrix::bernoulli(m, n, 0xFEED)?;
    let digitizer = MeasurementQuantizer::new(12, 2.5)?;
    let y = digitizer.digitize(&phi.apply(window));
    let sigma = digitizer.noise_sigma(m) * 1.5;
    let dwt = Dwt::new(Wavelet::Db4, 5)?;
    let channel = LowResChannel::new(7)?;
    let (lo, hi) = channel.acquire(window).bounds();

    let operator = SensingOperator::new(&phi);
    let boxed = BpdnProblem {
        sensing: &operator,
        dwt: &dwt,
        measurements: &y,
        sigma,
        box_bounds: Some((&lo, &hi)),
        coefficient_weights: None,
    };
    let plain = BpdnProblem {
        box_bounds: None,
        ..boxed
    };

    println!("decoder                    | SNR (dB) | iterations");
    println!("---------------------------+----------+-----------");
    let mut traces: Vec<ConvergenceTrace> = Vec::new();
    let mut report = |name: &str, signal: &[f64], iters: usize, rec: RecordingObserver| {
        println!("{name:<26} | {:8.2} | {iters}", snr_db(window, signal));
        if let Some(trace) = rec.trace() {
            traces.push(trace.clone());
        }
    };

    let mut rec = RecordingObserver::new();
    let r = solve_pdhg_observed(&boxed, &PdhgOptions::default(), &mut rec)?;
    report("PDHG + box (hybrid)", &r.signal, r.iterations, rec);
    let mut rec = RecordingObserver::new();
    let r = solve_admm_observed(&boxed, &AdmmOptions::default(), &mut rec)?;
    report("ADMM + box (hybrid)", &r.signal, r.iterations, rec);
    let mut rec = RecordingObserver::new();
    let r = solve_pdhg_observed(&plain, &PdhgOptions::default(), &mut rec)?;
    report("PDHG, no box (normal)", &r.signal, r.iterations, rec);
    let mut rec = RecordingObserver::new();
    let r = solve_admm_observed(&plain, &AdmmOptions::default(), &mut rec)?;
    report("ADMM, no box (normal)", &r.signal, r.iterations, rec);
    let mut rec = RecordingObserver::new();
    let r = solve_fista_observed(&plain, &FistaOptions::default(), &mut rec)?;
    report("FISTA LASSO (baseline)", &r.signal, r.iterations, rec);

    // Greedy methods need the explicit dictionary A = Φ·Ψ (columns = Φ
    // applied to wavelet atoms).
    let mut a = Matrix::zeros(m, n);
    for j in 0..n {
        let mut atom = vec![0.0; n];
        atom[j] = 1.0;
        let column = phi.apply(&dwt.inverse(&atom)?);
        for (i, v) in column.into_iter().enumerate() {
            a.set(i, j, v);
        }
    }
    let greedy_opts = GreedyOptions {
        max_sparsity: m / 3,
        residual_tolerance: sigma,
        max_iterations: 60,
        step: None,
    };
    let mut rec = RecordingObserver::new();
    let r = solve_omp_observed(&a, &y, &greedy_opts, &mut rec)?;
    report("OMP (greedy)", &dwt.inverse(&r.signal)?, r.iterations, rec);
    let mut rec = RecordingObserver::new();
    let r = solve_cosamp_observed(&a, &y, &greedy_opts, &mut rec)?;
    report(
        "CoSaMP (greedy)",
        &dwt.inverse(&r.signal)?,
        r.iterations,
        rec,
    );
    let mut rec = RecordingObserver::new();
    let r = solve_iht_observed(&a, &y, &greedy_opts, &mut rec)?;
    report("IHT (greedy)", &dwt.inverse(&r.signal)?, r.iterations, rec);

    println!();
    println!("convergence traces:");
    for trace in &traces {
        println!("  {trace}");
    }

    let path = export::export_path("solver_comparison");
    export::write_jsonl(
        &path,
        "solver_comparison",
        &hybridcs::obs::global().snapshot(),
        &traces,
    )?;
    println!();
    println!("JSONL report written to {}", path.display());

    println!();
    println!("The box constraint is what separates the hybrid rows from the");
    println!("rest: identical measurements, radically different quality.");
    Ok(())
}
