//! Decoder bake-off on one real window: the two convex solvers (PDHG,
//! ADMM) with and without the box constraint, plus the greedy baselines
//! (OMP, CoSaMP, IHT) on the explicit ΦΨ dictionary.
//!
//! ```sh
//! cargo run --release --example solver_comparison
//! ```

use hybridcs::codec::SensingOperator;
use hybridcs::dsp::{Dwt, Wavelet};
use hybridcs::ecg::{EcgGenerator, GeneratorConfig};
use hybridcs::frontend::{LowResChannel, MeasurementQuantizer, SensingMatrix};
use hybridcs::linalg::Matrix;
use hybridcs::metrics::snr_db;
use hybridcs::solver::{
    solve_admm, solve_cosamp, solve_fista, solve_iht, solve_omp, solve_pdhg, AdmmOptions,
    BpdnProblem, FistaOptions, GreedyOptions, PdhgOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 512;
    let m = 96;
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus())?;
    let window = &generator.generate(2.0, 0x50F7)[..n];

    let phi = SensingMatrix::bernoulli(m, n, 0xFEED)?;
    let digitizer = MeasurementQuantizer::new(12, 2.5)?;
    let y = digitizer.digitize(&phi.apply(window));
    let sigma = digitizer.noise_sigma(m) * 1.5;
    let dwt = Dwt::new(Wavelet::Db4, 5)?;
    let channel = LowResChannel::new(7)?;
    let (lo, hi) = channel.acquire(window).bounds();

    let operator = SensingOperator::new(&phi);
    let boxed = BpdnProblem {
        sensing: &operator,
        dwt: &dwt,
        measurements: &y,
        sigma,
        box_bounds: Some((&lo, &hi)),
        coefficient_weights: None,
    };
    let plain = BpdnProblem {
        box_bounds: None,
        ..boxed
    };

    println!("decoder                    | SNR (dB) | iterations");
    println!("---------------------------+----------+-----------");
    let report = |name: &str, signal: &[f64], iters: usize| {
        println!("{name:<26} | {:8.2} | {iters}", snr_db(window, signal));
    };

    let r = solve_pdhg(&boxed, &PdhgOptions::default())?;
    report("PDHG + box (hybrid)", &r.signal, r.iterations);
    let r = solve_admm(&boxed, &AdmmOptions::default())?;
    report("ADMM + box (hybrid)", &r.signal, r.iterations);
    let r = solve_pdhg(&plain, &PdhgOptions::default())?;
    report("PDHG, no box (normal)", &r.signal, r.iterations);
    let r = solve_admm(&plain, &AdmmOptions::default())?;
    report("ADMM, no box (normal)", &r.signal, r.iterations);
    let r = solve_fista(&plain, &FistaOptions::default())?;
    report("FISTA LASSO (baseline)", &r.signal, r.iterations);

    // Greedy methods need the explicit dictionary A = Φ·Ψ (columns = Φ
    // applied to wavelet atoms).
    let mut a = Matrix::zeros(m, n);
    for j in 0..n {
        let mut atom = vec![0.0; n];
        atom[j] = 1.0;
        let column = phi.apply(&dwt.inverse(&atom)?);
        for (i, v) in column.into_iter().enumerate() {
            a.set(i, j, v);
        }
    }
    let greedy_opts = GreedyOptions {
        max_sparsity: m / 3,
        residual_tolerance: sigma,
        max_iterations: 60,
        step: None,
    };
    let r = solve_omp(&a, &y, &greedy_opts)?;
    report("OMP (greedy)", &dwt.inverse(&r.signal)?, r.iterations);
    let r = solve_cosamp(&a, &y, &greedy_opts)?;
    report("CoSaMP (greedy)", &dwt.inverse(&r.signal)?, r.iterations);
    let r = solve_iht(&a, &y, &greedy_opts)?;
    report("IHT (greedy)", &dwt.inverse(&r.signal)?, r.iterations);

    println!();
    println!("The box constraint is what separates the hybrid rows from the");
    println!("rest: identical measurements, radically different quality.");
    Ok(())
}
