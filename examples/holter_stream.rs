//! Holter-monitor scenario: stream a noisy ambulatory recording through
//! the hybrid front end window by window — as a wireless body sensor
//! node would — into the multi-patient **gateway**, and report aggregate
//! quality, telemetry rate, and the front-end power estimate.
//!
//! Unlike the raw codec loop this used to be, the frames now take the
//! production path: serialized wire frames, a gateway handshake, the
//! sharded batched-decode pool, and the decode ladder on the far side.
//!
//! ```sh
//! cargo run --release --example holter_stream
//! ```

use hybridcs::codec::telemetry::FrameCodec;
use hybridcs::codec::{
    experiment::default_training_windows, train_lowres_codec, HybridFrontEnd, LadderRung,
    SystemConfig,
};
use hybridcs::ecg::{EcgGenerator, GeneratorConfig, NoiseModel, RhythmModel};
use hybridcs::gateway::{Gateway, GatewayConfig};
use hybridcs::metrics::{prd_to_snr_db, SummaryStats};
use hybridcs::power::{hybrid_power, rmpi_power, PowerParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::default();
    let codec = train_lowres_codec(config.lowres_bits, &default_training_windows(config.window))?;
    let frontend = HybridFrontEnd::new(&config, codec.clone())?;
    let wire = FrameCodec::new(&config)?;

    // An ambulatory patient: faster rhythm, ectopic beats, motion noise.
    let mut gen_config = GeneratorConfig::normal_sinus();
    gen_config.noise = NoiseModel::ambulatory();
    gen_config.rhythm = RhythmModel::from_heart_rate_bpm(88.0, 0.04, 0.12, 0.3)?;
    gen_config.pvc_probability = 0.05;
    let generator = EcgGenerator::new(gen_config)?;

    let duration_s = 20.0;
    let strip = generator.generate(duration_s, 0xB0D7);
    let fs = 360.0;

    // One patient session on the receiving gateway.
    let session = 0xB0D7;
    let mut gateway = Gateway::new(GatewayConfig::default())?;
    gateway.handshake(session, &config, codec)?;

    // Sensor side: encode + frame every window and push it on the wire.
    let originals: Vec<&[f64]> = strip.chunks_exact(config.window).collect();
    let mut total_bits = 0usize;
    for (seq, window) in originals.iter().enumerate() {
        let encoded = frontend.encode(window)?;
        total_bits += encoded.total_bits();
        let bytes = wire.serialize(u32::try_from(seq)?, &encoded)?;
        gateway.push(session, &bytes)?;
    }

    // Receiver side: close flushes the batch through the worker pool and
    // hands back every supervised window in stream order.
    let outputs = gateway.close(session)?;
    assert_eq!(outputs.len(), originals.len());

    let mut window_snrs = Vec::new();
    let mut full_rungs = 0usize;
    for (window, supervised) in originals.iter().zip(&outputs) {
        let p = hybridcs::metrics::prd(window, &supervised.signal);
        window_snrs.push(prd_to_snr_db(p));
        if supervised.rung == LadderRung::Hybrid {
            full_rungs += 1;
        }
    }
    let windows = outputs.len();

    let stats = SummaryStats::from_samples(&window_snrs).expect("at least one window");
    println!(
        "streamed {windows} windows ({duration_s:.0} s of ambulatory ECG) \
         through the gateway ({full_rungs} on the hybrid rung)"
    );
    println!(
        "per-window SNR: median {:.1} dB, q1 {:.1}, q3 {:.1}, worst {:.1}",
        stats.median, stats.q1, stats.q3, stats.min
    );

    let raw_bps = fs * config.original_bits as f64;
    let sent_bps = total_bits as f64 / (windows as f64 * config.window as f64 / fs);
    println!(
        "telemetry: {sent_bps:.0} bit/s vs {raw_bps:.0} bit/s raw ({:.1}% net compression)",
        (1.0 - sent_bps / raw_bps) * 100.0
    );

    // Front-end power at this operating point vs the 240-channel normal-CS
    // front end the paper says is needed for the same quality.
    let params = PowerParams::default();
    let ours = hybrid_power(
        config.measurements,
        config.window,
        fs,
        config.lowres_bits,
        &params,
    );
    let normal = rmpi_power(240, config.window, fs, &params);
    println!(
        "front-end power: hybrid {:.2} uW vs normal-CS-at-equal-quality {:.2} uW ({:.1}x)",
        ours.total_uw(),
        normal.total_uw(),
        normal.total_w() / ours.total_w()
    );
    Ok(())
}
