//! Holter-monitor scenario: stream a noisy ambulatory recording through the
//! hybrid front end window by window, as a wireless body sensor node would,
//! and report aggregate quality, telemetry rate, and the front-end power
//! estimate.
//!
//! ```sh
//! cargo run --release --example holter_stream
//! ```

use hybridcs::codec::{HybridCodec, SystemConfig};
use hybridcs::ecg::{EcgGenerator, GeneratorConfig, NoiseModel, RhythmModel};
use hybridcs::metrics::{prd_to_snr_db, SummaryStats};
use hybridcs::power::{hybrid_power, rmpi_power, PowerParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::default();
    let codec = HybridCodec::with_default_training(&config)?;

    // An ambulatory patient: faster rhythm, ectopic beats, motion noise.
    let mut gen_config = GeneratorConfig::normal_sinus();
    gen_config.noise = NoiseModel::ambulatory();
    gen_config.rhythm = RhythmModel::from_heart_rate_bpm(88.0, 0.04, 0.12, 0.3)?;
    gen_config.pvc_probability = 0.05;
    let generator = EcgGenerator::new(gen_config)?;

    let duration_s = 20.0;
    let strip = generator.generate(duration_s, 0xB0D7);
    let fs = 360.0;

    let mut window_snrs = Vec::new();
    let mut total_bits = 0usize;
    let mut windows = 0usize;
    for window in strip.chunks_exact(config.window) {
        let encoded = codec.encode(window)?;
        let decoded = codec.decode(&encoded)?;
        let p = hybridcs::metrics::prd(window, &decoded.signal);
        window_snrs.push(prd_to_snr_db(p));
        total_bits += encoded.total_bits();
        windows += 1;
    }

    let stats = SummaryStats::from_samples(&window_snrs).expect("at least one window");
    println!("streamed {windows} windows ({duration_s:.0} s of ambulatory ECG)");
    println!(
        "per-window SNR: median {:.1} dB, q1 {:.1}, q3 {:.1}, worst {:.1}",
        stats.median, stats.q1, stats.q3, stats.min
    );

    let raw_bps = fs * config.original_bits as f64;
    let sent_bps = total_bits as f64 / (windows as f64 * config.window as f64 / fs);
    println!(
        "telemetry: {sent_bps:.0} bit/s vs {raw_bps:.0} bit/s raw ({:.1}% net compression)",
        (1.0 - sent_bps / raw_bps) * 100.0
    );

    // Front-end power at this operating point vs the 240-channel normal-CS
    // front end the paper says is needed for the same quality.
    let params = PowerParams::default();
    let ours = hybrid_power(
        config.measurements,
        config.window,
        fs,
        config.lowres_bits,
        &params,
    );
    let normal = rmpi_power(240, config.window, fs, &params);
    println!(
        "front-end power: hybrid {:.2} uW vs normal-CS-at-equal-quality {:.2} uW ({:.1}x)",
        ours.total_uw(),
        normal.total_uw(),
        normal.total_w() / ours.total_w()
    );
    Ok(())
}
