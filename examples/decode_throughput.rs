//! Decode-throughput baseline: the zero-allocation hot path versus the
//! pre-optimization decode, measured in the same process.
//!
//! ```sh
//! cargo run --release --example decode_throughput
//! ```
//!
//! Two phases, both gated (the process exits non-zero on any failure):
//!
//! 1. **Throughput** — the same encoded windows are decoded through two
//!    paths whose outputs are asserted to agree to near machine precision:
//!    * *baseline*: the pre-optimization shape — unpacked `±1` sensing
//!      rows folded serially (one multiply-accumulate chain per row, the
//!      arithmetic the packed kernels replaced), a fresh power iteration
//!      for `‖A‖` on every decode, and the Vec-returning solver entry
//!      point (fresh buffers per solve);
//!    * *optimized*: [`HybridDecoder::decode_workspace`] — bit-packed
//!      sensing with table-driven 4-wide kernels, the decoder's cached
//!      norm estimate, and one reused [`SolverWorkspace`].
//!
//!    The two paths differ only in summation grouping (4-wide vs serial),
//!    so agreement is checked at a tight relative tolerance rather than
//!    bit equality. Windows/sec for both paths and p50/p90/p99 per-window
//!    latency go into the bench report; the optimized path must be ≥ 2×
//!    faster.
//! 2. **Zero-allocation gate** — with the process running under the
//!    [`hybridcs_bench::alloc_counter::CountingAllocator`], a span of
//!    steady-state workspace solves (problems pre-built, workspace
//!    warmed, recovered signals recycled) must perform **zero** heap
//!    allocations. The same gate then runs against a steady-state
//!    *batched* solve ([`solve_pdhg_batch_workspace`]): zero allocations
//!    there too.
//! 3. **Batched K-sweep** — the corpus is re-solved through the batched
//!    lockstep path at K ∈ {1, 4, 8, 16} windows per batch, once per
//!    SIMD tier (scalar pinned via [`set_override`], then AVX2+FMA when
//!    the host supports it). Every configuration is asserted
//!    **bit-identical** to the serial workspace decode — the batched
//!    solvers vectorize across the batch dimension only, so the
//!    per-window arithmetic never changes — and its throughput goes
//!    into the report. The best batched+SIMD configuration must clear
//!    3× over the baseline (gated only when the host has AVX2+FMA).
//!
//! The bench report (`BENCH_decode.json` by default, JSONL in the
//! `hybridcs-obs` export schema) carries the latency histograms and the
//! `decode_bench_*` gauges, including one
//! `decode_bench_batch_windows_per_s{k=…, simd=…}` point per sweep
//! configuration.
//!
//! Environment knobs: `HYBRIDCS_DECODE_WINDOWS` (default 12),
//! `HYBRIDCS_DECODE_BENCH_PATH` (default `BENCH_decode.json`). The
//! process-wide `HYBRIDCS_FORCE_SCALAR=1` pin is ignored here — the sweep
//! drives the tier explicitly through the in-process override.

use hybridcs::codec::experiment::default_training_windows;
use hybridcs::codec::{
    train_lowres_codec, DecoderAlgorithm, EncodedWindow, HybridDecoder, HybridFrontEnd,
    SensingOperator, SystemConfig,
};
use hybridcs::ecg::{EcgGenerator, GeneratorConfig};
use hybridcs::frontend::{LowResChannel, LowResFrame, SensingMatrix};
use hybridcs::linalg::simd::{set_override, simd_available};
use hybridcs::solver::{
    solve_pdhg, solve_pdhg_batch_workspace, solve_pdhg_workspace, BatchProblem, BpdnProblem,
    IterationObserver, LinearOperator, NoopObserver, PdhgOptions, RecoveryResult, SolverWorkspace,
};
use hybridcs_bench::alloc_counter::{self, CountingAllocator};
use std::time::Instant;

// The allocator must be global for the Phase-2 gate to observe the solver;
// it delegates to `System` and is free until `start_counting` arms it.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Throughput floor the optimized path must clear over the baseline.
const SPEEDUP_FLOOR: f64 = 2.0;

/// Throughput floor the best batched+SIMD configuration must clear over
/// the baseline (gated only when the host has the AVX2+FMA tier).
const BATCHED_SPEEDUP_FLOOR: f64 = 3.0;

/// Batch widths swept in phase 3.
const BATCH_WIDTHS: [usize; 4] = [1, 4, 8, 16];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The pre-optimization sensing operator: unpacked `±1` chips stored one
/// `f64` each, folded with a single serial multiply-accumulate chain per
/// row (forward) and row-sequential accumulation (adjoint) — the exact
/// arithmetic the packed table-driven kernels replaced — plus the
/// trait-default `norm_est` (a fresh power iteration per call, i.e. per
/// decode, exactly what the decoder did before the norm was cached).
struct SerialBernoulli {
    rows: Vec<Vec<f64>>,
    scale: f64,
    n: usize,
}

impl SerialBernoulli {
    fn of(sensing: &SensingMatrix) -> Self {
        let mat = sensing.to_matrix();
        let rows = (0..sensing.measurements())
            .map(|i| {
                (0..sensing.window())
                    .map(|j| if mat.get(i, j) < 0.0 { -1.0 } else { 1.0 })
                    .collect()
            })
            .collect();
        SerialBernoulli {
            rows,
            scale: 1.0 / (sensing.window() as f64).sqrt(),
            n: sensing.window(),
        }
    }
}

impl LinearOperator for SerialBernoulli {
    fn rows(&self) -> usize {
        self.rows.len()
    }

    fn cols(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        for (yi, row) in out.iter_mut().zip(&self.rows) {
            let acc: f64 = row.iter().zip(x).map(|(c, v)| c * v).sum();
            *yi = self.scale * acc;
        }
    }

    fn apply_adjoint(&self, y: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        for (row, &yi) in self.rows.iter().zip(y) {
            let w = self.scale * yi;
            for (xj, c) in out.iter_mut().zip(row) {
                *xj += w * c;
            }
        }
    }
}

/// Entropy-decodes one window's low-resolution stream into box bounds —
/// the same steps `decode_workspace` performs internally, repeated here so
/// the baseline pays the identical side-channel cost.
fn decode_bounds(
    codec: &hybridcs::coding::LowResCodec,
    channel: &LowResChannel,
    encoded: &EncodedWindow,
) -> Result<(Vec<f64>, Vec<f64>), Box<dyn std::error::Error>> {
    let codes = codec.decode(&encoded.lowres, encoded.window_len)?;
    Ok(LowResFrame::from_codes(codes, channel)?.bounds())
}

#[allow(clippy::too_many_lines)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let windows = env_usize("HYBRIDCS_DECODE_WINDOWS", 12).max(1);
    let bench_path =
        std::env::var("HYBRIDCS_DECODE_BENCH_PATH").unwrap_or_else(|_| "BENCH_decode.json".into());
    let registry = hybridcs::obs::global();

    let config = SystemConfig::default(); // 512-sample windows, m = 96
    let DecoderAlgorithm::Pdhg(pdhg) = &config.algorithm else {
        return Err("decode bench expects the default PDHG configuration".into());
    };
    let opts: PdhgOptions = *pdhg;
    let lowres = train_lowres_codec(config.lowres_bits, &default_training_windows(config.window))?;
    let frontend = HybridFrontEnd::new(&config, lowres.clone())?;
    let decoder = HybridDecoder::new(&config, lowres.clone())?;

    // Encode the corpus once; both paths decode the same payloads.
    let physiology = GeneratorConfig::normal_sinus();
    let seconds = (windows * config.window) as f64 / physiology.fs_hz + 2.0;
    let strip = EcgGenerator::new(physiology)?.generate(seconds, 0xDEC0);
    let encoded: Vec<EncodedWindow> = strip
        .chunks_exact(config.window)
        .take(windows)
        .map(|w| frontend.encode(w))
        .collect::<Result<_, _>>()?;
    assert_eq!(encoded.len(), windows, "strip long enough for all windows");
    println!(
        "decode bench: {windows} windows of {} samples, m = {}, PDHG x {} iterations",
        config.window, config.measurements, opts.max_iterations
    );

    // Baseline machinery: the decoder's exact matrix, pre-change arithmetic.
    let sensing = SensingMatrix::bernoulli(config.measurements, config.window, config.seed)?;
    let serial = SerialBernoulli::of(&sensing);
    let dwt = config.dwt()?;
    let channel = LowResChannel::new(config.lowres_bits)?;
    let sigma = decoder.sigma();

    let decode_baseline = |w: &EncodedWindow| -> Result<Vec<f64>, Box<dyn std::error::Error>> {
        let (lo, hi) = decode_bounds(&lowres, &channel, w)?;
        let problem = BpdnProblem {
            sensing: &serial,
            dwt: &dwt,
            measurements: &w.measurements,
            sigma,
            box_bounds: Some((&lo[..], &hi[..])),
            coefficient_weights: None,
        };
        Ok(solve_pdhg(&problem, &opts)?.signal)
    };

    // --- equivalence: the optimized path changes nothing but speed -----
    // The packed kernels fold in groups of four where the baseline folds
    // serially; that summation regrouping perturbs each matvec at the
    // rounding level (~1e-16 relative), so full decodes must agree to a
    // tight relative tolerance rather than bit-for-bit.
    let mut ws = SolverWorkspace::new();
    for w in encoded.iter().take(2) {
        let base = decode_baseline(w)?;
        let opt = decoder.decode_workspace(w, true, &mut NoopObserver, &mut ws)?;
        assert_eq!(base.len(), opt.signal.len());
        let span = base.iter().fold(0.0f64, |a, b| a.max(b.abs())).max(1e-12);
        for (i, (b, o)) in base.iter().zip(&opt.signal).enumerate() {
            assert!(
                (b - o).abs() <= 1e-9 * span,
                "optimized decode diverged from baseline at sample {i}: {b} vs {o}"
            );
        }
    }
    println!("decode bench: baseline and optimized decodes agree to 1e-9 relative");

    // --- phase 1: throughput ------------------------------------------
    let h_base = registry.histogram("decode_window_seconds", &[("path", "baseline")]);
    let h_opt = registry.histogram("decode_window_seconds", &[("path", "optimized")]);

    let base_start = Instant::now();
    for w in &encoded {
        let t = Instant::now();
        std::hint::black_box(decode_baseline(w)?);
        h_base.record(t.elapsed().as_secs_f64());
    }
    let base_s = base_start.elapsed().as_secs_f64();

    let opt_start = Instant::now();
    for w in &encoded {
        let t = Instant::now();
        std::hint::black_box(decoder.decode_workspace(w, true, &mut NoopObserver, &mut ws)?);
        h_opt.record(t.elapsed().as_secs_f64());
    }
    let opt_s = opt_start.elapsed().as_secs_f64();

    let speedup = base_s / opt_s;
    let throughput = windows as f64 / opt_s;
    println!(
        "decode bench: baseline {:.1} windows/s, optimized {throughput:.1} windows/s \
         ({speedup:.2}x)",
        windows as f64 / base_s
    );
    let snapshot = registry.snapshot();
    for name in ["baseline", "optimized"] {
        if let Some(p) = snapshot
            .histogram_snapshot("decode_window_seconds", &[("path", name)])
            .and_then(hybridcs::obs::HistogramSnapshot::percentiles)
        {
            println!(
                "decode bench: {name} latency p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms",
                p.p50 * 1e3,
                p.p90 * 1e3,
                p.p99 * 1e3
            );
        }
    }

    // --- phase 2: zero-allocation gate --------------------------------
    // Problems are pre-built (operator, bounds, measurements) and the
    // workspace warmed, so the counted span is pure steady-state solver
    // work — the regime a long-running gateway shard sits in.
    let norm = SensingOperator::new(&sensing).norm_est();
    let operator = SensingOperator::with_norm(&sensing, norm);
    let bounds: Vec<(Vec<f64>, Vec<f64>)> = encoded
        .iter()
        .map(|w| decode_bounds(&lowres, &channel, w))
        .collect::<Result<_, _>>()?;
    let problems: Vec<BpdnProblem<'_>> = encoded
        .iter()
        .zip(&bounds)
        .map(|(w, (lo, hi))| BpdnProblem {
            sensing: &operator,
            dwt: &dwt,
            measurements: &w.measurements,
            sigma,
            box_bounds: Some((&lo[..], &hi[..])),
            coefficient_weights: None,
        })
        .collect();
    for problem in &problems {
        let warm = solve_pdhg_workspace(problem, &opts, &mut NoopObserver, &mut ws)?;
        ws.release(warm.signal);
    }

    alloc_counter::start_counting();
    for problem in &problems {
        match solve_pdhg_workspace(problem, &opts, &mut NoopObserver, &mut ws) {
            Ok(result) => ws.release(result.signal),
            Err(e) => {
                let _ = alloc_counter::stop_counting();
                return Err(e.into());
            }
        }
    }
    let allocations = alloc_counter::stop_counting();
    #[allow(clippy::cast_precision_loss)]
    let allocs_per_window = allocations as f64 / windows as f64;
    println!(
        "decode bench: {allocations} heap allocations across {windows} steady-state solves \
         ({allocs_per_window:.2}/window)"
    );

    // Same gate, batched path: one pre-validated K-wide batch, observer
    // refs and the `out` vector built once, workspace warmed with the
    // panel shapes the counted solve will acquire.
    let gate_k = 8.min(windows);
    let gate_batch = BatchProblem::new(&problems[..gate_k])?;
    let mut gate_noops: Vec<NoopObserver> = (0..gate_k).map(|_| NoopObserver).collect();
    let mut gate_refs: Vec<&mut dyn IterationObserver> = gate_noops
        .iter_mut()
        .map(|o| o as &mut dyn IterationObserver)
        .collect();
    let mut gate_out: Vec<Option<RecoveryResult>> = Vec::new();
    for _ in 0..2 {
        solve_pdhg_batch_workspace(&gate_batch, &opts, &mut gate_refs, &mut ws, &mut gate_out)?;
        for slot in &mut gate_out {
            if let Some(result) = slot.take() {
                ws.release(result.signal);
            }
        }
    }
    alloc_counter::start_counting();
    let gated =
        solve_pdhg_batch_workspace(&gate_batch, &opts, &mut gate_refs, &mut ws, &mut gate_out);
    for slot in &mut gate_out {
        if let Some(result) = slot.take() {
            ws.release(result.signal);
        }
    }
    let batch_allocations = alloc_counter::stop_counting();
    gated?;
    println!(
        "decode bench: {batch_allocations} heap allocations across one steady-state \
         {gate_k}-window batched solve"
    );

    // --- phase 3: batched K-sweep across SIMD tiers --------------------
    // The serial workspace solves are the reference; every batched
    // configuration must reproduce them bit for bit (the lockstep loop
    // preserves each window's accumulation order exactly, and the SIMD
    // kernels are 0-ULP twins of the scalar tier).
    let reference: Vec<RecoveryResult> = problems
        .iter()
        .map(|p| solve_pdhg_workspace(p, &opts, &mut NoopObserver, &mut ws))
        .collect::<Result<_, _>>()?;

    let tiers: &[(bool, &str)] = if simd_available() {
        &[(false, "off"), (true, "on")]
    } else {
        println!("decode bench: host lacks AVX2+FMA — sweeping the scalar tier only");
        &[(false, "off")]
    };
    let mut noops: Vec<NoopObserver> = (0..BATCH_WIDTHS.iter().copied().max().unwrap_or(1))
        .map(|_| NoopObserver)
        .collect();
    let mut out: Vec<Option<RecoveryResult>> = Vec::new();
    let mut best_batched_simd: Option<(usize, f64)> = None;
    for &(simd_on, tier) in tiers {
        set_override(Some(simd_on));
        for k in BATCH_WIDTHS {
            // One warm-up pass (workspace panels sized for this K), one
            // timed pass that also checks bit-identity per window.
            for timed in [false, true] {
                let started = Instant::now();
                for (ci, chunk) in problems.chunks(k).enumerate() {
                    let batch = BatchProblem::new(chunk)?;
                    let mut refs: Vec<&mut dyn IterationObserver> = noops
                        .iter_mut()
                        .take(chunk.len())
                        .map(|o| o as &mut dyn IterationObserver)
                        .collect();
                    solve_pdhg_batch_workspace(&batch, &opts, &mut refs, &mut ws, &mut out)?;
                    for (j, slot) in out.iter_mut().enumerate() {
                        let got = slot.take().expect("batch solvers fill every window");
                        let want = &reference[ci * k + j];
                        assert_eq!(
                            (got.iterations, got.converged),
                            (want.iterations, want.converged),
                            "batched decode (k = {k}, simd {tier}) diverged from serial \
                             at window {}",
                            ci * k + j
                        );
                        assert!(
                            got.signal.len() == want.signal.len()
                                && got
                                    .signal
                                    .iter()
                                    .zip(&want.signal)
                                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                            "batched decode (k = {k}, simd {tier}) not bit-identical to \
                             serial at window {}",
                            ci * k + j
                        );
                        ws.release(got.signal);
                    }
                }
                if timed {
                    let secs = started.elapsed().as_secs_f64();
                    let batch_throughput = windows as f64 / secs;
                    println!(
                        "decode bench: batched k = {k:2} simd {tier:3} \
                         {batch_throughput:8.1} windows/s ({:.2}x vs baseline)",
                        base_s / secs
                    );
                    registry
                        .gauge(
                            "decode_bench_batch_windows_per_s",
                            &[("k", &format!("{k}")), ("simd", tier)],
                        )
                        .set(batch_throughput);
                    if simd_on && k > 1 && best_batched_simd.is_none_or(|(_, s)| secs < s) {
                        best_batched_simd = Some((k, secs));
                    }
                }
            }
        }
    }
    set_override(None);
    println!(
        "decode bench: all {} batched configurations bit-identical to the serial decode",
        tiers.len() * BATCH_WIDTHS.len()
    );

    // --- report + gates -----------------------------------------------
    registry
        .gauge("decode_bench_windows", &[])
        .set(windows as f64);
    registry
        .gauge("decode_bench_baseline_seconds", &[])
        .set(base_s);
    registry
        .gauge("decode_bench_optimized_seconds", &[])
        .set(opt_s);
    registry
        .gauge("decode_bench_throughput_windows_per_s", &[])
        .set(throughput);
    registry.gauge("decode_bench_speedup", &[]).set(speedup);
    registry
        .gauge("decode_bench_allocations_per_window", &[])
        .set(allocs_per_window);
    #[allow(clippy::cast_precision_loss)]
    registry
        .gauge("decode_bench_batch_allocations", &[])
        .set(batch_allocations as f64);
    let batched_speedup = best_batched_simd.map(|(_, secs)| base_s / secs);
    if let Some((k, secs)) = best_batched_simd {
        registry
            .gauge("decode_bench_batched_speedup", &[("k", &format!("{k}"))])
            .set(base_s / secs);
    }
    let path = std::path::PathBuf::from(bench_path);
    hybridcs::obs::export::write_jsonl(&path, "decode_throughput", &registry.snapshot(), &[])?;
    println!("decode bench: report written to {}", path.display());

    if allocations != 0 {
        eprintln!(
            "error: solver hot path allocated {allocations} times after warm-up (expected 0)"
        );
        std::process::exit(1);
    }
    if batch_allocations != 0 {
        eprintln!(
            "error: batched solver hot path allocated {batch_allocations} times after warm-up \
             (expected 0)"
        );
        std::process::exit(1);
    }
    if speedup < SPEEDUP_FLOOR {
        eprintln!(
            "error: optimized decode speedup {speedup:.2}x below the {SPEEDUP_FLOOR:.1}x floor"
        );
        std::process::exit(1);
    }
    match batched_speedup {
        Some(s) if s < BATCHED_SPEEDUP_FLOOR => {
            eprintln!(
                "error: batched+SIMD decode speedup {s:.2}x below the \
                 {BATCHED_SPEEDUP_FLOOR:.1}x floor"
            );
            std::process::exit(1);
        }
        Some(s) => println!(
            "decode bench: OK ({speedup:.2}x serial, {s:.2}x batched+SIMD, \
             0 allocations/window)"
        ),
        None => println!("decode bench: OK ({speedup:.2}x, 0 allocations/window)"),
    }
    Ok(())
}
