//! Ingest soak: hundreds to thousands of concurrent device sessions
//! over real loopback sockets into the gateway, with radio faults, and
//! a bit-for-bit determinism audit against the in-process path.
//!
//! ```sh
//! cargo run --release --example ingest_soak
//! ```
//!
//! What it checks (exits non-zero on any failure):
//!
//! 1. **Scale** — `HYBRIDCS_INGEST_SESSIONS` (default 1000, 10k+ is
//!    fine locally) devices connect concurrently, handshake with
//!    fingerprint checks, time-sync, and stream
//!    `HYBRIDCS_INGEST_WINDOWS` (default 3) compressed frames each,
//!    every fourth device through a lossy/reordering/splitting radio.
//!    The gateway runs with `admit_quota: 0` so every window sheds to
//!    the low-resolution rung — the paper's aggregator under worst-case
//!    load keeps absorbing instead of queueing. All sessions must
//!    complete with every window accounted for.
//! 2. **Determinism** — the server records every state-changing gateway
//!    call ([`IngestOp`](hybridcs::net::IngestOp) log). Replaying that
//!    log into a fresh in-process gateway — both in recorded order and
//!    in session-major order (the canonical in-process schedule) — must
//!    reproduce the live socket outputs bit-for-bit, for both phases.
//! 3. **Fidelity** — a smaller cohort (16 sessions × 4 windows) runs
//!    with real admission quotas (hybrid solves happening) and radio
//!    faults on *every* device; same completion and determinism bars.
//! 4. **Telemetry** — `net_*` connection-lifecycle counters must be
//!    present in the Prometheus exposition, and the flight recorder's
//!    `conn` events must produce a schema-valid JSONL dump.
//!
//! The bench report (`BENCH_ingest.json`, JSONL in the `hybridcs-obs`
//! export schema) carries sessions/sec, p50/p99 frame-to-commit
//! latency, and the full `net_*`/`gateway_*` counter snapshot; the same
//! snapshot is rendered to `METRICS_ingest.prom`.
//!
//! Environment knobs: `HYBRIDCS_INGEST_SESSIONS`,
//! `HYBRIDCS_INGEST_WINDOWS`, `HYBRIDCS_INGEST_BENCH_PATH` (default
//! `BENCH_ingest.json`), `HYBRIDCS_INGEST_FLIGHT_PATH` (default
//! `FLIGHT_ingest.jsonl`), `HYBRIDCS_INGEST_PROM_PATH` (default
//! `METRICS_ingest.prom`).

use std::collections::BTreeMap;
use std::time::Instant;

use hybridcs::codec::telemetry::FrameCodec;
use hybridcs::codec::{
    experiment::default_training_windows, train_lowres_codec, HybridFrontEnd, SupervisedWindow,
    SystemConfig,
};
use hybridcs::coding::LowResCodec;
use hybridcs::faults::{FaultyTransport, GilbertElliottConfig, TransportFaultConfig};
use hybridcs::gateway::GatewayConfig;
use hybridcs::net::{
    replay_ops, session_major, ClientConfig, DeviceClient, DevicePhase, IngestConfig, IngestServer,
    ShapeTable,
};
use hybridcs::obs::flight::recorder;

/// Distinct pre-encoded physiologies shared across the scale cohort
/// (encoding thousands of full streams would swamp the soak's budget
/// without exercising anything new).
const STREAM_POOL: usize = 32;
/// Every Nth scale-phase device gets the faulty radio.
const FAULTY_EVERY: u64 = 4;
/// Listener backlog is 128 on Linux; connect in smaller batches with
/// accept rounds in between so no SYN is ever dropped.
const CONNECT_BATCH: usize = 100;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_path(name: &str, default: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| default.to_string())
}

struct Shape {
    system: SystemConfig,
    codec: LowResCodec,
    fingerprint: u64,
}

fn build_shape() -> Result<Shape, Box<dyn std::error::Error>> {
    let system = SystemConfig {
        measurements: 64,
        ..SystemConfig::default()
    };
    let codec = train_lowres_codec(system.lowres_bits, &default_training_windows(system.window))?;
    let fingerprint = hybridcs::gateway::shape_fingerprint(&system, &codec);
    Ok(Shape {
        system,
        codec,
        fingerprint,
    })
}

/// Pre-encodes `pool` distinct streams of `windows` wire frames each.
fn build_frame_pool(
    shape: &Shape,
    pool: usize,
    windows: usize,
) -> Result<Vec<Vec<Vec<u8>>>, Box<dyn std::error::Error>> {
    let frontend = HybridFrontEnd::new(&shape.system, shape.codec.clone())?;
    let wire = FrameCodec::new(&shape.system)?;
    let physiology = hybridcs::ecg::GeneratorConfig::normal_sinus();
    let seconds = (windows * shape.system.window) as f64 / physiology.fs_hz + 2.0;
    let mut out = Vec::with_capacity(pool);
    for p in 0..pool {
        let generator = hybridcs::ecg::EcgGenerator::new(physiology.clone())?;
        let strip = generator.generate(seconds, hybridcs_rand::mix(0x16E57 ^ p as u64));
        let mut frames = Vec::with_capacity(windows);
        for (seq, window) in strip
            .chunks_exact(shape.system.window)
            .take(windows)
            .enumerate()
        {
            let encoded = frontend.encode(window)?;
            frames.push(wire.serialize(seq as u32, &encoded)?);
        }
        assert_eq!(frames.len(), windows, "strip long enough");
        out.push(frames);
    }
    Ok(out)
}

fn faulty_radio(seed: u64) -> FaultyTransport {
    FaultyTransport::new(
        TransportFaultConfig {
            channel: GilbertElliottConfig::burst_loss(0.08, 2.5),
            reorder: 0.05,
            split: 0.25,
        },
        seed,
    )
}

fn clean_radio(seed: u64) -> FaultyTransport {
    FaultyTransport::new(TransportFaultConfig::clean(), seed)
}

struct PhaseOutcome {
    live: BTreeMap<u64, Vec<SupervisedWindow>>,
    wall_seconds: f64,
    frames: u64,
    peak_sessions: usize,
}

/// Connects `sessions` devices (in backlog-safe batches), drives server
/// and clients to completion on one thread, audits determinism, and
/// returns the live outputs.
fn run_phase(
    name: &str,
    config: &IngestConfig,
    shape: &Shape,
    pool: &[Vec<Vec<u8>>],
    sessions: usize,
    windows: usize,
    radio_for: impl Fn(u64) -> FaultyTransport,
) -> Result<PhaseOutcome, Box<dyn std::error::Error>> {
    let shapes = ShapeTable::new(vec![(shape.system.clone(), shape.codec.clone())]);
    let mut server = IngestServer::bind("127.0.0.1:0", config.clone(), shapes.clone())?;
    let addr = server.local_addr().to_string();
    let client_config = ClientConfig {
        heartbeat_after: 24,
        quiet_heartbeats_to_close: 2,
        ..ClientConfig::default()
    };

    let mut clients: Vec<DeviceClient> = Vec::with_capacity(sessions);
    for device in 0..sessions as u64 {
        clients.push(DeviceClient::connect(
            &addr,
            device,
            shape.fingerprint,
            server.config_fingerprint(),
            pool[device as usize % pool.len()].clone(),
            radio_for(device),
            client_config,
        )?);
        if clients.len().is_multiple_of(CONNECT_BATCH) {
            // Drain the accept queue before the next batch.
            server.poll()?;
        }
    }
    server.poll()?;
    let peak_sessions = server.active_connections();
    if peak_sessions < sessions {
        return Err(format!(
            "{name}: only {peak_sessions}/{sessions} connections concurrently live"
        )
        .into());
    }

    let started = Instant::now();
    let mut converged = false;
    for _ in 0..10_000_000u64 {
        server.poll()?;
        let mut all_done = true;
        for client in &mut clients {
            if !client.tick() {
                all_done = false;
            }
        }
        if all_done && server.active_connections() == 0 {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(format!("{name}: soak did not converge").into());
    }
    let wall_seconds = started.elapsed().as_secs_f64();

    for client in &clients {
        if client.phase() != DevicePhase::Done {
            return Err(format!(
                "{name}: device {} ended in {:?}",
                client.device(),
                client.phase()
            )
            .into());
        }
        if client.stats().sync.is_none() {
            return Err(format!("{name}: device {} never time-synced", client.device()).into());
        }
    }

    let live = server.take_outputs();
    if live.len() != sessions {
        return Err(format!(
            "{name}: {}/{sessions} sessions produced outputs",
            live.len()
        )
        .into());
    }
    for (device, outputs) in &live {
        if outputs.len() != windows {
            return Err(format!(
                "{name}: device {device} committed {}/{windows} windows",
                outputs.len()
            )
            .into());
        }
    }

    // Determinism audit: the op log replayed into a fresh in-process
    // gateway — in recorded order (bridge purity) and session-major
    // order (interleaving independence) — must match bit-for-bit.
    let ops = server.take_ops();
    let recorded = replay_ops(&config.gateway, &shapes, &ops)?;
    if recorded != live {
        return Err(format!("{name}: recorded-order replay diverged from live outputs").into());
    }
    let major = replay_ops(&config.gateway, &shapes, &session_major(&ops))?;
    if major != live {
        return Err(format!("{name}: session-major replay diverged from live outputs").into());
    }

    Ok(PhaseOutcome {
        live,
        wall_seconds,
        frames: (sessions * windows) as u64,
        peak_sessions,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sessions = env_usize("HYBRIDCS_INGEST_SESSIONS", 1000);
    let windows = env_usize("HYBRIDCS_INGEST_WINDOWS", 3);
    let bench_path = env_path("HYBRIDCS_INGEST_BENCH_PATH", "BENCH_ingest.json");
    let flight_path = env_path("HYBRIDCS_INGEST_FLIGHT_PATH", "FLIGHT_ingest.jsonl");
    let prom_path = env_path("HYBRIDCS_INGEST_PROM_PATH", "METRICS_ingest.prom");
    let registry = hybridcs::obs::global();
    hybridcs::obs::set_enabled(true);
    recorder().clear();

    let shape = build_shape()?;
    let pool = build_frame_pool(&shape, STREAM_POOL.min(sessions.max(1)), windows)?;

    // --- phase 1: scale ----------------------------------------------
    // Quota 0: every window sheds to the cheap low-res rung, so decode
    // cost stays flat while the socket tier absorbs the full cohort.
    // Queue-depth shedding is off (usize::MAX) because its outcome
    // depends on global interleaving — the determinism audit needs the
    // per-session-only admission path (DESIGN §13).
    let scale_config = IngestConfig {
        gateway: GatewayConfig {
            admit_quota: 0,
            max_shard_queue: usize::MAX,
            ..GatewayConfig::default()
        },
        recv_window: 8,
        overload_pending: 512,
        flush_pending: 128,
        record_ops: true,
        ..IngestConfig::default()
    };
    let before_scale = registry.snapshot();
    let scale = run_phase(
        "scale",
        &scale_config,
        &shape,
        &pool,
        sessions,
        windows,
        |device| {
            if device % FAULTY_EVERY == 0 {
                faulty_radio(0xFA17 ^ device)
            } else {
                clean_radio(device)
            }
        },
    )?;
    let scale_window = registry.snapshot().delta(&before_scale);
    let sessions_per_second = sessions as f64 / scale.wall_seconds;
    println!(
        "ingest scale: {} concurrent sessions ({} with radio faults), {} frames in {:.2}s \
         -> {:.0} sessions/s, outputs bit-identical to in-process replay \
         (recorded + session-major)",
        scale.peak_sessions,
        sessions.div_ceil(FAULTY_EVERY as usize),
        scale.frames,
        scale.wall_seconds,
        sessions_per_second
    );

    let Some(p) = scale_window
        .histogram_snapshot("net_frame_to_commit_seconds", &[])
        .and_then(hybridcs::obs::HistogramSnapshot::percentiles)
    else {
        eprintln!("error: no frame-to-commit samples in the scale phase");
        std::process::exit(1);
    };
    println!(
        "ingest latency: frame-to-commit p50 {:.2} ms, p99 {:.2} ms",
        p.p50 * 1e3,
        p.p99 * 1e3
    );

    // --- phase 2: fidelity -------------------------------------------
    // Real admission quotas (hybrid solves happen) and faults on every
    // radio; the determinism bar is identical.
    let fidelity_sessions = 16.min(sessions);
    let fidelity_windows = 4usize;
    let fidelity_pool = build_frame_pool(&shape, fidelity_sessions, fidelity_windows)?;
    let fidelity_config = IngestConfig {
        gateway: GatewayConfig {
            admit_quota: 2,
            admit_window: 4,
            max_shard_queue: usize::MAX,
            batch_capacity: 32,
            ..GatewayConfig::default()
        },
        recv_window: 4,
        overload_pending: 16,
        flush_pending: 8,
        record_ops: true,
        ..IngestConfig::default()
    };
    let fidelity = run_phase(
        "fidelity",
        &fidelity_config,
        &shape,
        &fidelity_pool,
        fidelity_sessions,
        fidelity_windows,
        |device| faulty_radio(0x0F1D ^ device),
    )?;
    let solved = fidelity
        .live
        .values()
        .flatten()
        .filter(|w| w.decoded.is_some())
        .count();
    if solved == 0 {
        eprintln!("error: fidelity phase admitted no hybrid solves");
        std::process::exit(1);
    }
    println!(
        "ingest fidelity: {} faulty-radio sessions, {} windows ({solved} hybrid-solved), \
         outputs bit-identical to in-process replay (recorded + session-major)",
        fidelity_sessions, fidelity.frames
    );

    // --- telemetry: flight dump + exposition -------------------------
    let dump = recorder().dump_jsonl("ingest_soak");
    for line in dump.lines() {
        if let Err(e) = hybridcs::obs::jsonl::validate_line(line) {
            eprintln!("error: invalid flight dump line: {e}\n{line}");
            std::process::exit(1);
        }
    }
    if !dump.contains("\"event\":\"conn\"") {
        eprintln!("error: flight dump has no connection lifecycle events");
        std::process::exit(1);
    }
    std::fs::write(&flight_path, &dump)?;
    println!(
        "ingest flight: {} events schema-valid, written to {flight_path}",
        dump.lines().count().saturating_sub(1)
    );

    let snapshot = {
        registry
            .gauge("ingest_bench_sessions", &[])
            .set(sessions as f64);
        registry
            .gauge("ingest_bench_sessions_per_second", &[])
            .set(sessions_per_second);
        registry
            .gauge("ingest_bench_wall_seconds", &[])
            .set(scale.wall_seconds);
        registry
            .gauge("ingest_bench_frames", &[])
            .set(scale.frames as f64);
        registry
            .gauge("ingest_frame_to_commit_p50_seconds", &[])
            .set(p.p50);
        registry
            .gauge("ingest_frame_to_commit_p99_seconds", &[])
            .set(p.p99);
        registry.snapshot()
    };
    for required in [
        "net_accepted_total",
        "net_handshake_total",
        "net_timesync_total",
        "net_frames_total",
        "net_closed_total",
    ] {
        if !snapshot.counters.iter().any(|(id, _)| id.name == required) {
            eprintln!("error: counter {required} missing from the snapshot");
            std::process::exit(1);
        }
    }
    let exposition = hybridcs::obs::render_prometheus(&snapshot);
    if !exposition.contains("# TYPE net_frame_to_commit_seconds histogram") {
        eprintln!("error: exposition is missing the net frame-to-commit histogram");
        std::process::exit(1);
    }
    std::fs::write(&prom_path, &exposition)?;
    let path = std::path::PathBuf::from(bench_path);
    hybridcs::obs::export::write_jsonl(&path, "ingest_soak", &snapshot, &[])?;
    hybridcs::obs::set_enabled(false);
    println!(
        "ingest bench: report written to {}, prometheus exposition ({} lines) to {prom_path}",
        path.display(),
        exposition.lines().count()
    );
    Ok(())
}
