//! Crash-recovery soak: a fleet of lossy sensor sessions streams into a
//! *journaling* gateway, the journal store is killed at a sweep of
//! deterministic points (with torn, bit-flipped, and garbage tails), and
//! every crash is recovered and audited against an oracle that executes
//! the durable command prefix directly. Exits non-zero on any failure.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```
//!
//! What it checks:
//!
//! 1. **Bit-identity** — the lossy run with the write-ahead journal on
//!    decodes bit-identically to the same run with it off.
//! 2. **Journal overhead** — a loss-free, admit-everything run (heavy
//!    hybrid solves dominate, so wall time is stable and the measurement
//!    is the realistic worst case) is timed with and without the
//!    journal, interleaved min-of-N pairs; the journal may cost at most
//!    10% wall clock (`HYBRIDCS_CRASH_OVERHEAD_LIMIT` to override).
//! 3. **Kill-point sweep** — the store is crashed at evenly spaced
//!    record indices, cycling through every tail fault. Each surviving
//!    image must recover without panicking; corrupt tails must be
//!    CRC-detected; and the recovered gateway must be indistinguishable
//!    (phases, pending nacks, bit-exact outputs on close) from a fresh
//!    gateway that executed the durable record prefix directly — the
//!    determinism contract makes replay re-execution.
//! 4. **Checkpoint restore** — at least one recovery in the sweep must
//!    restore from a snapshot checkpoint rather than replaying from
//!    genesis.
//!
//! The bench report (`BENCH_recovery.json`, JSONL in the `hybridcs-obs`
//! export schema) carries the journal overhead percentage, journal size,
//! and per-kill-point recovery time against replayed-event count — the
//! recovery-time-vs-journal-length curve.
//!
//! Environment knobs: `HYBRIDCS_CRASH_SESSIONS` (default 64),
//! `HYBRIDCS_CRASH_WINDOWS` (default 4, per session),
//! `HYBRIDCS_CRASH_KILLPOINTS` (default 8), `HYBRIDCS_CRASH_REPS`
//! (default 3, timing repetitions), `HYBRIDCS_CRASH_OVERHEAD_LIMIT`
//! (default 10.0, percent), `HYBRIDCS_RECOVERY_BENCH_PATH` (default
//! `BENCH_recovery.json`).

use hybridcs::codec::telemetry::FrameCodec;
use hybridcs::codec::{
    experiment::default_training_windows, train_lowres_codec, HybridFrontEnd, SupervisedWindow,
    SystemConfig,
};
use hybridcs::coding::LowResCodec;
use hybridcs::ecg::{EcgGenerator, GeneratorConfig};
use hybridcs::faults::{
    CrashPlan, CrashingStore, GilbertElliott, GilbertElliottConfig, JournalStore, MemStore,
    TailFault,
};
use hybridcs::gateway::{
    scan, shape_fingerprint, Gateway, GatewayConfig, GatewayError, Record, SessionPhase,
};
use std::time::Instant;

/// Burst-loss rate the streams run over.
const LOSS: f64 = 0.08;
/// Mean burst length (frames).
const BURST_LEN: f64 = 2.5;
fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One operator shape shared by many sessions.
struct Shape {
    system: SystemConfig,
    codec: LowResCodec,
    frontend: HybridFrontEnd,
    wire: FrameCodec,
}

impl Shape {
    fn build(measurements: usize) -> Result<Self, Box<dyn std::error::Error>> {
        let system = SystemConfig {
            measurements,
            ..SystemConfig::default()
        };
        let codec =
            train_lowres_codec(system.lowres_bits, &default_training_windows(system.window))?;
        let frontend = HybridFrontEnd::new(&system, codec.clone())?;
        let wire = FrameCodec::new(&system)?;
        Ok(Shape {
            system,
            codec,
            frontend,
            wire,
        })
    }
}

/// One simulated sensor: an id, its operator shape, and its pre-encoded
/// wire frames (seeded, so every run sees the same physiology).
struct Stream {
    id: u64,
    shape: usize,
    frames: Vec<Vec<u8>>,
}

fn build_streams(
    shapes: &[Shape],
    sessions: usize,
    windows: usize,
) -> Result<Vec<Stream>, Box<dyn std::error::Error>> {
    let mut streams = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let id = 0x3000 + i as u64;
        let shape = i % shapes.len();
        let system = &shapes[shape].system;
        let physiology = GeneratorConfig::normal_sinus();
        let seconds = (windows * system.window) as f64 / physiology.fs_hz + 2.0;
        let generator = EcgGenerator::new(physiology)?;
        let strip = generator.generate(seconds, hybridcs_rand::mix(0x50AC ^ id));
        let mut frames = Vec::with_capacity(windows);
        for (seq, window) in strip.chunks_exact(system.window).take(windows).enumerate() {
            let encoded = shapes[shape].frontend.encode(window)?;
            frames.push(shapes[shape].wire.serialize(seq as u32, &encoded)?);
        }
        streams.push(Stream { id, shape, frames });
    }
    Ok(streams)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn gateway_config() -> GatewayConfig {
    GatewayConfig {
        workers: 4,
        admit_quota: 2,
        admit_window: 4,
        batch_capacity: 32,
        checkpoint_every: 32,
        ..GatewayConfig::default()
    }
}

/// How a run exercises the gateway.
#[derive(Clone, Copy, PartialEq)]
enum RunMode {
    /// Burst loss + nack/retransmit cycle under the sweep config.
    Lossy,
    /// Loss-free and admit-everything: heavy hybrid solves dominate, so
    /// wall time is stable — the overhead-gate workload.
    Throughput,
}

/// The outcome of one (possibly crashing) run.
struct RunOutcome {
    /// Per-session committed windows, when the run survived to close.
    outputs: Option<Vec<Vec<SupervisedWindow>>>,
    crashed: bool,
    seconds: f64,
}

/// Streams every frame round-robin through per-session Gilbert–Elliott
/// channels into a fresh gateway (journaling into `store` when given);
/// gaps go through the nack/retransmit cycle. A journal-store crash ends
/// the run early with `crashed = true`; any other error propagates.
fn run(
    shapes: &[Shape],
    streams: &[Stream],
    store: Option<Box<dyn JournalStore + Send>>,
    mode: RunMode,
) -> Result<RunOutcome, Box<dyn std::error::Error>> {
    let config = match mode {
        RunMode::Lossy => gateway_config(),
        // Admit everything, and checkpoint at the production default
        // cadence rather than the sweep's aggressive one: the gate
        // measures the WAL hot path, not snapshot serialization every
        // few commands (the sweep covers checkpoint restore).
        RunMode::Throughput => GatewayConfig {
            admit_quota: u32::MAX,
            checkpoint_every: GatewayConfig::default().checkpoint_every,
            ..gateway_config()
        },
    };
    let mut gateway = match store {
        Some(store) => Gateway::with_journal(config, store)?,
        None => Gateway::new(config)?,
    };
    let started = Instant::now();
    let mut channels: Vec<GilbertElliott> = streams
        .iter()
        .map(|s| {
            GilbertElliott::new(
                GilbertElliottConfig::burst_loss(LOSS, BURST_LEN),
                hybridcs_rand::mix(0xC11A ^ s.id),
            )
        })
        .collect();
    let crash = |e: GatewayError| match e {
        GatewayError::Journal(_) => Ok(()),
        other => Err(other),
    };
    let step = |gateway: &mut Gateway,
                channels: &mut [GilbertElliott]|
     -> Result<Option<Vec<Vec<SupervisedWindow>>>, GatewayError> {
        for stream in streams {
            let shape = &shapes[stream.shape];
            gateway.handshake(stream.id, &shape.system, shape.codec.clone())?;
        }
        let windows = streams[0].frames.len();
        for w in 0..windows {
            for (s, stream) in streams.iter().enumerate() {
                let frame = &stream.frames[w];
                let delivered = match mode {
                    RunMode::Throughput => Some(frame.clone()),
                    RunMode::Lossy => channels[s].transmit(frame),
                };
                if let Some(delivered) = delivered {
                    gateway.push(stream.id, &delivered)?;
                }
                loop {
                    let nacks = gateway.take_nacks(stream.id)?;
                    if nacks.is_empty() {
                        break;
                    }
                    for seq in nacks {
                        match channels[s].transmit(&stream.frames[seq as usize]) {
                            Some(bytes) => gateway.push(stream.id, &bytes)?,
                            None => gateway.notify_lost(stream.id, seq)?,
                        }
                    }
                }
            }
        }
        let mut outputs = Vec::with_capacity(streams.len());
        for stream in streams {
            outputs.push(gateway.close(stream.id)?);
        }
        Ok(Some(outputs))
    };
    match step(&mut gateway, &mut channels) {
        Ok(outputs) => Ok(RunOutcome {
            outputs,
            crashed: false,
            seconds: started.elapsed().as_secs_f64(),
        }),
        Err(e) => {
            crash(e)?;
            Ok(RunOutcome {
                outputs: None,
                crashed: true,
                seconds: started.elapsed().as_secs_f64(),
            })
        }
    }
}

/// Executes the durable record prefix directly on a fresh non-journaling
/// gateway via the public API — what recovery must be equivalent to.
fn oracle_from_records(
    records: &[Record],
    shapes: &[Shape],
) -> Result<Gateway, Box<dyn std::error::Error>> {
    let mut gateway = Gateway::new(gateway_config())?;
    for record in records {
        match record {
            Record::Handshake { id, shape_fp } => {
                let shape = shapes
                    .iter()
                    .find(|s| shape_fingerprint(&s.system, &s.codec) == *shape_fp)
                    .ok_or("journal names an unknown shape")?;
                let _ = gateway.handshake(*id, &shape.system, shape.codec.clone());
            }
            Record::Push { id, packet } => {
                let _ = gateway.push(*id, packet);
            }
            Record::NotifyLost { id, sequence } => {
                let _ = gateway.notify_lost(*id, *sequence);
            }
            Record::TakeNacks { id } => {
                let _ = gateway.take_nacks(*id);
            }
            Record::Flush => {
                let _ = gateway.flush();
            }
            Record::TakeOutputs { id } => {
                let _ = gateway.take_outputs(*id);
            }
            Record::Close { id } => {
                let _ = gateway.close(*id);
            }
            Record::Genesis { .. } | Record::Checkpoint(_) => {}
        }
    }
    Ok(gateway)
}

/// Drains both gateways to exhaustion and verifies bit-identical state:
/// same phases, same pending nacks, same outputs on close.
fn verify_equivalent(
    recovered: &mut Gateway,
    oracle: &mut Gateway,
    streams: &[Stream],
    context: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    for stream in streams {
        let id = stream.id;
        if recovered.phase(id) != oracle.phase(id) {
            return Err(format!("session {id} phase diverged ({context})").into());
        }
        let live = matches!(recovered.phase(id), Some(p) if p != SessionPhase::Closed);
        if !live {
            continue;
        }
        if recovered.take_nacks(id)? != oracle.take_nacks(id)? {
            return Err(format!("session {id} pending nacks diverged ({context})").into());
        }
        if recovered.close(id)? != oracle.close(id)? {
            return Err(format!("session {id} outputs diverged on close ({context})").into());
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sessions = env_usize("HYBRIDCS_CRASH_SESSIONS", 64);
    let windows = env_usize("HYBRIDCS_CRASH_WINDOWS", 4);
    let killpoints = env_usize("HYBRIDCS_CRASH_KILLPOINTS", 8).max(1);
    let bench_path = std::env::var("HYBRIDCS_RECOVERY_BENCH_PATH")
        .unwrap_or_else(|_| "BENCH_recovery.json".into());
    let registry = hybridcs::obs::global();

    let shapes = vec![Shape::build(96)?, Shape::build(64)?];
    let streams = build_streams(&shapes, sessions, windows)?;
    let shape_table: Vec<(SystemConfig, LowResCodec)> = shapes
        .iter()
        .map(|s| (s.system.clone(), s.codec.clone()))
        .collect();
    println!(
        "crash recovery: {sessions} sessions x {windows} windows, 2 operator shapes, \
         {:.0}% burst loss",
        LOSS * 100.0
    );

    // --- bit-identity: journal on vs off, same lossy run -------------
    let reference = run(&shapes, &streams, None, RunMode::Lossy)?
        .outputs
        .expect("plain run completes");
    let lossy_store = MemStore::new();
    let journaled_outputs = run(
        &shapes,
        &streams,
        Some(Box::new(lossy_store.clone())),
        RunMode::Lossy,
    )?
    .outputs
    .expect("journaled run completes");
    if journaled_outputs != reference {
        eprintln!("error: journaling perturbed the decode outputs");
        std::process::exit(1);
    }
    let final_image = lossy_store.snapshot();
    let durable = scan(&final_image);
    let total_records = durable.records.len();
    println!(
        "crash recovery: journal on/off outputs bit-identical \
         ({total_records} records, {} KiB journaled)",
        final_image.len() / 1024
    );

    // --- journal overhead gate ---------------------------------------
    // Interleaved plain/journaled pairs of the solve-heavy loss-free
    // run, min-of-N each; fresh MemStore per journaled rep.
    let reps = env_usize("HYBRIDCS_CRASH_REPS", 3).max(1);
    let overhead_limit_pct = env_f64("HYBRIDCS_CRASH_OVERHEAD_LIMIT", 10.0);
    let mut plain_s = f64::INFINITY;
    let mut journaled_s = f64::INFINITY;
    for _ in 0..reps {
        plain_s = plain_s.min(run(&shapes, &streams, None, RunMode::Throughput)?.seconds);
        journaled_s = journaled_s.min(
            run(
                &shapes,
                &streams,
                Some(Box::new(MemStore::new())),
                RunMode::Throughput,
            )?
            .seconds,
        );
    }
    let overhead_pct = (journaled_s - plain_s) / plain_s * 100.0;
    println!(
        "crash recovery: journal overhead {overhead_pct:.2}% \
         (plain {plain_s:.3}s, journaled {journaled_s:.3}s, min-of-{reps})"
    );
    if overhead_pct > overhead_limit_pct {
        eprintln!(
            "error: journal overhead {overhead_pct:.2}% exceeds the \
             {overhead_limit_pct:.0}% ceiling"
        );
        std::process::exit(1);
    }
    registry
        .gauge("gateway_bench_journal_overhead_pct", &[])
        .set(overhead_pct.max(0.0));
    registry
        .gauge("gateway_bench_journal_bytes", &[])
        .set(final_image.len() as f64);
    registry
        .gauge("gateway_bench_journal_records", &[])
        .set(total_records as f64);

    // --- kill-point sweep --------------------------------------------
    // Evenly spaced record indices, cycling the tail faults; every
    // surviving image must recover to the durable-prefix oracle.
    let faults = [
        TailFault::Clean,
        TailFault::TornWrite(3),
        TailFault::FlipBit(41),
        TailFault::Garbage(9),
    ];
    let stride = (total_records / killpoints).max(1);
    let mut checkpoints_restored = 0usize;
    let mut sweeps = 0usize;
    for (i, kill_at) in (1..total_records as u64).step_by(stride).enumerate() {
        let fault = faults[i % faults.len()];
        let context = format!("kill@{kill_at} fault={}", fault.name());
        let store = CrashingStore::new(
            MemStore::new(),
            CrashPlan {
                kill_at_record: kill_at,
                tail: fault,
            },
        );
        let image = store.image();
        let outcome = run(&shapes, &streams, Some(Box::new(store)), RunMode::Lossy)?;
        if !outcome.crashed {
            eprintln!("error: the crash plan never fired ({context})");
            std::process::exit(1);
        }
        let surviving = image.snapshot();
        let prefix = scan(&surviving);
        let recovery_started = Instant::now();
        let (mut recovered, report) = Gateway::recover(
            gateway_config(),
            Box::new(MemStore::from_bytes(surviving)),
            &shape_table,
        )?;
        let recovery_s = recovery_started.elapsed().as_secs_f64();
        if matches!(fault, TailFault::Clean) == report.torn_tail {
            eprintln!(
                "error: torn-tail detection wrong ({context}: torn={})",
                report.torn_tail
            );
            std::process::exit(1);
        }
        if report.checkpoint_restored {
            checkpoints_restored += 1;
        }
        let mut oracle = oracle_from_records(&prefix.records, &shapes)?;
        verify_equivalent(&mut recovered, &mut oracle, &streams, &context)?;
        sweeps += 1;
        let records_label = kill_at.to_string();
        registry
            .gauge(
                "gateway_bench_recovery_seconds",
                &[("records", &records_label)],
            )
            .set(recovery_s);
        registry
            .gauge(
                "gateway_bench_recovery_replayed",
                &[("records", &records_label)],
            )
            .set(report.replayed_events as f64);
        println!(
            "crash recovery: {context} -> checkpoint={} replayed {} events, \
             recovered in {:.1} ms, state equivalent",
            report.checkpoint_restored,
            report.replayed_events,
            recovery_s * 1e3
        );
    }
    if checkpoints_restored == 0 {
        eprintln!("error: no recovery in the sweep restored a checkpoint");
        std::process::exit(1);
    }

    // --- bench report -------------------------------------------------
    let snapshot = registry.snapshot();
    let path = std::path::PathBuf::from(bench_path);
    hybridcs::obs::export::write_jsonl(&path, "crash_recovery", &snapshot, &[])?;
    println!("crash recovery: report written to {}", path.display());
    println!(
        "crash recovery: OK ({sweeps} crash/recover cycles, \
         {checkpoints_restored} checkpoint restores, \
         journal overhead {overhead_pct:.2}%)"
    );
    Ok(())
}
