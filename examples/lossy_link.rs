//! Lossy-link scenario: stream ECG over a radio that drops whole packets
//! and flips bits, and watch the hybrid design degrade gracefully — the
//! two payload sections fail independently, so a damaged frame usually
//! still yields a usable trace.
//!
//! ```sh
//! cargo run --release --example lossy_link
//! ```

use hybridcs::codec::telemetry::{RecoveredWindow, ResilientReceiver};
use hybridcs::codec::{
    experiment::default_training_windows, train_lowres_codec, HybridFrontEnd, SystemConfig,
};
use hybridcs::ecg::{EcgGenerator, GeneratorConfig, NoiseModel};
use hybridcs::metrics::snr_db;
use hybridcs_rand::{RngExt, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig {
        measurements: 64,
        ..SystemConfig::default()
    };
    let lowres_codec =
        train_lowres_codec(config.lowres_bits, &default_training_windows(config.window))?;
    let sensor = HybridFrontEnd::new(&config, lowres_codec.clone())?;
    let receiver = ResilientReceiver::new(&config, lowres_codec)?;

    let mut gen_config = GeneratorConfig::normal_sinus();
    gen_config.noise = NoiseModel::ambulatory();
    let generator = EcgGenerator::new(gen_config)?;
    let strip = generator.generate(30.0, 0x10_55);

    // A hostile link: 10% packet loss, 15% CS-section corruption, 10%
    // low-res-section corruption.
    let mut link = hybridcs_rand::rngs::StdRng::seed_from_u64(0x000B_AD11);
    let mut counts = [0usize; 4]; // hybrid, cs-only, lowres-only, lost
    let mut snr_sum = [0.0f64; 3];

    for (seq, window) in strip.chunks_exact(config.window).enumerate() {
        let encoded = sensor.encode(window)?;
        let mut bytes = receiver.frame_codec().serialize(seq as u32, &encoded)?;

        let roll: f64 = link.random();
        let packet = if roll < 0.10 {
            None // dropped outright
        } else {
            if roll < 0.25 {
                bytes[24] ^= 0x40; // damage the CS section
            } else if roll < 0.35 {
                let idx = bytes.len() - 6;
                bytes[idx] ^= 0x04; // damage the low-res section
            }
            Some(bytes)
        };

        match receiver.receive(packet.as_deref()) {
            RecoveredWindow::Hybrid(d) => {
                counts[0] += 1;
                snr_sum[0] += snr_db(window, &d.signal);
            }
            RecoveredWindow::CsOnly(d) => {
                counts[1] += 1;
                snr_sum[1] += snr_db(window, &d.signal);
            }
            RecoveredWindow::LowResOnly(s) => {
                counts[2] += 1;
                snr_sum[2] += snr_db(window, &s);
            }
            RecoveredWindow::Lost => counts[3] += 1,
        }
    }

    let total: usize = counts.iter().sum();
    println!("{total} windows over a link with 10% drop / 15% CS hit / 10% low-res hit:");
    let labels = ["hybrid (both sections)", "CS only", "low-res only"];
    for i in 0..3 {
        if counts[i] > 0 {
            println!(
                "  {:<24} {:>3} windows, mean SNR {:.1} dB",
                labels[i],
                counts[i],
                snr_sum[i] / counts[i] as f64
            );
        }
    }
    println!("  {:<24} {:>3} windows", "lost", counts[3]);

    // The receiver also accounts every loss in the global metrics
    // registry — the per-section CRC verdicts that the match above
    // collapses into outcomes.
    let snapshot = hybridcs::obs::global().snapshot();
    let count =
        |name: &str, labels: &[(&str, &str)]| snapshot.counter_value(name, labels).unwrap_or(0);
    println!();
    println!("receiver loss counters (from the metrics registry):");
    println!(
        "  frames received          {:>3}  (dropped {}, bad header {}, undecodable {})",
        count("telemetry_frames_total", &[]),
        count("telemetry_frames_lost", &[("reason", "dropped")]),
        count("telemetry_frames_lost", &[("reason", "header")]),
        count("telemetry_frames_lost", &[("reason", "decode")]),
    );
    println!(
        "  CS section lost          {:>3}",
        count("telemetry_section_lost", &[("section", "cs")]),
    );
    println!(
        "  low-res section lost     {:>3}",
        count("telemetry_section_lost", &[("section", "lowres")]),
    );
    if let Some(path) = hybridcs::obs::export::export_global_if_enabled("lossy_link", &[])? {
        println!("  JSONL report written to {}", path.display());
    }

    println!();
    println!("the point: only fully dropped packets lose signal; every partial");
    println!("corruption still produces a trace, because the hybrid design's two");
    println!("payloads are independently decodable.");
    Ok(())
}
