//! Resilience report: stream ECG through the full fault-injection
//! subsystem — sensor-side faults, a Gilbert–Elliott burst-loss channel,
//! a bounded ARQ retry queue — into the receiver-side recovery
//! supervisor, and sweep the burst-loss rate to show that quality
//! degrades *gracefully*: every window yields a finite reconstruction at
//! any loss rate, and mean SNR falls monotonically as the channel gets
//! worse.
//!
//! ```sh
//! cargo run --release --example resilience_report
//! ```
//!
//! Exits non-zero if any window fails to produce a finite reconstruction
//! or the SNR-vs-loss curve is not monotone, so `scripts/ci.sh` can use
//! this as the fault-injection smoke run.

use hybridcs::codec::{
    experiment::default_training_windows, train_lowres_codec, HybridFrontEnd, LadderRung,
    RecoverySupervisor, SupervisorConfig, SystemConfig,
};
use hybridcs::ecg::{EcgGenerator, GeneratorConfig};
use hybridcs::faults::{
    ArqConfig, GilbertElliott, GilbertElliottConfig, NackOutcome, RetryQueue, SensorFaultConfig,
    SensorFaultInjector,
};
use hybridcs::metrics::snr_db;

/// Mean burst length (frames) for the Gilbert–Elliott channel.
const BURST_LEN: f64 = 3.0;
/// Burst-loss rates swept; SNR must degrade monotonically across them.
const LOSS_RATES: [f64; 4] = [0.0, 0.05, 0.20, 0.50];

struct SweepOutcome {
    loss: f64,
    rungs: [usize; 4],
    retries: usize,
    recovered: usize,
    mean_snr: f64,
}

fn rung_index(rung: LadderRung) -> usize {
    match rung {
        LadderRung::Hybrid => 0,
        LadderRung::CsOnly => 1,
        LadderRung::LowResOnly => 2,
        LadderRung::Concealed => 3,
    }
}

fn run_sweep(
    loss: f64,
    sensor: &HybridFrontEnd,
    supervisor_template: &RecoverySupervisor,
    windows: &[Vec<f64>],
) -> Result<SweepOutcome, Box<dyn std::error::Error>> {
    let mut supervisor = supervisor_template.clone();
    // Burst frame loss at the target rate, plus single-bit errors that
    // scale with it — partial section corruption is what exercises the
    // middle ladder rungs, and a worse channel delivers more of both.
    let mut ge_config = GilbertElliottConfig::burst_loss(loss, BURST_LEN);
    ge_config.bit_error_good = loss * 1.0e-4;
    let mut channel = GilbertElliott::new(ge_config, 0xC4A2 ^ (loss * 1000.0) as u64);
    let mut retry = RetryQueue::new(ArqConfig::default());
    // Same seed at every loss rate: the sensor-side fault trace is
    // identical across sweeps, so only the channel differs.
    let mut injector = SensorFaultInjector::new(SensorFaultConfig::default(), 0x5E_25);

    let mut rungs = [0usize; 4];
    let mut retries = 0usize;
    let mut recovered = 0usize;
    let mut snr_sum = 0.0;

    for (seq, clean) in windows.iter().enumerate() {
        let mut acquired = clean.clone();
        let _faults = injector.inject(&mut acquired);
        let encoded = sensor.encode(&acquired)?;
        let bytes = supervisor.frame_codec().serialize(seq as u32, &encoded)?;

        // Burst-lossy link with a bounded ARQ loop: a dropped frame is
        // NACKed and retransmitted until the per-frame cap or the global
        // retransmission budget runs out.
        let mut delivered = channel.transmit(&bytes);
        while delivered.is_none() {
            match retry.nack(seq as u32) {
                NackOutcome::Queued => {}
                _ => break,
            }
            let Some(again) = retry.next_attempt() else {
                break;
            };
            retries += 1;
            delivered = channel.transmit(&bytes);
            if delivered.is_some() {
                retry.resolve(again);
                recovered += 1;
            }
        }

        let out = supervisor.receive(delivered.as_deref());
        rungs[rung_index(out.rung)] += 1;
        if out.signal.len() != clean.len() || out.signal.iter().any(|v| !v.is_finite()) {
            return Err(
                format!("window {seq} at {loss:.0}% loss produced a bad reconstruction").into(),
            );
        }
        snr_sum += snr_db(&acquired, &out.signal);
    }

    Ok(SweepOutcome {
        loss,
        rungs,
        retries,
        recovered,
        mean_snr: snr_sum / windows.len() as f64,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig {
        measurements: 64,
        ..SystemConfig::default()
    };
    let lowres_codec =
        train_lowres_codec(config.lowres_bits, &default_training_windows(config.window))?;
    let sensor = HybridFrontEnd::new(&config, lowres_codec.clone())?;
    let supervisor = RecoverySupervisor::new(&config, lowres_codec, SupervisorConfig::default())?;

    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus())?;
    let strip = generator.generate(240.0, 0xD0_5E);
    let windows: Vec<Vec<f64>> = strip
        .chunks_exact(config.window)
        .map(<[f64]>::to_vec)
        .collect();

    println!(
        "{} windows of {} samples, GE bursts of mean length {BURST_LEN} frames, \
         default ARQ budget:",
        windows.len(),
        config.window
    );
    println!(
        "{:>6}  {:>7} {:>8} {:>7} {:>9}  {:>7} {:>9}  {:>9}",
        "loss", "hybrid", "cs-only", "lowres", "concealed", "retries", "recovered", "mean SNR"
    );

    let mut outcomes = Vec::new();
    for loss in LOSS_RATES {
        let outcome = run_sweep(loss, &sensor, &supervisor, &windows)?;
        println!(
            "{:>5.0}%  {:>7} {:>8} {:>7} {:>9}  {:>7} {:>9}  {:>6.1} dB",
            outcome.loss * 100.0,
            outcome.rungs[0],
            outcome.rungs[1],
            outcome.rungs[2],
            outcome.rungs[3],
            outcome.retries,
            outcome.recovered,
            outcome.mean_snr
        );
        outcomes.push(outcome);
    }

    println!();
    println!("every window at every loss rate produced a finite reconstruction");

    for pair in outcomes.windows(2) {
        if pair[1].mean_snr >= pair[0].mean_snr {
            return Err(format!(
                "SNR did not degrade monotonically: {:.2} dB at {:.0}% loss vs {:.2} dB at {:.0}%",
                pair[1].mean_snr,
                pair[1].loss * 100.0,
                pair[0].mean_snr,
                pair[0].loss * 100.0
            )
            .into());
        }
    }
    println!("mean SNR degrades monotonically across the loss sweep");

    // The supervisor and the fault injectors account everything in the
    // global metrics registry; surface the ladder decisions here and ship
    // the whole registry as JSONL when HYBRIDCS_OBS is set.
    let snapshot = hybridcs::obs::global().snapshot();
    let count =
        |name: &str, labels: &[(&str, &str)]| snapshot.counter_value(name, labels).unwrap_or(0);
    println!();
    println!("ladder decisions (from the metrics registry, all sweeps):");
    for rung in ["hybrid", "cs_only", "lowres_only", "concealed"] {
        println!(
            "  {:<12} {:>4}",
            rung,
            count("supervisor_rung_total", &[("rung", rung)])
        );
    }
    println!(
        "  watchdog trips {:>2} (diverged {}, non-finite {})",
        count("solver_watchdog_trips", &[("reason", "diverged")])
            + count("solver_watchdog_trips", &[("reason", "non_finite")])
            + count("solver_watchdog_trips", &[("reason", "time_budget")])
            + count("solver_watchdog_trips", &[("reason", "iteration_budget")]),
        count("solver_watchdog_trips", &[("reason", "diverged")]),
        count("solver_watchdog_trips", &[("reason", "non_finite")]),
    );
    println!(
        "  sequence gaps  {:>2} ({} frames missing)",
        count("supervisor_sequence_gap_events_total", &[]),
        count("supervisor_missing_frames_total", &[]),
    );
    if let Some(path) = hybridcs::obs::export::export_global_if_enabled("resilience_report", &[])? {
        println!("  JSONL report written to {}", path.display());
    }

    println!();
    println!("the point: faults never propagate as panics or lost windows; the");
    println!("supervisor trades reconstruction quality for availability, one");
    println!("ladder rung at a time.");
    Ok(())
}
