//! Diagnostic fidelity: PRD says how close the waveform is; a cardiologist
//! asks whether the *beats* survived. This example runs R-peak detection
//! on reconstructions at increasing compression and reports beat-level
//! sensitivity/positive-predictivity against the original strip — for
//! both the hybrid and the normal-CS decoder.
//!
//! ```sh
//! cargo run --release --example diagnostic_fidelity
//! ```

use hybridcs::codec::{HybridCodec, SystemConfig};
use hybridcs::ecg::{detect_r_peaks, match_beats, EcgGenerator, GeneratorConfig, NoiseModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = 360.0;
    let tolerance = 27; // ±75 ms, the AAMI matching window

    let mut gen_config = GeneratorConfig::normal_sinus();
    gen_config.noise = NoiseModel::clean();
    gen_config.pvc_probability = 0.05; // include ectopy: the hard case
    let generator = EcgGenerator::new(gen_config)?;
    let strip = generator.generate(30.0, 0xD1A6);
    let reference = detect_r_peaks(&strip, fs);
    println!(
        "reference strip: 30 s, {} beats detected (incl. PVCs)",
        reference.len()
    );
    println!();
    println!("CR(%) | decoder | sensitivity | +predictivity | jitter (ms)");
    println!("------+---------+-------------+---------------+------------");

    for cr in [75.0f64, 88.0, 94.0, 97.0] {
        let config = SystemConfig::for_compression_ratio(cr)?;
        let codec = HybridCodec::with_default_training(&config)?;

        let mut hybrid_signal = Vec::with_capacity(strip.len());
        let mut normal_signal = Vec::with_capacity(strip.len());
        for window in strip.chunks_exact(config.window) {
            let encoded = codec.encode(window)?;
            hybrid_signal.extend(codec.decode(&encoded)?.signal);
            normal_signal.extend(codec.decode_normal(&encoded)?.signal);
        }

        for (name, signal) in [("hybrid", &hybrid_signal), ("normal", &normal_signal)] {
            let detected = detect_r_peaks(signal, fs);
            let stats = match_beats(&reference[..], &detected, tolerance);
            println!(
                "{cr:>5.0} | {name:<7} | {:>10.1}% | {:>12.1}% | {:>10.1}",
                stats.sensitivity * 100.0,
                stats.positive_predictivity * 100.0,
                stats.mean_jitter_samples / fs * 1000.0
            );
        }
    }

    println!();
    println!("the clinical upshot of the paper: hybrid CS keeps every beat");
    println!("findable even at 97% compression, while normal CS loses the");
    println!("rhythm strip exactly where the power savings are biggest.");
    Ok(())
}
