//! Quickstart: acquire one ECG window through both paths of the hybrid
//! front end, reconstruct it, and print the quality/rate numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hybridcs::codec::{HybridCodec, SystemConfig};
use hybridcs::ecg::{EcgGenerator, GeneratorConfig};
use hybridcs::metrics::{prd, snr_db, QualityGrade};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's 20 dB operating point: n = 512, m = 96 (CR 81.25%),
    // 7-bit low-resolution channel.
    let config = SystemConfig::default();
    println!(
        "window n = {}, measurements m = {}, CS compression ratio = {:.2}%",
        config.window,
        config.measurements,
        config.cs_compression_ratio()
    );

    // Synthesize a couple of seconds of clean sinus rhythm.
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus())?;
    let strip = generator.generate(2.0, 42);
    let window = &strip[..config.window];

    // Sensor side: two parallel acquisitions, one packet.
    let codec = HybridCodec::with_default_training(&config)?;
    let encoded = codec.encode(window)?;
    println!(
        "payload: CS {} bits + low-res {} bits = {} bits (net CR {:.2}%)",
        encoded.cs_payload_bits(),
        encoded.lowres_payload_bits(),
        encoded.total_bits(),
        encoded.net_compression_ratio(config.original_bits),
    );

    // Receiver side: hybrid reconstruction (Eq. 1 with the box constraint)
    // vs the normal-CS baseline on the very same measurements.
    let hybrid = codec.decode(&encoded)?;
    let normal = codec.decode_normal(&encoded)?;

    for (name, decoded) in [("hybrid CS", &hybrid), ("normal CS", &normal)] {
        let p = prd(window, &decoded.signal);
        println!(
            "{name:>9}: SNR {:6.2} dB  PRD {p:6.2}%  ({}) in {} iterations",
            snr_db(window, &decoded.signal),
            QualityGrade::from_prd(p),
            decoded.recovery.iterations,
        );
    }

    // With HYBRIDCS_OBS=1 the run's metrics (pipeline spans, counters)
    // are exported as JSONL — see the "Observability" section of DESIGN.md.
    if let Some(path) = hybridcs::obs::export::export_global_if_enabled("quickstart", &[])? {
        println!("observability report written to {}", path.display());
    }
    Ok(())
}
