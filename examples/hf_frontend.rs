//! The paper's closing motivation: at high sampling frequencies the
//! effective number of bits of real ADCs collapses (flash converters
//! manage ~8 ENOB at 1 GHz), which is exactly the regime where a cheap
//! low-resolution path plus CS "super-resolution" shines. This example
//! sizes such a front end with the paper's power models and demonstrates
//! that the hybrid decoder's quality mechanism is rate-independent.
//!
//! ```sh
//! cargo run --release --example hf_frontend
//! ```

use hybridcs::codec::{HybridCodec, SystemConfig};
use hybridcs::metrics::snr_db;
use hybridcs::power::{hybrid_power, rmpi_power, PowerParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = PowerParams::default();
    let n = 512;
    let (m_hybrid, m_normal) = (96usize, 240usize);

    println!(
        "front-end power at high sampling rates (m = {m_hybrid} hybrid vs {m_normal} normal):"
    );
    println!("fs          | hybrid total | normal total | gain");
    println!("------------+--------------+--------------+-----");
    for fs in [1e3, 1e5, 1e7, 1e9] {
        let h = hybrid_power(m_hybrid, n, fs, 8, &params);
        let nrm = rmpi_power(m_normal, n, fs, &params);
        println!(
            "{:>8.0e} Hz | {:>9.3e} W | {:>9.3e} W | {:.2}x",
            fs,
            h.total_w(),
            nrm.total_w(),
            nrm.total_w() / h.total_w()
        );
    }

    // The recovery mathematics never sees fs — a window is a window. Show
    // the same hybrid gain on a "wideband" waveform treated as one window
    // (a chirp standing in for an RF-ish compressible signal).
    let chirp: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            2.0 * (2.0 * std::f64::consts::PI * (2.0 + 14.0 * t) * t).sin() * (-2.0 * t).exp()
        })
        .collect();
    let config = SystemConfig {
        measurements: 64,
        lowres_bits: 8, // the flash-ADC ENOB regime
        ..SystemConfig::default()
    };
    let codec = HybridCodec::with_default_training(&config)?;
    let encoded = codec.encode(&chirp)?;
    let hybrid = codec.decode(&encoded)?;
    let normal = codec.decode_normal(&encoded)?;
    println!();
    println!(
        "chirp window, m = 64, 8-bit parallel path: hybrid {:.1} dB vs normal {:.1} dB",
        snr_db(&chirp, &hybrid.signal),
        snr_db(&chirp, &normal.signal)
    );
    println!();
    println!("reading: the power ratio is frequency-independent (every block of");
    println!("Eqs. 4/5/9 is linear in fs), so the architectural gain carries from");
    println!("ECG rates to the GHz A2I regime the conclusion points at — with the");
    println!("8-bit flash path playing the role of the low-resolution channel.");
    Ok(())
}
