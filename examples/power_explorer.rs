//! Design-space exploration: for a grid of channel counts, measure the
//! reconstruction quality of both decoders on a small evaluation set and
//! price each point with the paper's analytical power models — the
//! methodology behind the paper's "11× power reduction" headline.
//!
//! ```sh
//! cargo run --release --example power_explorer
//! ```

use hybridcs::codec::{HybridCodec, SystemConfig};
use hybridcs::ecg::{Corpus, CorpusConfig};
use hybridcs::metrics::prd_to_snr_db;
use hybridcs::power::{hybrid_power, rmpi_power, PowerParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Corpus::generate(&CorpusConfig {
        records: 6,
        duration_s: 4.0,
        seed: 0xE7,
    });
    let params = PowerParams::default();
    let fs = 360.0;

    println!("  m |  CR(%) | hybrid SNR | normal SNR | hybrid uW | normal uW");
    println!("----+--------+------------+------------+-----------+----------");

    for m in [16usize, 32, 64, 96, 128, 176, 240] {
        let config = SystemConfig {
            measurements: m,
            ..SystemConfig::default()
        };
        let codec = HybridCodec::with_default_training(&config)?;

        let (mut err_h, mut err_n, mut energy) = (0.0, 0.0, 0.0);
        for record in corpus.records() {
            for window in record.windows(config.window).take(2) {
                let encoded = codec.encode(window)?;
                let hybrid = codec.decode(&encoded)?;
                let normal = codec.decode_normal(&encoded)?;
                for ((&x, xh), xn) in window.iter().zip(&hybrid.signal).zip(&normal.signal) {
                    err_h += (x - xh) * (x - xh);
                    err_n += (x - xn) * (x - xn);
                    energy += x * x;
                }
            }
        }
        let snr_h = prd_to_snr_db((err_h / energy).sqrt() * 100.0);
        let snr_n = prd_to_snr_db((err_n / energy).sqrt() * 100.0);
        let p_h = hybrid_power(m, config.window, fs, config.lowres_bits, &params);
        let p_n = rmpi_power(m, config.window, fs, &params);
        println!(
            "{m:>3} | {:6.2} | {snr_h:7.2} dB | {snr_n:7.2} dB | {:9.2} | {:9.2}",
            config.cs_compression_ratio(),
            p_h.total_uw(),
            p_n.total_uw()
        );
    }

    println!();
    println!("Read-off (paper Section VI): pick the smallest hybrid m and the");
    println!("smallest normal m that reach your SNR target; their power ratio");
    println!("is the architectural gain. The paper reports 96 vs 240 channels");
    println!("at 20 dB (~2.5x) and 16 vs 176 channels at 17 dB (~11x).");
    Ok(())
}
