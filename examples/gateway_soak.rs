//! Gateway soak: N simulated sensor sessions interleaved over a lossy
//! burst channel into the sharded multi-patient gateway, proving the
//! determinism contract and measuring batched-decode throughput.
//!
//! ```sh
//! cargo run --release --example gateway_soak
//! ```
//!
//! What it checks (exits non-zero on any failure):
//!
//! 1. **Determinism** — per-session reconstructions are bit-identical
//!    for worker counts {1, 4, 8}, for decode-batch widths {1, 3, 16}
//!    (per-window serial vs. lockstep batched shard flushes), and for
//!    two different frame interleavings (round-robin across sessions vs.
//!    session-major), while ~half the solver work is being *shed* by
//!    admission control and gaps are repaired (or abandoned) through the
//!    bounded ARQ.
//! 2. **Telemetry** — the same soak scenario re-runs with full telemetry
//!    (flight recorder + spans) enabled for worker counts {1, 4, 8};
//!    outputs must stay bit-identical to the telemetry-off reference,
//!    and each run's frame-to-commit p50/p99 goes into the bench report
//!    as `gateway_frame_to_commit_p{50,99}_seconds{workers="N"}`.
//! 3. **SLOs** — the [`hybridcs::obs::SloEngine`] evaluates three
//!    objectives (p99 frame-to-commit latency, full-hybrid-rung
//!    fraction, non-concealed fraction) over the telemetry sweep's
//!    observation windows and prints one burn-rate summary line each.
//! 4. **Flight recorder** — a config with an always-tripping watchdog
//!    injects a deterministic anomaly; the resulting flight dump must be
//!    anomaly-latched, schema-valid line by line, and is written to
//!    `FLIGHT_gateway.jsonl`.
//! 5. **Throughput** — a loss-free, shard-balanced batch is decoded with
//!    1 worker and with `min(8, cores)` workers; the speedup is written
//!    to the bench report and asserted when the host has the cores for
//!    it (≥ 4× on hosts with more than 4 cores, ≥ 3× on exactly 4 —
//!    4× is the theoretical ceiling of a 4-core machine).
//!
//! The bench report (`BENCH_gateway.json` by default, JSONL in the
//! `hybridcs-obs` export schema) carries the full metrics snapshot:
//! shed counts, ladder rungs, per-stage latency histograms with
//! p50/p90/p99, queue depths, and the `gateway_bench_*` gauges. A
//! Prometheus text exposition of the same snapshot is written to
//! `METRICS_gateway.prom`.
//!
//! Environment knobs: `HYBRIDCS_SOAK_SESSIONS` (default 64),
//! `HYBRIDCS_SOAK_WINDOWS` (default 4, per session),
//! `HYBRIDCS_GATEWAY_BENCH_PATH` (default `BENCH_gateway.json`),
//! `HYBRIDCS_FLIGHT_PATH` (default `FLIGHT_gateway.jsonl`),
//! `HYBRIDCS_PROM_PATH` (default `METRICS_gateway.prom`).

use hybridcs::codec::telemetry::FrameCodec;
use hybridcs::codec::{
    experiment::default_training_windows, train_lowres_codec, HybridFrontEnd, SupervisedWindow,
    SupervisorConfig, SystemConfig,
};
use hybridcs::coding::LowResCodec;
use hybridcs::ecg::{EcgGenerator, GeneratorConfig};
use hybridcs::faults::{GilbertElliott, GilbertElliottConfig};
use hybridcs::gateway::{Gateway, GatewayConfig};
use hybridcs::obs::flight::recorder;
use hybridcs::obs::{BurnPolicy, MetricId, Objective, SloEngine, SloSpec};
use hybridcs::solver::WatchdogConfig;
use std::time::Instant;

/// Burst-loss rate the soak streams run over.
const LOSS: f64 = 0.08;
/// Mean burst length (frames).
const BURST_LEN: f64 = 2.5;
/// Worker counts the determinism sweep must agree across.
const WORKER_COUNTS: [usize; 3] = [1, 4, 8];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One operator shape shared by many sessions.
struct Shape {
    system: SystemConfig,
    codec: LowResCodec,
    frontend: HybridFrontEnd,
    wire: FrameCodec,
}

impl Shape {
    fn build(measurements: usize) -> Result<Self, Box<dyn std::error::Error>> {
        let system = SystemConfig {
            measurements,
            ..SystemConfig::default()
        };
        let codec =
            train_lowres_codec(system.lowres_bits, &default_training_windows(system.window))?;
        let frontend = HybridFrontEnd::new(&system, codec.clone())?;
        let wire = FrameCodec::new(&system)?;
        Ok(Shape {
            system,
            codec,
            frontend,
            wire,
        })
    }
}

/// One simulated sensor: an id, its operator shape, and its pre-encoded
/// wire frames (seeded, so every run sees the same physiology).
struct Stream {
    id: u64,
    shape: usize,
    frames: Vec<Vec<u8>>,
}

fn build_streams(
    shapes: &[Shape],
    sessions: usize,
    windows: usize,
    id_base: u64,
) -> Result<Vec<Stream>, Box<dyn std::error::Error>> {
    let mut streams = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let id = id_base + i as u64;
        let shape = i % shapes.len();
        let system = &shapes[shape].system;
        let physiology = GeneratorConfig::normal_sinus();
        let seconds = (windows * system.window) as f64 / physiology.fs_hz + 2.0;
        let generator = EcgGenerator::new(physiology)?;
        let strip = generator.generate(seconds, hybridcs_rand::mix(0x50AC ^ id));
        let mut frames = Vec::with_capacity(windows);
        for (seq, window) in strip.chunks_exact(system.window).take(windows).enumerate() {
            let encoded = shapes[shape].frontend.encode(window)?;
            frames.push(shapes[shape].wire.serialize(seq as u32, &encoded)?);
        }
        assert_eq!(frames.len(), windows, "strip long enough for all windows");
        streams.push(Stream { id, shape, frames });
    }
    Ok(streams)
}

/// Global frame orderings the determinism sweep compares.
#[derive(Clone, Copy)]
enum Interleave {
    /// Window 0 of every session, then window 1 of every session, …
    RoundRobin,
    /// All of session 0, then all of session 1, …
    SessionMajor,
}

impl Interleave {
    fn name(self) -> &'static str {
        match self {
            Interleave::RoundRobin => "round_robin",
            Interleave::SessionMajor => "session_major",
        }
    }

    fn order(self, sessions: usize, windows: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(sessions * windows);
        match self {
            Interleave::RoundRobin => {
                for w in 0..windows {
                    for s in 0..sessions {
                        out.push((s, w));
                    }
                }
            }
            Interleave::SessionMajor => {
                for s in 0..sessions {
                    for w in 0..windows {
                        out.push((s, w));
                    }
                }
            }
        }
        out
    }
}

/// Streams every frame (in the given global order) through a per-session
/// Gilbert–Elliott channel into a fresh gateway; gaps go through the
/// nack/retransmit cycle, and ARQ-abandoned frames conceal. Returns each
/// session's committed windows in stream order.
fn drive(
    shapes: &[Shape],
    streams: &[Stream],
    workers: usize,
    max_decode_batch: usize,
    interleave: Interleave,
) -> Result<Vec<Vec<SupervisedWindow>>, Box<dyn std::error::Error>> {
    let config = GatewayConfig {
        workers,
        max_decode_batch,
        // Admit at most 2 full solves per 4 consecutive windows of each
        // session: with 4 windows per session the soak sheds half its
        // solver load, exercising demotion while staying fast.
        admit_quota: 2,
        admit_window: 4,
        batch_capacity: 32,
        ..GatewayConfig::default()
    };
    let mut gateway = Gateway::new(config)?;
    for stream in streams {
        let shape = &shapes[stream.shape];
        gateway.handshake(stream.id, &shape.system, shape.codec.clone())?;
    }
    // One channel per session, seeded by session id only: every drive —
    // whatever its interleaving — offers each session's transmissions in
    // the same session-local order, so loss patterns are identical.
    let mut channels: Vec<GilbertElliott> = streams
        .iter()
        .map(|s| {
            GilbertElliott::new(
                GilbertElliottConfig::burst_loss(LOSS, BURST_LEN),
                hybridcs_rand::mix(0xC11A ^ s.id),
            )
        })
        .collect();
    let windows = streams[0].frames.len();
    for (s, w) in interleave.order(streams.len(), windows) {
        let stream = &streams[s];
        if let Some(delivered) = channels[s].transmit(&stream.frames[w]) {
            gateway.push(stream.id, &delivered)?;
        }
        // Drain this session's repair cycle at a session-local point so
        // retransmissions consume the channel identically regardless of
        // how other sessions are interleaved around us.
        loop {
            let nacks = gateway.take_nacks(stream.id)?;
            if nacks.is_empty() {
                break;
            }
            for seq in nacks {
                match channels[s].transmit(&stream.frames[seq as usize]) {
                    Some(bytes) => gateway.push(stream.id, &bytes)?,
                    None => gateway.notify_lost(stream.id, seq)?,
                }
            }
        }
    }
    let mut outputs = Vec::with_capacity(streams.len());
    for stream in streams {
        outputs.push(gateway.close(stream.id)?);
    }
    Ok(outputs)
}

/// The soak fleet's objectives. Targets are calibrated to the scenario:
/// admission control deliberately sheds ~half the solver load, so the
/// full-hybrid target is modest, while concealment should stay rare and
/// commits fast.
fn slo_specs() -> Vec<SloSpec> {
    let rung = |r| MetricId::new("supervisor_rung_total", &[("rung", r)]);
    let decoded = || vec![rung("hybrid"), rung("cs_only"), rung("lowres_only")];
    let all = || {
        let mut v = decoded();
        v.push(rung("concealed"));
        v
    };
    vec![
        SloSpec {
            name: "frame_to_commit_p99".to_string(),
            objective: Objective::LatencyUnder {
                histogram: MetricId::new("gateway_frame_to_commit_seconds", &[]),
                threshold_seconds: 30.0,
            },
            target: 0.99,
        },
        SloSpec {
            name: "full_hybrid_rung".to_string(),
            objective: Objective::EventRatio {
                good: vec![rung("hybrid")],
                total: all(),
            },
            target: 0.25,
        },
        SloSpec {
            name: "non_concealed".to_string(),
            objective: Objective::EventRatio {
                good: decoded(),
                total: all(),
            },
            target: 0.90,
        },
    ]
}

/// Picks `count` session ids whose SplitMix64 shard assignments cover the
/// shards evenly, so the throughput bench is load-balanced by
/// construction (the determinism sweep deliberately is not).
fn balanced_ids(count: usize, shards: usize, id_base: u64) -> Vec<u64> {
    let mut per_shard = vec![0usize; shards];
    let target = count.div_ceil(shards);
    let mut ids = Vec::with_capacity(count);
    let mut candidate = id_base;
    while ids.len() < count {
        let shard = usize::try_from(hybridcs_rand::mix(candidate) % shards as u64)
            .expect("shard fits usize");
        if per_shard[shard] < target {
            per_shard[shard] += 1;
            ids.push(candidate);
        }
        candidate += 1;
    }
    ids
}

/// Times one loss-free, every-window-admitted decode of `streams` with
/// the given worker count. Returns (seconds, windows committed).
fn bench_drive(
    shapes: &[Shape],
    streams: &[Stream],
    workers: usize,
) -> Result<(f64, usize), Box<dyn std::error::Error>> {
    let config = GatewayConfig {
        workers,
        admit_quota: u32::MAX,
        batch_capacity: usize::MAX,
        ..GatewayConfig::default()
    };
    let mut gateway = Gateway::new(config)?;
    for stream in streams {
        let shape = &shapes[stream.shape];
        gateway.handshake(stream.id, &shape.system, shape.codec.clone())?;
    }
    let started = Instant::now();
    for stream in streams {
        for bytes in &stream.frames {
            gateway.push(stream.id, bytes)?;
        }
    }
    let report = gateway.flush()?;
    let elapsed = started.elapsed().as_secs_f64();
    for stream in streams {
        gateway.close(stream.id)?;
    }
    Ok((elapsed, report.committed))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sessions = env_usize("HYBRIDCS_SOAK_SESSIONS", 64);
    let windows = env_usize("HYBRIDCS_SOAK_WINDOWS", 4);
    let bench_path = std::env::var("HYBRIDCS_GATEWAY_BENCH_PATH")
        .unwrap_or_else(|_| "BENCH_gateway.json".into());
    let registry = hybridcs::obs::global();

    // Two operator shapes: the paper's default m = 96 and a leaner m = 64.
    let shapes = vec![Shape::build(96)?, Shape::build(64)?];
    let streams = build_streams(&shapes, sessions, windows, 0x1000)?;
    println!(
        "gateway soak: {sessions} sessions x {windows} windows, 2 operator shapes, \
         {:.0}% burst loss",
        LOSS * 100.0
    );

    // --- determinism sweep -------------------------------------------
    let default_batch = GatewayConfig::default().max_decode_batch;
    let reference = drive(&shapes, &streams, 1, default_batch, Interleave::RoundRobin)?;
    let mut runs = 1usize;
    for interleave in [Interleave::RoundRobin, Interleave::SessionMajor] {
        for workers in WORKER_COUNTS {
            if matches!(interleave, Interleave::RoundRobin) && workers == 1 {
                continue; // the reference run
            }
            let outputs = drive(&shapes, &streams, workers, default_batch, interleave)?;
            runs += 1;
            for (i, (got, want)) in outputs.iter().zip(&reference).enumerate() {
                if got != want {
                    eprintln!(
                        "error: session {} diverged with workers={workers}, \
                         interleave={} ({} vs {} windows)",
                        streams[i].id,
                        interleave.name(),
                        got.len(),
                        want.len()
                    );
                    std::process::exit(1);
                }
            }
        }
    }
    // Batched shard flushes must commit bit-identically to per-window
    // decodes: width 1 disables batching entirely, width 3 forces ragged
    // chunks and mid-solve lane retirement in every group.
    for batch_width in [1usize, 3] {
        let outputs = drive(&shapes, &streams, 4, batch_width, Interleave::RoundRobin)?;
        runs += 1;
        for (i, (got, want)) in outputs.iter().zip(&reference).enumerate() {
            if got != want {
                eprintln!(
                    "error: session {} diverged with max_decode_batch={batch_width} \
                     ({} vs {} windows)",
                    streams[i].id,
                    got.len(),
                    want.len()
                );
                std::process::exit(1);
            }
        }
    }
    let shed = registry
        .snapshot()
        .counter_value("gateway_shed_total", &[("kind", "quota")])
        .unwrap_or(0);
    if shed == 0 {
        eprintln!("error: soak never exercised admission shedding");
        std::process::exit(1);
    }
    println!(
        "gateway soak: deterministic across worker counts {WORKER_COUNTS:?}, \
         decode-batch widths [1, 3, {default_batch}] and 2 interleavings \
         ({runs} runs, {} windows/run, {shed} quota sheds total)",
        sessions * windows
    );

    // --- telemetry sweep: latency SLIs with full telemetry on --------
    // Re-run the reference scenario with the flight recorder and spans
    // live: outputs must not move by a bit, and every run contributes a
    // frame-to-commit distribution plus one SLO observation window.
    let mut slo = SloEngine::new(
        slo_specs(),
        BurnPolicy {
            short_windows: 1,
            long_windows: WORKER_COUNTS.len(),
            ..BurnPolicy::default()
        },
    );
    hybridcs::obs::set_enabled(true);
    recorder().clear();
    slo.observe(registry.snapshot());
    for workers in WORKER_COUNTS {
        let before = registry.snapshot();
        let outputs = drive(
            &shapes,
            &streams,
            workers,
            default_batch,
            Interleave::RoundRobin,
        )?;
        if outputs != reference {
            eprintln!("error: telemetry-enabled run diverged with workers={workers}");
            std::process::exit(1);
        }
        let window = registry.snapshot().delta(&before);
        let Some(p) = window
            .histogram_snapshot("gateway_frame_to_commit_seconds", &[])
            .and_then(hybridcs::obs::HistogramSnapshot::percentiles)
        else {
            eprintln!("error: no frame-to-commit samples with workers={workers}");
            std::process::exit(1);
        };
        println!(
            "gateway telemetry: workers={workers} frame-to-commit \
             p50 {:.1} ms, p99 {:.1} ms",
            p.p50 * 1e3,
            p.p99 * 1e3
        );
        let label = workers.to_string();
        registry
            .gauge(
                "gateway_frame_to_commit_p50_seconds",
                &[("workers", &label)],
            )
            .set(p.p50);
        registry
            .gauge(
                "gateway_frame_to_commit_p99_seconds",
                &[("workers", &label)],
            )
            .set(p.p99);
        slo.observe(registry.snapshot());
    }
    hybridcs::obs::set_enabled(false);
    println!(
        "gateway telemetry: outputs bit-identical with telemetry enabled \
         ({} flight events recorded)",
        recorder().recorded()
    );

    // --- SLO evaluation ----------------------------------------------
    let statuses = slo.evaluate();
    assert!(
        statuses.len() >= 2,
        "the soak must evaluate at least two SLOs"
    );
    let mut measured = 0usize;
    for status in &statuses {
        println!("gateway {}", status.summary());
        if status.long_compliance.is_some() {
            measured += 1;
        }
        registry
            .gauge(
                "slo_burn_rate",
                &[("slo", &status.name), ("window", "short")],
            )
            .set(status.short_burn);
        registry
            .gauge(
                "slo_burn_rate",
                &[("slo", &status.name), ("window", "long")],
            )
            .set(status.long_burn);
    }
    if measured < 2 {
        eprintln!("error: fewer than two SLOs saw events ({measured})");
        std::process::exit(1);
    }

    // --- flight recorder: injected anomaly ---------------------------
    // A watchdog capped at two iterations trips on every admitted solve;
    // the dump must latch the anomaly and validate line by line against
    // the export schema.
    let flight_path =
        std::env::var("HYBRIDCS_FLIGHT_PATH").unwrap_or_else(|_| "FLIGHT_gateway.jsonl".into());
    hybridcs::obs::set_enabled(true);
    recorder().clear();
    {
        let mut gateway = Gateway::new(GatewayConfig {
            workers: 4,
            admit_quota: 2,
            admit_window: 4,
            supervisor: SupervisorConfig {
                watchdog: WatchdogConfig {
                    max_iterations: Some(2),
                    ..WatchdogConfig::default()
                },
                ..SupervisorConfig::default()
            },
            ..GatewayConfig::default()
        })?;
        for stream in streams.iter().take(4) {
            let shape = &shapes[stream.shape];
            gateway.handshake(stream.id, &shape.system, shape.codec.clone())?;
            for bytes in &stream.frames {
                gateway.push(stream.id, bytes)?;
            }
        }
        gateway.flush()?;
        for stream in streams.iter().take(4) {
            gateway.close(stream.id)?;
        }
    }
    let dump = recorder().dump_jsonl("gateway_soak");
    hybridcs::obs::set_enabled(false);
    if !recorder().anomalous() {
        eprintln!("error: injected watchdog trips did not latch the anomaly flag");
        std::process::exit(1);
    }
    for line in dump.lines() {
        if let Err(e) = hybridcs::obs::jsonl::validate_line(line) {
            eprintln!("error: invalid flight dump line: {e}\n{line}");
            std::process::exit(1);
        }
    }
    if !dump.contains("\"event\":\"watchdog_trip\"") {
        eprintln!("error: flight dump is missing the injected watchdog trips");
        std::process::exit(1);
    }
    std::fs::write(&flight_path, &dump)?;
    println!(
        "gateway flight: anomaly dump ({} events) schema-valid, written to {flight_path}",
        dump.lines().count().saturating_sub(1)
    );
    recorder().clear();

    // --- throughput bench --------------------------------------------
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let parallel_workers = cores.clamp(1, 8);
    let bench_ids = balanced_ids(
        8.min(sessions.max(1)),
        GatewayConfig::default().shards,
        0x2000,
    );
    let bench_streams =
        build_streams(&shapes, bench_ids.len(), windows.max(4), 0).map(|mut v| {
            for (stream, id) in v.iter_mut().zip(&bench_ids) {
                stream.id = *id;
            }
            v
        })?;
    let (serial_s, committed) = bench_drive(&shapes, &bench_streams, 1)?;
    let (parallel_s, committed_p) = bench_drive(&shapes, &bench_streams, parallel_workers)?;
    assert_eq!(committed, committed_p, "bench runs decode the same windows");
    let speedup = serial_s / parallel_s;
    let throughput = committed as f64 / parallel_s;
    println!(
        "gateway bench: {committed} windows; serial {serial_s:.3}s, \
         {parallel_workers} workers {parallel_s:.3}s -> {throughput:.1} windows/s \
         ({speedup:.2}x single-threaded)"
    );
    if let Some(p) = registry
        .snapshot()
        .histogram_snapshot("gateway_stage_seconds", &[("stage", "solve")])
        .and_then(hybridcs::obs::HistogramSnapshot::percentiles)
    {
        println!(
            "gateway bench: solve latency p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms",
            p.p50 * 1e3,
            p.p90 * 1e3,
            p.p99 * 1e3
        );
    }
    registry
        .gauge("gateway_bench_serial_seconds", &[])
        .set(serial_s);
    registry
        .gauge("gateway_bench_parallel_seconds", &[])
        .set(parallel_s);
    registry
        .gauge("gateway_bench_workers", &[])
        .set(parallel_workers as f64);
    registry.gauge("gateway_bench_speedup", &[]).set(speedup);
    registry
        .gauge("gateway_bench_throughput_windows_per_s", &[])
        .set(throughput);

    // The speedup floor only binds where the silicon can deliver it: 4x
    // needs more than 4 cores once the (tiny) serial ingest/commit share
    // is paid; on exactly 4 cores we accept 3x, below that just report.
    let floor = if cores > 4 {
        4.0
    } else if cores == 4 {
        3.0
    } else {
        0.0
    };
    if speedup < floor {
        eprintln!(
            "error: gateway speedup {speedup:.2}x below the {floor:.1}x floor \
             for a {cores}-core host"
        );
        std::process::exit(1);
    }

    // --- bench report and exposition ---------------------------------
    let snapshot = registry.snapshot();
    let path = std::path::PathBuf::from(bench_path);
    hybridcs::obs::export::write_jsonl(&path, "gateway_soak", &snapshot, &[])?;
    println!("gateway bench: report written to {}", path.display());
    let prom_path =
        std::env::var("HYBRIDCS_PROM_PATH").unwrap_or_else(|_| "METRICS_gateway.prom".into());
    let exposition = hybridcs::obs::render_prometheus(&snapshot);
    if !exposition.contains("# TYPE gateway_frame_to_commit_seconds histogram") {
        eprintln!("error: exposition is missing the frame-to-commit histogram family");
        std::process::exit(1);
    }
    std::fs::write(&prom_path, &exposition)?;
    println!(
        "gateway bench: prometheus exposition ({} lines) written to {prom_path}",
        exposition.lines().count()
    );
    Ok(())
}
