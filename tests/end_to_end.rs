//! End-to-end integration tests spanning the whole workspace: synthetic
//! corpus → hybrid front end → telemetry payload → convex decoder →
//! quality/rate metrics.

use hybridcs::codec::{DecoderAlgorithm, HybridCodec, NormalCsCodec, SystemConfig};
use hybridcs::ecg::{Corpus, CorpusConfig};
use hybridcs::frontend::LowResChannel;
use hybridcs::metrics::{prd, snr_db};
use hybridcs::solver::PdhgOptions;

fn fast_config(measurements: usize) -> SystemConfig {
    SystemConfig {
        measurements,
        algorithm: DecoderAlgorithm::Pdhg(PdhgOptions {
            max_iterations: 800,
            tolerance: 1e-4,
            ..PdhgOptions::default()
        }),
        ..SystemConfig::default()
    }
}

fn one_window(seed: u64) -> Vec<f64> {
    let corpus = Corpus::generate(&CorpusConfig {
        records: 1,
        duration_s: 2.0,
        seed,
    });
    corpus.records()[0].samples_mv()[..512].to_vec()
}

#[test]
fn hybrid_pipeline_reaches_paper_quality_at_cr81() {
    let config = fast_config(96); // CR 81.25%, the paper's "good" point
    let codec = HybridCodec::with_default_training(&config).unwrap();
    let window = one_window(0xA11CE);
    let encoded = codec.encode(&window).unwrap();
    let decoded = codec.decode(&encoded).unwrap();
    let snr = snr_db(&window, &decoded.signal);
    assert!(snr > 15.0, "hybrid SNR {snr} dB at CR 81%");
}

#[test]
fn normal_cs_collapses_at_high_cr_but_hybrid_does_not() {
    // The paper's core claim (Fig. 7): at CR ≈ 97% normal CS fails while
    // hybrid CS stays useful.
    let config = fast_config(16);
    let hybrid = HybridCodec::with_default_training(&config).unwrap();
    let normal = NormalCsCodec::with_default_training(&config).unwrap();
    let window = one_window(0xB0B);
    let encoded = hybrid.encode(&window).unwrap();
    let h = hybrid.decode(&encoded).unwrap();
    let n = normal.decode(&encoded).unwrap();
    let snr_h = snr_db(&window, &h.signal);
    let snr_n = snr_db(&window, &n.signal);
    assert!(snr_h > 14.0, "hybrid must stay useful: {snr_h} dB");
    assert!(snr_n < 8.0, "normal CS should collapse: {snr_n} dB");
}

#[test]
fn decoded_signal_lies_in_every_quantization_cell() {
    let config = fast_config(64);
    let codec = HybridCodec::with_default_training(&config).unwrap();
    let window = one_window(0xCAFE);
    let encoded = codec.encode(&window).unwrap();
    let decoded = codec.decode(&encoded).unwrap();
    let channel = LowResChannel::new(config.lowres_bits).unwrap();
    let (lo, hi) = channel.acquire(&window).bounds();
    for (i, ((v, l), h)) in decoded.signal.iter().zip(&lo).zip(&hi).enumerate() {
        assert!(
            *l - 1e-9 <= *v && *v <= *h + 1e-9,
            "sample {i}: {v} outside [{l}, {h}]"
        );
    }
}

#[test]
fn hybrid_reconstruction_beats_raw_lowres_channel() {
    // The CS channel must add value over just dequantizing the 7-bit path;
    // otherwise the "super-resolution" claim is empty.
    let config = fast_config(96);
    let codec = HybridCodec::with_default_training(&config).unwrap();
    let window = one_window(0xD00D);
    let encoded = codec.encode(&window).unwrap();
    let decoded = codec.decode(&encoded).unwrap();

    let channel = LowResChannel::new(config.lowres_bits).unwrap();
    let frame = channel.acquire(&window);
    // Use cell midpoints for the fairest scalar reconstruction.
    let step = frame.step();
    let lowres_only: Vec<f64> = frame.samples().iter().map(|v| v + 0.5 * step).collect();

    let prd_hybrid = prd(&window, &decoded.signal);
    let prd_lowres = prd(&window, &lowres_only);
    assert!(
        prd_hybrid < prd_lowres,
        "hybrid PRD {prd_hybrid}% must beat raw low-res PRD {prd_lowres}%"
    );
}

#[test]
fn rate_accounting_matches_paper_structure() {
    let config = fast_config(96);
    let codec = HybridCodec::with_default_training(&config).unwrap();
    let window = one_window(0xFADE);
    let encoded = codec.encode(&window).unwrap();

    // CS payload: m × 12 bits exactly.
    assert_eq!(encoded.cs_payload_bits(), 96 * 12);
    // Low-res payload: far below raw n × 7 bits thanks to Huffman coding.
    assert!(encoded.lowres_payload_bits() < 512 * 7 / 2);
    // Net CR sits between "CS alone" and "CS minus a sane overhead".
    let net = encoded.net_compression_ratio(12);
    let cs_only = config.cs_compression_ratio();
    assert!(net < cs_only);
    assert!(net > cs_only - 20.0, "overhead should be modest: net {net}");
}

#[test]
fn admm_decoder_matches_pdhg_decoder_end_to_end() {
    let window = one_window(0xE7E7);
    let base = fast_config(96);
    let pdhg_codec = HybridCodec::with_default_training(&base).unwrap();
    let admm_config = SystemConfig {
        algorithm: DecoderAlgorithm::Admm(hybridcs::solver::AdmmOptions {
            max_iterations: 300,
            ..hybridcs::solver::AdmmOptions::default()
        }),
        ..base
    };
    let admm_codec = HybridCodec::with_default_training(&admm_config).unwrap();
    let encoded = pdhg_codec.encode(&window).unwrap();
    let via_pdhg = pdhg_codec.decode(&encoded).unwrap();
    let via_admm = admm_codec.decode(&encoded).unwrap();
    let snr_p = snr_db(&window, &via_pdhg.signal);
    let snr_a = snr_db(&window, &via_admm.signal);
    assert!(
        (snr_p - snr_a).abs() < 5.0,
        "solver disagreement: PDHG {snr_p} dB vs ADMM {snr_a} dB"
    );
}

#[test]
fn quality_improves_with_more_measurements() {
    let window = one_window(0xF00);
    let mut last_prd = f64::INFINITY;
    for m in [16usize, 64, 192] {
        let codec = HybridCodec::with_default_training(&fast_config(m)).unwrap();
        let encoded = codec.encode(&window).unwrap();
        let decoded = codec.decode(&encoded).unwrap();
        let p = prd(&window, &decoded.signal);
        assert!(
            p < last_prd * 1.15, // allow mild non-monotonicity from solver tolerance
            "PRD should broadly improve with m: m={m} gave {p}% after {last_prd}%"
        );
        last_prd = p;
    }
}

#[test]
fn ectopic_records_still_reconstruct() {
    // PVC-bearing records (every 4th in the corpus) are morphology
    // outliers; the codec must degrade gracefully, not fail.
    let corpus = Corpus::generate(&CorpusConfig {
        records: 4,
        duration_s: 3.0,
        seed: 0x9,
    });
    let record = &corpus.records()[3]; // k % 4 == 3 carries PVCs
    let config = fast_config(96);
    let codec = HybridCodec::with_default_training(&config).unwrap();
    let window: Vec<f64> = record.samples_mv()[..512].to_vec();
    let encoded = codec.encode(&window).unwrap();
    let decoded = codec.decode(&encoded).unwrap();
    let snr = snr_db(&window, &decoded.signal);
    assert!(snr > 12.0, "PVC window SNR {snr} dB");
}
