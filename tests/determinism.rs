//! Reproducibility tests: every stochastic element of the system is seeded,
//! so the full pipeline — corpus, sensing, coding, decoding — must be
//! bit-identical across runs and across independently constructed
//! encoder/decoder pairs (the "two devices, one seed" deployment story).

use hybridcs::codec::{HybridCodec, SystemConfig};
use hybridcs::coding::HuffmanCodebook;
use hybridcs::ecg::{Corpus, CorpusConfig};
use hybridcs::frontend::{Rmpi, RmpiConfig, SensingMatrix};

#[test]
fn corpus_is_bit_reproducible() {
    let config = CorpusConfig {
        records: 3,
        duration_s: 2.0,
        seed: 77,
    };
    assert_eq!(Corpus::generate(&config), Corpus::generate(&config));
}

#[test]
fn sensing_matrix_regenerates_from_seed_alone() {
    // The decoder never receives Φ; it rebuilds it from (m, n, seed).
    let a = SensingMatrix::bernoulli(64, 512, 0xDEAD).unwrap();
    let b = SensingMatrix::bernoulli(64, 512, 0xDEAD).unwrap();
    let x: Vec<f64> = (0..512).map(|i| (i as f64 * 0.01).sin()).collect();
    assert_eq!(a.apply(&x), b.apply(&x));
}

#[test]
fn independently_built_codec_pairs_interoperate() {
    // "Sensor firmware" and "receiver software" built separately from the
    // same SystemConfig must round-trip each other's payloads.
    let config = SystemConfig {
        measurements: 64,
        ..SystemConfig::default()
    };
    let sensor = HybridCodec::with_default_training(&config).unwrap();
    let receiver = HybridCodec::with_default_training(&config).unwrap();

    let corpus = Corpus::generate(&CorpusConfig {
        records: 1,
        duration_s: 2.0,
        seed: 3,
    });
    let window = &corpus.records()[0].samples_mv()[..512];
    let packet = sensor.encode(window).unwrap();
    let decoded_far = receiver.decode(&packet).unwrap();
    let decoded_near = sensor.decode(&packet).unwrap();
    assert_eq!(decoded_far.signal, decoded_near.signal);
}

#[test]
fn full_pipeline_is_deterministic() {
    let config = SystemConfig {
        measurements: 48,
        ..SystemConfig::default()
    };
    let corpus = Corpus::generate(&CorpusConfig {
        records: 1,
        duration_s: 2.0,
        seed: 8,
    });
    let window = &corpus.records()[0].samples_mv()[..512];
    let run = || {
        let codec = HybridCodec::with_default_training(&config).unwrap();
        let encoded = codec.encode(window).unwrap();
        codec.decode(&encoded).unwrap().signal
    };
    assert_eq!(run(), run());
}

#[test]
fn codebook_survives_flash_roundtrip() {
    // Offline training → serialize → "flash" → deserialize must preserve
    // the exact code assignment (the node and receiver share bits, not
    // objects).
    let windows = hybridcs::codec::experiment::default_training_windows(512);
    let codec = hybridcs::codec::train_lowres_codec(7, &windows).unwrap();
    let flashed = codec.codebook().serialize();
    let reloaded = HuffmanCodebook::deserialize(&flashed).unwrap();
    assert_eq!(&reloaded, codec.codebook());
}

#[test]
fn rmpi_acquisition_is_deterministic_per_seed() {
    let rmpi = Rmpi::new(RmpiConfig {
        channels: 32,
        window: 256,
        seed: 5,
        amplifier_noise_rms: 0.02,
        ..RmpiConfig::default()
    })
    .unwrap();
    let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).cos()).collect();
    assert_eq!(rmpi.acquire(&x, 99).unwrap(), rmpi.acquire(&x, 99).unwrap());
    assert_ne!(rmpi.acquire(&x, 99).unwrap(), rmpi.acquire(&x, 98).unwrap());
}

#[test]
fn different_seeds_give_different_sensing() {
    let config_a = SystemConfig {
        seed: 1,
        ..SystemConfig::default()
    };
    let config_b = SystemConfig {
        seed: 2,
        ..SystemConfig::default()
    };
    let a = HybridCodec::with_default_training(&config_a).unwrap();
    let b = HybridCodec::with_default_training(&config_b).unwrap();
    let window = vec![0.5; 512];
    let ea = a.encode(&window).unwrap();
    let eb = b.encode(&window).unwrap();
    assert_ne!(ea.measurements, eb.measurements);
}
