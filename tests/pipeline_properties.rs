//! Property-based tests over the acquisition/coding half of the pipeline,
//! on the in-repo `hybridcs_rand::check` harness (≥ 64 seeded cases per
//! property). (The convex decoder is too slow for per-case execution; its
//! invariants are covered by the deterministic integration tests.)

use hybridcs::coding::{HuffmanCodebook, LowResCodec};
use hybridcs::frontend::{LowResChannel, MeasurementQuantizer, SensingMatrix};
use hybridcs::linalg::vector;
use hybridcs_rand::check::{
    bool_any, check, f64_in, u32_in, u64_in, usize_in, vec_len, zip2, zip4, Gen,
};
use hybridcs_rand::{prop_assert, prop_assert_eq};

/// Millivolt samples within the MIT-BIH span (strict interior to avoid
/// saturation-edge ambiguity).
fn mv_signal(len: usize) -> Gen<Vec<f64>> {
    vec_len(f64_in(-5.0, 5.0), len)
}

/// The low-resolution channel's cell bounds always contain the signal.
#[test]
fn lowres_bounds_always_contain_signal() {
    check(
        "lowres_bounds_always_contain_signal",
        &zip2(mv_signal(64), u32_in(3, 11)),
        |(x, bits)| {
            let channel = LowResChannel::new(*bits).unwrap();
            let frame = channel.acquire(x);
            let (lo, hi) = frame.bounds();
            for ((v, l), h) in x.iter().zip(&lo).zip(&hi) {
                prop_assert!(*l - 1e-9 <= *v && *v <= *h + 1e-9, "{v} outside [{l}, {h}]");
            }
            Ok(())
        },
    );
}

/// Quantize → entropy-code → decode → dequantize is lossless at the
/// code level for arbitrary in-span signals (escape path included).
#[test]
fn lowres_codec_roundtrip_is_lossless() {
    check(
        "lowres_codec_roundtrip_is_lossless",
        &zip2(mv_signal(128), u32_in(3, 11)),
        |(x, bits)| {
            let channel = LowResChannel::new(*bits).unwrap();
            let frame = channel.acquire(x);
            // Train on a *different* deterministic ramp so escapes get hit.
            let training: Vec<u32> = (0..256u32).map(|i| (i / 8) % (1 << bits)).collect();
            let book = HuffmanCodebook::train_from_code_sequences([&training[..]]).unwrap();
            let codec = LowResCodec::new(book, *bits).unwrap();
            let payload = codec.encode(frame.codes()).unwrap();
            let decoded = codec.decode(&payload, frame.len()).unwrap();
            prop_assert_eq!(decoded, frame.codes().to_vec());
            Ok(())
        },
    );
}

/// Quantization error of the low-res channel is bounded by one step.
#[test]
fn lowres_error_bounded_by_step() {
    check(
        "lowres_error_bounded_by_step",
        &zip2(mv_signal(64), u32_in(3, 11)),
        |(x, bits)| {
            let channel = LowResChannel::new(*bits).unwrap();
            let frame = channel.acquire(x);
            for (v, s) in x.iter().zip(frame.samples()) {
                prop_assert!((v - s).abs() <= channel.step() + 1e-9, "{v} vs {s}");
            }
            Ok(())
        },
    );
}

/// Sensing is linear: Φ(ax + y) == a·Φx + Φy.
#[test]
fn sensing_is_linear() {
    check(
        "sensing_is_linear",
        &zip4(
            mv_signal(64),
            mv_signal(64),
            f64_in(-3.0, 3.0),
            u64_in(0, 1000),
        ),
        |(x, y, a, seed)| {
            let phi = SensingMatrix::bernoulli(16, 64, *seed).unwrap();
            let mixed: Vec<f64> = x.iter().zip(y).map(|(xi, yi)| a * xi + yi).collect();
            let lhs = phi.apply(&mixed);
            let mut rhs = phi.apply(y);
            vector::axpy(*a, &phi.apply(x), &mut rhs);
            for (l, r) in lhs.iter().zip(&rhs) {
                prop_assert!((l - r).abs() <= 1e-9 * r.abs().max(1.0), "{l} vs {r}");
            }
            Ok(())
        },
    );
}

/// The adjoint identity holds for both sensing-matrix families.
#[test]
fn sensing_adjoint_identity() {
    check(
        "sensing_adjoint_identity",
        &zip4(
            mv_signal(64),
            vec_len(f64_in(-3.0, 3.0), 16),
            u64_in(0, 1000),
            bool_any(),
        ),
        |(x, y, seed, sparse)| {
            let phi = if *sparse {
                SensingMatrix::sparse_binary(16, 64, 4, *seed).unwrap()
            } else {
                SensingMatrix::bernoulli(16, 64, *seed).unwrap()
            };
            let lhs = vector::dot(&phi.apply(x), y);
            let rhs = vector::dot(x, &phi.apply_adjoint(y));
            prop_assert!(
                (lhs - rhs).abs() <= 1e-9 * lhs.abs().max(1.0),
                "{lhs} vs {rhs}"
            );
            Ok(())
        },
    );
}

/// Measurement digitization error per coordinate never exceeds half a
/// step (mid-tread), and the σ budget bounds the total error for
/// in-scale measurements.
#[test]
fn measurement_digitizer_error_bounds() {
    check(
        "measurement_digitizer_error_bounds",
        &vec_len(f64_in(-2.0, 2.0), 32),
        |y| {
            let mq = MeasurementQuantizer::new(12, 2.5).unwrap();
            let yq = mq.digitize(y);
            for (a, b) in y.iter().zip(&yq) {
                prop_assert!((a - b).abs() <= mq.step() / 2.0 + 1e-12, "{a} vs {b}");
            }
            let err = vector::dist2(y, &yq);
            // Worst case is √m·d/2 = √3·σ under the uniform model.
            prop_assert!(err <= mq.noise_sigma(32) * 3f64.sqrt() + 1e-12);
            Ok(())
        },
    );
}

/// Net compression accounting is consistent: total bits = CS bits +
/// low-res bits, and CR follows Eq. (3).
#[test]
fn rate_accounting_is_consistent() {
    check(
        "rate_accounting_is_consistent",
        &zip2(mv_signal(512), usize_in(8, 128)),
        |(x, m)| {
            let config = hybridcs::codec::SystemConfig {
                measurements: *m,
                ..hybridcs::codec::SystemConfig::default()
            };
            let codec = hybridcs::codec::HybridCodec::with_default_training(&config).unwrap();
            let encoded = codec.encode(x).unwrap();
            prop_assert_eq!(encoded.cs_payload_bits(), m * 12);
            prop_assert_eq!(
                encoded.total_bits(),
                encoded.cs_payload_bits() + encoded.lowres_payload_bits()
            );
            let net = encoded.net_compression_ratio(12);
            let expected = (512.0 * 12.0 - encoded.total_bits() as f64) / (512.0 * 12.0) * 100.0;
            prop_assert!((net - expected).abs() < 1e-9, "{net} vs {expected}");
            Ok(())
        },
    );
}
