//! Golden end-to-end regression test: one fixed-seed window through the
//! full hybrid pipeline (RMPI measurements + low-res channel →
//! box-constrained convex recovery), with the resulting quality pinned.
//!
//! Unlike the threshold tests in `end_to_end.rs` ("SNR > 15 dB"), this
//! pins the *exact operating point*: every stage — the in-repo PRNG
//! stream, the sensing matrix, quantizers, entropy coder, and the PDHG
//! iterate sequence — is deterministic, so PRD/SNR are reproducible to
//! floating-point noise. Any drift beyond the tolerance means an
//! algorithmic change, which must be reviewed and re-pinned deliberately.

use hybridcs::codec::{DecoderAlgorithm, HybridCodec, SystemConfig};
use hybridcs::ecg::{Corpus, CorpusConfig};
use hybridcs::metrics::{prd, snr_db};
use hybridcs::solver::PdhgOptions;

/// Golden values measured at pin time (see assertions for tolerance).
const GOLDEN_PRD_PERCENT: f64 = 7.485311355642;
const GOLDEN_SNR_DB: f64 = 22.515802604548;

/// Absolute drift budget. The pipeline is bit-deterministic on one
/// platform; the slack only covers libm (`sin`/`exp`/`ln`) differences
/// across targets. Anything past 1e-6 is an algorithmic change.
const TOLERANCE: f64 = 1e-6;

#[test]
fn golden_hybrid_operating_point_is_pinned() {
    let config = SystemConfig {
        measurements: 96, // CR 81.25%, the paper's headline point
        algorithm: DecoderAlgorithm::Pdhg(PdhgOptions {
            max_iterations: 800,
            tolerance: 1e-4,
            ..PdhgOptions::default()
        }),
        ..SystemConfig::default()
    };
    let corpus = Corpus::generate(&CorpusConfig {
        records: 1,
        duration_s: 2.0,
        seed: 0x601D,
    });
    let window: Vec<f64> = corpus.records()[0].samples_mv()[..512].to_vec();

    let codec = HybridCodec::with_default_training(&config).unwrap();
    let encoded = codec.encode(&window).unwrap();
    let decoded = codec.decode(&encoded).unwrap();

    let got_prd = prd(&window, &decoded.signal);
    let got_snr = snr_db(&window, &decoded.signal);
    assert!(
        (got_prd - GOLDEN_PRD_PERCENT).abs() < TOLERANCE,
        "PRD drifted from the golden operating point: got {got_prd:.12}%, \
         pinned {GOLDEN_PRD_PERCENT}% — if the change is intentional, re-pin"
    );
    assert!(
        (got_snr - GOLDEN_SNR_DB).abs() < TOLERANCE,
        "SNR drifted from the golden operating point: got {got_snr:.12} dB, \
         pinned {GOLDEN_SNR_DB} dB — if the change is intentional, re-pin"
    );
    // Sanity: the pinned point itself must sit in the paper's quality
    // band for CR ≈ 81% ("good" reconstruction is PRD < 9%).
    const { assert!(GOLDEN_PRD_PERCENT < 9.0) };
    const { assert!(GOLDEN_SNR_DB > 15.0) };
}
