//! Golden end-to-end regression test: one fixed-seed window through the
//! full hybrid pipeline (RMPI measurements + low-res channel →
//! box-constrained convex recovery), with the resulting quality pinned.
//!
//! Unlike the threshold tests in `end_to_end.rs` ("SNR > 15 dB"), this
//! pins the *exact operating point*: every stage — the in-repo PRNG
//! stream, the sensing matrix, quantizers, entropy coder, and the PDHG
//! iterate sequence — is deterministic, so PRD/SNR are reproducible to
//! floating-point noise. Any drift beyond the tolerance means an
//! algorithmic change, which must be reviewed and re-pinned deliberately.

use hybridcs::codec::{DecoderAlgorithm, HybridCodec, SystemConfig};
use hybridcs::ecg::{Corpus, CorpusConfig};
use hybridcs::metrics::{prd, snr_db};
use hybridcs::solver::{NoopObserver, PdhgOptions, SolverWorkspace};

/// Golden values measured at pin time (see assertions for tolerance).
const GOLDEN_PRD_PERCENT: f64 = 7.485311355642;
const GOLDEN_SNR_DB: f64 = 22.515802604548;

/// Absolute drift budget. The pipeline is bit-deterministic on one
/// platform; the slack only covers libm (`sin`/`exp`/`ln`) differences
/// across targets. Anything past 1e-6 is an algorithmic change.
const TOLERANCE: f64 = 1e-6;

#[test]
fn golden_hybrid_operating_point_is_pinned() {
    let config = SystemConfig {
        measurements: 96, // CR 81.25%, the paper's headline point
        algorithm: DecoderAlgorithm::Pdhg(PdhgOptions {
            max_iterations: 800,
            tolerance: 1e-4,
            ..PdhgOptions::default()
        }),
        ..SystemConfig::default()
    };
    let corpus = Corpus::generate(&CorpusConfig {
        records: 1,
        duration_s: 2.0,
        seed: 0x601D,
    });
    let window: Vec<f64> = corpus.records()[0].samples_mv()[..512].to_vec();

    let codec = HybridCodec::with_default_training(&config).unwrap();
    let encoded = codec.encode(&window).unwrap();
    let decoded = codec.decode(&encoded).unwrap();

    let got_prd = prd(&window, &decoded.signal);
    let got_snr = snr_db(&window, &decoded.signal);
    assert!(
        (got_prd - GOLDEN_PRD_PERCENT).abs() < TOLERANCE,
        "PRD drifted from the golden operating point: got {got_prd:.12}%, \
         pinned {GOLDEN_PRD_PERCENT}% — if the change is intentional, re-pin"
    );
    assert!(
        (got_snr - GOLDEN_SNR_DB).abs() < TOLERANCE,
        "SNR drifted from the golden operating point: got {got_snr:.12} dB, \
         pinned {GOLDEN_SNR_DB} dB — if the change is intentional, re-pin"
    );
    // Sanity: the pinned point itself must sit in the paper's quality
    // band for CR ≈ 81% ("good" reconstruction is PRD < 9%).
    const { assert!(GOLDEN_PRD_PERCENT < 9.0) };
    const { assert!(GOLDEN_SNR_DB > 15.0) };
}

/// The zero-allocation hot path must sit on the *same* golden operating
/// point: `decode_workspace` with a warm, reused arena is required to be
/// bit-identical to the convenience `decode` (which builds a fresh
/// workspace per call), so the PRD/SNR pins above cover it too. This test
/// makes that containment explicit — a fast-path-only regression (buffer
/// reuse leaking state between solves, a kernel drifting from the grouped
/// reference order) breaks here even if the fresh-workspace path still
/// matches the pins.
#[test]
fn golden_point_survives_the_workspace_hot_path() {
    let config = SystemConfig {
        measurements: 96,
        algorithm: DecoderAlgorithm::Pdhg(PdhgOptions {
            max_iterations: 800,
            tolerance: 1e-4,
            ..PdhgOptions::default()
        }),
        ..SystemConfig::default()
    };
    let corpus = Corpus::generate(&CorpusConfig {
        records: 1,
        duration_s: 2.0,
        seed: 0x601D,
    });
    let window: Vec<f64> = corpus.records()[0].samples_mv()[..512].to_vec();

    let codec = HybridCodec::with_default_training(&config).unwrap();
    let encoded = codec.encode(&window).unwrap();
    let fresh = codec.decode(&encoded).unwrap();

    // Decode twice through one arena: the second pass runs entirely on
    // recycled buffers (the steady state the allocation gate measures).
    let mut ws = SolverWorkspace::new();
    let decoder = codec.decoder();
    let _warm = decoder
        .decode_workspace(&encoded, true, &mut NoopObserver, &mut ws)
        .unwrap();
    let reused = decoder
        .decode_workspace(&encoded, true, &mut NoopObserver, &mut ws)
        .unwrap();

    for (i, (a, b)) in fresh.signal.iter().zip(&reused.signal).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "warm workspace decode diverged from fresh decode at sample {i}: {a} vs {b}"
        );
    }
    let got_prd = prd(&window, &reused.signal);
    let got_snr = snr_db(&window, &reused.signal);
    assert!(
        (got_prd - GOLDEN_PRD_PERCENT).abs() < TOLERANCE,
        "workspace-path PRD drifted: got {got_prd:.12}%, pinned {GOLDEN_PRD_PERCENT}%"
    );
    assert!(
        (got_snr - GOLDEN_SNR_DB).abs() < TOLERANCE,
        "workspace-path SNR drifted: got {got_snr:.12} dB, pinned {GOLDEN_SNR_DB} dB"
    );
}
