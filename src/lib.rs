//! # hybridcs — a hybrid compressed-sensing ECG front end
//!
//! A from-scratch Rust reproduction of *Mamaghanian & Vandergheynst,
//! "Ultra-Low-Power ECG Front-End Design based on Compressed Sensing"*
//! (DATE 2015): a two-path ECG acquisition system in which a handful of
//! analog compressed-sensing channels (an RMPI) are assisted by an
//! ultra-low-power low-resolution ADC whose quantization cells become hard
//! box constraints in the convex recovery program.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`codec`] | `hybridcs-core` | the hybrid encoder/decoder and experiment runner |
//! | [`ecg`] | `hybridcs-ecg` | synthetic MIT-BIH-like corpus |
//! | [`frontend`] | `hybridcs-frontend` | ADCs, quantizers, RMPI, sensing matrices |
//! | [`coding`] | `hybridcs-coding` | bitstreams, delta coding, canonical Huffman |
//! | [`solver`] | `hybridcs-solver` | PDHG, ADMM, FISTA, OMP, CoSaMP, IHT, solver watchdog |
//! | [`faults`] | `hybridcs-faults` | Gilbert–Elliott channel, sensor faults, ARQ retry queue |
//! | [`gateway`] | `hybridcs-gateway` | sharded multi-patient ingest and batched-decode service |
//! | [`net`] | `hybridcs-net` | non-blocking socket ingest tier: wire protocol, server, device client |
//! | [`dsp`] | `hybridcs-dsp` | orthonormal wavelets, filters |
//! | [`metrics`] | `hybridcs-metrics` | PRD/SNR/CR, box-plot stats |
//! | [`obs`] | `hybridcs-obs` | metrics registry, spans, convergence traces, JSONL export |
//! | [`power`] | `hybridcs-power` | the paper's analytical power models |
//! | [`linalg`] | `hybridcs-linalg` | dense kernels, Cholesky/QR/CG |
//!
//! # Quickstart
//!
//! ```
//! use hybridcs::codec::{HybridCodec, SystemConfig};
//! use hybridcs::ecg::{EcgGenerator, GeneratorConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SystemConfig::default(); // 512-sample windows, m = 96
//! let codec = HybridCodec::with_default_training(&config)?;
//!
//! let generator = EcgGenerator::new(GeneratorConfig::normal_sinus())?;
//! let strip = generator.generate(2.0, 7);
//! let window = &strip[..config.window];
//!
//! let encoded = codec.encode(window)?;
//! let decoded = codec.decode(&encoded)?;
//! let snr = hybridcs::metrics::snr_db(window, &decoded.signal);
//! println!("CR {:.1}% -> SNR {snr:.1} dB", config.cs_compression_ratio());
//! assert!(snr > 10.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hybridcs_coding as coding;
pub use hybridcs_core as codec;
pub use hybridcs_dsp as dsp;
pub use hybridcs_ecg as ecg;
pub use hybridcs_faults as faults;
pub use hybridcs_frontend as frontend;
pub use hybridcs_gateway as gateway;
pub use hybridcs_linalg as linalg;
pub use hybridcs_metrics as metrics;
pub use hybridcs_net as net;
pub use hybridcs_obs as obs;
pub use hybridcs_power as power;
pub use hybridcs_solver as solver;
