#!/usr/bin/env bash
# Tier-1 verification entry point (see ROADMAP.md).
#
# Fully hermetic: the workspace has zero external crate dependencies, so
# every step runs with the network hard-disabled. If any step here needs
# the network, that is itself a regression.
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release --offline (all targets)"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> verifying Cargo.lock stays registry-free"
if grep -E '^source = ' Cargo.lock; then
    echo "error: Cargo.lock references an external registry source" >&2
    echo "       (the workspace must stay hermetic — path deps only)" >&2
    exit 1
fi

echo "ci: all checks passed"
