#!/usr/bin/env bash
# Tier-1 verification entry point (see ROADMAP.md).
#
# Fully hermetic: the workspace has zero external crate dependencies, so
# every step runs with the network hard-disabled. If any step here needs
# the network, that is itself a regression.
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release --offline (all targets)"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> SIMD kernel pins on both tiers (natural dispatch, then HYBRIDCS_FORCE_SCALAR=1)"
# The 0-ULP twin tests compare the AVX2 and scalar kernel bodies directly;
# re-running the linalg + solver suites with the scalar pin additionally
# drives every batch bit-identity test through the fallback dispatch path
# that CI would otherwise only exercise on non-AVX2 hosts.
cargo test -q --release --offline -p hybridcs-linalg -p hybridcs-solver
HYBRIDCS_FORCE_SCALAR=1 \
    cargo test -q --release --offline -p hybridcs-linalg -p hybridcs-solver

echo "==> observability round-trip (obs-enabled quickstart + JSONL check)"
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
HYBRIDCS_OBS=1 HYBRIDCS_OBS_DIR="$OBS_TMP" \
    cargo run -q --release --offline --example quickstart
if [ ! -s "$OBS_TMP/quickstart.jsonl" ]; then
    echo "error: obs-enabled quickstart did not export quickstart.jsonl" >&2
    exit 1
fi
HYBRIDCS_OBS_CHECK="$OBS_TMP/quickstart.jsonl" \
    cargo test -q --release --offline -p hybridcs-obs --test jsonl_schema

echo "==> fault-injection smoke run (seeded GE burst loss through the decode ladder)"
# The example exits non-zero if any window fails to produce a finite
# reconstruction or SNR does not degrade monotonically with loss; also
# assert the 100% per-window output rate line and the JSONL rung export.
RESILIENCE_OUT="$(HYBRIDCS_OBS=1 HYBRIDCS_OBS_DIR="$OBS_TMP" \
    cargo run -q --release --offline --example resilience_report)"
if ! grep -q "every window at every loss rate produced a finite reconstruction" \
    <<<"$RESILIENCE_OUT"; then
    echo "error: resilience_report did not certify full per-window output" >&2
    exit 1
fi
if [ ! -s "$OBS_TMP/resilience_report.jsonl" ]; then
    echo "error: resilience_report did not export ladder-rung counters as JSONL" >&2
    exit 1
fi
if ! grep -q "supervisor_rung_total" "$OBS_TMP/resilience_report.jsonl"; then
    echo "error: resilience_report JSONL is missing supervisor_rung_total" >&2
    exit 1
fi

echo "==> gateway soak (8 sessions: determinism across worker counts + interleavings)"
# The soak exits non-zero if any session's output differs across worker
# counts {1,4,8} or the two frame interleavings, if admission shedding
# never fired, or (on multi-core hosts) if batched decode fails its
# speedup floor. Its bench report must pass the same JSONL schema
# checker as every other observability export.
GATEWAY_BENCH="$OBS_TMP/BENCH_gateway.json"
FLIGHT_DUMP="$OBS_TMP/FLIGHT_gateway.jsonl"
PROM_OUT="$OBS_TMP/METRICS_gateway.prom"
SOAK_OUT="$(HYBRIDCS_SOAK_SESSIONS=8 HYBRIDCS_GATEWAY_BENCH_PATH="$GATEWAY_BENCH" \
    HYBRIDCS_FLIGHT_PATH="$FLIGHT_DUMP" HYBRIDCS_PROM_PATH="$PROM_OUT" \
    cargo run -q --release --offline --example gateway_soak)"
if ! grep -q "deterministic across worker counts" <<<"$SOAK_OUT"; then
    echo "error: gateway_soak did not certify deterministic outputs" >&2
    exit 1
fi
if ! grep -q "bit-identical with telemetry enabled" <<<"$SOAK_OUT"; then
    echo "error: gateway_soak did not certify telemetry-on bit-identity" >&2
    exit 1
fi
if [ "$(grep -c '^gateway slo ' <<<"$SOAK_OUT")" -lt 2 ]; then
    echo "error: gateway_soak evaluated fewer than two SLOs" >&2
    exit 1
fi
if [ ! -s "$GATEWAY_BENCH" ]; then
    echo "error: gateway_soak did not write BENCH_gateway.json" >&2
    exit 1
fi
HYBRIDCS_OBS_CHECK="$GATEWAY_BENCH" \
    cargo test -q --release --offline -p hybridcs-obs --test jsonl_schema
# The anomaly flight dump must exist, carry the injected watchdog trips,
# and pass the same line-by-line schema checker as every JSONL export.
if [ ! -s "$FLIGHT_DUMP" ]; then
    echo "error: gateway_soak did not write the anomaly flight dump" >&2
    exit 1
fi
if ! grep -q '"event":"watchdog_trip"' "$FLIGHT_DUMP"; then
    echo "error: flight dump is missing the injected watchdog trips" >&2
    exit 1
fi
HYBRIDCS_OBS_CHECK="$FLIGHT_DUMP" \
    cargo test -q --release --offline -p hybridcs-obs --test jsonl_schema
if ! grep -q '^# TYPE gateway_frame_to_commit_seconds histogram' "$PROM_OUT"; then
    echo "error: prometheus exposition is missing frame-to-commit latency" >&2
    exit 1
fi

echo "==> telemetry-overhead gate (flight recorder + spans on vs off, <=5%)"
# The bin pushes the same frame stream through identical gateways with
# telemetry off and on, asserts bit-identical decodes, and exits non-zero
# if min-of-N overhead exceeds the limit. Its report is schema-checked.
OBS_BENCH="$OBS_TMP/BENCH_obs.json"
OVERHEAD_OUT="$(HYBRIDCS_OBS_BENCH_PATH="$OBS_BENCH" \
    cargo run -q --release --offline -p hybridcs-bench --bin obs_overhead)"
if ! grep -q "obs overhead: OK" <<<"$OVERHEAD_OUT"; then
    echo "error: obs_overhead did not pass its gate" >&2
    exit 1
fi
if [ ! -s "$OBS_BENCH" ]; then
    echo "error: obs_overhead did not write BENCH_obs.json" >&2
    exit 1
fi
HYBRIDCS_OBS_CHECK="$OBS_BENCH" \
    cargo test -q --release --offline -p hybridcs-obs --test jsonl_schema

echo "==> decode-throughput gates (zero-alloc hot path + speedup floors + batched K-sweep)"
# The example runs under a counting global allocator and exits non-zero if
# a span of steady-state workspace solves (serial or batched) performs any
# heap allocation, if the optimized decode path fails its 2x throughput
# floor over the retained pre-optimization baseline, if the best
# batched+SIMD configuration fails its 3x floor (AVX2 hosts), or if any
# batched configuration is not bit-identical to the serial decode. Its
# bench report must pass the shared JSONL schema checker; the K-sweep
# throughput lines are republished below so CI logs carry the numbers.
DECODE_BENCH="$OBS_TMP/BENCH_decode.json"
DECODE_OUT="$(HYBRIDCS_DECODE_WINDOWS=8 HYBRIDCS_DECODE_BENCH_PATH="$DECODE_BENCH" \
    cargo run -q --release --offline --example decode_throughput)"
if ! grep -q "decode bench: OK" <<<"$DECODE_OUT"; then
    echo "error: decode_throughput did not pass its gates" >&2
    exit 1
fi
if ! grep -q "0 heap allocations" <<<"$DECODE_OUT"; then
    echo "error: decode_throughput did not certify a zero-allocation hot path" >&2
    exit 1
fi
if [ "$(grep -c '^decode bench: batched k = ' <<<"$DECODE_OUT")" -lt 4 ]; then
    echo "error: decode_throughput swept fewer than four batched configurations" >&2
    exit 1
fi
if ! grep -q "batched configurations bit-identical to the serial decode" <<<"$DECODE_OUT"; then
    echo "error: decode_throughput did not certify batched bit-identity" >&2
    exit 1
fi
grep '^decode bench: batched k = ' <<<"$DECODE_OUT"
if [ ! -s "$DECODE_BENCH" ]; then
    echo "error: decode_throughput did not write BENCH_decode.json" >&2
    exit 1
fi
HYBRIDCS_OBS_CHECK="$DECODE_BENCH" \
    cargo test -q --release --offline -p hybridcs-obs --test jsonl_schema

echo "==> crash-recovery gate (kill-point sweep + journal-overhead ceiling)"
# The example journals a lossy multi-session run, kills the store at a
# sweep of record indices under every tail-fault flavour, and exits
# non-zero if any recovery diverges from the durable-prefix oracle, a
# corrupt tail goes undetected, no recovery restores a checkpoint, or the
# journal costs more than its wall-clock ceiling on the solve-heavy
# throughput workload. Its bench report is schema-checked like the rest.
RECOVERY_BENCH="$OBS_TMP/BENCH_recovery.json"
CRASH_OUT="$(HYBRIDCS_CRASH_SESSIONS=8 HYBRIDCS_CRASH_KILLPOINTS=4 \
    HYBRIDCS_RECOVERY_BENCH_PATH="$RECOVERY_BENCH" \
    cargo run -q --release --offline --example crash_recovery)"
if ! grep -q "crash recovery: OK" <<<"$CRASH_OUT"; then
    echo "error: crash_recovery did not pass its gates" >&2
    exit 1
fi
if [ "$(grep -c "state equivalent" <<<"$CRASH_OUT")" -lt 4 ]; then
    echo "error: crash_recovery audited fewer than four recoveries" >&2
    exit 1
fi
if ! grep -q "outputs bit-identical" <<<"$CRASH_OUT"; then
    echo "error: crash_recovery did not certify journal-on bit-identity" >&2
    exit 1
fi
if [ ! -s "$RECOVERY_BENCH" ]; then
    echo "error: crash_recovery did not write BENCH_recovery.json" >&2
    exit 1
fi
HYBRIDCS_OBS_CHECK="$RECOVERY_BENCH" \
    cargo test -q --release --offline -p hybridcs-obs --test jsonl_schema

echo "==> ingest soak gate (1000 concurrent loopback sessions + determinism audit)"
# The example exits non-zero unless every one of the 1000 scale-phase
# sessions (a quarter through the faulty radio) and every
# fidelity-phase session completes AND the recorded gateway-call log —
# replayed in both recorded and session-major order into a fresh
# in-process gateway — reproduces the live socket outputs bit-for-bit.
# 10k+ sessions work locally via HYBRIDCS_INGEST_SESSIONS; CI pins the
# acceptance floor. Its bench report and flight dump are schema-checked.
INGEST_BENCH="$OBS_TMP/BENCH_ingest.json"
INGEST_OUT="$(HYBRIDCS_INGEST_SESSIONS=1000 \
    HYBRIDCS_INGEST_BENCH_PATH="$INGEST_BENCH" \
    HYBRIDCS_INGEST_FLIGHT_PATH="$OBS_TMP/FLIGHT_ingest.jsonl" \
    HYBRIDCS_INGEST_PROM_PATH="$OBS_TMP/METRICS_ingest.prom" \
    cargo run -q --release --offline --example ingest_soak)"
if ! grep -q "ingest scale: 1000 concurrent sessions" <<<"$INGEST_OUT"; then
    echo "error: ingest_soak did not sustain 1000 concurrent sessions" >&2
    exit 1
fi
if [ "$(grep -c "bit-identical to in-process replay (recorded + session-major)" \
    <<<"$INGEST_OUT")" -lt 2 ]; then
    echo "error: ingest_soak did not certify both determinism audits" >&2
    exit 1
fi
if ! grep -q "events schema-valid" <<<"$INGEST_OUT"; then
    echo "error: ingest_soak did not validate its flight dump" >&2
    exit 1
fi
if [ ! -s "$INGEST_BENCH" ]; then
    echo "error: ingest_soak did not write BENCH_ingest.json" >&2
    exit 1
fi
HYBRIDCS_OBS_CHECK="$INGEST_BENCH" \
    cargo test -q --release --offline -p hybridcs-obs --test jsonl_schema

echo "==> journal + wire fuzz (deep property pass over mutated and random streams)"
# The workspace test run above already covers these properties at the
# default case count; this pass triples it so torn/bit-flipped/garbage
# journal images and wire byte streams get real coverage on every CI run.
HYBRIDCS_CHECK_CASES=192 \
    cargo test -q --release --offline -p hybridcs-gateway --test journal_fuzz
HYBRIDCS_CHECK_CASES=192 \
    cargo test -q --release --offline -p hybridcs-net --test proto_fuzz

echo "==> verifying Cargo.lock stays registry-free"
if grep -E '^source = ' Cargo.lock; then
    echo "error: Cargo.lock references an external registry source" >&2
    echo "       (the workspace must stay hermetic — path deps only)" >&2
    exit 1
fi

echo "ci: all checks passed"
