#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the ablations,
# writing each artifact's output to results/<name>.txt.
#
# Usage: scripts/reproduce_all.sh [records] [windows-per-record]
set -euo pipefail
cd "$(dirname "$0")/.."

export HYBRIDCS_RECORDS="${1:-48}"
export HYBRIDCS_WINDOWS="${2:-2}"
mkdir -p results

cargo build --release --workspace --bins

bins=(
  fig2_lowres_window
  fig4_diff_pdf
  fig5_codebook_storage
  fig6_lowres_cr
  table1_overhead
  fig7_quality_vs_cr
  fig8_boxplots
  fig9_examples
  fig11_power_breakdown
  headline_power_gain
  ablation_solvers
  ablation_wavelets
  ablation_resolution
  ablation_matrix
  ablation_weighted_l1
)

for bin in "${bins[@]}"; do
  echo "== $bin =="
  ./target/release/"$bin" | tee "results/$bin.txt"
  echo
done

echo "All artifacts regenerated under results/."
