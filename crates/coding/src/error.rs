use std::error::Error;
use std::fmt;

/// Errors produced by the entropy-coding layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodingError {
    /// A codebook was requested for an empty training set.
    EmptyAlphabet,
    /// The bitstream ended in the middle of a code word or raw field.
    UnexpectedEndOfStream,
    /// A decoded value cannot be represented in the target type (corrupt
    /// stream or mismatched codebook).
    CorruptStream {
        /// Human-readable description of what went wrong.
        detail: &'static str,
    },
    /// A configuration value was out of range.
    BadParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied.
        value: i64,
    },
}

impl fmt::Display for CodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodingError::EmptyAlphabet => write!(f, "cannot build a codebook from no symbols"),
            CodingError::UnexpectedEndOfStream => write!(f, "bitstream ended unexpectedly"),
            CodingError::CorruptStream { detail } => write!(f, "corrupt bitstream: {detail}"),
            CodingError::BadParameter { name, value } => {
                write!(f, "parameter {name} out of range: {value}")
            }
        }
    }
}

impl Error for CodingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CodingError::EmptyAlphabet.to_string().contains("codebook"));
        assert!(CodingError::UnexpectedEndOfStream
            .to_string()
            .contains("ended"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodingError>();
    }
}
