use crate::{delta_decode, BitReader, BitWriter, CodingError, HuffmanCodebook};

/// End-to-end codec for one low-resolution frame: the first quantizer code
/// is transmitted raw (`bits` wide) and every subsequent sample as a
/// Huffman-coded difference.
///
/// This is exactly the per-window payload the paper's parallel channel
/// ships; [`LowResCodec::encoded_bits`] is the quantity behind the Fig. 6
/// compression ratios and the Table I overheads.
///
/// # Example
///
/// ```
/// use hybridcs_coding::{HuffmanCodebook, LowResCodec};
///
/// # fn main() -> Result<(), hybridcs_coding::CodingError> {
/// let training = vec![vec![5u32, 5, 6, 6, 5, 4, 4, 5]];
/// let book = HuffmanCodebook::train_from_code_sequences(training.iter().map(|v| &v[..]))?;
/// let codec = LowResCodec::new(book, 4)?;
/// let frame = vec![5, 6, 6, 5];
/// let payload = codec.encode(&frame)?;
/// assert_eq!(codec.decode(&payload, 4)?, frame);
/// assert!(codec.encoded_bits(&frame)? < 4 * 4, "beats raw 4-bit coding");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LowResCodec {
    codebook: HuffmanCodebook,
    bits: u32,
}

/// Encoded payload: the bytes plus the exact bit count (padding excluded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Payload {
    /// Packed bits, MSB-first.
    pub bytes: Vec<u8>,
    /// Number of meaningful bits in `bytes`.
    pub bit_len: usize,
}

impl LowResCodec {
    /// Creates a codec for `bits`-bit quantizer codes with a trained
    /// codebook.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadParameter`] when `bits` is 0 or above 24.
    pub fn new(codebook: HuffmanCodebook, bits: u32) -> Result<Self, CodingError> {
        if bits == 0 || bits > 24 {
            return Err(CodingError::BadParameter {
                name: "bits",
                value: i64::from(bits),
            });
        }
        Ok(LowResCodec { codebook, bits })
    }

    /// Quantizer resolution this codec was built for.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The trained codebook.
    #[must_use]
    pub fn codebook(&self) -> &HuffmanCodebook {
        &self.codebook
    }

    /// Encodes a frame of quantizer codes.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadParameter`] if any code does not fit in the
    /// configured bit width.
    pub fn encode(&self, codes: &[u32]) -> Result<Payload, CodingError> {
        let _span = hybridcs_obs::span!("huffman.encode");
        let mut writer = BitWriter::new();
        if let Some(&first) = codes.first() {
            if u64::from(first) >= (1u64 << self.bits) {
                return Err(CodingError::BadParameter {
                    name: "code (exceeds bit width)",
                    value: i64::from(first),
                });
            }
            writer.write_bits(u64::from(first), self.bits);
            let (_, diffs) = crate::delta_encode(codes);
            for d in diffs {
                self.codebook.encode_symbol(&mut writer, d);
            }
        }
        let (bytes, bit_len) = writer.finish();
        Ok(Payload { bytes, bit_len })
    }

    /// Encoded size in bits for a frame — the rate-accounting fast path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LowResCodec::encode`].
    pub fn encoded_bits(&self, codes: &[u32]) -> Result<usize, CodingError> {
        Ok(self.encode(codes)?.bit_len)
    }

    /// Decodes a payload back into `count` quantizer codes.
    ///
    /// # Errors
    ///
    /// * [`CodingError::UnexpectedEndOfStream`] on truncation.
    /// * [`CodingError::CorruptStream`] if the difference stream walks out
    ///   of the `u32` code range.
    pub fn decode(&self, payload: &Payload, count: usize) -> Result<Vec<u32>, CodingError> {
        let _span = hybridcs_obs::span!("huffman.decode");
        if count == 0 {
            return Ok(Vec::new());
        }
        let mut reader = BitReader::new(&payload.bytes, payload.bit_len);
        let first = reader.read_bits(self.bits)? as u32;
        let mut diffs = Vec::with_capacity(count - 1);
        for _ in 1..count {
            diffs.push(self.codebook.decode_symbol(&mut reader)?);
        }
        delta_decode(first, &diffs).ok_or(CodingError::CorruptStream {
            detail: "difference stream leaves code range",
        })
    }

    /// Average compression ratio `encoded_bits / raw_bits` over a set of
    /// frames (the paper's Fig. 6 quantity, lower is better).
    ///
    /// # Errors
    ///
    /// Propagates encoding failures; returns 0.0 for an empty iterator.
    pub fn compression_ratio<'a, I>(&self, frames: I) -> Result<f64, CodingError>
    where
        I: IntoIterator<Item = &'a [u32]>,
    {
        let mut encoded = 0usize;
        let mut raw = 0usize;
        for frame in frames {
            encoded += self.encoded_bits(frame)?;
            raw += frame.len() * self.bits as usize;
        }
        if raw == 0 {
            return Ok(0.0);
        }
        Ok(encoded as f64 / raw as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_frames() -> Vec<Vec<u32>> {
        // Slowly varying codes as the low-res channel produces.
        (0..4)
            .map(|k| {
                (0..256)
                    .map(|i| {
                        let t = i as f64 * 0.05 + k as f64;
                        (64.0 + 6.0 * t.sin()).round() as u32
                    })
                    .collect()
            })
            .collect()
    }

    fn trained_codec() -> LowResCodec {
        let frames = smooth_frames();
        let book =
            HuffmanCodebook::train_from_code_sequences(frames.iter().map(|v| &v[..])).unwrap();
        LowResCodec::new(book, 7).unwrap()
    }

    #[test]
    fn roundtrip() {
        let codec = trained_codec();
        for frame in smooth_frames() {
            let payload = codec.encode(&frame).unwrap();
            assert_eq!(codec.decode(&payload, frame.len()).unwrap(), frame);
        }
    }

    #[test]
    fn compresses_smooth_data_well() {
        let codec = trained_codec();
        let frames = smooth_frames();
        let cr = codec
            .compression_ratio(frames.iter().map(|v| &v[..]))
            .unwrap();
        assert!(cr < 0.45, "compression ratio {cr}");
        assert!(cr > 0.0);
    }

    #[test]
    fn roundtrip_with_escape_symbols() {
        // Frame with a jump never seen in training.
        let codec = trained_codec();
        let frame = vec![64, 64, 120, 10, 64];
        let payload = codec.encode(&frame).unwrap();
        assert_eq!(codec.decode(&payload, frame.len()).unwrap(), frame);
    }

    #[test]
    fn empty_frame() {
        let codec = trained_codec();
        let payload = codec.encode(&[]).unwrap();
        assert_eq!(payload.bit_len, 0);
        assert_eq!(codec.decode(&payload, 0).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn single_sample_frame_costs_exactly_bits() {
        let codec = trained_codec();
        let payload = codec.encode(&[99]).unwrap();
        assert_eq!(payload.bit_len, 7);
        assert_eq!(codec.decode(&payload, 1).unwrap(), vec![99]);
    }

    #[test]
    fn rejects_code_wider_than_bits() {
        let codec = trained_codec();
        assert!(matches!(
            codec.encode(&[128]),
            Err(CodingError::BadParameter { .. })
        ));
    }

    #[test]
    fn truncated_payload_is_detected() {
        let codec = trained_codec();
        let frame = vec![64, 65, 66, 67];
        let mut payload = codec.encode(&frame).unwrap();
        payload.bit_len = payload.bit_len.saturating_sub(3);
        assert!(codec.decode(&payload, frame.len()).is_err());
    }

    #[test]
    fn rejects_zero_bits_config() {
        let frames = smooth_frames();
        let book =
            HuffmanCodebook::train_from_code_sequences(frames.iter().map(|v| &v[..])).unwrap();
        assert!(LowResCodec::new(book, 0).is_err());
    }

    #[test]
    fn compression_ratio_empty_input() {
        let codec = trained_codec();
        assert_eq!(codec.compression_ratio(std::iter::empty()).unwrap(), 0.0);
    }
}
