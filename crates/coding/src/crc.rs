//! CRC-32 (IEEE 802.3 polynomial) for telemetry-frame integrity.
//!
//! A body-sensor link drops and corrupts packets; the telemetry layer
//! built on this crate stamps every frame so the receiver can fall back
//! gracefully (low-res-only reconstruction, or plain CS) instead of
//! decoding garbage.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Builds the 256-entry lookup table at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// Computes the CRC-32 (IEEE) of `data`.
///
/// # Example
///
/// ```
/// // The classic check value for "123456789".
/// assert_eq!(hybridcs_coding::crc32(b"123456789"), 0xCBF4_3926);
/// ```
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xA5u8; 64];
        let clean = crc32(&data);
        data[17] ^= 0x08;
        assert_ne!(crc32(&data), clean);
    }

    #[test]
    fn detects_swapped_bytes() {
        let a = crc32(&[1, 2, 3, 4]);
        let b = crc32(&[1, 3, 2, 4]);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic() {
        assert_eq!(crc32(b"hybridcs"), crc32(b"hybridcs"));
    }
}
