use crate::CodingError;

/// MSB-first bit-level writer backed by a `Vec<u8>`.
///
/// # Example
///
/// ```
/// use hybridcs_coding::{BitReader, BitWriter};
///
/// # fn main() -> Result<(), hybridcs_coding::CodingError> {
/// let mut writer = BitWriter::new();
/// writer.write_bits(0b101, 3);
/// writer.write_bits(0xF, 4);
/// let (bytes, bit_len) = writer.finish();
/// assert_eq!(bit_len, 7);
///
/// let mut reader = BitReader::new(&bytes, bit_len);
/// assert_eq!(reader.read_bits(3)?, 0b101);
/// assert_eq!(reader.read_bits(4)?, 0xF);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final byte (0 means the last byte is full/absent).
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Appends one bit.
    pub fn write_bit(&mut self, bit: bool) {
        let offset = self.bit_len % 8;
        if offset == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << (7 - offset);
        }
        self.bit_len += 1;
    }

    /// Number of bits written so far.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Finalizes the stream, returning the padded bytes and the exact bit
    /// count.
    #[must_use]
    pub fn finish(self) -> (Vec<u8>, usize) {
        (self.bytes, self.bit_len)
    }
}

/// MSB-first bit-level reader over a byte slice with a known bit length.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    bit_len: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`, of which only the first `bit_len`
    /// bits are valid.
    #[must_use]
    pub fn new(bytes: &'a [u8], bit_len: usize) -> Self {
        let bit_len = bit_len.min(bytes.len() * 8);
        BitReader {
            bytes,
            bit_len,
            pos: 0,
        }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::UnexpectedEndOfStream`] past the end.
    pub fn read_bit(&mut self) -> Result<bool, CodingError> {
        if self.pos >= self.bit_len {
            return Err(CodingError::UnexpectedEndOfStream);
        }
        let byte = self.bytes[self.pos / 8];
        let bit = (byte >> (7 - self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `count` bits MSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::UnexpectedEndOfStream`] if fewer than `count`
    /// bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn read_bits(&mut self, count: u32) -> Result<u64, CodingError> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        if self.pos + count as usize > self.bit_len {
            return Err(CodingError::UnexpectedEndOfStream);
        }
        let mut value = 0u64;
        for _ in 0..count {
            value = (value << 1) | u64::from(self.read_bit()?);
        }
        Ok(value)
    }

    /// Bits remaining to be read.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bit_len - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b1010, 4);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(0, 7);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(4).unwrap(), 0b1010);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(7).unwrap(), 0);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bit_len_accounting() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 13);
        assert_eq!(w.bit_len(), 13);
        let (bytes, len) = w.finish();
        assert_eq!(len, 13);
        assert_eq!(bytes.len(), 2);
    }

    #[test]
    fn reading_past_end_errors() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        assert!(matches!(
            r.read_bit(),
            Err(CodingError::UnexpectedEndOfStream)
        ));
        assert!(matches!(
            r.read_bits(1),
            Err(CodingError::UnexpectedEndOfStream)
        ));
    }

    #[test]
    fn reader_clamps_bit_len_to_buffer() {
        let bytes = [0xFF];
        let mut r = BitReader::new(&bytes, 100);
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
    }

    #[test]
    fn single_bits_compose() {
        let mut w = BitWriter::new();
        for bit in [true, false, true, true, false] {
            w.write_bit(bit);
        }
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read_bits(5).unwrap(), 0b10110);
    }

    #[test]
    fn write_zero_bits_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
    }

    #[test]
    fn padding_bits_are_zero() {
        let mut w = BitWriter::new();
        w.write_bits(0b111, 3);
        let (bytes, _) = w.finish();
        assert_eq!(bytes[0], 0b1110_0000);
    }
}
