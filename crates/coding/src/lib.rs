//! Entropy-coding substrate for the low-resolution channel: bit-level I/O,
//! delta coding, and canonical Huffman with offline-trained codebooks.
//!
//! Section III-B of the paper observes that the low-resolution channel's
//! quantized samples are highly repetitive, so it transmits the
//! **first-difference** stream compressed with a Huffman code whose codebook
//! is trained offline and stored on the node (68 bytes at the chosen 7-bit
//! operating point). This crate reproduces that chain:
//!
//! * [`BitWriter`] / [`BitReader`] — MSB-first bit-level I/O.
//! * [`delta_encode`] / [`delta_decode`] — difference coding of quantizer
//!   codes.
//! * [`HuffmanCodebook`] — offline training from difference histograms,
//!   canonical code assignment, serialization (whose byte count regenerates
//!   Fig. 5) and an escape mechanism for symbols unseen during training.
//! * [`LowResCodec`] — the end-to-end frame codec: first sample raw, then
//!   Huffman-coded differences (regenerates Fig. 6 / Table I).
//!
//! # Example
//!
//! ```
//! use hybridcs_coding::{HuffmanCodebook, LowResCodec};
//!
//! # fn main() -> Result<(), hybridcs_coding::CodingError> {
//! // Train on a typical difference distribution, then round-trip a frame.
//! let training = vec![vec![64, 64, 65, 66, 66, 65, 64, 63, 63, 64]];
//! let codebook = HuffmanCodebook::train_from_code_sequences(training.iter().map(|v| &v[..]))?;
//! let codec = LowResCodec::new(codebook, 7)?;
//! let frame = vec![64, 65, 65, 64, 63, 64];
//! let bits = codec.encode(&frame)?;
//! assert_eq!(codec.decode(&bits, frame.len())?, frame);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitstream;
mod crc;
mod delta;
mod error;
mod frame_codec;
mod huffman;
mod rle;

pub use bitstream::{BitReader, BitWriter};
pub use crc::crc32;
pub use delta::{delta_decode, delta_encode};
pub use error::CodingError;
pub use frame_codec::{LowResCodec, Payload};
pub use huffman::HuffmanCodebook;
pub use rle::RleLowResCodec;
