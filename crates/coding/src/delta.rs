//! Difference coding of quantizer codes.
//!
//! The low-resolution channel's codes move slowly (Fig. 2a of the paper), so
//! their first differences concentrate near zero (Fig. 4) — the property the
//! Huffman stage exploits.

/// First-difference encoding: returns `(first, diffs)` where
/// `diffs[k] = x[k+1] − x[k]` as `i64`.
///
/// Returns `(0, vec![])` for an empty input; the first element of a
/// non-empty input is passed through unchanged.
///
/// # Example
///
/// ```
/// let (first, diffs) = hybridcs_coding::delta_encode(&[10, 12, 11, 11]);
/// assert_eq!(first, 10);
/// assert_eq!(diffs, vec![2, -1, 0]);
/// ```
#[must_use]
pub fn delta_encode(codes: &[u32]) -> (u32, Vec<i64>) {
    match codes.first() {
        None => (0, Vec::new()),
        Some(&first) => {
            let diffs = codes
                .windows(2)
                .map(|w| i64::from(w[1]) - i64::from(w[0]))
                .collect();
            (first, diffs)
        }
    }
}

/// Inverse of [`delta_encode`].
///
/// Returns `None` if any partial sum leaves the `u32` range (corrupt
/// stream).
///
/// # Example
///
/// ```
/// let codes = hybridcs_coding::delta_decode(10, &[2, -1, 0]).unwrap();
/// assert_eq!(codes, vec![10, 12, 11, 11]);
/// ```
#[must_use]
pub fn delta_decode(first: u32, diffs: &[i64]) -> Option<Vec<u32>> {
    let mut out = Vec::with_capacity(diffs.len() + 1);
    let mut current = i64::from(first);
    out.push(first);
    for &d in diffs {
        current = current.checked_add(d)?;
        if current < 0 || current > i64::from(u32::MAX) {
            return None;
        }
        out.push(current as u32);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let codes = vec![100, 101, 99, 99, 150, 0, 4_000_000_000];
        let (first, diffs) = delta_encode(&codes);
        assert_eq!(delta_decode(first, &diffs).unwrap(), codes);
    }

    #[test]
    fn empty_input() {
        let (first, diffs) = delta_encode(&[]);
        assert_eq!(first, 0);
        assert!(diffs.is_empty());
        assert_eq!(delta_decode(0, &[]).unwrap(), vec![0]);
    }

    #[test]
    fn single_element() {
        let (first, diffs) = delta_encode(&[42]);
        assert_eq!(first, 42);
        assert!(diffs.is_empty());
    }

    #[test]
    fn decode_rejects_underflow() {
        assert_eq!(delta_decode(1, &[-2]), None);
    }

    #[test]
    fn decode_rejects_overflow() {
        assert_eq!(delta_decode(u32::MAX, &[1]), None);
    }

    #[test]
    fn constant_signal_gives_zero_diffs() {
        let (_, diffs) = delta_encode(&[7; 100]);
        assert!(diffs.iter().all(|&d| d == 0));
    }
}
