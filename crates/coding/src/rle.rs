//! Zero-run-length + Huffman coding of difference streams.
//!
//! Plain per-symbol Huffman coding cannot spend less than 1 bit per
//! sample, yet the paper's Table I reports low-resolution overheads as low
//! as 2.3% of a 12-bit stream at 3-bit resolution — i.e. ≈0.28 bits per
//! sample. Reaching that regime requires *grouping* the long runs of zero
//! differences the coarse quantizer produces. This module adds the missing
//! stage: zero runs are collapsed into run-length tokens that join the
//! difference alphabet before Huffman training, exactly like the
//! zero-run-length symbols of JPEG's AC coefficient coding.

use crate::{delta_decode, delta_encode, BitReader, BitWriter, CodingError, HuffmanCodebook};

/// Token-space offset for run symbols: `ZRL_BASE + len` encodes a run of
/// `len` zero differences. Real differences of ±24-bit quantizers are
/// orders of magnitude below the base, so the spaces cannot collide.
const ZRL_BASE: i64 = 1 << 40;

/// Longest run represented by a single token; longer runs are split.
const MAX_RUN: i64 = 64;

/// Collapses zero runs in a difference stream into run tokens.
fn tokenize(diffs: &[i64]) -> Vec<i64> {
    let mut out = Vec::with_capacity(diffs.len() / 4 + 4);
    let mut run = 0i64;
    for &d in diffs {
        if d == 0 {
            run += 1;
            if run == MAX_RUN {
                out.push(ZRL_BASE + MAX_RUN);
                run = 0;
            }
        } else {
            if run > 0 {
                out.push(ZRL_BASE + run);
                run = 0;
            }
            out.push(d);
        }
    }
    if run > 0 {
        out.push(ZRL_BASE + run);
    }
    out
}

/// Expands a token back into differences, appending to `diffs`.
///
/// Returns `Err` for malformed run lengths.
fn expand_token(token: i64, diffs: &mut Vec<i64>) -> Result<(), CodingError> {
    if token >= ZRL_BASE {
        let run = token - ZRL_BASE;
        if !(1..=MAX_RUN).contains(&run) {
            return Err(CodingError::CorruptStream {
                detail: "invalid zero-run length",
            });
        }
        diffs.extend(std::iter::repeat_n(0, run as usize));
    } else {
        diffs.push(token);
    }
    Ok(())
}

/// Frame codec for the low-resolution channel with zero-run-length
/// grouping in front of the Huffman stage.
///
/// Same wire format as [`LowResCodec`](crate::LowResCodec) — raw first
/// sample, then Huffman-coded tokens — but the token alphabet contains
/// run symbols, letting the rate drop far below 1 bit/sample on coarse
/// quantizers.
///
/// # Example
///
/// ```
/// use hybridcs_coding::RleLowResCodec;
///
/// # fn main() -> Result<(), hybridcs_coding::CodingError> {
/// let training = vec![vec![5u32; 64]]; // a constant frame: all-zero diffs
/// let codec = RleLowResCodec::train(training.iter().map(|v| &v[..]), 4)?;
/// let frame = vec![5u32; 64];
/// let payload = codec.encode(&frame)?;
/// // 4 raw bits + one run token: far below 64 samples x 4 bits.
/// assert!(payload.bit_len < 16);
/// assert_eq!(codec.decode(&payload, 64)?, frame);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RleLowResCodec {
    codebook: HuffmanCodebook,
    bits: u32,
}

impl RleLowResCodec {
    /// Trains the token codebook from raw code sequences at `bits`
    /// resolution.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::EmptyAlphabet`] when no sequence contributes
    /// tokens and [`CodingError::BadParameter`] for an unsupported bit
    /// width.
    pub fn train<'a, I>(sequences: I, bits: u32) -> Result<Self, CodingError>
    where
        I: IntoIterator<Item = &'a [u32]>,
    {
        if bits == 0 || bits > 24 {
            return Err(CodingError::BadParameter {
                name: "bits",
                value: i64::from(bits),
            });
        }
        let mut freqs = std::collections::BTreeMap::new();
        // Every legal run length gets a codebook entry even if unseen in
        // training, so runs never pay the (wide) escape penalty.
        for run in 1..=MAX_RUN {
            freqs.insert(ZRL_BASE + run, 1u64);
        }
        for seq in sequences {
            let (_, diffs) = delta_encode(seq);
            for token in tokenize(&diffs) {
                *freqs.entry(token).or_insert(0u64) += 1;
            }
        }
        Ok(RleLowResCodec {
            codebook: HuffmanCodebook::from_frequencies(&freqs)?,
            bits,
        })
    }

    /// Quantizer resolution this codec was built for.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The trained token codebook.
    #[must_use]
    pub fn codebook(&self) -> &HuffmanCodebook {
        &self.codebook
    }

    /// Encodes a frame of quantizer codes.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadParameter`] if any code exceeds the bit
    /// width.
    pub fn encode(&self, codes: &[u32]) -> Result<crate::Payload, CodingError> {
        let mut writer = BitWriter::new();
        if let Some(&first) = codes.first() {
            if u64::from(first) >= (1u64 << self.bits) {
                return Err(CodingError::BadParameter {
                    name: "code (exceeds bit width)",
                    value: i64::from(first),
                });
            }
            writer.write_bits(u64::from(first), self.bits);
            let (_, diffs) = delta_encode(codes);
            for token in tokenize(&diffs) {
                self.codebook.encode_symbol(&mut writer, token);
            }
        }
        let (bytes, bit_len) = writer.finish();
        Ok(crate::Payload { bytes, bit_len })
    }

    /// Encoded size in bits.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RleLowResCodec::encode`].
    pub fn encoded_bits(&self, codes: &[u32]) -> Result<usize, CodingError> {
        Ok(self.encode(codes)?.bit_len)
    }

    /// Decodes a payload back into `count` quantizer codes.
    ///
    /// # Errors
    ///
    /// * [`CodingError::UnexpectedEndOfStream`] on truncation.
    /// * [`CodingError::CorruptStream`] on malformed run tokens, a token
    ///   stream that overshoots the frame, or a difference walk that
    ///   leaves the code range.
    pub fn decode(&self, payload: &crate::Payload, count: usize) -> Result<Vec<u32>, CodingError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let mut reader = BitReader::new(&payload.bytes, payload.bit_len);
        let first = reader.read_bits(self.bits)? as u32;
        let mut diffs = Vec::with_capacity(count - 1);
        while diffs.len() < count - 1 {
            let token = self.codebook.decode_symbol(&mut reader)?;
            expand_token(token, &mut diffs)?;
        }
        if diffs.len() != count - 1 {
            return Err(CodingError::CorruptStream {
                detail: "run token overshoots frame boundary",
            });
        }
        delta_decode(first, &diffs).ok_or(CodingError::CorruptStream {
            detail: "difference stream leaves code range",
        })
    }

    /// Average compression ratio `encoded/raw` over frames (Fig. 6
    /// quantity with the RLE stage enabled).
    ///
    /// # Errors
    ///
    /// Propagates encoding failures.
    pub fn compression_ratio<'a, I>(&self, frames: I) -> Result<f64, CodingError>
    where
        I: IntoIterator<Item = &'a [u32]>,
    {
        let mut encoded = 0usize;
        let mut raw = 0usize;
        for frame in frames {
            encoded += self.encoded_bits(frame)?;
            raw += frame.len() * self.bits as usize;
        }
        if raw == 0 {
            return Ok(0.0);
        }
        Ok(encoded as f64 / raw as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_codes(n: usize, phase: f64) -> Vec<u32> {
        (0..n)
            .map(|i| (8.0 + 3.0 * ((i as f64) * 0.02 + phase).sin()).round() as u32)
            .collect()
    }

    fn trained(bits: u32) -> RleLowResCodec {
        let frames: Vec<Vec<u32>> = (0..4).map(|k| smooth_codes(512, k as f64)).collect();
        RleLowResCodec::train(frames.iter().map(|v| &v[..]), bits).unwrap()
    }

    #[test]
    fn tokenize_roundtrip() {
        let diffs = vec![0, 0, 0, 5, 0, -2, 0, 0, 0, 0, 0, 0, 1];
        let tokens = tokenize(&diffs);
        let mut back = Vec::new();
        for t in tokens {
            expand_token(t, &mut back).unwrap();
        }
        assert_eq!(back, diffs);
    }

    #[test]
    fn long_runs_are_split() {
        let diffs = vec![0i64; 200];
        let tokens = tokenize(&diffs);
        assert!(tokens.len() >= 4); // 200 = 3×64 + 8
        let mut back = Vec::new();
        for t in tokens {
            expand_token(t, &mut back).unwrap();
        }
        assert_eq!(back, diffs);
    }

    #[test]
    fn roundtrip_frames() {
        let codec = trained(4);
        for phase in [0.0, 1.5, 3.0] {
            let frame = smooth_codes(512, phase);
            let payload = codec.encode(&frame).unwrap();
            assert_eq!(codec.decode(&payload, frame.len()).unwrap(), frame);
        }
    }

    #[test]
    fn beats_one_bit_per_sample_on_coarse_quantizer() {
        // The whole reason this codec exists.
        let codec = trained(4);
        let frame = smooth_codes(512, 7.0);
        let bits = codec.encoded_bits(&frame).unwrap();
        assert!(
            bits < 512 / 2,
            "zero-run coding should go below 0.5 bits/sample here, got {bits} bits"
        );
    }

    #[test]
    fn rle_beats_plain_huffman_on_sparse_diffs() {
        let frames: Vec<Vec<u32>> = (0..4).map(|k| smooth_codes(512, k as f64)).collect();
        let rle = RleLowResCodec::train(frames.iter().map(|v| &v[..]), 4).unwrap();
        let book =
            HuffmanCodebook::train_from_code_sequences(frames.iter().map(|v| &v[..])).unwrap();
        let plain = crate::LowResCodec::new(book, 4).unwrap();
        let test = smooth_codes(512, 9.0);
        let rle_bits = rle.encoded_bits(&test).unwrap();
        let plain_bits = plain.encoded_bits(&test).unwrap();
        assert!(
            rle_bits < plain_bits,
            "RLE {rle_bits} bits vs plain {plain_bits} bits"
        );
    }

    #[test]
    fn escape_path_for_unseen_jumps() {
        let codec = trained(8);
        let mut frame = smooth_codes(256, 0.0);
        frame[100] = 200; // a jump never seen in training
        let payload = codec.encode(&frame).unwrap();
        assert_eq!(codec.decode(&payload, frame.len()).unwrap(), frame);
    }

    #[test]
    fn truncation_is_detected() {
        let codec = trained(4);
        let frame = smooth_codes(128, 2.0);
        let mut payload = codec.encode(&frame).unwrap();
        payload.bit_len = payload.bit_len.saturating_sub(4);
        assert!(codec.decode(&payload, frame.len()).is_err());
    }

    #[test]
    fn empty_and_single_frames() {
        let codec = trained(4);
        let empty = codec.encode(&[]).unwrap();
        assert_eq!(codec.decode(&empty, 0).unwrap(), Vec::<u32>::new());
        let single = codec.encode(&[9]).unwrap();
        assert_eq!(single.bit_len, 4);
        assert_eq!(codec.decode(&single, 1).unwrap(), vec![9]);
    }

    #[test]
    fn rejects_bad_bits_and_oversized_codes() {
        let frames: Vec<Vec<u32>> = vec![smooth_codes(64, 0.0)];
        assert!(RleLowResCodec::train(frames.iter().map(|v| &v[..]), 0).is_err());
        assert!(RleLowResCodec::train(frames.iter().map(|v| &v[..]), 30).is_err());
        let codec = trained(4);
        assert!(codec.encode(&[16]).is_err());
    }

    #[test]
    fn compression_ratio_measures_fraction() {
        let codec = trained(4);
        let frames: Vec<Vec<u32>> = (0..3).map(|k| smooth_codes(512, 10.0 + k as f64)).collect();
        let cr = codec
            .compression_ratio(frames.iter().map(|v| &v[..]))
            .unwrap();
        assert!(cr > 0.0 && cr < 0.5, "cr {cr}");
    }
}
