use crate::{BitReader, BitWriter, CodingError};
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// The symbol alphabet is `i64` differences plus one reserved escape symbol
/// for values unseen during offline training.
const ESCAPE: i64 = i64::MIN;

/// Width of the raw field following an escape code (zigzag-encoded i64).
/// The full 64 bits are kept so that any token space — including the
/// run-length tokens of [`RleLowResCodec`](crate::RleLowResCodec), which
/// live near 2⁴⁰ — survives the escape path without truncation.
const ESCAPE_RAW_BITS: u32 = 64;

/// A canonical Huffman codebook over difference symbols, trained offline.
///
/// The paper stores an offline-generated codebook on the sensor node and
/// reports its storage cost (Fig. 5: 68 bytes at 7-bit resolution).
/// This type reproduces that object: training, canonical code assignment,
/// encoding/decoding, and a compact serialization whose size regenerates
/// the figure.
///
/// Robustness: a reserved **escape** symbol is always present, so symbols
/// that never occurred in training remain encodable (escape code followed by
/// a 32-bit zigzag raw value). This mirrors real deployments, where a
/// pathological window must not break telemetry.
///
/// # Example
///
/// ```
/// use hybridcs_coding::{BitReader, BitWriter, HuffmanCodebook};
///
/// # fn main() -> Result<(), hybridcs_coding::CodingError> {
/// let mut freqs = std::collections::BTreeMap::new();
/// freqs.insert(0i64, 80u64);
/// freqs.insert(1, 10);
/// freqs.insert(-1, 10);
/// let book = HuffmanCodebook::from_frequencies(&freqs)?;
///
/// let mut writer = BitWriter::new();
/// for s in [0, 1, -1, 0, 7 /* escape path */] {
///     book.encode_symbol(&mut writer, s);
/// }
/// let (bytes, len) = writer.finish();
/// let mut reader = BitReader::new(&bytes, len);
/// for expected in [0, 1, -1, 0, 7] {
///     assert_eq!(book.decode_symbol(&mut reader)?, expected);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanCodebook {
    /// symbol → (code length, canonical code value).
    encode_map: BTreeMap<i64, (u8, u64)>,
    /// (length, code) → symbol, for bit-serial decoding.
    decode_map: HashMap<(u8, u64), i64>,
}

impl HuffmanCodebook {
    /// Builds a codebook from symbol frequencies. The escape symbol is
    /// added automatically (with frequency 1) if absent.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::EmptyAlphabet`] when `frequencies` is empty.
    pub fn from_frequencies(frequencies: &BTreeMap<i64, u64>) -> Result<Self, CodingError> {
        if frequencies.is_empty() {
            return Err(CodingError::EmptyAlphabet);
        }
        let mut freqs = frequencies.clone();
        freqs.entry(ESCAPE).or_insert(1);
        // Zero-frequency symbols still need codes if callers insist on them.
        for f in freqs.values_mut() {
            if *f == 0 {
                *f = 1;
            }
        }
        let lengths = code_lengths(&freqs);
        Ok(Self::from_lengths(&lengths))
    }

    /// Trains a codebook from raw quantizer-code sequences: each sequence is
    /// difference-coded and the differences accumulated into a histogram.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::EmptyAlphabet`] when no sequence contributes
    /// at least one difference.
    pub fn train_from_code_sequences<'a, I>(sequences: I) -> Result<Self, CodingError>
    where
        I: IntoIterator<Item = &'a [u32]>,
    {
        let mut freqs: BTreeMap<i64, u64> = BTreeMap::new();
        for seq in sequences {
            let (_, diffs) = crate::delta_encode(seq);
            for d in diffs {
                *freqs.entry(d).or_insert(0) += 1;
            }
        }
        Self::from_frequencies(&freqs)
    }

    /// Rebuilds the canonical codebook from `(symbol, length)` pairs.
    fn from_lengths(lengths: &BTreeMap<i64, u8>) -> Self {
        // Canonical assignment: sort by (length, symbol), then count upward.
        let mut order: Vec<(i64, u8)> = lengths.iter().map(|(&s, &l)| (s, l)).collect();
        order.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        let mut encode_map = BTreeMap::new();
        let mut decode_map = HashMap::new();
        let mut code = 0u64;
        let mut prev_len = 0u8;
        for (symbol, len) in order {
            code <<= len - prev_len;
            prev_len = len;
            encode_map.insert(symbol, (len, code));
            decode_map.insert((len, code), symbol);
            code += 1;
        }
        HuffmanCodebook {
            encode_map,
            decode_map,
        }
    }

    /// Number of symbols, including the escape symbol.
    #[must_use]
    pub fn len(&self) -> usize {
        self.encode_map.len()
    }

    /// Whether the codebook is empty (never true for a constructed book).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.encode_map.is_empty()
    }

    /// Code assigned to `symbol`, if it was in the training alphabet.
    #[must_use]
    pub fn code_for(&self, symbol: i64) -> Option<(u8, u64)> {
        self.encode_map.get(&symbol).copied()
    }

    /// The trained (non-escape) symbols in ascending order.
    #[must_use]
    pub fn symbols(&self) -> Vec<i64> {
        self.encode_map
            .keys()
            .copied()
            .filter(|&s| s != ESCAPE)
            .collect()
    }

    /// Encodes one symbol, falling back to the escape path for symbols
    /// outside the trained alphabet.
    pub fn encode_symbol(&self, writer: &mut BitWriter, symbol: i64) {
        match self.encode_map.get(&symbol) {
            Some(&(len, code)) => writer.write_bits(code, u32::from(len)),
            None => {
                let (len, code) = self.encode_map[&ESCAPE];
                writer.write_bits(code, u32::from(len));
                writer.write_bits(zigzag(symbol), ESCAPE_RAW_BITS);
            }
        }
    }

    /// Decodes one symbol.
    ///
    /// # Errors
    ///
    /// * [`CodingError::UnexpectedEndOfStream`] if the stream ends inside a
    ///   code word or escape field.
    /// * [`CodingError::CorruptStream`] if no code word matches within the
    ///   maximum code length.
    pub fn decode_symbol(&self, reader: &mut BitReader<'_>) -> Result<i64, CodingError> {
        let mut code = 0u64;
        for len in 1..=64u8 {
            code = (code << 1) | u64::from(reader.read_bit()?);
            if let Some(&symbol) = self.decode_map.get(&(len, code)) {
                if symbol == ESCAPE {
                    let raw = reader.read_bits(ESCAPE_RAW_BITS)?;
                    return Ok(unzigzag(raw));
                }
                return Ok(symbol);
            }
        }
        Err(CodingError::CorruptStream {
            detail: "no code word within 64 bits",
        })
    }

    /// Expected code length in bits under a frequency model (used for the
    /// compression-ratio analysis of Fig. 6).
    #[must_use]
    pub fn mean_code_length(&self, frequencies: &BTreeMap<i64, u64>) -> f64 {
        let total: u64 = frequencies.values().sum();
        if total == 0 {
            return 0.0;
        }
        let escape_len = f64::from(self.encode_map[&ESCAPE].0) + ESCAPE_RAW_BITS as f64;
        let mut acc = 0.0;
        for (&symbol, &freq) in frequencies {
            let bits = match self.encode_map.get(&symbol) {
                Some(&(len, _)) => f64::from(len),
                None => escape_len,
            };
            acc += bits * freq as f64;
        }
        acc / total as f64
    }

    /// Serializes the codebook: a 2-byte entry count, then per entry the
    /// zigzag-varint symbol and a 1-byte code length. The canonical
    /// construction makes code *values* redundant, so this is the minimal
    /// on-node representation — its length is the quantity plotted in
    /// Fig. 5 of the paper.
    #[must_use]
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let count = self.encode_map.len() as u16;
        out.extend_from_slice(&count.to_le_bytes());
        for (&symbol, &(len, _)) in &self.encode_map {
            write_varint(&mut out, zigzag(symbol));
            out.push(len);
        }
        out
    }

    /// On-node storage cost in bytes (length of [`HuffmanCodebook::serialize`]).
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.serialize().len()
    }

    /// Reconstructs a codebook from its serialized form.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::CorruptStream`] on truncated or malformed
    /// input.
    pub fn deserialize(bytes: &[u8]) -> Result<Self, CodingError> {
        const TRUNCATED: CodingError = CodingError::CorruptStream {
            detail: "truncated codebook",
        };
        if bytes.len() < 2 {
            return Err(TRUNCATED);
        }
        let count = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        let mut lengths = BTreeMap::new();
        let mut pos = 2;
        for _ in 0..count {
            let (raw, used) = read_varint(&bytes[pos..]).ok_or(TRUNCATED)?;
            pos += used;
            let len = *bytes.get(pos).ok_or(TRUNCATED)?;
            pos += 1;
            if len == 0 || len > 64 {
                return Err(CodingError::CorruptStream {
                    detail: "invalid code length",
                });
            }
            lengths.insert(unzigzag(raw), len);
        }
        if lengths.len() != count {
            return Err(CodingError::CorruptStream {
                detail: "duplicate symbols in codebook",
            });
        }
        if !lengths.contains_key(&ESCAPE) {
            return Err(CodingError::CorruptStream {
                detail: "codebook missing escape symbol",
            });
        }
        Ok(Self::from_lengths(&lengths))
    }
}

/// Computes Huffman code lengths from frequencies via the classic heap
/// construction. A single-symbol alphabet gets a 1-bit code.
fn code_lengths(freqs: &BTreeMap<i64, u64>) -> BTreeMap<i64, u8> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        /// Tie-break for determinism: smallest symbol in the subtree.
        order: i64,
        symbols: Vec<i64>,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // BinaryHeap is a max-heap; invert for min-heap behaviour.
            other
                .weight
                .cmp(&self.weight)
                .then(other.order.cmp(&self.order))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut lengths: BTreeMap<i64, u8> = freqs.keys().map(|&s| (s, 0)).collect();
    if freqs.len() == 1 {
        let only = *freqs.keys().next().expect("len checked");
        lengths.insert(only, 1);
        return lengths;
    }
    let mut heap: BinaryHeap<Node> = freqs
        .iter()
        .map(|(&s, &w)| Node {
            weight: w,
            order: s,
            symbols: vec![s],
        })
        .collect();
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        for s in a.symbols.iter().chain(&b.symbols) {
            *lengths.get_mut(s).expect("symbol known") += 1;
        }
        let mut symbols = a.symbols;
        symbols.extend(b.symbols);
        heap.push(Node {
            weight: a.weight + b.weight,
            order: a.order.min(b.order),
            symbols,
        });
    }
    lengths
}

/// Maps signed to unsigned so small-magnitude values stay small.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8]) -> Option<(u64, usize)> {
    let mut v = 0u64;
    for (i, &b) in bytes.iter().enumerate().take(10) {
        v |= u64::from(b & 0x7F) << (7 * i);
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peaked_freqs() -> BTreeMap<i64, u64> {
        let mut f = BTreeMap::new();
        f.insert(0, 1000);
        f.insert(1, 200);
        f.insert(-1, 200);
        f.insert(2, 40);
        f.insert(-2, 40);
        f.insert(3, 8);
        f.insert(-3, 8);
        f
    }

    #[test]
    fn frequent_symbols_get_short_codes() {
        let book = HuffmanCodebook::from_frequencies(&peaked_freqs()).unwrap();
        let (len0, _) = book.code_for(0).unwrap();
        let (len3, _) = book.code_for(3).unwrap();
        assert!(len0 < len3, "len(0)={len0} len(3)={len3}");
        assert!(len0 <= 2);
    }

    #[test]
    fn roundtrip_in_alphabet() {
        let book = HuffmanCodebook::from_frequencies(&peaked_freqs()).unwrap();
        let symbols = [0, 1, -1, 2, -2, 3, -3, 0, 0, 0, 1];
        let mut w = BitWriter::new();
        for &s in &symbols {
            book.encode_symbol(&mut w, s);
        }
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        for &expected in &symbols {
            assert_eq!(book.decode_symbol(&mut r).unwrap(), expected);
        }
    }

    #[test]
    fn escape_roundtrip() {
        let book = HuffmanCodebook::from_frequencies(&peaked_freqs()).unwrap();
        let mut w = BitWriter::new();
        for s in [1_000_000, -77, 0] {
            book.encode_symbol(&mut w, s);
        }
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(book.decode_symbol(&mut r).unwrap(), 1_000_000);
        assert_eq!(book.decode_symbol(&mut r).unwrap(), -77);
        assert_eq!(book.decode_symbol(&mut r).unwrap(), 0);
    }

    #[test]
    fn prefix_free_property() {
        // No code word is a prefix of another — checked pairwise.
        let book = HuffmanCodebook::from_frequencies(&peaked_freqs()).unwrap();
        let codes: Vec<(u8, u64)> = book
            .symbols()
            .iter()
            .map(|&s| book.code_for(s).unwrap())
            .collect();
        for (i, &(la, ca)) in codes.iter().enumerate() {
            for &(lb, cb) in codes.iter().skip(i + 1) {
                let (short, long) = if la <= lb {
                    ((la, ca), (lb, cb))
                } else {
                    ((lb, cb), (la, ca))
                };
                let shifted = long.1 >> (long.0 - short.0);
                assert!(!(short.0 == long.0 && short.1 == long.1), "duplicate codes");
                if short.0 < long.0 {
                    assert_ne!(shifted, short.1, "prefix violation");
                }
            }
        }
    }

    #[test]
    fn kraft_inequality_holds_with_equality() {
        let book = HuffmanCodebook::from_frequencies(&peaked_freqs()).unwrap();
        let mut kraft = 0.0;
        // Include the escape symbol via len().
        let mut all: Vec<i64> = book.symbols();
        all.push(i64::MIN);
        for s in all {
            let (len, _) = book.code_for(s).unwrap();
            kraft += 2f64.powi(-i32::from(len));
        }
        assert!((kraft - 1.0).abs() < 1e-12, "kraft sum {kraft}");
    }

    #[test]
    fn mean_length_beats_fixed_width_on_peaked_data() {
        let freqs = peaked_freqs();
        let book = HuffmanCodebook::from_frequencies(&freqs).unwrap();
        let mean = book.mean_code_length(&freqs);
        // 7 symbols -> 3 bits fixed; peaked distribution must do much better.
        assert!(mean < 2.2, "mean code length {mean}");
    }

    #[test]
    fn mean_length_is_within_one_bit_of_entropy() {
        let freqs = peaked_freqs();
        let total: u64 = freqs.values().sum();
        let entropy: f64 = freqs
            .values()
            .map(|&f| {
                let p = f as f64 / total as f64;
                -p * p.log2()
            })
            .sum();
        let book = HuffmanCodebook::from_frequencies(&freqs).unwrap();
        let mean = book.mean_code_length(&freqs);
        assert!(mean >= entropy - 1e-9, "below entropy?");
        // Slack: the mandatory escape symbol costs a little.
        assert!(mean <= entropy + 1.2, "mean {mean} entropy {entropy}");
    }

    #[test]
    fn serialization_roundtrip() {
        let book = HuffmanCodebook::from_frequencies(&peaked_freqs()).unwrap();
        let bytes = book.serialize();
        let back = HuffmanCodebook::deserialize(&bytes).unwrap();
        assert_eq!(book, back);
        assert_eq!(book.storage_bytes(), bytes.len());
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(HuffmanCodebook::deserialize(&[]).is_err());
        assert!(HuffmanCodebook::deserialize(&[5, 0]).is_err());
        // Valid header but bogus length byte.
        let book = HuffmanCodebook::from_frequencies(&peaked_freqs()).unwrap();
        let mut bytes = book.serialize();
        let last = bytes.len() - 1;
        bytes[last] = 0;
        assert!(HuffmanCodebook::deserialize(&bytes).is_err());
    }

    #[test]
    fn storage_grows_with_alphabet() {
        let small = HuffmanCodebook::from_frequencies(&peaked_freqs()).unwrap();
        let mut wide = BTreeMap::new();
        for s in -200i64..=200 {
            wide.insert(s, 1 + (200 - s.abs()) as u64);
        }
        let big = HuffmanCodebook::from_frequencies(&wide).unwrap();
        assert!(big.storage_bytes() > 4 * small.storage_bytes());
    }

    #[test]
    fn single_symbol_alphabet() {
        let mut f = BTreeMap::new();
        f.insert(0i64, 100u64);
        let book = HuffmanCodebook::from_frequencies(&f).unwrap();
        // Alphabet = {0, ESCAPE}: both get 1-bit codes.
        let mut w = BitWriter::new();
        for _ in 0..5 {
            book.encode_symbol(&mut w, 0);
        }
        let (bytes, len) = w.finish();
        assert_eq!(len, 5);
        let mut r = BitReader::new(&bytes, len);
        for _ in 0..5 {
            assert_eq!(book.decode_symbol(&mut r).unwrap(), 0);
        }
    }

    #[test]
    fn empty_training_is_error() {
        assert!(matches!(
            HuffmanCodebook::from_frequencies(&BTreeMap::new()),
            Err(CodingError::EmptyAlphabet)
        ));
        assert!(matches!(
            HuffmanCodebook::train_from_code_sequences(std::iter::empty()),
            Err(CodingError::EmptyAlphabet)
        ));
    }

    #[test]
    fn train_from_sequences_roundtrip() {
        let seqs: Vec<Vec<u32>> = vec![vec![64, 64, 65, 66, 65], vec![10, 10, 10, 11]];
        let book = HuffmanCodebook::train_from_code_sequences(seqs.iter().map(|v| &v[..])).unwrap();
        assert!(book.code_for(0).is_some());
        assert!(book.code_for(1).is_some());
        assert!(book.code_for(-1).is_some());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-5i64, -1, 0, 1, 5, i64::MAX, i64::MIN + 1] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (back, used) = read_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
        assert_eq!(read_varint(&[0x80]), None);
    }

    #[test]
    fn deterministic_construction() {
        let a = HuffmanCodebook::from_frequencies(&peaked_freqs()).unwrap();
        let b = HuffmanCodebook::from_frequencies(&peaked_freqs()).unwrap();
        assert_eq!(a, b);
    }
}
