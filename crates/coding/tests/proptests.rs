//! Property-based tests for the entropy-coding substrate.

use hybridcs_coding::{
    crc32, delta_decode, delta_encode, BitReader, BitWriter, HuffmanCodebook, LowResCodec,
    RleLowResCodec,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    /// Arbitrary (value, width) sequences round-trip through the bit I/O.
    #[test]
    fn bitstream_roundtrip(ops in prop::collection::vec((any::<u64>(), 1u32..=64), 1..64)) {
        let mut writer = BitWriter::new();
        for &(value, width) in &ops {
            writer.write_bits(value, width);
        }
        let (bytes, len) = writer.finish();
        let mut reader = BitReader::new(&bytes, len);
        for &(value, width) in &ops {
            let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            prop_assert_eq!(reader.read_bits(width)?, value & mask);
        }
        prop_assert_eq!(reader.remaining(), 0);
    }

    /// Delta coding round-trips every u32 sequence.
    #[test]
    fn delta_roundtrip(codes in prop::collection::vec(any::<u32>(), 0..200)) {
        let (first, diffs) = delta_encode(&codes);
        if codes.is_empty() {
            prop_assert!(diffs.is_empty());
        } else {
            prop_assert_eq!(delta_decode(first, &diffs).unwrap(), codes);
        }
    }

    /// Huffman round-trips any symbol stream over any trained alphabet
    /// (the escape mechanism covers out-of-alphabet symbols).
    #[test]
    fn huffman_roundtrip_with_escapes(
        training in prop::collection::vec(-20i64..20, 1..50),
        stream in prop::collection::vec(-1000i64..1000, 0..100),
    ) {
        let mut freqs = BTreeMap::new();
        for s in training {
            *freqs.entry(s).or_insert(0u64) += 1;
        }
        let book = HuffmanCodebook::from_frequencies(&freqs).unwrap();
        let mut writer = BitWriter::new();
        for &s in &stream {
            book.encode_symbol(&mut writer, s);
        }
        let (bytes, len) = writer.finish();
        let mut reader = BitReader::new(&bytes, len);
        for &expected in &stream {
            prop_assert_eq!(book.decode_symbol(&mut reader)?, expected);
        }
    }

    /// Codebook serialization is a lossless bijection on the code
    /// assignment.
    #[test]
    fn codebook_serialization_roundtrip(symbols in prop::collection::vec(-500i64..500, 1..80)) {
        let mut freqs = BTreeMap::new();
        for (k, s) in symbols.iter().enumerate() {
            *freqs.entry(*s).or_insert(0u64) += 1 + (k as u64 % 7);
        }
        let book = HuffmanCodebook::from_frequencies(&freqs).unwrap();
        let back = HuffmanCodebook::deserialize(&book.serialize()).unwrap();
        prop_assert_eq!(book, back);
    }

    /// Both frame codecs are lossless on arbitrary in-range code frames.
    #[test]
    fn frame_codecs_roundtrip(
        frame in prop::collection::vec(0u32..128, 0..300),
        training in prop::collection::vec(0u32..128, 2..100),
    ) {
        let plain_book =
            HuffmanCodebook::train_from_code_sequences([&training[..]]).unwrap();
        let plain = LowResCodec::new(plain_book, 7).unwrap();
        let payload = plain.encode(&frame).unwrap();
        prop_assert_eq!(plain.decode(&payload, frame.len()).unwrap(), frame.clone());

        let rle = RleLowResCodec::train([&training[..]], 7).unwrap();
        let payload = rle.encode(&frame).unwrap();
        prop_assert_eq!(rle.decode(&payload, frame.len()).unwrap(), frame);
    }

    /// CRC-32 detects any single-bit flip.
    #[test]
    fn crc_detects_bit_flips(
        data in prop::collection::vec(any::<u8>(), 1..128),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let clean = crc32(&data);
        let mut flipped = data.clone();
        let i = byte_idx.index(flipped.len());
        flipped[i] ^= 1 << bit;
        prop_assert_ne!(crc32(&flipped), clean);
    }

    /// Kraft equality holds for every trained codebook (the code is a
    /// complete prefix code).
    #[test]
    fn kraft_equality(symbols in prop::collection::vec(-100i64..100, 1..60)) {
        let mut freqs = BTreeMap::new();
        for s in symbols {
            *freqs.entry(s).or_insert(0u64) += 1;
        }
        let book = HuffmanCodebook::from_frequencies(&freqs).unwrap();
        let mut kraft = 0.0;
        let mut all = book.symbols();
        all.push(i64::MIN); // escape
        for s in all {
            let (len, _) = book.code_for(s).unwrap();
            kraft += 2f64.powi(-i32::from(len));
        }
        prop_assert!((kraft - 1.0).abs() < 1e-9, "kraft {}", kraft);
    }
}
