//! Property-based tests for the entropy-coding substrate, running on the
//! in-repo `hybridcs_rand::check` harness (≥ 64 seeded cases per property;
//! failures print a `HYBRIDCS_CHECK_SEED` reproduction line).

use hybridcs_coding::{
    crc32, delta_decode, delta_encode, BitReader, BitWriter, HuffmanCodebook, LowResCodec,
    RleLowResCodec,
};
use hybridcs_rand::check::{check, i64_in, u32_in, u64_any, u8_any, usize_in, vec_of, zip2};
use hybridcs_rand::{prop_assert, prop_assert_eq, prop_assert_ne};
use std::collections::BTreeMap;

/// Arbitrary (value, width) sequences round-trip through the bit I/O.
#[test]
fn bitstream_roundtrip() {
    check(
        "bitstream_roundtrip",
        &vec_of(zip2(u64_any(), u32_in(1, 65)), 1, 64),
        |ops| {
            let mut writer = BitWriter::new();
            for &(value, width) in ops {
                writer.write_bits(value, width);
            }
            let (bytes, len) = writer.finish();
            let mut reader = BitReader::new(&bytes, len);
            for &(value, width) in ops {
                let mask = if width == 64 {
                    u64::MAX
                } else {
                    (1u64 << width) - 1
                };
                prop_assert_eq!(reader.read_bits(width).unwrap(), value & mask);
            }
            prop_assert_eq!(reader.remaining(), 0);
            Ok(())
        },
    );
}

/// Delta coding round-trips every u32 sequence.
#[test]
fn delta_roundtrip() {
    check(
        "delta_roundtrip",
        &vec_of(u32_in(0, u32::MAX), 0, 200),
        |codes| {
            let (first, diffs) = delta_encode(codes);
            if codes.is_empty() {
                prop_assert!(diffs.is_empty());
            } else {
                prop_assert_eq!(delta_decode(first, &diffs).unwrap(), codes.clone());
            }
            Ok(())
        },
    );
}

/// Huffman round-trips any symbol stream over any trained alphabet
/// (the escape mechanism covers out-of-alphabet symbols).
#[test]
fn huffman_roundtrip_with_escapes() {
    check(
        "huffman_roundtrip_with_escapes",
        &zip2(
            vec_of(i64_in(-20, 20), 1, 50),
            vec_of(i64_in(-1000, 1000), 0, 100),
        ),
        |(training, stream)| {
            let mut freqs = BTreeMap::new();
            for &s in training {
                *freqs.entry(s).or_insert(0u64) += 1;
            }
            let book = HuffmanCodebook::from_frequencies(&freqs).unwrap();
            let mut writer = BitWriter::new();
            for &s in stream {
                book.encode_symbol(&mut writer, s);
            }
            let (bytes, len) = writer.finish();
            let mut reader = BitReader::new(&bytes, len);
            for &expected in stream {
                prop_assert_eq!(book.decode_symbol(&mut reader).unwrap(), expected);
            }
            Ok(())
        },
    );
}

/// Codebook serialization is a lossless bijection on the code assignment.
#[test]
fn codebook_serialization_roundtrip() {
    check(
        "codebook_serialization_roundtrip",
        &vec_of(i64_in(-500, 500), 1, 80),
        |symbols| {
            let mut freqs = BTreeMap::new();
            for (k, s) in symbols.iter().enumerate() {
                *freqs.entry(*s).or_insert(0u64) += 1 + (k as u64 % 7);
            }
            let book = HuffmanCodebook::from_frequencies(&freqs).unwrap();
            let back = HuffmanCodebook::deserialize(&book.serialize()).unwrap();
            prop_assert_eq!(book, back);
            Ok(())
        },
    );
}

/// Both frame codecs are lossless on arbitrary in-range code frames.
#[test]
fn frame_codecs_roundtrip() {
    check(
        "frame_codecs_roundtrip",
        &zip2(
            vec_of(u32_in(0, 128), 0, 300),
            vec_of(u32_in(0, 128), 2, 100),
        ),
        |(frame, training)| {
            let plain_book = HuffmanCodebook::train_from_code_sequences([&training[..]]).unwrap();
            let plain = LowResCodec::new(plain_book, 7).unwrap();
            let payload = plain.encode(frame).unwrap();
            prop_assert_eq!(plain.decode(&payload, frame.len()).unwrap(), frame.clone());

            let rle = RleLowResCodec::train([&training[..]], 7).unwrap();
            let payload = rle.encode(frame).unwrap();
            prop_assert_eq!(rle.decode(&payload, frame.len()).unwrap(), frame.clone());
            Ok(())
        },
    );
}

/// CRC-32 detects any single-bit flip.
#[test]
fn crc_detects_bit_flips() {
    check(
        "crc_detects_bit_flips",
        &zip2(
            vec_of(u8_any(), 1, 128),
            zip2(usize_in(0, usize::MAX), u32_in(0, 8)),
        ),
        |(data, (byte_idx, bit))| {
            let clean = crc32(data);
            let mut flipped = data.clone();
            let i = byte_idx % flipped.len();
            flipped[i] ^= 1 << bit;
            prop_assert_ne!(crc32(&flipped), clean);
            Ok(())
        },
    );
}

/// Kraft equality holds for every trained codebook (the code is a
/// complete prefix code).
#[test]
fn kraft_equality() {
    check(
        "kraft_equality",
        &vec_of(i64_in(-100, 100), 1, 60),
        |symbols| {
            let mut freqs = BTreeMap::new();
            for &s in symbols {
                *freqs.entry(s).or_insert(0u64) += 1;
            }
            let book = HuffmanCodebook::from_frequencies(&freqs).unwrap();
            let mut kraft = 0.0;
            let mut all = book.symbols();
            all.push(i64::MIN); // escape
            for s in all {
                let (len, _) = book.code_for(s).unwrap();
                kraft += 2f64.powi(-i32::from(len));
            }
            prop_assert!((kraft - 1.0).abs() < 1e-9, "kraft {}", kraft);
            Ok(())
        },
    );
}
