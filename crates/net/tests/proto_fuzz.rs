//! Wire-codec robustness properties, mirroring the journal fuzz suite:
//! no byte stream — random, truncated, bit-flipped, or arbitrarily
//! chunked — may panic the [`StreamDecoder`], and damage must cost only
//! the frames it touches (torn frames are detected and the decoder
//! resyncs onto the next good one).
//!
//! Deepened in CI via `HYBRIDCS_CHECK_CASES`, like every `check` suite.

use hybridcs_net::proto::{encode, Message, StreamDecoder};
use hybridcs_rand::check::{check, u64_in, u8_any, usize_in, vec_of, zip2};

/// Deterministically builds one message from fuzz words (all 13 shapes
/// reachable).
fn message_from(words: &[u64], bytes: &[u8]) -> Message {
    let w = |i: usize| words.get(i).copied().unwrap_or(0);
    match w(0) % 13 {
        0 => Message::Hello {
            version: w(1) as u16,
            device: w(2),
            shape_fp: w(3),
            config_fp: w(4),
        },
        1 => Message::HelloAck {
            session: w(1),
            granted: w(2),
        },
        2 => Message::HelloReject {
            code: (w(1) % 5) as u8,
        },
        3 => Message::TimeSync { device_tick: w(1) },
        4 => Message::TimeSyncAck {
            device_tick: w(1),
            server_logical: w(2),
        },
        5 => Message::Frame {
            sequence: w(1) as u32,
            device_tick: w(2),
            packet: bytes.to_vec(),
        },
        6 => Message::Credit { granted: w(1) },
        7 => Message::Nack {
            sequences: words.iter().map(|v| *v as u32).collect(),
        },
        8 => Message::FrameLost {
            sequence: w(1) as u32,
        },
        9 => Message::Heartbeat {
            sent_through: w(1) as u32,
        },
        10 => Message::Overload { level: w(1) as u8 },
        11 => Message::Close,
        _ => Message::CloseAck { committed: w(1) },
    }
}

/// A fuzz case: a handful of messages plus raw bytes to abuse.
fn stream_gen() -> hybridcs_rand::check::Gen<(Vec<Vec<u64>>, Vec<u8>)> {
    zip2(
        vec_of(vec_of(u64_in(0, u64::MAX), 1, 6), 1, 8),
        vec_of(u8_any(), 0, 64),
    )
}

fn build_messages(word_lists: &[Vec<u64>], bytes: &[u8]) -> Vec<Message> {
    word_lists
        .iter()
        .map(|words| message_from(words, bytes))
        .collect()
}

fn decode_all(dec: &mut StreamDecoder) -> Vec<Message> {
    let mut out = Vec::new();
    while let Some(m) = dec.next_message() {
        out.push(m);
    }
    out
}

#[test]
fn arbitrary_bytes_never_panic_and_anything_decoded_is_canonical() {
    check(
        "random bytes never panic the stream decoder",
        &vec_of(u8_any(), 0, 1024),
        |bytes| {
            let mut dec = StreamDecoder::new();
            dec.extend(bytes);
            let decoded = decode_all(&mut dec);
            if decoded.len() > bytes.len() {
                return Err("more messages than input bytes".to_string());
            }
            // Whatever survived the CRC gauntlet must round-trip: the
            // decoder only ever yields canonical messages.
            for m in decoded {
                let mut again = StreamDecoder::new();
                again.extend(&encode(&m));
                if again.next_message().as_ref() != Some(&m) {
                    return Err(format!("decoded message does not round-trip: {m:?}"));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn chunk_boundaries_are_invisible() {
    check(
        "random chunking decodes identically to one-shot",
        &zip2(stream_gen(), vec_of(usize_in(1, 37), 1, 16)),
        |((word_lists, bytes), cuts)| {
            let messages = build_messages(word_lists, bytes);
            let mut stream = Vec::new();
            for m in &messages {
                stream.extend_from_slice(&encode(m));
            }
            let mut oneshot = StreamDecoder::new();
            oneshot.extend(&stream);
            let reference = decode_all(&mut oneshot);

            let mut chunked = StreamDecoder::new();
            let mut seen = Vec::new();
            let mut pos = 0usize;
            let mut cut_iter = cuts.iter().cycle();
            while pos < stream.len() {
                let step = (*cut_iter.next().expect("cycle")).min(stream.len() - pos);
                chunked.extend(&stream[pos..pos + step]);
                seen.extend(decode_all(&mut chunked));
                pos += step;
            }
            if seen != reference || reference != messages {
                return Err("chunked decode diverged from one-shot".to_string());
            }
            Ok(())
        },
    );
}

#[test]
fn truncation_yields_exactly_a_prefix() {
    check(
        "a truncated stream decodes to a prefix of the original",
        &zip2(stream_gen(), u64_in(0, u64::MAX)),
        |((word_lists, bytes), cut_word)| {
            let messages = build_messages(word_lists, bytes);
            let mut stream = Vec::new();
            for m in &messages {
                stream.extend_from_slice(&encode(m));
            }
            let cut = (*cut_word as usize) % (stream.len() + 1);
            let mut dec = StreamDecoder::new();
            dec.extend(&stream[..cut]);
            let decoded = decode_all(&mut dec);
            if decoded.len() > messages.len() || decoded != messages[..decoded.len()] {
                return Err(format!(
                    "cut {cut}: decoded {} is not a prefix of {} messages",
                    decoded.len(),
                    messages.len()
                ));
            }
            if dec.resyncs() != 0 {
                return Err("truncation alone must not count as resync".to_string());
            }
            Ok(())
        },
    );
}

#[test]
fn bit_flips_cost_only_the_frames_they_touch() {
    check(
        "untouched frames survive bit flips, in order",
        &zip2(stream_gen(), vec_of(u64_in(0, u64::MAX), 1, 6)),
        |((word_lists, bytes), flips)| {
            let messages = build_messages(word_lists, bytes);
            let frames: Vec<Vec<u8>> = messages.iter().map(encode).collect();
            let spans: Vec<(usize, usize)> = frames
                .iter()
                .scan(0usize, |acc, f| {
                    let start = *acc;
                    *acc += f.len();
                    Some((start, *acc))
                })
                .collect();
            let mut stream: Vec<u8> = frames.concat();
            let total_bits = stream.len() as u64 * 8;
            let mut flipped_bytes = Vec::new();
            for flip in flips {
                let bit = flip % total_bits;
                let byte = (bit / 8) as usize;
                stream[byte] ^= 1 << (bit % 8);
                flipped_bytes.push(byte);
            }
            let untouched: Vec<&Message> = messages
                .iter()
                .zip(&spans)
                .filter(|(_, (s, e))| flipped_bytes.iter().all(|b| b < s || b >= e))
                .map(|(m, _)| m)
                .collect();

            let mut dec = StreamDecoder::new();
            dec.extend(&stream);
            // End-of-stream: a flipped length field must not strand the
            // complete frames buffered behind it.
            dec.finish();
            let decoded = decode_all(&mut dec);
            // Every untouched frame must appear in the decoded output,
            // in its original relative order (resync guarantee).
            let mut cursor = 0usize;
            for want in untouched {
                match decoded[cursor..].iter().position(|m| m == want) {
                    Some(offset) => cursor += offset + 1,
                    None => return Err(format!("untouched frame lost after resync: {want:?}")),
                }
            }
            Ok(())
        },
    );
}
