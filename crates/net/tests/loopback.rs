//! End-to-end loopback tests: real sockets, real poll loops, the full
//! `Hello → TimeSync → frames → Close` lifecycle, with and without
//! radio faults, plus the determinism audit (op-log replay in recorded
//! and session-major order must both reproduce the live outputs
//! bit-for-bit).

use std::collections::BTreeMap;

use hybridcs_core::experiment::default_training_windows;
use hybridcs_core::telemetry::FrameCodec;
use hybridcs_core::{train_lowres_codec, HybridFrontEnd, SupervisedWindow, SystemConfig};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_faults::{FaultyTransport, GilbertElliottConfig, TransportFaultConfig};
use hybridcs_gateway::GatewayConfig;
use hybridcs_net::{
    replay_ops, session_major, ClientConfig, DeviceClient, DevicePhase, IngestConfig, IngestServer,
    RejectCode, ShapeTable,
};

struct Rig {
    system: SystemConfig,
    codec: hybridcs_coding::LowResCodec,
    shape_fp: u64,
}

fn rig() -> Rig {
    let system = SystemConfig {
        measurements: 64,
        ..SystemConfig::default()
    };
    let codec = train_lowres_codec(system.lowres_bits, &default_training_windows(system.window))
        .expect("codec trains");
    let shape_fp = hybridcs_gateway::shape_fingerprint(&system, &codec);
    Rig {
        system,
        codec,
        shape_fp,
    }
}

fn frames_for(rig: &Rig, device: u64, windows: usize) -> Vec<Vec<u8>> {
    let frontend = HybridFrontEnd::new(&rig.system, rig.codec.clone()).expect("frontend");
    let wire = FrameCodec::new(&rig.system).expect("frame codec");
    let physiology = GeneratorConfig::normal_sinus();
    let seconds = (windows * rig.system.window) as f64 / physiology.fs_hz + 2.0;
    let generator = EcgGenerator::new(physiology).expect("generator");
    let strip = generator.generate(seconds, hybridcs_rand::mix(0x1337 ^ device));
    strip
        .chunks_exact(rig.system.window)
        .take(windows)
        .enumerate()
        .map(|(seq, window)| {
            let encoded = frontend.encode(window).expect("encode");
            wire.serialize(seq as u32, &encoded).expect("serialize")
        })
        .collect()
}

fn test_config() -> IngestConfig {
    IngestConfig {
        gateway: GatewayConfig {
            // Shed cheaply: every window lands on the low-res rung, so
            // the test exercises the full protocol without paying for
            // hybrid solves on a CI box.
            admit_quota: 0,
            // Queue-depth shedding depends on global interleaving; the
            // determinism audit requires it off (DESIGN §13).
            max_shard_queue: usize::MAX,
            ..GatewayConfig::default()
        },
        record_ops: true,
        ..IngestConfig::default()
    }
}

/// Runs server + clients to completion on the current thread (poll one
/// round, tick every client, repeat).
fn drive(server: &mut IngestServer, clients: &mut [DeviceClient]) {
    for _ in 0..2_000_000u64 {
        server.poll().expect("server poll");
        let mut all_done = true;
        for client in clients.iter_mut() {
            if !client.tick() {
                all_done = false;
            }
        }
        if all_done && server.active_connections() == 0 {
            return;
        }
    }
    panic!("drive did not converge");
}

fn connect(
    rig: &Rig,
    server: &IngestServer,
    device: u64,
    frames: Vec<Vec<u8>>,
    transport: FaultyTransport,
) -> DeviceClient {
    DeviceClient::connect(
        &server.local_addr().to_string(),
        device,
        rig.shape_fp,
        server.config_fingerprint(),
        frames,
        transport,
        ClientConfig {
            heartbeat_after: 16,
            ..ClientConfig::default()
        },
    )
    .expect("connect")
}

fn clean() -> FaultyTransport {
    FaultyTransport::new(TransportFaultConfig::clean(), 1)
}

fn assert_replays_match(
    server: &mut IngestServer,
    config: &GatewayConfig,
    shapes: &ShapeTable,
    live: &BTreeMap<u64, Vec<SupervisedWindow>>,
) {
    let ops = server.take_ops();
    assert!(!ops.is_empty(), "op log recorded");
    let recorded_order = replay_ops(config, shapes, &ops).expect("replay recorded order");
    assert_eq!(
        &recorded_order, live,
        "recorded-order replay must be bit-identical to the live socket path"
    );
    let major = session_major(&ops);
    let major_out = replay_ops(config, shapes, &major).expect("replay session-major");
    assert_eq!(
        &major_out, live,
        "session-major replay must be bit-identical to the live socket path"
    );
}

#[test]
fn clean_sessions_complete_and_replay_bit_identical() {
    let rig = rig();
    let config = test_config();
    let shapes = ShapeTable::new(vec![(rig.system.clone(), rig.codec.clone())]);
    let mut server =
        IngestServer::bind("127.0.0.1:0", config.clone(), shapes.clone()).expect("bind");

    let windows = 4usize;
    let mut clients: Vec<DeviceClient> = (0..3u64)
        .map(|d| connect(&rig, &server, d, frames_for(&rig, d, windows), clean()))
        .collect();
    drive(&mut server, &mut clients);

    for client in &clients {
        assert_eq!(client.phase(), DevicePhase::Done);
        assert_eq!(client.stats().committed, Some(windows as u64));
        assert!(client.stats().sync.is_some(), "time-sync completed");
    }
    let live = server.take_outputs();
    assert_eq!(live.len(), 3);
    for (device, outputs) in &live {
        assert_eq!(outputs.len(), windows, "device {device}");
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(out.sequence, Some(i as u32));
        }
    }
    assert_replays_match(&mut server, &config.gateway, &shapes, &live);
}

#[test]
fn faulty_radio_sessions_still_complete_and_replay_bit_identical() {
    let rig = rig();
    let config = test_config();
    let shapes = ShapeTable::new(vec![(rig.system.clone(), rig.codec.clone())]);
    let mut server =
        IngestServer::bind("127.0.0.1:0", config.clone(), shapes.clone()).expect("bind");

    let windows = 6usize;
    let fault = TransportFaultConfig {
        channel: GilbertElliottConfig::burst_loss(0.15, 2.0),
        reorder: 0.10,
        split: 0.30,
    };
    let mut clients: Vec<DeviceClient> = (0..4u64)
        .map(|d| {
            connect(
                &rig,
                &server,
                d,
                frames_for(&rig, d, windows),
                FaultyTransport::new(fault, 0xFA17 + d),
            )
        })
        .collect();
    drive(&mut server, &mut clients);

    for client in &clients {
        assert_eq!(
            client.phase(),
            DevicePhase::Done,
            "device {}",
            client.device()
        );
    }
    let live = server.take_outputs();
    assert_eq!(live.len(), 4);
    // Every window position is accounted for: delivered, repaired, or
    // concealed — the gateway never returns fewer windows than the
    // stream described.
    for outputs in live.values() {
        assert_eq!(outputs.len(), windows);
    }
    assert_replays_match(&mut server, &config.gateway, &shapes, &live);
}

#[test]
fn handshake_rejections_name_their_reason() {
    let rig = rig();
    let config = test_config();
    let shapes = ShapeTable::new(vec![(rig.system.clone(), rig.codec.clone())]);
    let mut server = IngestServer::bind("127.0.0.1:0", config, shapes).expect("bind");
    let addr = server.local_addr().to_string();
    let frames = frames_for(&rig, 9, 1);

    // Wrong gateway-config fingerprint.
    let mut bad_config = DeviceClient::connect(
        &addr,
        9,
        rig.shape_fp,
        server.config_fingerprint() ^ 1,
        frames.clone(),
        clean(),
        ClientConfig::default(),
    )
    .expect("connect");
    // Unknown shape fingerprint.
    let mut bad_shape = DeviceClient::connect(
        &addr,
        10,
        rig.shape_fp ^ 1,
        server.config_fingerprint(),
        frames.clone(),
        clean(),
        ClientConfig::default(),
    )
    .expect("connect");

    let mut clients = vec![bad_config, bad_shape];
    for _ in 0..200_000u64 {
        server.poll().expect("poll");
        if clients.iter_mut().all(|c| c.tick()) {
            break;
        }
    }
    bad_config = clients.remove(0);
    bad_shape = clients.remove(0);
    assert_eq!(bad_config.phase(), DevicePhase::Failed);
    assert_eq!(
        bad_config.stats().rejected,
        Some(RejectCode::ConfigMismatch.as_u8())
    );
    assert_eq!(bad_shape.phase(), DevicePhase::Failed);
    assert_eq!(
        bad_shape.stats().rejected,
        Some(RejectCode::UnknownShape.as_u8())
    );
    assert_eq!(server.sessions_closed(), 0);
}

#[test]
fn duplicate_device_id_is_rejected_while_first_lives() {
    let rig = rig();
    let config = test_config();
    let shapes = ShapeTable::new(vec![(rig.system.clone(), rig.codec.clone())]);
    let mut server = IngestServer::bind("127.0.0.1:0", config, shapes).expect("bind");

    let mut first = connect(&rig, &server, 42, frames_for(&rig, 42, 2), clean());
    // Let the first handshake land before the imposter shows up.
    for _ in 0..50 {
        server.poll().expect("poll");
        first.tick();
        if first.phase() == DevicePhase::Streaming {
            break;
        }
    }
    assert_eq!(first.phase(), DevicePhase::Streaming);

    // While the first session is live (not ticked, so it cannot close),
    // the same device id must be refused.
    let mut imposter = connect(&rig, &server, 42, frames_for(&rig, 42, 2), clean());
    for _ in 0..200_000u64 {
        server.poll().expect("poll");
        if imposter.tick() {
            break;
        }
    }
    assert_eq!(imposter.phase(), DevicePhase::Failed);
    assert_eq!(
        imposter.stats().rejected,
        Some(RejectCode::Duplicate.as_u8())
    );

    let mut clients = vec![first];
    drive(&mut server, &mut clients);
    assert_eq!(clients[0].phase(), DevicePhase::Done);
}

#[test]
fn overload_withholds_credit_and_recovers() {
    let rig = rig();
    let mut config = test_config();
    // Enter overload almost immediately and keep batches tiny so the
    // stall/recover cycle happens many times.
    config.overload_pending = 2;
    config.flush_pending = 4;
    config.recv_window = 4;
    let shapes = ShapeTable::new(vec![(rig.system.clone(), rig.codec.clone())]);
    let mut server =
        IngestServer::bind("127.0.0.1:0", config.clone(), shapes.clone()).expect("bind");

    let windows = 8usize;
    let mut clients: Vec<DeviceClient> = (0..3u64)
        .map(|d| connect(&rig, &server, d, frames_for(&rig, d, windows), clean()))
        .collect();
    drive(&mut server, &mut clients);

    let live = server.take_outputs();
    assert_eq!(live.len(), 3);
    for outputs in live.values() {
        assert_eq!(outputs.len(), windows);
    }
    let overloads: u64 = clients.iter().map(|c| c.stats().overloads).sum();
    assert!(overloads > 0, "overload notices reached the devices");
    assert_replays_match(&mut server, &config.gateway, &shapes, &live);
}
