//! The ingest server: a non-blocking TCP listener, a hand-rolled poll
//! loop, and the bridge that demultiplexes socket connections into the
//! [`Gateway`].
//!
//! # Poll loop
//!
//! No tokio, no mio: the listener and every accepted stream run in
//! non-blocking mode and [`IngestServer::poll`] makes one bounded pass —
//! accept until `WouldBlock`, read each connection (up to a per-round
//! byte budget), decode and act on complete messages, apply the flush
//! policy, then drain outboxes. The caller owns the loop cadence (spin
//! it from a thread, interleave it with client pumps in a test, or sleep
//! between rounds); all timeouts are counted in *rounds*, which keeps
//! them deterministic under test.
//!
//! # Backpressure
//!
//! Flow control is a cumulative credit window: `HelloAck` grants
//! `recv_window` frame sends, and each frame the gateway accepts moves
//! the grant forward (`Credit { granted = delivered + recv_window }`).
//! When the gateway's pending-window count crosses
//! [`IngestConfig::overload_pending`], the server *withholds* credit
//! updates — the device's window closes by itself within `recv_window`
//! frames, which is backpressure expressed entirely in the protocol; the
//! server additionally stops and the kernel's TCP window eventually
//! closes too. Stalled connections get an `Overload` notice, the
//! gateway's own admission quotas shed the queued excess to the
//! low-resolution rung, and the next flush re-opens every stalled
//! window. Retransmissions answering a `Nack` are window-exempt so
//! repair can always make progress.
//!
//! # Determinism bridge
//!
//! The gateway's §9 contract is *per-session outputs are bit-identical
//! regardless of interleaving* — but a socket tier is nondeterminism
//! distilled (accept order, chunk boundaries, scheduler timing). The
//! bridge therefore keeps the contract auditable instead of assuming it:
//! with [`IngestConfig::record_ops`] set, every state-changing gateway
//! call the poll loop makes is appended to an [`IngestOp`] log, and
//! [`replay_ops`] re-executes a log against a fresh in-process gateway.
//! Replaying the recorded global order must reproduce the live outputs
//! bit-for-bit (the bridge adds no hidden state), and replaying the
//! [`session_major`] reordering must too (socket interleaving does not
//! leak into per-session results, provided queue-depth shedding is
//! disabled — see DESIGN §13). The ingest soak asserts both.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Instant;

use hybridcs_coding::LowResCodec;
use hybridcs_core::{SupervisedWindow, SystemConfig};
use hybridcs_gateway::{
    config_fingerprint, shape_fingerprint, Gateway, GatewayConfig, GatewayError,
};
use hybridcs_obs::flight::emit_with;
use hybridcs_obs::{EventContext, EventKind};

use crate::proto::{encode, Message, RejectCode, StreamDecoder, PROTO_VERSION};
use crate::NetError;

/// Flight-recorder codes for [`EventKind::Conn`] (indexes into
/// `hybridcs_obs::flight::CONN_STEPS`).
mod conn_step {
    pub const ACCEPT: u8 = 0;
    pub const HELLO_OK: u8 = 1;
    pub const HELLO_REJECT: u8 = 2;
    pub const TIMESYNC: u8 = 3;
    pub const STALL: u8 = 4;
    pub const SHED: u8 = 5;
    pub const TIMEOUT: u8 = 6;
    pub const CLOSE: u8 = 7;
}

/// The operator shapes this server accepts, keyed by the same
/// `shape_fingerprint` the journal uses, so a device handshake names its
/// shape with one u64.
#[derive(Debug, Clone)]
pub struct ShapeTable {
    entries: Vec<(u64, SystemConfig, LowResCodec)>,
}

impl ShapeTable {
    /// Builds the table, fingerprinting each `(system, codec)` pair.
    #[must_use]
    pub fn new(shapes: Vec<(SystemConfig, LowResCodec)>) -> Self {
        let entries = shapes
            .into_iter()
            .map(|(system, codec)| (shape_fingerprint(&system, &codec), system, codec))
            .collect();
        ShapeTable { entries }
    }

    /// Looks a shape up by fingerprint.
    #[must_use]
    pub fn find(&self, fingerprint: u64) -> Option<(&SystemConfig, &LowResCodec)> {
        self.entries
            .iter()
            .find(|(fp, _, _)| *fp == fingerprint)
            .map(|(_, system, codec)| (system, codec))
    }

    /// The accepted fingerprints, in table order.
    #[must_use]
    pub fn fingerprints(&self) -> Vec<u64> {
        self.entries.iter().map(|(fp, _, _)| *fp).collect()
    }
}

/// Ingest-tier policy knobs (the gateway's own knobs ride along in
/// [`gateway`](IngestConfig::gateway)).
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Configuration for the embedded [`Gateway`].
    pub gateway: GatewayConfig,
    /// Per-connection receive window: how many frame sends a device may
    /// have outstanding beyond what the server has accepted.
    pub recv_window: u64,
    /// Pending-window watermark at which the server enters overload:
    /// credits are withheld and `Overload` is signalled.
    pub overload_pending: usize,
    /// Explicitly flush the gateway once this many windows are pending
    /// (auto-flush at the gateway's own batch capacity still applies).
    pub flush_pending: usize,
    /// Close a connection that has been silent for this many poll
    /// rounds.
    pub idle_timeout_rounds: u64,
    /// Per-connection, per-round read budget in bytes (fairness bound).
    pub read_budget: usize,
    /// Connections beyond this are rejected with `server_full`.
    pub max_connections: usize,
    /// Record every state-changing gateway call as an [`IngestOp`] for
    /// determinism audits ([`replay_ops`]).
    pub record_ops: bool,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            gateway: GatewayConfig::default(),
            recv_window: 8,
            overload_pending: 256,
            flush_pending: 64,
            idle_timeout_rounds: 200_000,
            read_budget: 64 * 1024,
            max_connections: 16_384,
            record_ops: false,
        }
    }
}

impl IngestConfig {
    fn validate(&self) -> Result<(), NetError> {
        if self.recv_window == 0 {
            return Err(NetError::Config("recv_window must be at least 1"));
        }
        if self.overload_pending == 0 {
            return Err(NetError::Config("overload_pending must be at least 1"));
        }
        if self.flush_pending == 0 {
            return Err(NetError::Config("flush_pending must be at least 1"));
        }
        if self.read_budget == 0 {
            return Err(NetError::Config("read_budget must be at least 1"));
        }
        if self.max_connections == 0 {
            return Err(NetError::Config("max_connections must be at least 1"));
        }
        Ok(())
    }
}

/// One state-changing gateway call made by the bridge, in global
/// execution order. See [`replay_ops`].
#[derive(Debug, Clone, PartialEq)]
pub enum IngestOp {
    /// `Gateway::handshake` for a device whose shape matched the table.
    Handshake {
        /// Device id (also the session id).
        device: u64,
        /// The matched shape's fingerprint.
        shape_fp: u64,
    },
    /// `Gateway::push` of one opaque wire packet.
    Push {
        /// Session id.
        session: u64,
        /// The pushed packet bytes.
        packet: Vec<u8>,
    },
    /// `Gateway::notify_lost` (device gave up on a retransmission, or a
    /// heartbeat exposed a gap).
    NotifyLost {
        /// Session id.
        session: u64,
        /// The missing sequence.
        sequence: u32,
    },
    /// `Gateway::take_nacks` (consumes ARQ budget, so it must replay).
    TakeNacks {
        /// Session id.
        session: u64,
    },
    /// An explicit `Gateway::flush`.
    Flush,
    /// `Gateway::close`, collecting the session's outputs.
    Close {
        /// Session id.
        session: u64,
    },
}

/// Re-executes an op log against a fresh in-process gateway and returns
/// each closed session's outputs. Used by the determinism audit: the
/// result must be bit-identical to what the live socket path produced.
pub fn replay_ops(
    config: &GatewayConfig,
    shapes: &ShapeTable,
    ops: &[IngestOp],
) -> Result<BTreeMap<u64, Vec<SupervisedWindow>>, NetError> {
    let mut gateway = Gateway::new(*config).map_err(NetError::Gateway)?;
    let mut outputs = BTreeMap::new();
    for op in ops {
        match op {
            IngestOp::Handshake { device, shape_fp } => {
                let (system, codec) = shapes
                    .find(*shape_fp)
                    .ok_or(NetError::Config("op log names an unknown shape"))?;
                gateway
                    .handshake(*device, system, codec.clone())
                    .map_err(NetError::Gateway)?;
            }
            IngestOp::Push { session, packet } => {
                gateway.push(*session, packet).map_err(NetError::Gateway)?;
            }
            IngestOp::NotifyLost { session, sequence } => {
                gateway
                    .notify_lost(*session, *sequence)
                    .map_err(NetError::Gateway)?;
            }
            IngestOp::TakeNacks { session } => {
                gateway.take_nacks(*session).map_err(NetError::Gateway)?;
            }
            IngestOp::Flush => {
                gateway.flush().map_err(NetError::Gateway)?;
            }
            IngestOp::Close { session } => {
                let windows = gateway.close(*session).map_err(NetError::Gateway)?;
                outputs.insert(*session, windows);
            }
        }
    }
    Ok(outputs)
}

/// Reorders an op log session-major: sessions in ascending id order,
/// each session's ops in their original relative order, explicit global
/// flushes dropped (flush timing is output-neutral when queue-depth
/// shedding is disabled). This is the canonical "in-process path" the
/// determinism audit compares against: what a single-threaded caller
/// feeding one session at a time would have executed.
#[must_use]
pub fn session_major(ops: &[IngestOp]) -> Vec<IngestOp> {
    let mut by_session: BTreeMap<u64, Vec<IngestOp>> = BTreeMap::new();
    for op in ops {
        let session = match op {
            IngestOp::Handshake { device, .. } => *device,
            IngestOp::Push { session, .. }
            | IngestOp::NotifyLost { session, .. }
            | IngestOp::TakeNacks { session }
            | IngestOp::Close { session } => *session,
            IngestOp::Flush => continue,
        };
        by_session.entry(session).or_default().push(op.clone());
    }
    by_session.into_values().flatten().collect()
}

/// What one [`IngestServer::poll`] round did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollReport {
    /// Connections accepted this round.
    pub accepted: usize,
    /// Bytes read across all connections.
    pub bytes_read: usize,
    /// Bytes written across all connections.
    pub bytes_written: usize,
    /// Complete messages decoded and handled.
    pub messages: usize,
    /// Connections retired this round (any reason).
    pub closed: usize,
    /// Connections still live after the round.
    pub active: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Accepted; the first message must be `Hello`.
    AwaitHello,
    /// Handshaken; session is live in the gateway.
    Streaming,
    /// Goodbye queued (`CloseAck` or `HelloReject`); retire once the
    /// outbox drains.
    Draining,
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    decoder: StreamDecoder,
    outbox: Vec<u8>,
    out_pos: usize,
    phase: Phase,
    session: Option<u64>,
    synced: bool,
    /// Cumulative send allowance last granted to the device.
    granted: u64,
    /// Frame messages accepted from this connection.
    delivered: u64,
    /// Credit updates are being withheld (overload).
    stalled: bool,
    /// Sequences seen, at or above `heartbeat_floor` (gap audit state).
    seen: BTreeSet<u32>,
    heartbeat_floor: u32,
    last_rx_round: u64,
    resyncs_reported: u64,
    /// Set while handling a read batch: poll nacks afterwards.
    nack_poll_due: bool,
}

impl Conn {
    fn new(stream: TcpStream, round: u64) -> Self {
        Conn {
            stream,
            decoder: StreamDecoder::new(),
            outbox: Vec::new(),
            out_pos: 0,
            phase: Phase::AwaitHello,
            session: None,
            synced: false,
            granted: 0,
            delivered: 0,
            stalled: false,
            seen: BTreeSet::new(),
            heartbeat_floor: 0,
            last_rx_round: round,
            resyncs_reported: 0,
            nack_poll_due: false,
        }
    }

    fn queue(&mut self, message: &Message) {
        self.outbox.extend_from_slice(&encode(message));
    }

    fn outbox_drained(&self) -> bool {
        self.out_pos == self.outbox.len()
    }
}

/// Why a connection was retired (metric label, flight-event arg).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Retire {
    /// Protocol-complete: device sent `Close`, goodbye drained.
    Graceful,
    /// Peer hung up.
    Eof,
    /// Socket error.
    Error,
    /// Idle past the round budget.
    Timeout,
    /// The device violated the protocol state machine.
    Protocol,
    /// Handshake was rejected.
    Rejected,
}

impl Retire {
    fn label(self) -> &'static str {
        match self {
            Retire::Graceful => "graceful",
            Retire::Eof => "eof",
            Retire::Error => "error",
            Retire::Timeout => "timeout",
            Retire::Protocol => "protocol",
            Retire::Rejected => "rejected",
        }
    }
}

/// The socket ingest tier. See the [module docs](self) for the poll
/// loop, backpressure, and determinism story.
pub struct IngestServer {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: IngestConfig,
    shapes: ShapeTable,
    config_fp: u64,
    gateway: Gateway,
    conns: BTreeMap<u64, Conn>,
    next_token: u64,
    round: u64,
    overloaded: bool,
    outputs: BTreeMap<u64, Vec<SupervisedWindow>>,
    ops: Vec<IngestOp>,
    /// Arrival stamp of each gateway-pending window, FIFO, for the
    /// frame-to-commit histogram.
    pending_arrivals: VecDeque<Instant>,
    sessions_closed: u64,
}

impl IngestServer {
    /// Binds a non-blocking listener on `addr` (use `"127.0.0.1:0"` for
    /// an ephemeral loopback port) and prepares the gateway bridge.
    pub fn bind(addr: &str, config: IngestConfig, shapes: ShapeTable) -> Result<Self, NetError> {
        config.validate()?;
        let gateway = Gateway::new(config.gateway).map_err(NetError::Gateway)?;
        let listener = TcpListener::bind(addr).map_err(|e| NetError::io("bind", &e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::io("set_nonblocking", &e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| NetError::io("local_addr", &e))?;
        let config_fp = config_fingerprint(&config.gateway);
        Ok(IngestServer {
            listener,
            local_addr,
            config,
            shapes,
            config_fp,
            gateway,
            conns: BTreeMap::new(),
            next_token: 0,
            round: 0,
            overloaded: false,
            outputs: BTreeMap::new(),
            ops: Vec::new(),
            pending_arrivals: VecDeque::new(),
            sessions_closed: 0,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The gateway-config fingerprint devices must present.
    #[must_use]
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fp
    }

    /// Live connections.
    #[must_use]
    pub fn active_connections(&self) -> usize {
        self.conns.len()
    }

    /// Sessions closed so far (any reason).
    #[must_use]
    pub fn sessions_closed(&self) -> u64 {
        self.sessions_closed
    }

    /// Drains the per-session outputs collected at session close.
    pub fn take_outputs(&mut self) -> BTreeMap<u64, Vec<SupervisedWindow>> {
        std::mem::take(&mut self.outputs)
    }

    /// Drains the recorded op log (empty unless
    /// [`IngestConfig::record_ops`]).
    pub fn take_ops(&mut self) -> Vec<IngestOp> {
        std::mem::take(&mut self.ops)
    }

    /// Read access to the embedded gateway (pending counts, phases).
    #[must_use]
    pub fn gateway(&self) -> &Gateway {
        &self.gateway
    }

    fn record(&mut self, op: IngestOp) {
        if self.config.record_ops {
            self.ops.push(op);
        }
    }

    fn event_ctx(&self, session: u64) -> EventContext {
        EventContext {
            logical: self.gateway.logical_clock(),
            session,
            shard: 0,
        }
    }

    /// One bounded pass over the listener and every connection.
    pub fn poll(&mut self) -> Result<PollReport, NetError> {
        self.round += 1;
        let mut report = PollReport::default();
        self.accept_new(&mut report);

        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.service_conn(token, &mut report)?;
        }

        self.apply_flush_policy(report.bytes_read == 0)?;
        self.write_pass(&mut report);
        self.sweep_timeouts(&mut report);

        report.active = self.conns.len();
        Ok(report)
    }

    fn accept_new(&mut self, report: &mut PollReport) {
        let registry = hybridcs_obs::global();
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let mut conn = Conn::new(stream, self.round);
                    registry.counter("net_accepted_total", &[]).inc();
                    emit_with(self.event_ctx(0), EventKind::Conn, conn_step::ACCEPT, token);
                    if self.conns.len() >= self.config.max_connections {
                        conn.queue(&Message::HelloReject {
                            code: RejectCode::ServerFull.as_u8(),
                        });
                        conn.phase = Phase::Draining;
                        registry
                            .counter("net_handshake_total", &[("result", "server_full")])
                            .inc();
                        emit_with(
                            self.event_ctx(0),
                            EventKind::Conn,
                            conn_step::HELLO_REJECT,
                            u64::from(RejectCode::ServerFull.as_u8()),
                        );
                    }
                    self.conns.insert(token, conn);
                    report.accepted += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Reads one connection's socket and handles every complete message.
    fn service_conn(&mut self, token: u64, report: &mut PollReport) -> Result<(), NetError> {
        let Some(mut conn) = self.conns.remove(&token) else {
            return Ok(());
        };
        let mut budget = self.config.read_budget;
        let mut buf = [0u8; 4096];
        let mut hangup: Option<Retire> = None;
        while budget > 0 {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.decoder.finish();
                    hangup = Some(Retire::Eof);
                    break;
                }
                Ok(n) => {
                    conn.decoder.extend(&buf[..n]);
                    conn.last_rx_round = self.round;
                    budget = budget.saturating_sub(n);
                    report.bytes_read += n;
                    hybridcs_obs::global()
                        .counter("net_rx_bytes_total", &[])
                        .add(n as u64);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.decoder.finish();
                    hangup = Some(Retire::Error);
                    break;
                }
            }
        }

        // Everything already buffered still counts, even when the peer
        // hung up mid-read — a device may send its whole stream and
        // close without waiting for the goodbye.
        let mut retire: Option<Retire> = None;
        while retire.is_none() {
            let Some(message) = conn.decoder.next_message() else {
                break;
            };
            report.messages += 1;
            retire = self.handle_message(&mut conn, token, message)?;
        }
        if retire.is_none() {
            retire = hangup;
        }

        let resyncs = conn.decoder.resyncs();
        if resyncs > conn.resyncs_reported {
            hybridcs_obs::global()
                .counter("net_resyncs_total", &[])
                .add(resyncs - conn.resyncs_reported);
            conn.resyncs_reported = resyncs;
        }

        if conn.nack_poll_due {
            conn.nack_poll_due = false;
            if let Some(session) = conn.session {
                self.record(IngestOp::TakeNacks { session });
                let nacks = self
                    .gateway
                    .take_nacks(session)
                    .map_err(NetError::Gateway)?;
                if !nacks.is_empty() {
                    conn.queue(&Message::Nack { sequences: nacks });
                }
            }
        }

        match retire {
            Some(reason) => {
                self.retire_conn(conn, reason, report)?;
            }
            None => {
                self.conns.insert(token, conn);
            }
        }
        Ok(())
    }

    /// Applies one decoded message to the connection state machine.
    /// Returns a retire reason when the message ends the connection.
    fn handle_message(
        &mut self,
        conn: &mut Conn,
        token: u64,
        message: Message,
    ) -> Result<Option<Retire>, NetError> {
        let registry = hybridcs_obs::global();
        // Draining connections are already saying goodbye; anything still
        // in flight from the device is ignored.
        if conn.phase == Phase::Draining {
            return Ok(None);
        }
        match (conn.phase, message) {
            (
                Phase::AwaitHello,
                Message::Hello {
                    version,
                    device,
                    shape_fp,
                    config_fp,
                },
            ) => {
                let verdict = if version != PROTO_VERSION {
                    Err(RejectCode::BadVersion)
                } else if config_fp != self.config_fp {
                    Err(RejectCode::ConfigMismatch)
                } else if self.shapes.find(shape_fp).is_none() {
                    Err(RejectCode::UnknownShape)
                } else {
                    let (system, codec) = self.shapes.find(shape_fp).expect("checked above");
                    let (system, codec) = (system.clone(), codec.clone());
                    match self.gateway.handshake(device, &system, codec) {
                        Ok(()) => Ok(()),
                        Err(GatewayError::DuplicateHandshake(_)) => Err(RejectCode::Duplicate),
                        Err(e) => return Err(NetError::Gateway(e)),
                    }
                };
                match verdict {
                    Ok(()) => {
                        self.record(IngestOp::Handshake { device, shape_fp });
                        conn.session = Some(device);
                        conn.phase = Phase::Streaming;
                        conn.granted = self.config.recv_window;
                        conn.queue(&Message::HelloAck {
                            session: device,
                            granted: conn.granted,
                        });
                        registry
                            .counter("net_handshake_total", &[("result", "ok")])
                            .inc();
                        emit_with(
                            self.event_ctx(device),
                            EventKind::Conn,
                            conn_step::HELLO_OK,
                            device,
                        );
                        Ok(None)
                    }
                    Err(code) => {
                        conn.queue(&Message::HelloReject { code: code.as_u8() });
                        conn.phase = Phase::Draining;
                        registry
                            .counter("net_handshake_total", &[("result", code.name())])
                            .inc();
                        emit_with(
                            self.event_ctx(device),
                            EventKind::Conn,
                            conn_step::HELLO_REJECT,
                            u64::from(code.as_u8()),
                        );
                        Ok(None)
                    }
                }
            }
            (Phase::Streaming, Message::TimeSync { device_tick }) => {
                conn.synced = true;
                conn.queue(&Message::TimeSyncAck {
                    device_tick,
                    server_logical: self.gateway.logical_clock(),
                });
                registry.counter("net_timesync_total", &[]).inc();
                emit_with(
                    self.event_ctx(conn.session.unwrap_or(0)),
                    EventKind::Conn,
                    conn_step::TIMESYNC,
                    device_tick,
                );
                Ok(None)
            }
            (
                Phase::Streaming,
                Message::Frame {
                    sequence, packet, ..
                },
            ) => {
                if !conn.synced {
                    registry
                        .counter(
                            "net_protocol_errors_total",
                            &[("kind", "frame_before_sync")],
                        )
                        .inc();
                    return Ok(Some(Retire::Protocol));
                }
                let session = conn.session.expect("streaming implies session");
                let before = self.gateway.pending_windows();
                self.record(IngestOp::Push {
                    session,
                    packet: packet.clone(),
                });
                self.gateway
                    .push(session, &packet)
                    .map_err(NetError::Gateway)?;
                self.note_pending_delta(before);
                conn.delivered += 1;
                conn.nack_poll_due = true;
                if sequence >= conn.heartbeat_floor {
                    conn.seen.insert(sequence);
                }
                registry.counter("net_frames_total", &[]).inc();
                self.update_overload_state();
                self.grant_credit(conn);
                Ok(None)
            }
            (Phase::Streaming, Message::FrameLost { sequence }) => {
                let session = conn.session.expect("streaming implies session");
                self.record(IngestOp::NotifyLost { session, sequence });
                self.gateway
                    .notify_lost(session, sequence)
                    .map_err(NetError::Gateway)?;
                conn.nack_poll_due = true;
                registry.counter("net_frames_lost_total", &[]).inc();
                Ok(None)
            }
            (Phase::Streaming, Message::Heartbeat { sent_through }) => {
                let session = conn.session.expect("streaming implies session");
                // Any first-transmission the device claims to have sent
                // but we never saw is a hole the radio ate; open it so
                // the ARQ can nack or declare it.
                for sequence in conn.heartbeat_floor..sent_through {
                    if !conn.seen.contains(&sequence) {
                        self.record(IngestOp::NotifyLost { session, sequence });
                        self.gateway
                            .notify_lost(session, sequence)
                            .map_err(NetError::Gateway)?;
                        conn.nack_poll_due = true;
                    }
                }
                if sent_through > conn.heartbeat_floor {
                    conn.heartbeat_floor = sent_through;
                    conn.seen.retain(|s| *s >= sent_through);
                }
                // Re-issue the current grant: a lost Credit must not
                // stall the device forever.
                self.grant_credit(conn);
                registry.counter("net_heartbeats_total", &[]).inc();
                Ok(None)
            }
            (Phase::Streaming, Message::Close) => {
                let session = conn.session.expect("streaming implies session");
                self.record(IngestOp::Close { session });
                let before = self.gateway.pending_windows();
                let windows = self.gateway.close(session).map_err(NetError::Gateway)?;
                self.note_pending_delta(before);
                let committed = windows.len() as u64;
                self.outputs.insert(session, windows);
                self.sessions_closed += 1;
                conn.queue(&Message::CloseAck { committed });
                conn.phase = Phase::Draining;
                conn.session = None;
                registry
                    .counter("net_closed_total", &[("reason", Retire::Graceful.label())])
                    .inc();
                emit_with(
                    self.event_ctx(session),
                    EventKind::Conn,
                    conn_step::CLOSE,
                    committed,
                );
                Ok(None)
            }
            (_, other) => {
                registry
                    .counter("net_protocol_errors_total", &[("kind", other.name())])
                    .inc();
                let _ = token;
                Ok(Some(Retire::Protocol))
            }
        }
    }

    /// Sends the device an updated cumulative grant, unless the server
    /// is overloaded — then the window is deliberately left to close.
    fn grant_credit(&mut self, conn: &mut Conn) {
        if self.overloaded {
            if !conn.stalled {
                conn.stalled = true;
                conn.queue(&Message::Overload { level: 1 });
                hybridcs_obs::global()
                    .counter("net_backpressure_stalls_total", &[])
                    .inc();
                emit_with(
                    self.event_ctx(conn.session.unwrap_or(0)),
                    EventKind::Conn,
                    conn_step::STALL,
                    conn.session.unwrap_or(0),
                );
            }
            return;
        }
        conn.stalled = false;
        let target = conn.delivered + self.config.recv_window;
        if target > conn.granted {
            conn.granted = target;
            conn.queue(&Message::Credit {
                granted: conn.granted,
            });
        }
    }

    /// Tracks arrival stamps for windows entering the pending set, and
    /// observes commit latency for windows that left it (auto-flush).
    fn note_pending_delta(&mut self, before: usize) {
        let now = Instant::now();
        let after = self.gateway.pending_windows();
        for _ in before..after {
            self.pending_arrivals.push_back(now);
        }
        self.settle_commits(now);
    }

    fn settle_commits(&mut self, now: Instant) {
        let pending = self.gateway.pending_windows();
        let histogram = hybridcs_obs::global().histogram("net_frame_to_commit_seconds", &[]);
        while self.pending_arrivals.len() > pending {
            let arrived = self
                .pending_arrivals
                .pop_front()
                .expect("len checked above");
            histogram.record(now.duration_since(arrived).as_secs_f64());
        }
    }

    fn update_overload_state(&mut self) {
        let pending = self.gateway.pending_windows();
        if !self.overloaded && pending >= self.config.overload_pending {
            self.overloaded = true;
            hybridcs_obs::global()
                .counter("net_shed_transitions_total", &[])
                .inc();
            emit_with(
                self.event_ctx(0),
                EventKind::Conn,
                conn_step::SHED,
                pending as u64,
            );
        } else if self.overloaded && pending < self.config.overload_pending / 2 {
            self.overloaded = false;
        }
    }

    /// Flushes the gateway when enough windows are pending, or when the
    /// round was idle and work is waiting (latency floor). Re-opens
    /// stalled windows afterwards.
    fn apply_flush_policy(&mut self, idle_round: bool) -> Result<(), NetError> {
        let pending = self.gateway.pending_windows();
        if pending == 0 || (pending < self.config.flush_pending && !idle_round) {
            return Ok(());
        }
        self.record(IngestOp::Flush);
        self.gateway.flush().map_err(NetError::Gateway)?;
        self.settle_commits(Instant::now());
        self.update_overload_state();
        if !self.overloaded {
            let recv_window = self.config.recv_window;
            let mut unstalled = Vec::new();
            for (token, conn) in &mut self.conns {
                if conn.stalled {
                    conn.stalled = false;
                    let target = conn.delivered + recv_window;
                    if target > conn.granted {
                        conn.granted = target;
                        conn.queue(&Message::Credit {
                            granted: conn.granted,
                        });
                    }
                    unstalled.push(*token);
                }
            }
            let _ = unstalled;
        }
        Ok(())
    }

    /// Writes every connection's outbox as far as the kernel allows and
    /// retires drained goodbye connections.
    fn write_pass(&mut self, report: &mut PollReport) {
        let registry = hybridcs_obs::global();
        let mut done: Vec<(u64, Option<Retire>)> = Vec::new();
        for (token, conn) in &mut self.conns {
            let mut broken = false;
            while conn.out_pos < conn.outbox.len() {
                match conn.stream.write(&conn.outbox[conn.out_pos..]) {
                    Ok(0) => {
                        broken = true;
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        report.bytes_written += n;
                        registry.counter("net_tx_bytes_total", &[]).add(n as u64);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
            if conn.out_pos > 0 && conn.outbox_drained() {
                conn.outbox.clear();
                conn.out_pos = 0;
            }
            if broken {
                done.push((*token, Some(Retire::Error)));
            } else if conn.phase == Phase::Draining && conn.outbox_drained() {
                done.push((*token, None));
            }
        }
        for (token, retire) in done {
            if let Some(conn) = self.conns.remove(&token) {
                let reason = retire.unwrap_or(if conn.session.is_none() && conn.granted == 0 {
                    Retire::Rejected
                } else {
                    Retire::Graceful
                });
                // Graceful drains already closed their session and
                // counted themselves; only error paths still need the
                // full retirement bookkeeping.
                if reason == Retire::Error {
                    let mut r = PollReport::default();
                    let _ = self.retire_conn(conn, reason, &mut r);
                    report.closed += r.closed;
                } else {
                    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                    report.closed += 1;
                }
            }
        }
    }

    /// Retires connections that have been silent past the idle budget.
    fn sweep_timeouts(&mut self, report: &mut PollReport) {
        let cutoff = self.round.saturating_sub(self.config.idle_timeout_rounds);
        let stale: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.last_rx_round < cutoff)
            .map(|(t, _)| *t)
            .collect();
        for token in stale {
            if let Some(conn) = self.conns.remove(&token) {
                emit_with(
                    self.event_ctx(conn.session.unwrap_or(token)),
                    EventKind::Conn,
                    conn_step::TIMEOUT,
                    conn.session.unwrap_or(token),
                );
                hybridcs_obs::global()
                    .counter("net_timeouts_total", &[])
                    .inc();
                let _ = self.retire_conn(conn, Retire::Timeout, report);
            }
        }
    }

    /// Final bookkeeping for a connection leaving for any non-graceful
    /// reason: the gateway session (if live) is closed and its outputs
    /// are kept — decodes that happened are real regardless of how the
    /// socket died.
    fn retire_conn(
        &mut self,
        conn: Conn,
        reason: Retire,
        report: &mut PollReport,
    ) -> Result<(), NetError> {
        if let Some(session) = conn.session {
            self.record(IngestOp::Close { session });
            let before = self.gateway.pending_windows();
            let windows = self.gateway.close(session).map_err(NetError::Gateway)?;
            self.note_pending_delta(before);
            let committed = windows.len() as u64;
            self.outputs.insert(session, windows);
            self.sessions_closed += 1;
            emit_with(
                self.event_ctx(session),
                EventKind::Conn,
                conn_step::CLOSE,
                committed,
            );
        }
        hybridcs_obs::global()
            .counter("net_closed_total", &[("reason", reason.label())])
            .inc();
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        report.closed += 1;
        Ok(())
    }
}
