//! The device side of the ingest protocol: a non-blocking client that
//! models one wireless sensor streaming pre-encoded compressed-ECG
//! frames through a (possibly faulty) radio.
//!
//! The client is a poll-style state machine like the server: call
//! [`DeviceClient::tick`] repeatedly and it pumps the socket one bounded
//! step — `Hello → HelloAck → TimeSync → TimeSyncAck → frames under the
//! credit window → Close → CloseAck`. Frame messages pass through a
//! [`FaultyTransport`] (the radio); control messages bypass it, modelling
//! the usual split between a lossy data plane and a link-layer-reliable
//! control plane — and keeping fault injection from wedging the
//! handshake itself.
//!
//! Loss recovery mirrors the in-process soak's contract with the
//! gateway ARQ: a `Nack` triggers a retransmission (window-exempt, also
//! through the radio); a retransmission the radio eats becomes a
//! `FrameLost` so the gateway can stop waiting and conceal. When the
//! device stalls — window closed, nothing arriving — it sends a
//! `Heartbeat { sent_through }` so the server can nack every
//! first-transmission the radio swallowed whole; heartbeats are the
//! liveness backstop that makes client/server progress independent of
//! which particular messages the fault schedule killed.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

use hybridcs_faults::FaultyTransport;

use crate::proto::{encode, Message, StreamDecoder, PROTO_VERSION};

/// Pacing knobs for one [`DeviceClient`] (all in ticks, i.e. calls to
/// [`DeviceClient::tick`]).
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Ticks without progress (no inbound bytes, nothing sendable)
    /// before a `Heartbeat` goes out.
    pub heartbeat_after: u64,
    /// Consecutive quiet heartbeats (after all frames are sent) before
    /// the device declares the stream repaired-or-hopeless and closes.
    pub quiet_heartbeats_to_close: u64,
    /// Ticks to wait for `CloseAck` before giving up the wait (the
    /// session is still closed server-side; only the ack was lost).
    pub close_timeout: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            heartbeat_after: 64,
            quiet_heartbeats_to_close: 3,
            close_timeout: 50_000,
        }
    }
}

/// Where the client is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevicePhase {
    /// `Hello` sent; waiting for the verdict.
    AwaitHelloAck,
    /// Handshake accepted; `TimeSync` sent.
    AwaitTimeSync,
    /// Streaming frames under the credit window.
    Streaming,
    /// `Close` sent; waiting for `CloseAck`.
    Draining,
    /// Finished (see [`DeviceStats::committed`] for the server's count).
    Done,
    /// Rejected, socket error, or protocol violation by the server.
    Failed,
}

/// Counters and outcomes for one device session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Nacked frames retransmitted through the radio.
    pub retransmits: u64,
    /// Retransmissions the radio ate, reported as `FrameLost`.
    pub gave_up: u64,
    /// `Overload` notices received (credit withheld upstream).
    pub overloads: u64,
    /// Heartbeats sent.
    pub heartbeats: u64,
    /// The `(device_tick, server_logical)` pair from time-sync, if it
    /// completed.
    pub sync: Option<(u64, u64)>,
    /// Windows the server committed, from `CloseAck` (None if the ack
    /// never arrived).
    pub committed: Option<u64>,
    /// The rejection code, when the handshake was refused.
    pub rejected: Option<u8>,
}

/// One simulated sensor device. See the [module docs](self).
#[derive(Debug)]
pub struct DeviceClient {
    stream: TcpStream,
    decoder: StreamDecoder,
    /// Outbound chunks; radio splits keep their boundaries so each chunk
    /// is its own `write` call.
    outbox: VecDeque<Vec<u8>>,
    head_pos: usize,
    transport: FaultyTransport,
    config: ClientConfig,
    phase: DevicePhase,
    device: u64,
    frames: Vec<Vec<u8>>,
    next_seq: u32,
    granted: u64,
    sent_total: u64,
    tick: u64,
    last_progress: u64,
    quiet_heartbeats: u64,
    close_sent_at: u64,
    stats: DeviceStats,
}

impl DeviceClient {
    /// Connects to the server and queues the `Hello`. `frames` are the
    /// pre-encoded wire packets, indexed by sequence number; `transport`
    /// is the radio the frame plane passes through.
    pub fn connect(
        addr: &str,
        device: u64,
        shape_fp: u64,
        config_fp: u64,
        frames: Vec<Vec<u8>>,
        transport: FaultyTransport,
        config: ClientConfig,
    ) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let mut client = DeviceClient {
            stream,
            decoder: StreamDecoder::new(),
            outbox: VecDeque::new(),
            head_pos: 0,
            transport,
            config,
            phase: DevicePhase::AwaitHelloAck,
            device,
            frames,
            next_seq: 0,
            granted: 0,
            sent_total: 0,
            tick: 0,
            last_progress: 0,
            quiet_heartbeats: 0,
            close_sent_at: 0,
            stats: DeviceStats::default(),
        };
        client.queue_control(&Message::Hello {
            version: PROTO_VERSION,
            device,
            shape_fp,
            config_fp,
        });
        Ok(client)
    }

    /// The device id.
    #[must_use]
    pub fn device(&self) -> u64 {
        self.device
    }

    /// Current lifecycle phase.
    #[must_use]
    pub fn phase(&self) -> DevicePhase {
        self.phase
    }

    /// Session counters and outcomes.
    #[must_use]
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Wire-codec resyncs observed on the inbound stream.
    #[must_use]
    pub fn resyncs(&self) -> u64 {
        self.decoder.resyncs()
    }

    /// Control-plane message: reliable, bypasses the radio.
    fn queue_control(&mut self, message: &Message) {
        self.outbox.push_back(encode(message));
    }

    /// Data-plane message: through the radio. Returns `true` when the
    /// radio dropped it outright.
    fn queue_data(&mut self, message: &Message) -> bool {
        let framed = encode(message);
        let held_before = self.transport.held();
        let chunks = self.transport.send(&framed);
        let empty = chunks.is_empty();
        for chunk in chunks {
            self.outbox.push_back(chunk);
        }
        // Empty output is either a drop or a reorder hold; a hold is
        // recognizable because the held slot was free and is now taken.
        empty && (held_before || !self.transport.held())
    }

    /// One pump round. Returns `true` once the client is finished
    /// ([`DevicePhase::Done`] or [`DevicePhase::Failed`]).
    pub fn tick(&mut self) -> bool {
        if matches!(self.phase, DevicePhase::Done | DevicePhase::Failed) {
            return true;
        }
        self.tick += 1;
        if !self.pump_writes() || !self.pump_reads() {
            self.phase = DevicePhase::Failed;
            return true;
        }
        while let Some(message) = self.decoder.next_message() {
            self.quiet_heartbeats = 0;
            self.handle(message);
        }
        self.advance();
        matches!(self.phase, DevicePhase::Done | DevicePhase::Failed)
    }

    /// Writes queued chunks as far as the kernel allows. `false` on a
    /// dead socket.
    fn pump_writes(&mut self) -> bool {
        while let Some(front) = self.outbox.front() {
            match self.stream.write(&front[self.head_pos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.head_pos += n;
                    if self.head_pos == front.len() {
                        self.outbox.pop_front();
                        self.head_pos = 0;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }

    /// Reads whatever the kernel has. `false` on a dead socket (EOF is
    /// only fatal before `Done`; the server half-closing after its
    /// goodbye is normal).
    fn pump_reads(&mut self) -> bool {
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    // Peer hung up; any goodbye it sent is already in the
                    // decoder. Let message handling decide how it ends.
                    self.decoder.finish();
                    return self.phase == DevicePhase::Draining || self.decoder.buffered() > 0;
                }
                Ok(n) => {
                    self.decoder.extend(&buf[..n]);
                    self.last_progress = self.tick;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    fn handle(&mut self, message: Message) {
        match message {
            Message::HelloAck { granted, .. } => {
                if self.phase == DevicePhase::AwaitHelloAck {
                    self.granted = granted;
                    let probe = self.tick;
                    self.queue_control(&Message::TimeSync { device_tick: probe });
                    self.phase = DevicePhase::AwaitTimeSync;
                }
            }
            Message::HelloReject { code } => {
                self.stats.rejected = Some(code);
                self.phase = DevicePhase::Failed;
            }
            Message::TimeSyncAck {
                device_tick,
                server_logical,
            } => {
                if self.phase == DevicePhase::AwaitTimeSync {
                    self.stats.sync = Some((device_tick, server_logical));
                    self.phase = DevicePhase::Streaming;
                }
            }
            Message::Credit { granted } => {
                self.granted = self.granted.max(granted);
            }
            Message::Nack { sequences } => {
                // A nack racing our Close is stale; the gateway has
                // already declared those holes.
                if self.phase == DevicePhase::Streaming {
                    for sequence in sequences {
                        self.retransmit(sequence);
                    }
                }
            }
            Message::Overload { .. } => {
                self.stats.overloads += 1;
            }
            Message::CloseAck { committed } => {
                self.stats.committed = Some(committed);
                self.phase = DevicePhase::Done;
            }
            // Server never sends these; noise on a loopback test rig.
            Message::Hello { .. }
            | Message::TimeSync { .. }
            | Message::Frame { .. }
            | Message::FrameLost { .. }
            | Message::Heartbeat { .. }
            | Message::Close => {}
        }
    }

    /// Retransmits a nacked frame through the radio (window-exempt); if
    /// the radio eats the retransmission, reports `FrameLost` so the
    /// gateway stops waiting.
    fn retransmit(&mut self, sequence: u32) {
        let Some(packet) = self.frames.get(sequence as usize).cloned() else {
            return;
        };
        let dropped = self.queue_data(&Message::Frame {
            sequence,
            device_tick: self.tick,
            packet,
        });
        if dropped {
            self.stats.gave_up += 1;
            self.queue_control(&Message::FrameLost { sequence });
        } else {
            self.stats.retransmits += 1;
            self.last_progress = self.tick;
        }
    }

    fn advance(&mut self) {
        match self.phase {
            DevicePhase::Streaming => {
                // First transmissions, as far as the window allows. A
                // frame the radio drops here is recovered later by the
                // heartbeat → nack → retransmit path.
                while self.sent_total < self.granted && (self.next_seq as usize) < self.frames.len()
                {
                    let sequence = self.next_seq;
                    let packet = self.frames[sequence as usize].clone();
                    self.queue_data(&Message::Frame {
                        sequence,
                        device_tick: self.tick,
                        packet,
                    });
                    self.next_seq += 1;
                    self.sent_total += 1;
                    self.last_progress = self.tick;
                }
                let all_sent = (self.next_seq as usize) == self.frames.len();
                if all_sent && self.quiet_heartbeats >= self.config.quiet_heartbeats_to_close {
                    // Flush any reorder-held frame before the goodbye.
                    let tail: Vec<Vec<u8>> = self.transport.flush();
                    for chunk in tail {
                        self.outbox.push_back(chunk);
                    }
                    self.queue_control(&Message::Close);
                    self.phase = DevicePhase::Draining;
                    self.close_sent_at = self.tick;
                } else if self.tick.saturating_sub(self.last_progress)
                    >= self.config.heartbeat_after
                {
                    let tail: Vec<Vec<u8>> = self.transport.flush();
                    for chunk in tail {
                        self.outbox.push_back(chunk);
                    }
                    self.queue_control(&Message::Heartbeat {
                        sent_through: self.next_seq,
                    });
                    self.stats.heartbeats += 1;
                    self.quiet_heartbeats += 1;
                    self.last_progress = self.tick;
                }
            }
            DevicePhase::Draining => {
                if self.tick.saturating_sub(self.close_sent_at) >= self.config.close_timeout {
                    self.phase = DevicePhase::Done;
                }
            }
            DevicePhase::AwaitHelloAck
            | DevicePhase::AwaitTimeSync
            | DevicePhase::Done
            | DevicePhase::Failed => {}
        }
    }
}
