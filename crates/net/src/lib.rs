//! Hermetic socket ingest tier for the compressed-sensing gateway.
//!
//! The paper's topology is many ultra-low-power sensors streaming
//! compressed ECG frames to one powerful aggregator. Up to PR 7 that
//! aggregator — the [`hybridcs_gateway`] — consumed pre-interleaved
//! in-process frame vectors; this crate gives it an actual network edge,
//! built from nothing but `std`:
//!
//! * [`proto`] — the wire protocol: length-prefixed CRC-framed messages
//!   (the journal's framing discipline plus a resync magic) and an
//!   incremental [`StreamDecoder`](proto::StreamDecoder) that survives
//!   arbitrary chunking, truncation, and corruption without panicking;
//! * [`server`] — [`IngestServer`](server::IngestServer): a non-blocking
//!   TCP listener driven by a hand-rolled poll loop (no tokio, no mio),
//!   demultiplexing connections into the gateway with fingerprint-checked
//!   handshakes, epoch time-sync, cumulative-credit receive windows, and
//!   overload shedding coupled to the gateway's admission quotas;
//! * [`client`] — [`DeviceClient`](client::DeviceClient): the matching
//!   poll-style device, streaming pre-encoded frames through a
//!   [`FaultyTransport`](hybridcs_faults::FaultyTransport) radio with
//!   nack-driven retransmission and heartbeat liveness.
//!
//! The protocol state machine, the backpressure → admission-quota
//! coupling, and the determinism argument for the socket path (the
//! [`IngestOp`](server::IngestOp) log and its replay audits) are
//! documented in `DESIGN.md` §13; `examples/ingest_soak.rs` drives the
//! whole tier over loopback at thousands of concurrent sessions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{ClientConfig, DeviceClient, DevicePhase, DeviceStats};
pub use proto::{Message, RejectCode, StreamDecoder, MAX_PAYLOAD_BYTES, PROTO_VERSION};
pub use server::{
    replay_ops, session_major, IngestConfig, IngestOp, IngestServer, PollReport, ShapeTable,
};

/// Errors surfaced by the ingest tier. Wire noise is *not* an error —
/// garbled frames are resynced and counted; these are configuration
/// mistakes, socket-setup failures, or gateway protocol violations
/// (which indicate a bug in the bridge, not in the peer).
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A socket operation needed for setup failed.
    Io {
        /// Which operation (`"bind"`, `"local_addr"`, ...).
        op: &'static str,
        /// The rendered `std::io::Error`.
        detail: String,
    },
    /// The embedded gateway rejected a bridge call.
    Gateway(hybridcs_gateway::GatewayError),
    /// The ingest configuration is invalid.
    Config(&'static str),
}

impl NetError {
    pub(crate) fn io(op: &'static str, e: &std::io::Error) -> Self {
        NetError::Io {
            op,
            detail: e.to_string(),
        }
    }
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetError::Io { op, detail } => write!(f, "socket {op} failed: {detail}"),
            NetError::Gateway(e) => write!(f, "gateway rejected bridge call: {e}"),
            NetError::Config(what) => write!(f, "invalid ingest config: {what}"),
        }
    }
}

impl std::error::Error for NetError {}
