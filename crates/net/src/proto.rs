//! The ingest wire protocol: length-prefixed CRC-framed messages plus an
//! incremental, resyncing stream decoder.
//!
//! The framing discipline is the journal's ([`hybridcs_gateway`]'s
//! `journal.rs`): a fixed header carrying a little-endian payload length
//! and a CRC-32 over the payload, with a sanity cap on the length so a
//! corrupt header cannot make the receiver buffer gigabytes. Two
//! differences earn their keep on a socket (where, unlike a journal file,
//! bytes keep arriving after damage):
//!
//! * a two-byte magic prefix (`0xC5 0xEC`) so the decoder can *resync*
//!   after a torn or corrupted frame by scanning for the next plausible
//!   frame start instead of declaring the whole tail dead;
//! * decoding is incremental: [`StreamDecoder`] accepts arbitrary byte
//!   chunks (partial writes, coalesced writes) and yields whole messages
//!   as they complete.
//!
//! A frame that fails its CRC or carries an undecodable payload is
//! skipped — one resync — and scanning resumes one byte past the bad
//! frame start, so a mid-stream bit flip costs exactly the frames it
//! touched. The protocol state machine *above* this codec (who may send
//! what, when) lives in [`server`](crate::server) and
//! [`client`](crate::client); this module is pure bytes and never
//! panics on any input.

use hybridcs_coding::crc32;

/// Protocol version carried in [`Message::Hello`]; bumped on any wire
/// change.
pub const PROTO_VERSION: u16 = 1;

/// Frame-start marker, chosen to be cheap to scan for during resync.
pub const MAGIC: [u8; 2] = [0xC5, 0xEC];

/// Bytes before the payload: magic (2) + payload length (4, LE) +
/// payload CRC-32 (4, LE).
pub const HEADER_BYTES: usize = 10;

/// Sanity cap on a frame payload. A corrupt length field larger than
/// this is treated as a torn frame, not a buffering obligation.
pub const MAX_PAYLOAD_BYTES: usize = 1 << 20;

/// Handshake rejection reasons (the `code` in [`Message::HelloReject`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// The device spoke a different [`PROTO_VERSION`].
    BadVersion,
    /// The device's operator-shape fingerprint matches no shape the
    /// server was configured to accept.
    UnknownShape,
    /// The device's gateway-config fingerprint disagrees with the
    /// server's (frames would decode under different admission rules).
    ConfigMismatch,
    /// A live session already owns this device id.
    Duplicate,
    /// The server is at its connection cap.
    ServerFull,
}

impl RejectCode {
    /// Stable wire code.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            RejectCode::BadVersion => 0,
            RejectCode::UnknownShape => 1,
            RejectCode::ConfigMismatch => 2,
            RejectCode::Duplicate => 3,
            RejectCode::ServerFull => 4,
        }
    }

    /// Inverse of [`as_u8`](RejectCode::as_u8).
    #[must_use]
    pub fn from_u8(code: u8) -> Option<Self> {
        match code {
            0 => Some(RejectCode::BadVersion),
            1 => Some(RejectCode::UnknownShape),
            2 => Some(RejectCode::ConfigMismatch),
            3 => Some(RejectCode::Duplicate),
            4 => Some(RejectCode::ServerFull),
            _ => None,
        }
    }

    /// Human/metric-label name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RejectCode::BadVersion => "bad_version",
            RejectCode::UnknownShape => "unknown_shape",
            RejectCode::ConfigMismatch => "config_mismatch",
            RejectCode::Duplicate => "duplicate",
            RejectCode::ServerFull => "server_full",
        }
    }
}

/// One wire message. The lifecycle is `Hello → HelloAck → TimeSync →
/// TimeSyncAck → (Frame | Credit | Nack | FrameLost | Heartbeat |
/// Overload)* → Close → CloseAck`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Device → server: discovery + handshake offer. `shape_fp` and
    /// `config_fp` are the journal-style fingerprints of the device's
    /// operator shape and expected gateway config.
    Hello {
        /// Must equal [`PROTO_VERSION`].
        version: u16,
        /// Device id; doubles as the gateway session id.
        device: u64,
        /// `shape_fingerprint` of the `(SystemConfig, LowResCodec)` pair.
        shape_fp: u64,
        /// `config_fingerprint` of the gateway config.
        config_fp: u64,
    },
    /// Server → device: handshake accepted.
    HelloAck {
        /// Gateway session id (the device id, echoed).
        session: u64,
        /// Cumulative send window: total `Frame` sends allowed so far.
        granted: u64,
    },
    /// Server → device: handshake refused; the connection closes.
    HelloReject {
        /// Why, as a stable wire code (see [`RejectCode`]).
        code: u8,
    },
    /// Device → server: epoch time-sync probe carrying the device's
    /// free-running tick counter.
    TimeSync {
        /// Device-local tick at send time.
        device_tick: u64,
    },
    /// Server → device: time-sync answer pairing the echoed device tick
    /// with the gateway's logical ingest clock, so both sides share an
    /// epoch mapping.
    TimeSyncAck {
        /// The `device_tick` from the probe, echoed.
        device_tick: u64,
        /// Gateway logical clock at receipt.
        server_logical: u64,
    },
    /// Device → server: one compressed ECG frame.
    Frame {
        /// Net-layer copy of the frame sequence number (the packet also
        /// carries it, but the ingest tier treats `packet` as opaque).
        sequence: u32,
        /// Device-local tick when the frame was captured.
        device_tick: u64,
        /// The opaque `FrameCodec` wire packet.
        packet: Vec<u8>,
    },
    /// Server → device: flow-control update; the device may have sent at
    /// most `granted` `Frame` messages in total (retransmissions driven
    /// by a `Nack` are window-exempt).
    Credit {
        /// New cumulative send allowance.
        granted: u64,
    },
    /// Server → device: these sequences are missing — retransmit them.
    Nack {
        /// Missing frame sequence numbers.
        sequences: Vec<u32>,
    },
    /// Device → server: a nacked frame cannot be retransmitted (the
    /// retransmission itself was lost at the radio); give up on it.
    FrameLost {
        /// The unrecoverable sequence number.
        sequence: u32,
    },
    /// Device → server: liveness probe sent when the device has stalled.
    /// `sent_through` is the count of distinct first-transmission
    /// sequences sent so far, so the server can nack any it never saw.
    Heartbeat {
        /// Sequences `0..sent_through` have been transmitted at least
        /// once.
        sent_through: u32,
    },
    /// Server → device: the gateway is shedding; expect withheld credits
    /// and low-resolution decodes until pressure clears.
    Overload {
        /// Severity (currently always 1).
        level: u8,
    },
    /// Device → server: end of stream; close the session.
    Close,
    /// Server → device: session closed; `committed` windows were
    /// delivered to the decode path.
    CloseAck {
        /// Total windows committed for the session.
        committed: u64,
    },
}

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0,
            Message::HelloAck { .. } => 1,
            Message::HelloReject { .. } => 2,
            Message::TimeSync { .. } => 3,
            Message::TimeSyncAck { .. } => 4,
            Message::Frame { .. } => 5,
            Message::Credit { .. } => 6,
            Message::Nack { .. } => 7,
            Message::FrameLost { .. } => 8,
            Message::Heartbeat { .. } => 9,
            Message::Overload { .. } => 10,
            Message::Close => 11,
            Message::CloseAck { .. } => 12,
        }
    }

    /// Short name for metrics labels and logs.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::HelloAck { .. } => "hello_ack",
            Message::HelloReject { .. } => "hello_reject",
            Message::TimeSync { .. } => "timesync",
            Message::TimeSyncAck { .. } => "timesync_ack",
            Message::Frame { .. } => "frame",
            Message::Credit { .. } => "credit",
            Message::Nack { .. } => "nack",
            Message::FrameLost { .. } => "frame_lost",
            Message::Heartbeat { .. } => "heartbeat",
            Message::Overload { .. } => "overload",
            Message::Close => "close",
            Message::CloseAck { .. } => "close_ack",
        }
    }
}

/// Little-endian payload writer (mirrors the journal's `ByteWriter`).
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
}

/// Checked little-endian payload reader: every read is bounds-checked
/// and [`finish`](Reader::finish) rejects trailing garbage, so a decoded
/// message is exactly its payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// A payload that does not decode as any message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Malformed;

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Malformed> {
        let end = self.pos.checked_add(n).ok_or(Malformed)?;
        if end > self.buf.len() {
            return Err(Malformed);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, Malformed> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, Malformed> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, Malformed> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, Malformed> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<&'a [u8], Malformed> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn finish(self) -> Result<(), Malformed> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Malformed)
        }
    }
}

/// Serializes one message into its payload bytes (no frame header).
#[must_use]
pub fn encode_payload(message: &Message) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(message.tag());
    match message {
        Message::Hello {
            version,
            device,
            shape_fp,
            config_fp,
        } => {
            w.u16(*version);
            w.u64(*device);
            w.u64(*shape_fp);
            w.u64(*config_fp);
        }
        Message::HelloAck { session, granted } => {
            w.u64(*session);
            w.u64(*granted);
        }
        Message::HelloReject { code } => w.u8(*code),
        Message::TimeSync { device_tick } => w.u64(*device_tick),
        Message::TimeSyncAck {
            device_tick,
            server_logical,
        } => {
            w.u64(*device_tick);
            w.u64(*server_logical);
        }
        Message::Frame {
            sequence,
            device_tick,
            packet,
        } => {
            w.u32(*sequence);
            w.u64(*device_tick);
            w.bytes(packet);
        }
        Message::Credit { granted } => w.u64(*granted),
        Message::Nack { sequences } => {
            w.u32(sequences.len() as u32);
            for seq in sequences {
                w.u32(*seq);
            }
        }
        Message::FrameLost { sequence } => w.u32(*sequence),
        Message::Heartbeat { sent_through } => w.u32(*sent_through),
        Message::Overload { level } => w.u8(*level),
        Message::Close => {}
        Message::CloseAck { committed } => w.u64(*committed),
    }
    w.buf
}

/// Parses one payload back into a message. Any deviation — unknown tag,
/// short field, trailing bytes, oversized inner length — is [`Malformed`].
pub fn decode_payload(payload: &[u8]) -> Result<Message, Malformed> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    let message = match tag {
        0 => Message::Hello {
            version: r.u16()?,
            device: r.u64()?,
            shape_fp: r.u64()?,
            config_fp: r.u64()?,
        },
        1 => Message::HelloAck {
            session: r.u64()?,
            granted: r.u64()?,
        },
        2 => {
            let code = r.u8()?;
            if RejectCode::from_u8(code).is_none() {
                return Err(Malformed);
            }
            Message::HelloReject { code }
        }
        3 => Message::TimeSync {
            device_tick: r.u64()?,
        },
        4 => Message::TimeSyncAck {
            device_tick: r.u64()?,
            server_logical: r.u64()?,
        },
        5 => Message::Frame {
            sequence: r.u32()?,
            device_tick: r.u64()?,
            packet: r.bytes()?.to_vec(),
        },
        6 => Message::Credit { granted: r.u64()? },
        7 => {
            let count = r.u32()? as usize;
            // Each sequence costs 4 bytes; a count the payload cannot
            // hold is a lie, not an allocation request.
            if count > payload.len() / 4 {
                return Err(Malformed);
            }
            let mut sequences = Vec::with_capacity(count);
            for _ in 0..count {
                sequences.push(r.u32()?);
            }
            Message::Nack { sequences }
        }
        8 => Message::FrameLost { sequence: r.u32()? },
        9 => Message::Heartbeat {
            sent_through: r.u32()?,
        },
        10 => Message::Overload { level: r.u8()? },
        11 => Message::Close,
        12 => Message::CloseAck {
            committed: r.u64()?,
        },
        _ => return Err(Malformed),
    };
    r.finish()?;
    Ok(message)
}

/// Frames one message for the wire: magic, payload length, payload
/// CRC-32, payload.
#[must_use]
pub fn encode(message: &Message) -> Vec<u8> {
    let payload = encode_payload(message);
    debug_assert!(payload.len() <= MAX_PAYLOAD_BYTES);
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Incremental frame decoder with resync. Feed it byte chunks as they
/// arrive ([`extend`](StreamDecoder::extend)) and drain whole messages
/// with [`next_message`](StreamDecoder::next_message). Never panics;
/// damage is absorbed as counted resyncs.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    pos: usize,
    resyncs: u64,
    skipped: u64,
    eof: bool,
}

impl StreamDecoder {
    /// An empty decoder.
    #[must_use]
    pub fn new() -> Self {
        StreamDecoder::default()
    }

    /// Appends freshly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, so a long-lived
        // connection's buffer stays proportional to its unread tail.
        if self.pos > 0 && (self.pos >= 4096 || self.pos == self.buf.len()) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Marks end-of-stream (peer hung up): an incomplete frame in the
    /// buffer is torn, not pending, so a corrupt length field stops
    /// shadowing any complete frames queued behind it. Call before the
    /// final [`next_message`](StreamDecoder::next_message) drain.
    pub fn finish(&mut self) {
        self.eof = true;
    }

    /// Frames skipped because of a bad length, CRC mismatch, or
    /// undecodable payload.
    #[must_use]
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Bytes discarded while scanning for a frame start.
    #[must_use]
    pub fn skipped_bytes(&self) -> u64 {
        self.skipped
    }

    /// Bytes buffered but not yet consumed.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Advances to the next plausible frame start (magic prefix or a
    /// trailing partial magic), discarding garbage bytes.
    fn align(&mut self) {
        while self.pos < self.buf.len() {
            let rest = &self.buf[self.pos..];
            if rest[0] == MAGIC[0] && (rest.len() < 2 || rest[1] == MAGIC[1]) {
                break;
            }
            self.pos += 1;
            self.skipped += 1;
        }
    }

    /// Abandons the frame candidate at the cursor: one resync, scanning
    /// resumes one byte later.
    fn desync(&mut self) {
        self.resyncs += 1;
        self.pos += 1;
        self.skipped += 1;
        self.align();
    }

    /// Yields the next complete, CRC-valid message, or `None` when the
    /// buffer holds no complete frame (feed more bytes and retry).
    pub fn next_message(&mut self) -> Option<Message> {
        loop {
            self.align();
            let rest = &self.buf[self.pos..];
            if rest.len() < HEADER_BYTES {
                return None;
            }
            let len = u32::from_le_bytes(rest[2..6].try_into().unwrap()) as usize;
            if len > MAX_PAYLOAD_BYTES {
                self.desync();
                continue;
            }
            if rest.len() < HEADER_BYTES + len {
                if self.eof {
                    // The claimed bytes will never arrive; treat the
                    // candidate as torn and rescan what we do have.
                    self.desync();
                    continue;
                }
                return None;
            }
            let want = u32::from_le_bytes(rest[6..10].try_into().unwrap());
            let payload = &rest[HEADER_BYTES..HEADER_BYTES + len];
            if crc32(payload) != want {
                self.desync();
                continue;
            }
            match decode_payload(payload) {
                Ok(message) => {
                    self.pos += HEADER_BYTES + len;
                    return Some(message);
                }
                Err(Malformed) => self.desync(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Message> {
        vec![
            Message::Hello {
                version: PROTO_VERSION,
                device: 7,
                shape_fp: 0xDEAD_BEEF,
                config_fp: 0xFACE_FEED,
            },
            Message::HelloAck {
                session: 7,
                granted: 8,
            },
            Message::HelloReject {
                code: RejectCode::UnknownShape.as_u8(),
            },
            Message::TimeSync { device_tick: 41 },
            Message::TimeSyncAck {
                device_tick: 41,
                server_logical: 1290,
            },
            Message::Frame {
                sequence: 3,
                device_tick: 44,
                packet: vec![1, 2, 3, 4, 5],
            },
            Message::Credit { granted: 12 },
            Message::Nack {
                sequences: vec![1, 4, 9],
            },
            Message::FrameLost { sequence: 4 },
            Message::Heartbeat { sent_through: 10 },
            Message::Overload { level: 1 },
            Message::Close,
            Message::CloseAck { committed: 10 },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for message in samples() {
            let framed = encode(&message);
            let mut dec = StreamDecoder::new();
            dec.extend(&framed);
            assert_eq!(dec.next_message(), Some(message));
            assert_eq!(dec.next_message(), None);
            assert_eq!(dec.resyncs(), 0);
        }
    }

    #[test]
    fn byte_at_a_time_delivery_decodes_everything() {
        let stream: Vec<u8> = samples().iter().flat_map(encode).collect();
        let mut dec = StreamDecoder::new();
        let mut seen = Vec::new();
        for b in stream {
            dec.extend(&[b]);
            while let Some(m) = dec.next_message() {
                seen.push(m);
            }
        }
        assert_eq!(seen, samples());
        assert_eq!(dec.resyncs(), 0);
    }

    #[test]
    fn garbage_between_frames_is_skipped() {
        let mut stream = Vec::new();
        for message in samples() {
            stream.extend_from_slice(&[0x00, 0xFF, 0xC5, 0x00]); // noise incl. fake magic byte
            stream.extend_from_slice(&encode(&message));
        }
        let mut dec = StreamDecoder::new();
        dec.extend(&stream);
        let mut seen = Vec::new();
        while let Some(m) = dec.next_message() {
            seen.push(m);
        }
        assert_eq!(seen, samples());
        assert!(dec.skipped_bytes() > 0);
    }

    #[test]
    fn corrupted_frame_costs_only_itself() {
        let msgs = samples();
        let mut stream = Vec::new();
        for (i, message) in msgs.iter().enumerate() {
            let mut framed = encode(message);
            if i == 5 {
                let mid = framed.len() / 2;
                framed[mid] ^= 0x40;
            }
            stream.extend_from_slice(&framed);
        }
        let mut dec = StreamDecoder::new();
        dec.extend(&stream);
        let mut seen = Vec::new();
        while let Some(m) = dec.next_message() {
            seen.push(m);
        }
        let mut expect = msgs;
        expect.remove(5);
        assert_eq!(seen, expect);
        assert!(dec.resyncs() >= 1);
    }

    #[test]
    fn oversized_length_field_is_a_resync_not_a_buffer() {
        let mut framed = encode(&Message::Close);
        framed[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut dec = StreamDecoder::new();
        dec.extend(&framed);
        assert_eq!(dec.next_message(), None);
        assert_eq!(dec.resyncs(), 1);
        // A subsequent good frame still decodes.
        dec.extend(&encode(&Message::Close));
        assert_eq!(dec.next_message(), Some(Message::Close));
    }

    #[test]
    fn truncated_tail_is_need_more_not_error() {
        let framed = encode(&Message::Credit { granted: 3 });
        for cut in 0..framed.len() {
            let mut dec = StreamDecoder::new();
            dec.extend(&framed[..cut]);
            assert_eq!(dec.next_message(), None, "cut at {cut}");
            dec.extend(&framed[cut..]);
            assert_eq!(dec.next_message(), Some(Message::Credit { granted: 3 }));
        }
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_malformed() {
        assert_eq!(decode_payload(&[200]), Err(Malformed));
        let mut payload = encode_payload(&Message::Close);
        payload.push(0);
        assert_eq!(decode_payload(&payload), Err(Malformed));
        assert_eq!(decode_payload(&[]), Err(Malformed));
    }

    #[test]
    fn nack_count_larger_than_payload_is_rejected() {
        let mut w = Vec::new();
        w.push(7u8);
        w.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_payload(&w), Err(Malformed));
    }

    #[test]
    fn reject_codes_round_trip() {
        for code in [
            RejectCode::BadVersion,
            RejectCode::UnknownShape,
            RejectCode::ConfigMismatch,
            RejectCode::Duplicate,
            RejectCode::ServerFull,
        ] {
            assert_eq!(RejectCode::from_u8(code.as_u8()), Some(code));
            assert!(!code.name().is_empty());
        }
        assert_eq!(RejectCode::from_u8(5), None);
    }
}
