//! Micro-benches for the sensor-side pipeline: the operations a node's
//! firmware would run per window (sensing, quantization, entropy coding)
//! plus the transforms they build on.
//!
//! Run with `cargo bench -p hybridcs-bench --bench encoder`.

use hybridcs_bench::micro::{black_box, Micro};
use hybridcs_core::{
    experiment::default_training_windows, train_lowres_codec, HybridCodec, SystemConfig,
};
use hybridcs_dsp::{Dwt, Wavelet};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_frontend::{LowResChannel, SensingMatrix};

fn window() -> Vec<f64> {
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).expect("valid config");
    generator.generate(2.0, 0xBE7C)[..512].to_vec()
}

fn bench_sensing(harness: &Micro) {
    let x = window();
    let phi = SensingMatrix::bernoulli(96, 512, 1).expect("valid shape");
    harness.bench("rmpi_measure_m96_n512", || phi.apply(black_box(&x)));
    let sparse = SensingMatrix::sparse_binary(96, 512, 8, 1).expect("valid shape");
    harness.bench("sparse_binary_measure_m96_n512", || {
        sparse.apply(black_box(&x))
    });
}

fn bench_dwt(harness: &Micro) {
    let x = window();
    let dwt = Dwt::new(Wavelet::Db4, 5).expect("valid depth");
    harness.bench("dwt_forward_db4_l5_n512", || {
        dwt.forward(black_box(&x)).expect("valid length")
    });
    let coeffs = dwt.forward(&x).expect("valid length");
    harness.bench("dwt_inverse_db4_l5_n512", || {
        dwt.inverse(black_box(&coeffs)).expect("valid length")
    });
}

fn bench_lowres_coding(harness: &Micro) {
    let x = window();
    let channel = LowResChannel::new(7).expect("valid bits");
    let codec = train_lowres_codec(7, &default_training_windows(512)).expect("training set");
    let frame = channel.acquire(&x);
    harness.bench("lowres_acquire_7bit_n512", || {
        channel.acquire(black_box(&x))
    });
    harness.bench("huffman_encode_7bit_n512", || {
        codec.encode(black_box(frame.codes())).expect("encodes")
    });
    let payload = codec.encode(frame.codes()).expect("encodes");
    harness.bench("huffman_decode_7bit_n512", || {
        codec.decode(black_box(&payload), 512).expect("decodes")
    });
}

fn bench_full_encode(harness: &Micro) {
    let x = window();
    let codec = HybridCodec::with_default_training(&SystemConfig::default()).expect("config");
    harness.bench("hybrid_encode_full_window", || {
        codec.encode(black_box(&x)).expect("encodes")
    });
}

fn main() {
    let harness = Micro::new();
    bench_sensing(&harness);
    bench_dwt(&harness);
    bench_lowres_coding(&harness);
    bench_full_encode(&harness);
}
