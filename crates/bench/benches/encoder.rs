//! Criterion benches for the sensor-side pipeline: the operations a node's
//! firmware would run per window (sensing, quantization, entropy coding)
//! plus the transforms they build on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hybridcs_core::{
    experiment::default_training_windows, train_lowres_codec, HybridCodec, SystemConfig,
};
use hybridcs_dsp::{Dwt, Wavelet};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_frontend::{LowResChannel, SensingMatrix};
use std::hint::black_box;

fn window() -> Vec<f64> {
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).expect("valid config");
    generator.generate(2.0, 0xBE7C)[..512].to_vec()
}

fn bench_sensing(c: &mut Criterion) {
    let x = window();
    let phi = SensingMatrix::bernoulli(96, 512, 1).expect("valid shape");
    c.bench_function("rmpi_measure_m96_n512", |b| {
        b.iter(|| black_box(phi.apply(black_box(&x))))
    });
    let sparse = SensingMatrix::sparse_binary(96, 512, 8, 1).expect("valid shape");
    c.bench_function("sparse_binary_measure_m96_n512", |b| {
        b.iter(|| black_box(sparse.apply(black_box(&x))))
    });
}

fn bench_dwt(c: &mut Criterion) {
    let x = window();
    let dwt = Dwt::new(Wavelet::Db4, 5).expect("valid depth");
    c.bench_function("dwt_forward_db4_l5_n512", |b| {
        b.iter(|| black_box(dwt.forward(black_box(&x)).expect("valid length")))
    });
    let coeffs = dwt.forward(&x).expect("valid length");
    c.bench_function("dwt_inverse_db4_l5_n512", |b| {
        b.iter(|| black_box(dwt.inverse(black_box(&coeffs)).expect("valid length")))
    });
}

fn bench_lowres_coding(c: &mut Criterion) {
    let x = window();
    let channel = LowResChannel::new(7).expect("valid bits");
    let codec = train_lowres_codec(7, &default_training_windows(512)).expect("training set");
    let frame = channel.acquire(&x);
    c.bench_function("lowres_acquire_7bit_n512", |b| {
        b.iter(|| black_box(channel.acquire(black_box(&x))))
    });
    c.bench_function("huffman_encode_7bit_n512", |b| {
        b.iter(|| black_box(codec.encode(black_box(frame.codes())).expect("encodes")))
    });
    let payload = codec.encode(frame.codes()).expect("encodes");
    c.bench_function("huffman_decode_7bit_n512", |b| {
        b.iter(|| black_box(codec.decode(black_box(&payload), 512).expect("decodes")))
    });
}

fn bench_full_encode(c: &mut Criterion) {
    let x = window();
    let codec = HybridCodec::with_default_training(&SystemConfig::default()).expect("config");
    c.bench_function("hybrid_encode_full_window", |b| {
        b.iter_batched(
            || x.clone(),
            |w| black_box(codec.encode(&w).expect("encodes")),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_sensing,
    bench_dwt,
    bench_lowres_coding,
    bench_full_encode
);
criterion_main!(benches);
