//! Micro-benches for the entropy-coding and telemetry layers — the
//! per-window firmware cost beyond acquisition.
//!
//! Run with `cargo bench -p hybridcs-bench --bench coding`.

use hybridcs_bench::micro::{black_box, Micro};
use hybridcs_coding::{crc32, HuffmanCodebook, LowResCodec, RleLowResCodec};
use hybridcs_core::telemetry::FrameCodec;
use hybridcs_core::{
    experiment::default_training_windows, train_lowres_codec, HybridFrontEnd, SystemConfig,
};
use hybridcs_dsp::{Dwt, Wavelet};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_frontend::LowResChannel;

fn window() -> Vec<f64> {
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).expect("valid config");
    generator.generate(2.0, 0xC0D1)[..512].to_vec()
}

fn bench_entropy_variants(harness: &Micro) {
    let x = window();
    let channel = LowResChannel::new(7).expect("valid bits");
    let frame = channel.acquire(&x);
    let training = default_training_windows(512);
    let sequences: Vec<Vec<u32>> = training
        .iter()
        .map(|w| channel.acquire(w).codes().to_vec())
        .collect();

    let plain_book = HuffmanCodebook::train_from_code_sequences(sequences.iter().map(|v| &v[..]))
        .expect("training set");
    let plain = LowResCodec::new(plain_book, 7).expect("valid bits");
    harness.bench("lowres_encode_plain_huffman", || {
        plain.encode(black_box(frame.codes())).expect("encodes")
    });

    let rle = RleLowResCodec::train(sequences.iter().map(|v| &v[..]), 7).expect("training set");
    harness.bench("lowres_encode_zero_run", || {
        rle.encode(black_box(frame.codes())).expect("encodes")
    });
}

fn bench_wavelet_families(harness: &Micro) {
    let x = window();
    for w in Wavelet::ALL {
        let levels = Dwt::max_levels(w, 512).min(5);
        let dwt = Dwt::new(w, levels).expect("valid depth");
        harness.bench(&format!("dwt_forward_{w}_n512"), || {
            dwt.forward(black_box(&x)).expect("valid length")
        });
    }
}

fn bench_telemetry(harness: &Micro) {
    let x = window();
    let config = SystemConfig::default();
    let lowres_codec =
        train_lowres_codec(config.lowres_bits, &default_training_windows(config.window))
            .expect("training set");
    let frontend = HybridFrontEnd::new(&config, lowres_codec).expect("config");
    let frame_codec = FrameCodec::new(&config).expect("config");
    let encoded = frontend.encode(&x).expect("window sized");
    harness.bench("telemetry_serialize_frame", || {
        frame_codec
            .serialize(1, black_box(&encoded))
            .expect("serializes")
    });
    let bytes = frame_codec.serialize(1, &encoded).expect("serializes");
    harness.bench("telemetry_deserialize_frame", || {
        frame_codec.deserialize(black_box(&bytes)).expect("parses")
    });
    let data = vec![0xA5u8; 1024];
    harness.bench("crc32_1kB", || crc32(black_box(&data)));
}

fn main() {
    let harness = Micro::new();
    bench_entropy_variants(&harness);
    bench_wavelet_families(&harness);
    bench_telemetry(&harness);
}
