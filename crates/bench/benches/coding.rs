//! Criterion benches for the entropy-coding and telemetry layers — the
//! per-window firmware cost beyond acquisition.

use criterion::{criterion_group, criterion_main, Criterion};
use hybridcs_coding::{crc32, HuffmanCodebook, LowResCodec, RleLowResCodec};
use hybridcs_core::telemetry::FrameCodec;
use hybridcs_core::{
    experiment::default_training_windows, train_lowres_codec, HybridFrontEnd, SystemConfig,
};
use hybridcs_dsp::{Dwt, Wavelet};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_frontend::LowResChannel;
use std::hint::black_box;

fn window() -> Vec<f64> {
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).expect("valid config");
    generator.generate(2.0, 0xC0D1)[..512].to_vec()
}

fn bench_entropy_variants(c: &mut Criterion) {
    let x = window();
    let channel = LowResChannel::new(7).expect("valid bits");
    let frame = channel.acquire(&x);
    let training = default_training_windows(512);
    let sequences: Vec<Vec<u32>> = training
        .iter()
        .map(|w| channel.acquire(w).codes().to_vec())
        .collect();

    let plain_book =
        HuffmanCodebook::train_from_code_sequences(sequences.iter().map(|v| &v[..]))
            .expect("training set");
    let plain = LowResCodec::new(plain_book, 7).expect("valid bits");
    c.bench_function("lowres_encode_plain_huffman", |b| {
        b.iter(|| black_box(plain.encode(black_box(frame.codes())).expect("encodes")))
    });

    let rle = RleLowResCodec::train(sequences.iter().map(|v| &v[..]), 7).expect("training set");
    c.bench_function("lowres_encode_zero_run", |b| {
        b.iter(|| black_box(rle.encode(black_box(frame.codes())).expect("encodes")))
    });
}

fn bench_wavelet_families(c: &mut Criterion) {
    let x = window();
    for w in Wavelet::ALL {
        let levels = Dwt::max_levels(w, 512).min(5);
        let dwt = Dwt::new(w, levels).expect("valid depth");
        c.bench_function(&format!("dwt_forward_{w}_n512"), |b| {
            b.iter(|| black_box(dwt.forward(black_box(&x)).expect("valid length")))
        });
    }
}

fn bench_telemetry(c: &mut Criterion) {
    let x = window();
    let config = SystemConfig::default();
    let lowres_codec =
        train_lowres_codec(config.lowres_bits, &default_training_windows(config.window))
            .expect("training set");
    let frontend = HybridFrontEnd::new(&config, lowres_codec).expect("config");
    let frame_codec = FrameCodec::new(&config).expect("config");
    let encoded = frontend.encode(&x).expect("window sized");
    c.bench_function("telemetry_serialize_frame", |b| {
        b.iter(|| black_box(frame_codec.serialize(1, black_box(&encoded)).expect("serializes")))
    });
    let bytes = frame_codec.serialize(1, &encoded).expect("serializes");
    c.bench_function("telemetry_deserialize_frame", |b| {
        b.iter(|| black_box(frame_codec.deserialize(black_box(&bytes)).expect("parses")))
    });
    c.bench_function("crc32_1kB", |b| {
        let data = vec![0xA5u8; 1024];
        b.iter(|| black_box(crc32(black_box(&data))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_entropy_variants, bench_wavelet_families, bench_telemetry
}
criterion_main!(benches);
