//! Micro-benches for the receiver-side decoders — the cost that bounds
//! how many records/CR points the quality sweeps can afford.
//!
//! Run with `cargo bench -p hybridcs-bench --bench solvers`.

use hybridcs_bench::micro::{black_box, Micro};
use hybridcs_core::SensingOperator;
use hybridcs_dsp::{Dwt, Wavelet};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_frontend::{LowResChannel, MeasurementQuantizer, SensingMatrix};
use hybridcs_solver::{
    solve_admm, solve_omp, solve_pdhg, AdmmOptions, BpdnProblem, GreedyOptions, PdhgOptions,
};

struct Instance {
    window: Vec<f64>,
    phi: SensingMatrix,
    y: Vec<f64>,
    sigma: f64,
    lo: Vec<f64>,
    hi: Vec<f64>,
    dwt: Dwt,
}

fn instance(m: usize) -> Instance {
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).expect("valid config");
    let window = generator.generate(2.0, 0xBE7C)[..512].to_vec();
    let phi = SensingMatrix::bernoulli(m, 512, 7).expect("valid shape");
    let digitizer = MeasurementQuantizer::new(12, 2.5).expect("valid digitizer");
    let y = digitizer.digitize(&phi.apply(&window));
    let sigma = digitizer.noise_sigma(m) * 1.5;
    let channel = LowResChannel::new(7).expect("valid bits");
    let (lo, hi) = channel.acquire(&window).bounds();
    Instance {
        window,
        phi,
        y,
        sigma,
        lo,
        hi,
        dwt: Dwt::new(Wavelet::Db4, 5).expect("valid depth"),
    }
}

/// A short, fixed-iteration budget so bench times measure per-iteration
/// cost rather than convergence luck.
fn short_pdhg() -> PdhgOptions {
    PdhgOptions {
        max_iterations: 200,
        tolerance: 1e-12,
        ..PdhgOptions::default()
    }
}

fn short_admm() -> AdmmOptions {
    AdmmOptions {
        max_iterations: 50,
        tolerance: 1e-12,
        ..AdmmOptions::default()
    }
}

fn bench_pdhg(harness: &Micro) {
    for m in [32usize, 96] {
        let inst = instance(m);
        let operator = SensingOperator::new(&inst.phi);
        harness.bench(&format!("pdhg_hybrid_200it_m{m}"), || {
            let problem = BpdnProblem {
                sensing: &operator,
                dwt: &inst.dwt,
                measurements: &inst.y,
                sigma: inst.sigma,
                box_bounds: Some((&inst.lo, &inst.hi)),
                coefficient_weights: None,
            };
            black_box(solve_pdhg(&problem, &short_pdhg()).expect("solves"))
        });
        harness.bench(&format!("pdhg_normal_200it_m{m}"), || {
            let problem = BpdnProblem {
                sensing: &operator,
                dwt: &inst.dwt,
                measurements: &inst.y,
                sigma: inst.sigma,
                box_bounds: None,
                coefficient_weights: None,
            };
            black_box(solve_pdhg(&problem, &short_pdhg()).expect("solves"))
        });
    }
}

fn bench_admm(harness: &Micro) {
    let inst = instance(96);
    let operator = SensingOperator::new(&inst.phi);
    harness.bench("admm_hybrid_50it_m96", || {
        let problem = BpdnProblem {
            sensing: &operator,
            dwt: &inst.dwt,
            measurements: &inst.y,
            sigma: inst.sigma,
            box_bounds: Some((&inst.lo, &inst.hi)),
            coefficient_weights: None,
        };
        black_box(solve_admm(&problem, &short_admm()).expect("solves"))
    });
}

fn bench_omp(harness: &Micro) {
    let inst = instance(96);
    // Explicit dictionary A = Φ·Ψ for the greedy baseline.
    let mut a = hybridcs_linalg::Matrix::zeros(96, 512);
    for j in 0..512 {
        let mut atom = vec![0.0; 512];
        atom[j] = 1.0;
        let col = inst
            .phi
            .apply(&inst.dwt.inverse(&atom).expect("valid length"));
        for (i, v) in col.into_iter().enumerate() {
            a.set(i, j, v);
        }
    }
    let opts = GreedyOptions {
        max_sparsity: 24,
        residual_tolerance: inst.sigma,
        max_iterations: 24,
        step: None,
    };
    harness.bench("omp_s24_m96_n512", || {
        solve_omp(&a, &inst.y, &opts).expect("solves")
    });
    let _ = &inst.window; // keep the instance alive/meaningful
}

fn main() {
    // Solver iterations are expensive; fewer samples keep the bench quick.
    let mut harness = Micro::new();
    harness.samples = harness.samples.min(5);
    bench_pdhg(&harness);
    bench_admm(&harness);
    bench_omp(&harness);
}
