//! A minimal wall-clock micro-benchmark harness — the hermetic stand-in
//! for the Criterion benches (external dev-dependencies are banned by the
//! workspace's offline-build policy, see README.md).
//!
//! Methodology: warm up, size a batch so one timing sample costs roughly
//! [`Micro::sample_budget`], collect [`Micro::samples`] batched samples,
//! and report the **median** per-iteration time (the median is robust to
//! scheduler noise; min and max are printed for spread). This is
//! deliberately simpler than Criterion — no outlier classification or
//! regression — but it is deterministic in structure, dependency-free,
//! and good enough to rank kernels and catch order-of-magnitude
//! regressions.
//!
//! Environment knobs:
//!
//! * `HYBRIDCS_BENCH_SAMPLES` — timing samples per benchmark (default 15).
//! * `HYBRIDCS_BENCH_SAMPLE_MS` — target milliseconds per sample
//!   (default 40).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier — re-exported so bench binaries keep the familiar
/// `black_box` spelling without importing `std::hint` everywhere.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Harness configuration plus the accumulated report lines.
pub struct Micro {
    /// Timing samples collected per benchmark.
    pub samples: usize,
    /// Wall-clock budget per sample; batch sizes are derived from it.
    pub sample_budget: Duration,
}

impl Default for Micro {
    fn default() -> Self {
        let samples = std::env::var("HYBRIDCS_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(15);
        let ms = std::env::var("HYBRIDCS_BENCH_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(40);
        Micro {
            samples: samples.max(3),
            sample_budget: Duration::from_millis(ms),
        }
    }
}

impl Micro {
    /// Creates a harness with the environment-derived defaults.
    #[must_use]
    pub fn new() -> Self {
        Micro::default()
    }

    /// Times `f` and prints one report line; returns the median
    /// per-iteration time so callers can assert on it if they wish.
    ///
    /// Every per-iteration sample is also recorded into the global
    /// [metrics registry](hybridcs_obs::global) under
    /// `bench_iter_seconds{bench="<name>"}`, and the printed line carries
    /// the histogram summary (mean plus the p50/p90/p99 percentile triple
    /// across samples), so bench runs land in the same JSONL exports as
    /// everything else.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Duration {
        // Warm-up + batch sizing: one untimed call, then estimate cost.
        let start = Instant::now();
        std_black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_batch = (self.sample_budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000);
        let per_batch = u32::try_from(per_batch).unwrap_or(u32::MAX);

        let histogram = hybridcs_obs::global().histogram("bench_iter_seconds", &[("bench", name)]);
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..per_batch {
                std_black_box(f());
            }
            let sample = t0.elapsed() / per_batch;
            histogram.record(sample.as_secs_f64());
            per_iter.push(sample);
        }
        per_iter.sort_unstable();
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        let snapshot = histogram.snapshot();
        let mean = Duration::from_secs_f64(snapshot.mean().max(0.0));
        let fmt_q = |q: f64| fmt_duration(Duration::from_secs_f64(q));
        let quantiles = snapshot.percentiles().map_or_else(
            || "p50/p90/p99 n/a".to_string(),
            |p| {
                format!(
                    "p50 {}, p90 {}, p99 {}",
                    fmt_q(p.p50),
                    fmt_q(p.p90),
                    fmt_q(p.p99)
                )
            },
        );
        println!(
            "{name:<40} {:>12}/iter  (min {}, max {}, mean {}, {quantiles}, {} × {per_batch} iters)",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            fmt_duration(mean),
            self.samples,
        );
        median
    }
}

/// Human-scaled duration formatting (ns/µs/ms/s).
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_plausible_timing() {
        let harness = Micro {
            samples: 3,
            sample_budget: Duration::from_millis(1),
        };
        // `black_box` per element keeps release builds from collapsing the
        // sum to a closed form (which would time at 0 ns/iter).
        let median = harness.bench("spin_sum", || (0..1000u64).map(black_box).sum::<u64>());
        assert!(median > Duration::ZERO);
        assert!(median < Duration::from_millis(100));
    }

    #[test]
    fn formatting_covers_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.000 s");
    }
}
