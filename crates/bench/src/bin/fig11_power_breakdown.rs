//! Fig. 11 — power-consumption breakdown (P_adc, P_int, P_amp, P_total)
//! versus sampling frequency for (a) the RMPI normal-CS front end at
//! m = 240 and (b) the hybrid front end at m = 96 + a 7-bit Nyquist ADC —
//! the paper's fixed-quality (SNR = 20 dB) operating points.

use hybridcs_bench::banner;
use hybridcs_power::{hybrid_power, rmpi_power, sweep_sampling_frequency, PowerParams};

fn print_sweep(label: &str, build: impl FnMut(f64) -> hybridcs_power::FrontEndPower) {
    println!("{label}");
    println!("fs (MHz)   | P_adc (uW)   | P_int (uW)   | P_amp (uW)   | P_total (uW)");
    println!("-----------+--------------+--------------+--------------+-------------");
    for point in sweep_sampling_frequency(100.0, 1e8, 13, build) {
        let p = point.power;
        println!(
            "{:>10.4e} | {:>12.4e} | {:>12.4e} | {:>12.4e} | {:>12.4e}",
            point.fs_hz / 1e6,
            p.adc_w * 1e6,
            p.integrator_w * 1e6,
            p.amplifier_w * 1e6,
            p.total_uw()
        );
    }
    println!();
}

fn main() {
    banner("Fig. 11", "power breakdown vs sampling frequency");
    let params = PowerParams::default();
    let n = 512;

    print_sweep("(a) RMPI normal CS, m = 240:", |fs| {
        rmpi_power(240, n, fs, &params)
    });
    print_sweep("(b) Hybrid CS, m = 96 + 7-bit Nyquist ADC:", |fs| {
        hybrid_power(96, n, fs, 7, &params)
    });

    let normal = rmpi_power(240, n, 360.0, &params);
    let hybrid = hybrid_power(96, n, 360.0, 7, &params);
    println!(
        "at the ECG rate (360 Hz): normal {:.1} uW vs hybrid {:.1} uW -> {:.2}x",
        normal.total_uw(),
        hybrid.total_uw(),
        normal.total_w() / hybrid.total_w()
    );
    println!();
    println!("expected shape: every component scales linearly in fs (straight");
    println!("lines on the log-log axes); the amplifier dominates by orders of");
    println!("magnitude in both architectures; hybrid total sits ~2.5x below");
    println!("normal at every frequency (paper Section VI).");
}
