//! Fig. 9 — example original vs hybrid-reconstructed windows at
//! undersampling fractions δ = m/n ∈ {6%, 12%, 25%}, with the achieved SNR
//! in each panel title.

use hybridcs_bench::{banner, sweep_base_config};
use hybridcs_core::{HybridCodec, SystemConfig};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_metrics::snr_db;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 9", "example reconstructions at delta = 6/12/25 %");
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus())?;
    let strip = generator.generate(2.0, 0xF169);
    let base = sweep_base_config();
    let window = &strip[..base.window];

    for delta_percent in [6.0f64, 12.0, 25.0] {
        let m = ((base.window as f64) * delta_percent / 100.0).round() as usize;
        let config = SystemConfig {
            measurements: m,
            ..base.clone()
        };
        let codec = HybridCodec::with_default_training(&config)?;
        let encoded = codec.encode(window)?;
        let decoded = codec.decode(&encoded)?;
        let snr = snr_db(window, &decoded.signal);
        println!(
            "delta = {delta_percent:>4.0}% (m = {m:>3}) -> SNR = {snr:.1} dB  (paper: 6% -> 18.7 dB, 12% -> 19.7 dB)"
        );
        // Panel series, decimated for terminal plotting.
        print!("  original_mv:      ");
        for v in window.iter().step_by(16) {
            print!("{v:+.2} ");
        }
        println!();
        print!("  reconstructed_mv: ");
        for v in decoded.signal.iter().step_by(16) {
            print!("{v:+.2} ");
        }
        println!();
        println!();
    }
    println!("expected shape: even delta = 6% keeps a clinically plausible trace");
    println!("with SNR near the paper's 18.7 dB, thanks to the bound constraint.");
    Ok(())
}
