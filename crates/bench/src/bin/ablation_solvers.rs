//! Ablation — decoder algorithms on identical instances: PDHG vs ADMM vs
//! FISTA (convex) and OMP/CoSaMP/IHT (greedy), with and without the box
//! constraint where representable. Justifies DESIGN.md's choice of PDHG as
//! the default decoder.

use hybridcs_bench::banner;
use hybridcs_core::SensingOperator;
use hybridcs_dsp::{Dwt, Wavelet};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_frontend::{LowResChannel, MeasurementQuantizer, SensingMatrix};
use hybridcs_linalg::Matrix;
use hybridcs_metrics::snr_db;
use hybridcs_solver::{
    solve_admm, solve_cosamp, solve_fista, solve_iht, solve_omp, solve_pdhg, AdmmOptions,
    BpdnProblem, FistaOptions, GreedyOptions, PdhgOptions,
};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Ablation", "decoder algorithms on identical instances");
    let n = 512;
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus())?;
    let dwt = Dwt::new(Wavelet::Db4, 5)?;
    let digitizer = MeasurementQuantizer::new(12, 2.5)?;
    let channel = LowResChannel::new(7)?;

    for m in [32usize, 96] {
        println!(
            "--- m = {m} (CR {:.1}%) ---",
            (1.0 - m as f64 / n as f64) * 100.0
        );
        let window = &generator.generate(2.0, 0xAB1 + m as u64)[..n];
        let phi = SensingMatrix::bernoulli(m, n, 0xFEED)?;
        let y = digitizer.digitize(&phi.apply(window));
        let sigma = digitizer.noise_sigma(m) * 1.5;
        let (lo, hi) = channel.acquire(window).bounds();
        let operator = SensingOperator::new(&phi);

        let boxed = BpdnProblem {
            sensing: &operator,
            dwt: &dwt,
            measurements: &y,
            sigma,
            box_bounds: Some((&lo, &hi)),
            coefficient_weights: None,
        };
        let plain = BpdnProblem {
            sensing: &operator,
            dwt: &dwt,
            measurements: &y,
            sigma,
            box_bounds: None,
            coefficient_weights: None,
        };

        println!("algorithm        | box | SNR (dB) | iters | time (ms)");
        println!("-----------------+-----+----------+-------+----------");
        let report = |name: &str, boxed_flag: bool, signal: &[f64], iters: usize, ms: f64| {
            println!(
                "{name:<16} | {} | {:>8.2} | {iters:>5} | {ms:>8.1}",
                if boxed_flag { "yes" } else { " no" },
                snr_db(window, signal)
            );
        };

        let t = Instant::now();
        let r = solve_pdhg(&boxed, &PdhgOptions::default())?;
        report(
            "PDHG",
            true,
            &r.signal,
            r.iterations,
            t.elapsed().as_secs_f64() * 1e3,
        );
        let t = Instant::now();
        let r = solve_admm(&boxed, &AdmmOptions::default())?;
        report(
            "ADMM",
            true,
            &r.signal,
            r.iterations,
            t.elapsed().as_secs_f64() * 1e3,
        );
        let t = Instant::now();
        let r = solve_pdhg(&plain, &PdhgOptions::default())?;
        report(
            "PDHG",
            false,
            &r.signal,
            r.iterations,
            t.elapsed().as_secs_f64() * 1e3,
        );
        let t = Instant::now();
        let r = solve_admm(&plain, &AdmmOptions::default())?;
        report(
            "ADMM",
            false,
            &r.signal,
            r.iterations,
            t.elapsed().as_secs_f64() * 1e3,
        );
        let t = Instant::now();
        let r = solve_fista(&plain, &FistaOptions::default())?;
        report(
            "FISTA",
            false,
            &r.signal,
            r.iterations,
            t.elapsed().as_secs_f64() * 1e3,
        );

        // Greedy methods on the explicit dictionary.
        let mut a = Matrix::zeros(m, n);
        for j in 0..n {
            let mut atom = vec![0.0; n];
            atom[j] = 1.0;
            let col = phi.apply(&dwt.inverse(&atom)?);
            for (i, v) in col.into_iter().enumerate() {
                a.set(i, j, v);
            }
        }
        let opts = GreedyOptions {
            max_sparsity: (m / 3).max(4),
            residual_tolerance: sigma,
            max_iterations: 60,
            step: None,
        };
        let t = Instant::now();
        let r = solve_omp(&a, &y, &opts)?;
        report(
            "OMP",
            false,
            &dwt.inverse(&r.signal)?,
            r.iterations,
            t.elapsed().as_secs_f64() * 1e3,
        );
        let t = Instant::now();
        let r = solve_cosamp(&a, &y, &opts)?;
        report(
            "CoSaMP",
            false,
            &dwt.inverse(&r.signal)?,
            r.iterations,
            t.elapsed().as_secs_f64() * 1e3,
        );
        let t = Instant::now();
        let r = solve_iht(&a, &y, &opts)?;
        report(
            "IHT",
            false,
            &dwt.inverse(&r.signal)?,
            r.iterations,
            t.elapsed().as_secs_f64() * 1e3,
        );
        println!();
    }
    println!("takeaway: only the box-capable convex solvers deliver the hybrid");
    println!("gain; PDHG and ADMM agree to within fractions of a dB, validating");
    println!("the implementation of Eq. (1) twice over.");
    Ok(())
}
