//! Fig. 5 — storage (bytes) required for the offline-generated Huffman
//! codebook at each quantization depth 3–10 bits.

use hybridcs_bench::banner;
use hybridcs_core::experiment::default_training_windows;
use hybridcs_core::train_lowres_codec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 5", "on-node codebook storage vs quantization depth");
    let training = default_training_windows(512);

    println!("bits | symbols | storage (B)");
    println!("-----+---------+------------");
    for bits in 3u32..=10 {
        let codec = train_lowres_codec(bits, &training)?;
        println!(
            "{bits:>4} | {:>7} | {:>10}",
            codec.codebook().len(),
            codec.codebook().storage_bytes()
        );
    }
    println!();
    println!("expected shape: storage grows steeply with depth as the difference");
    println!("alphabet widens (paper: ~68 B at 7-bit, ~600 B at 10-bit; our");
    println!("canonical varint serialization is tighter in absolute bytes).");
    Ok(())
}
