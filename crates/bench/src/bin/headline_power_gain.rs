//! Headline numbers — reproduces the paper's two power-gain claims by
//! measurement, not assumption: find the smallest `m` at which each
//! decoder reaches the SNR target on the evaluation corpus, then price
//! both with the analytical power models.
//!
//! Paper: SNR 20 dB needs m = 96 (hybrid) vs 240 (normal) → ~2.5×;
//! SNR 17 dB needs m = 16 (hybrid) vs 176 (normal) → ~11×.

use hybridcs_bench::{banner, eval_corpus, eval_windows_per_record, sweep_base_config};
use hybridcs_core::{HybridCodec, SystemConfig};
use hybridcs_ecg::Corpus;
use hybridcs_metrics::prd_to_snr_db;
use hybridcs_power::{hybrid_power, rmpi_power, PowerParams};

/// Mean corpus SNR for both decoders at a given m.
fn corpus_snr(corpus: &Corpus, base: &SystemConfig, m: usize, windows: usize) -> (f64, f64) {
    let config = SystemConfig {
        measurements: m,
        ..base.clone()
    };
    let codec = HybridCodec::with_default_training(&config).expect("config valid");
    let (mut err_h, mut err_n, mut energy) = (0.0f64, 0.0f64, 0.0f64);
    for record in corpus.records() {
        for window in record.windows(config.window).take(windows) {
            let encoded = codec.encode(window).expect("window sized");
            let hybrid = codec.decode(&encoded).expect("decode");
            let normal = codec.decode_normal(&encoded).expect("decode");
            for ((&x, xh), xn) in window.iter().zip(&hybrid.signal).zip(&normal.signal) {
                err_h += (x - xh) * (x - xh);
                err_n += (x - xn) * (x - xn);
                energy += x * x;
            }
        }
    }
    (
        prd_to_snr_db((err_h / energy).sqrt() * 100.0),
        prd_to_snr_db((err_n / energy).sqrt() * 100.0),
    )
}

/// Smallest m in `grid` whose SNR (picked by `select`) reaches `target`.
fn smallest_m(
    grid: &[usize],
    snrs: &[(usize, f64, f64)],
    target: f64,
    hybrid: bool,
) -> Option<usize> {
    grid.iter()
        .zip(snrs)
        .find(|(_, (_, h, n))| if hybrid { *h >= target } else { *n >= target })
        .map(|(&m, _)| m)
}

fn main() {
    banner(
        "Headline",
        "channels needed at fixed SNR and the resulting power gain",
    );
    let corpus = eval_corpus();
    let base = sweep_base_config();
    let windows = eval_windows_per_record();
    let params = PowerParams::default();
    let n = base.window;

    let grid: Vec<usize> = vec![8, 16, 24, 32, 48, 64, 96, 128, 176, 240, 320, 400, 480];
    let mut snrs = Vec::new();
    println!("  m | hybrid SNR | normal SNR");
    println!("----+------------+-----------");
    for &m in &grid {
        let (h, nn) = corpus_snr(&corpus, &base, m, windows);
        println!("{m:>3} | {h:>7.2} dB | {nn:>7.2} dB");
        snrs.push((m, h, nn));
    }
    println!();

    for target in [20.0f64, 17.0] {
        let mh = smallest_m(&grid, &snrs, target, true);
        let mn = smallest_m(&grid, &snrs, target, false);
        match (mh, mn) {
            (Some(mh), Some(mn)) => {
                let ph = hybrid_power(mh, n, 360.0, 7, &params);
                let pn = rmpi_power(mn, n, 360.0, &params);
                println!(
                    "SNR >= {target:.0} dB: hybrid m = {mh} ({:.0} uW) vs normal m = {mn} ({:.0} uW) -> {:.1}x power gain",
                    ph.total_uw(),
                    pn.total_uw(),
                    pn.total_w() / ph.total_w()
                );
            }
            (Some(mh), None) => {
                let ph = hybrid_power(mh, n, 360.0, 7, &params);
                let pn = rmpi_power(*grid.last().expect("grid non-empty"), n, 360.0, &params);
                println!(
                    "SNR >= {target:.0} dB: hybrid m = {mh} ({:.0} uW); normal CS never reaches it within m <= {} (>= {:.0} uW) -> gain > {:.1}x",
                    ph.total_uw(),
                    grid.last().expect("grid non-empty"),
                    pn.total_uw(),
                    pn.total_w() / ph.total_w()
                );
            }
            _ => println!("SNR >= {target:.0} dB: not reached by hybrid CS on this corpus"),
        }
    }
    println!();
    println!("paper reference: 96 vs 240 channels at 20 dB (~2.5x) and 16 vs 176");
    println!("channels at 17 dB (~11x).");
}
