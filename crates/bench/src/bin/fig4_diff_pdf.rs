//! Fig. 4 — PDF of the difference between quantized samples from the
//! low-resolution channel, for 10/8/6/4-bit resolutions. The paper's point:
//! the distribution is far from uniform (sharply peaked at 0), so Huffman
//! coding pays off.

use hybridcs_bench::{banner, eval_corpus};
use hybridcs_coding::delta_encode;
use hybridcs_frontend::LowResChannel;
use hybridcs_metrics::DiscretePdf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Fig. 4",
        "PDF of quantized-sample differences per bit depth",
    );
    let corpus = eval_corpus();

    for bits in [10u32, 8, 6, 4] {
        let channel = LowResChannel::new(bits)?;
        let mut diffs = Vec::new();
        for record in corpus.records() {
            for window in record.windows(512) {
                let frame = channel.acquire(window);
                let (_, d) = delta_encode(frame.codes());
                diffs.extend(d);
            }
        }
        let pdf = DiscretePdf::from_symbols(diffs);
        let (lo, hi) = pdf.support().expect("non-empty corpus");
        println!(
            "{bits}-bit: P(0) = {:.3}, P(|d|<=1) = {:.3}, support [{lo}, {hi}], entropy {:.2} bits",
            pdf.probability(0),
            pdf.probability(0) + pdf.probability(1) + pdf.probability(-1),
            pdf.entropy_bits()
        );
        // The plotted series: pdf over the central symbols (|d| <= 15 as in
        // the paper's x-axis).
        print!("  pdf: ");
        for d in -15i64..=15 {
            print!("{d}:{:.4} ", pdf.probability(d));
        }
        println!();
        println!();
    }

    println!("expected shape: lower resolutions concentrate ever harder at 0,");
    println!("matching the paper's Fig. 4 (4-bit nearly a point mass).");
    Ok(())
}
