//! Ablation — sensing-matrix family: the RMPI's dense ±1 Bernoulli matrix
//! vs the hardware-friendly sparse binary matrix of the authors' earlier
//! digital-CS work, under both decoders.

use hybridcs_bench::{banner, sweep_base_config};
use hybridcs_core::SensingOperator;
use hybridcs_dsp::Dwt;
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_frontend::{LowResChannel, MeasurementQuantizer, SensingMatrix};
use hybridcs_metrics::snr_db;
use hybridcs_solver::{solve_pdhg, BpdnProblem, PdhgOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Ablation", "dense Bernoulli vs sparse binary sensing");
    let base = sweep_base_config();
    let n = base.window;
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus())?;
    let window = &generator.generate(2.0, 0xAB4)[..n];
    let dwt = Dwt::new(base.wavelet, base.levels)?;
    let digitizer = MeasurementQuantizer::new(12, 2.5)?;
    let channel = LowResChannel::new(7)?;
    let (lo, hi) = channel.acquire(window).bounds();
    let opts = PdhgOptions::default();

    println!("matrix        |   m | hybrid SNR | normal SNR");
    println!("--------------+-----+------------+-----------");
    for m in [32usize, 96] {
        let matrices = [
            SensingMatrix::bernoulli(m, n, 0xFEED)?,
            SensingMatrix::sparse_binary(m, n, 8.min(m), 0xFEED)?,
        ];
        for phi in &matrices {
            let y = digitizer.digitize(&phi.apply(window));
            let sigma = digitizer.noise_sigma(m) * 1.5;
            let operator = SensingOperator::new(phi);
            let hybrid = solve_pdhg(
                &BpdnProblem {
                    sensing: &operator,
                    dwt: &dwt,
                    measurements: &y,
                    sigma,
                    box_bounds: Some((&lo, &hi)),
                    coefficient_weights: None,
                },
                &opts,
            )?;
            let normal = solve_pdhg(
                &BpdnProblem {
                    sensing: &operator,
                    dwt: &dwt,
                    measurements: &y,
                    sigma,
                    box_bounds: None,
                    coefficient_weights: None,
                },
                &opts,
            )?;
            println!(
                "{:<13} | {m:>3} | {:>7.2} dB | {:>7.2} dB",
                phi.kind_name(),
                snr_db(window, &hybrid.signal),
                snr_db(window, &normal.signal)
            );
        }
    }
    println!();
    println!("takeaway: the hybrid gain is matrix-agnostic — the box constraint");
    println!("rescues both families — while the sparse binary matrix trades a");
    println!("little quality for a hardware-trivial digital implementation.");
    Ok(())
}
