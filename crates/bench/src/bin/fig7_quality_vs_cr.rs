//! Fig. 7 — averaged SNR (top) and PRD (bottom) over all records, for
//! compression ratios 50–97%, Hybrid CS vs normal CS. The paper's core
//! quality result: hybrid dominates everywhere and the gap explodes at
//! high CR where normal CS stops converging.

use hybridcs_bench::{banner, eval_corpus, eval_windows_per_record, sweep_base_config};
use hybridcs_core::experiment::{quality_sweep, SweepConfig, PAPER_CR_GRID};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 7", "averaged SNR and PRD vs compression ratio");
    let corpus = eval_corpus();
    let sweep = SweepConfig {
        cr_points: PAPER_CR_GRID.to_vec(),
        windows_per_record: eval_windows_per_record(),
        base: sweep_base_config(),
        threads: std::thread::available_parallelism().map_or(8, |n| n.get()),
    };
    let points = quality_sweep(&corpus, &sweep)?;

    println!("CR(%) |   m | hybrid SNR | normal SNR | hybrid PRD | normal PRD | net CR(%)");
    println!("------+-----+------------+------------+------------+------------+----------");
    for p in &points {
        println!(
            "{:>5.0} | {:>3} | {:>7.2} dB | {:>7.2} dB | {:>9.2}% | {:>9.2}% | {:>8.2}",
            p.cr_percent,
            p.measurements,
            p.mean_hybrid_snr(),
            p.mean_normal_snr(),
            p.mean_hybrid_prd(),
            p.mean_normal_prd(),
            p.net_hybrid_cr(),
        );
    }

    println!();
    println!("expected shape (paper Fig. 7): hybrid SNR stays in the high-teens/");
    println!("twenties across the whole grid while normal CS decays sharply and");
    println!("is unusable by CR >= 88%; 'good' quality reached near CR 81% for");
    println!("hybrid vs ~53% for normal CS.");
    Ok(())
}
