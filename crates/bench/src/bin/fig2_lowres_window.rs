//! Fig. 2 — an example fixed-size window seen by the low-resolution path:
//! (a) the original trace vs its 7-bit quantized version, (b) the bound
//! area the decoder receives. Emits `(t, original_adu, lowres_adu, lo, hi)`
//! rows ready for plotting.

use hybridcs_bench::banner;
use hybridcs_ecg::{AdcCalibration, EcgGenerator, GeneratorConfig};
use hybridcs_frontend::LowResChannel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 2", "low-resolution window (7-bit) and its bound area");

    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus())?;
    let strip = generator.generate(2.0, 0xF162);
    let window = &strip[..360]; // the figure shows ~1 s
    let cal = AdcCalibration::mit_bih();
    let channel = LowResChannel::new(7)?;
    let frame = channel.acquire(window);
    let (lo, hi) = frame.bounds();
    let lowres = frame.samples();

    println!("t_s, original_adu, lowres_adu, bound_lo_adu, bound_hi_adu");
    for (i, &x) in window.iter().enumerate() {
        println!(
            "{:.4}, {:.1}, {:.1}, {:.1}, {:.1}",
            i as f64 / 360.0,
            cal.mv_to_adu(x),
            cal.mv_to_adu(lowres[i]),
            cal.mv_to_adu(lo[i]),
            cal.mv_to_adu(hi[i]),
        );
    }

    // Summary the paper's Fig. 2 conveys visually.
    let distinct: std::collections::HashSet<u32> = frame.codes().iter().copied().collect();
    println!();
    println!(
        "window of {} samples uses only {} distinct 7-bit codes (step = {:.1} adu)",
        window.len(),
        distinct.len(),
        cal.gain_adu_per_mv * channel.step(),
    );
    Ok(())
}
