//! Fig. 6 — average compression ratio (encoded/raw fraction) of the
//! low-resolution path for each bit resolution, measured on the evaluation
//! corpus with codebooks trained on the disjoint offline set.

use hybridcs_bench::{banner, eval_corpus};
use hybridcs_core::experiment::default_training_windows;
use hybridcs_core::{train_lowres_codec, train_rle_lowres_codec};
use hybridcs_frontend::LowResChannel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Fig. 6",
        "low-resolution-path compression ratio vs bit depth",
    );
    let training = default_training_windows(512);
    let corpus = eval_corpus();

    println!("bits | Huffman CR | +zero-run CR");
    println!("-----+------------+-------------");
    for bits in 3u32..=10 {
        let plain = train_lowres_codec(bits, &training)?;
        let rle = train_rle_lowres_codec(bits, &training)?;
        let channel = LowResChannel::new(bits)?;
        let mut frames = Vec::new();
        for record in corpus.records() {
            for window in record.windows(512) {
                frames.push(channel.acquire(window).codes().to_vec());
            }
        }
        let cr_plain = plain.compression_ratio(frames.iter().map(|v| &v[..]))?;
        let cr_rle = rle.compression_ratio(frames.iter().map(|v| &v[..]))?;
        println!("{bits:>4} | {cr_plain:>10.4} | {cr_rle:>11.4}");
    }
    println!();
    println!("expected shape: the ratio worsens (grows) as resolution increases,");
    println!("because the difference distribution approaches uniform — the trend");
    println!("of the paper's Fig. 6.");
    Ok(())
}
