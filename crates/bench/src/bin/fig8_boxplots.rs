//! Fig. 8 — per-record SNR box plots (median, quartiles, Tukey whiskers,
//! outliers) across the compression-ratio grid, for normal CS (top) and
//! hybrid CS (bottom).

use hybridcs_bench::{banner, eval_corpus, eval_windows_per_record, sweep_base_config};
use hybridcs_core::experiment::{quality_sweep, SweepConfig, PAPER_CR_GRID};
use hybridcs_metrics::SummaryStats;

fn print_row(cr: f64, stats: &SummaryStats) {
    println!(
        "{cr:>5.0} | {:>6.2} | {:>6.2} | {:>6.2} | {:>6.2} | {:>6.2} | {}",
        stats.whisker_low,
        stats.q1,
        stats.median,
        stats.q3,
        stats.whisker_high,
        stats.outliers.len()
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 8", "per-record SNR box plots, normal vs hybrid CS");
    let corpus = eval_corpus();
    let sweep = SweepConfig {
        cr_points: PAPER_CR_GRID.to_vec(),
        windows_per_record: eval_windows_per_record(),
        base: sweep_base_config(),
        threads: std::thread::available_parallelism().map_or(8, |n| n.get()),
    };
    let points = quality_sweep(&corpus, &sweep)?;

    println!("normal CS (paper Fig. 8 top):");
    println!("CR(%) | w.low |    q1 | median |    q3 | w.high | outliers");
    println!("------+-------+-------+--------+-------+--------+---------");
    for p in &points {
        if let Some(stats) = p.normal_snr_stats() {
            print_row(p.cr_percent, &stats);
        }
    }
    println!();
    println!("hybrid CS (paper Fig. 8 bottom):");
    println!("CR(%) | w.low |    q1 | median |    q3 | w.high | outliers");
    println!("------+-------+-------+--------+-------+--------+---------");
    for p in &points {
        if let Some(stats) = p.hybrid_snr_stats() {
            print_row(p.cr_percent, &stats);
        }
    }

    println!();
    println!("expected shape: the normal-CS boxes slide toward 0 dB and widen as");
    println!("CR grows; the hybrid boxes stay in a narrow mid-teens-to-twenties");
    println!("band across the whole axis (paper's 14-24 dB band).");
    Ok(())
}
