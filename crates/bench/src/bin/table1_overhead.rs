//! Table I — average overhead `Dᵢ = CRᵢ·i/12` (percent of the 12-bit
//! original stream) contributed by the low-resolution channel at each bit
//! resolution, with the paper's reported row for comparison.

use hybridcs_bench::{banner, eval_corpus};
use hybridcs_core::experiment::default_training_windows;
use hybridcs_core::{train_lowres_codec, train_rle_lowres_codec};
use hybridcs_frontend::LowResChannel;
use hybridcs_metrics::lowres_overhead_percent;

/// Paper Table I, bits 10 down to 3.
const PAPER: [(u32, f64); 8] = [
    (10, 26.3),
    (9, 17.6),
    (8, 11.4),
    (7, 7.8),
    (6, 5.6),
    (5, 4.2),
    (4, 3.1),
    (3, 2.3),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Table I", "low-resolution-channel overhead per bit depth");
    let training = default_training_windows(512);
    let corpus = eval_corpus();

    println!("bits | Huffman Di (%) | +zero-run Di (%) | paper Di (%)");
    println!("-----+----------------+------------------+-------------");
    for (bits, paper_d) in PAPER {
        let plain = train_lowres_codec(bits, &training)?;
        let rle = train_rle_lowres_codec(bits, &training)?;
        let channel = LowResChannel::new(bits)?;
        let mut frames = Vec::new();
        for record in corpus.records() {
            for window in record.windows(512) {
                frames.push(channel.acquire(window).codes().to_vec());
            }
        }
        let cr_plain = plain.compression_ratio(frames.iter().map(|v| &v[..]))?;
        let cr_rle = rle.compression_ratio(frames.iter().map(|v| &v[..]))?;
        println!(
            "{bits:>4} | {:>14.2} | {:>16.2} | {paper_d:>11.1}",
            lowres_overhead_percent(cr_plain, bits, 12),
            lowres_overhead_percent(cr_rle, bits, 12)
        );
    }
    println!();
    println!("expected shape: overhead grows monotonically with resolution. Plain");
    println!("per-symbol Huffman floors at 1 bit/sample (Di >= 8.33%); the paper's");
    println!("sub-8% rows require grouping zero runs, which the '+zero-run' column");
    println!("enables — it tracks the paper across the low-resolution regime.");
    Ok(())
}
