//! Ablation — sparsifying basis: reconstruction quality per wavelet family
//! at two compression ratios, plus each family's effective sparsity on
//! clean ECG. Justifies DESIGN.md's default of db4.

use hybridcs_bench::{banner, sweep_base_config};
use hybridcs_core::{HybridCodec, SystemConfig};
use hybridcs_dsp::{Dwt, Wavelet};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_metrics::snr_db;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Ablation", "wavelet family vs reconstruction quality");
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus())?;
    let strip = generator.generate(4.0, 0xAB2);
    let base = sweep_base_config();
    let window = &strip[..base.window];

    println!("family | taps | 95%-energy coeffs | SNR@CR75 | SNR@CR94 (hybrid/normal)");
    println!("-------+------+-------------------+----------+--------------------------");
    for wavelet in Wavelet::ALL {
        let levels = Dwt::max_levels(wavelet, base.window).min(5);
        let dwt = Dwt::new(wavelet, levels)?;
        // Effective sparsity: coefficients needed for 95% of the energy.
        let mut coeffs = dwt.forward(window)?;
        let total: f64 = coeffs.iter().map(|c| c * c).sum();
        coeffs.sort_by(|a, b| b.abs().partial_cmp(&a.abs()).expect("finite"));
        let mut acc = 0.0;
        let mut k95 = coeffs.len();
        for (k, c) in coeffs.iter().enumerate() {
            acc += c * c;
            if acc >= 0.95 * total {
                k95 = k + 1;
                break;
            }
        }

        let mut line = format!(
            "{:<6} | {:>4} | {k95:>17} |",
            wavelet.name(),
            wavelet.filter_len()
        );
        for m in [128usize, 32] {
            let config = SystemConfig {
                measurements: m,
                wavelet,
                levels,
                ..base.clone()
            };
            let codec = HybridCodec::with_default_training(&config)?;
            let encoded = codec.encode(window)?;
            let hybrid = codec.decode(&encoded)?;
            let normal = codec.decode_normal(&encoded)?;
            line.push_str(&format!(
                " {:>5.1}/{:<5.1} |",
                snr_db(window, &hybrid.signal),
                snr_db(window, &normal.signal)
            ));
        }
        println!("{line}");
    }
    println!();
    println!("takeaway: the smoother Daubechies/symlet families compact ECG energy");
    println!("into far fewer coefficients than Haar and win at every CR; db4 is a");
    println!("good cost/quality balance, matching the authors' earlier ECG work.");
    Ok(())
}
