//! Telemetry-overhead gate: the gateway decode path with `HYBRIDCS_OBS`
//! telemetry **on** must stay bit-identical to the default path and cost
//! at most a bounded throughput overhead (default ≤ 5%).
//!
//! ```sh
//! cargo run --release --bin obs_overhead
//! ```
//!
//! The same frame stream is pushed through identical gateways twice per
//! round — telemetry off, then on (spans, flight recorder, event
//! contexts all live) — for several rounds, taking the **minimum** wall
//! time per mode so scheduler noise cannot fail the gate spuriously. The
//! process exits non-zero when
//!
//! * any decoded window differs between the two modes (the telemetry
//!   layer must be purely observational), or
//! * `min(on) / min(off) − 1` exceeds the overhead limit.
//!
//! The bench report (`BENCH_obs.json` by default, JSONL in the
//! `hybridcs-obs` export schema) carries both throughputs, the measured
//! overhead ratio, and the flight-recorder event volume of the enabled
//! run.
//!
//! Environment knobs: `HYBRIDCS_OBS_WINDOWS` (default 16 frames per run),
//! `HYBRIDCS_OBS_ROUNDS` (default 3), `HYBRIDCS_OBS_OVERHEAD_LIMIT`
//! (default 0.05), `HYBRIDCS_OBS_BENCH_PATH` (default `BENCH_obs.json`).

use hybridcs_coding::LowResCodec;
use hybridcs_core::experiment::default_training_windows;
use hybridcs_core::telemetry::FrameCodec;
use hybridcs_core::{train_lowres_codec, HybridFrontEnd, SystemConfig};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_gateway::{Gateway, GatewayConfig};
use hybridcs_obs::flight::recorder;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Rig {
    system: SystemConfig,
    codec: LowResCodec,
    frames: Vec<Vec<u8>>,
}

fn rig(frames: usize) -> Rig {
    let system = SystemConfig {
        measurements: 64,
        ..SystemConfig::default()
    };
    let codec = train_lowres_codec(system.lowres_bits, &default_training_windows(system.window))
        .expect("codec trains");
    let frontend = HybridFrontEnd::new(&system, codec.clone()).expect("frontend builds");
    let wire = FrameCodec::new(&system).expect("wire codec builds");
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).expect("generator builds");
    let strip = generator.generate(frames as f64, 0x0B5_0B5);
    let frames = strip
        .chunks_exact(system.window)
        .take(frames)
        .enumerate()
        .map(|(seq, window)| {
            let encoded = frontend.encode(window).expect("window encodes");
            wire.serialize(seq as u32, &encoded)
                .expect("frame serializes")
        })
        .collect();
    Rig {
        system,
        codec,
        frames,
    }
}

/// Pushes the whole stream through a fresh gateway and returns the wall
/// time plus every decoded signal (the bit-identity evidence).
fn run(rig: &Rig, telemetry: bool) -> (f64, Vec<Vec<f64>>) {
    hybridcs_obs::set_enabled(telemetry);
    recorder().clear();
    let mut gateway = Gateway::new(GatewayConfig {
        // Admit every window so the heavy hybrid solves dominate — the
        // realistic worst case for relative telemetry overhead is not the
        // interesting one; the realistic steady state is.
        admit_quota: u32::MAX,
        admit_window: u32::MAX,
        ..GatewayConfig::default()
    })
    .expect("gateway config valid");
    gateway
        .handshake(1, &rig.system, rig.codec.clone())
        .expect("handshake");
    let started = Instant::now();
    for frame in &rig.frames {
        gateway.push(1, frame).expect("push");
    }
    gateway.flush().expect("flush");
    let elapsed = started.elapsed().as_secs_f64();
    let outputs = gateway
        .take_outputs(1)
        .expect("outputs")
        .into_iter()
        .map(|w| w.signal)
        .collect();
    // Leave nothing armed for the next run.
    let _ = hybridcs_obs::drain_events();
    hybridcs_obs::set_enabled(false);
    (elapsed, outputs)
}

fn main() {
    let frames = env_usize("HYBRIDCS_OBS_WINDOWS", 16);
    let rounds = env_usize("HYBRIDCS_OBS_ROUNDS", 3).max(1);
    let limit = env_f64("HYBRIDCS_OBS_OVERHEAD_LIMIT", 0.05);
    let bench_path =
        std::env::var("HYBRIDCS_OBS_BENCH_PATH").unwrap_or_else(|_| "BENCH_obs.json".to_string());
    let rig = rig(frames);

    // Warm both paths (operator caches, allocator pools, page faults).
    let (_, baseline) = run(&rig, false);
    let (_, telemetry) = run(&rig, true);
    assert_eq!(
        baseline, telemetry,
        "telemetry-enabled decode output diverged from default"
    );

    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut events_recorded = 0u64;
    for _ in 0..rounds {
        let (t_off, out_off) = run(&rig, false);
        let (t_on, out_on) = run(&rig, true);
        assert_eq!(out_off, baseline, "default path output not reproducible");
        assert_eq!(out_on, baseline, "telemetry path output diverged");
        best_off = best_off.min(t_off);
        best_on = best_on.min(t_on);
        events_recorded = events_recorded.max(recorder().recorded());
    }
    let overhead = best_on / best_off - 1.0;
    let throughput_off = frames as f64 / best_off;
    let throughput_on = frames as f64 / best_on;
    println!(
        "decode throughput: telemetry off {throughput_off:.1} windows/s, \
         on {throughput_on:.1} windows/s ({} rounds, min-of-N)",
        rounds
    );
    println!(
        "telemetry overhead: {:+.2}% (limit {:.2}%), {} flight events/run",
        overhead * 100.0,
        limit * 100.0,
        events_recorded
    );

    let registry = hybridcs_obs::MetricsRegistry::new();
    registry
        .gauge("obs_overhead_ratio", &[])
        .set(overhead.max(0.0));
    registry
        .gauge("obs_windows_per_second", &[("telemetry", "off")])
        .set(throughput_off);
    registry
        .gauge("obs_windows_per_second", &[("telemetry", "on")])
        .set(throughput_on);
    registry
        .gauge("obs_flight_events_per_run", &[])
        .set(events_recorded as f64);
    let path = std::path::PathBuf::from(&bench_path);
    hybridcs_obs::export::write_jsonl(&path, "obs_overhead", &registry.snapshot(), &[])
        .expect("bench report writes");
    println!("bench report: {}", path.display());

    assert!(
        events_recorded > 0,
        "telemetry-enabled run recorded no flight events — the gate is \
         not measuring what it claims to"
    );
    assert!(
        overhead <= limit,
        "telemetry overhead {:.2}% exceeds the {:.2}% limit",
        overhead * 100.0,
        limit * 100.0
    );
    println!("obs overhead: OK");
}
