//! Ablation — low-resolution channel bit depth: the Section III-A
//! trade-off between the parallel channel's overhead and the number of CS
//! measurements needed. Sweeps B ∈ {3..10} at fixed m and reports quality,
//! overhead, and net compression.

use hybridcs_bench::{banner, sweep_base_config};
use hybridcs_core::{HybridCodec, SystemConfig};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_metrics::snr_db;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Ablation",
        "low-resolution bit depth vs quality and overhead (m = 32 fixed)",
    );
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus())?;
    let strip = generator.generate(4.0, 0xAB3);
    let base = sweep_base_config();
    let window = &strip[..base.window];

    println!("bits | hybrid SNR | lowres bits/win | net CR(%)");
    println!("-----+------------+-----------------+----------");
    for bits in 3u32..=10 {
        let config = SystemConfig {
            measurements: 32,
            lowres_bits: bits,
            ..base.clone()
        };
        let codec = HybridCodec::with_default_training(&config)?;
        let encoded = codec.encode(window)?;
        let decoded = codec.decode(&encoded)?;
        println!(
            "{bits:>4} | {:>7.2} dB | {:>15} | {:>8.2}",
            snr_db(window, &decoded.signal),
            encoded.lowres_payload_bits(),
            encoded.net_compression_ratio(config.original_bits)
        );
    }
    println!();
    println!("takeaway: quality rises with B (tighter boxes) while net CR falls");
    println!("(bigger side channel); around B = 7 the curve knees — the paper's");
    println!("chosen operating point.");
    Ok(())
}
