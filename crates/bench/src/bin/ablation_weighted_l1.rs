//! Ablation — model-based (weighted-ℓ₁) recovery: the paper's introduction
//! points to structured/model-based sparse recovery as the other lever for
//! reducing measurements. This bin compares flat ℓ₁ against band-weighted
//! ℓ₁ (approximation band barely penalized, fine details penalized
//! progressively) for both the hybrid and the normal decoder.

use hybridcs_bench::{banner, sweep_base_config};
use hybridcs_core::SensingOperator;
use hybridcs_dsp::Dwt;
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_frontend::{LowResChannel, MeasurementQuantizer, SensingMatrix};
use hybridcs_metrics::snr_db;
use hybridcs_solver::{
    band_weights, solve_pdhg, solve_reweighted, BpdnProblem, PdhgOptions, ReweightedOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Ablation", "flat vs band-weighted l1 objectives");
    let base = sweep_base_config();
    let n = base.window;
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus())?;
    let window = &generator.generate(2.0, 0xAB5)[..n];
    let dwt = Dwt::new(base.wavelet, base.levels)?;
    let digitizer = MeasurementQuantizer::new(12, 2.5)?;
    let channel = LowResChannel::new(7)?;
    let (lo, hi) = channel.acquire(window).bounds();
    let weights = band_weights(&dwt, n, 0.1, 1.4)?;
    let opts = PdhgOptions::default();

    println!("  m | objective      | hybrid SNR | normal SNR");
    println!("----+----------------+------------+-----------");
    for m in [16usize, 32, 64, 96] {
        let phi = SensingMatrix::bernoulli(m, n, 0xFEED)?;
        let y = digitizer.digitize(&phi.apply(window));
        let sigma = digitizer.noise_sigma(m) * 1.5;
        let operator = SensingOperator::new(&phi);
        for (label, w) in [("flat l1", None), ("band-weighted", Some(&weights[..]))] {
            let hybrid = solve_pdhg(
                &BpdnProblem {
                    sensing: &operator,
                    dwt: &dwt,
                    measurements: &y,
                    sigma,
                    box_bounds: Some((&lo, &hi)),
                    coefficient_weights: w,
                },
                &opts,
            )?;
            let normal = solve_pdhg(
                &BpdnProblem {
                    sensing: &operator,
                    dwt: &dwt,
                    measurements: &y,
                    sigma,
                    box_bounds: None,
                    coefficient_weights: w,
                },
                &opts,
            )?;
            println!(
                "{m:>3} | {label:<14} | {:>7.2} dB | {:>7.2} dB",
                snr_db(window, &hybrid.signal),
                snr_db(window, &normal.signal)
            );
        }
        // Iteratively-reweighted l1 (Candès-Wakin-Boyd), 3 rounds.
        let rw = ReweightedOptions::default();
        let hybrid = solve_reweighted(
            &BpdnProblem {
                sensing: &operator,
                dwt: &dwt,
                measurements: &y,
                sigma,
                box_bounds: Some((&lo, &hi)),
                coefficient_weights: None,
            },
            &rw,
        )?;
        let normal = solve_reweighted(
            &BpdnProblem {
                sensing: &operator,
                dwt: &dwt,
                measurements: &y,
                sigma,
                box_bounds: None,
                coefficient_weights: None,
            },
            &rw,
        )?;
        println!(
            "{m:>3} | {:<14} | {:>7.2} dB | {:>7.2} dB",
            "reweighted x3",
            snr_db(window, &hybrid.signal),
            snr_db(window, &normal.signal)
        );
    }
    println!();
    println!("takeaway: band weighting is worth ~2-3 dB to the hybrid decoder");
    println!("and considerably more to normal CS once m is large enough for the");
    println!("measurements to pin the coarse scales — confirming the paper's");
    println!("remark that model-based recovery and the parallel channel attack");
    println!("the same measurement bound from different directions.");
    Ok(())
}
