//! Micro-benchmarks for the batched decode kernels at both SIMD tiers.
//!
//! ```sh
//! cargo run --release --bin kernels_batch
//! ```
//!
//! Covers the four kernel families the batched solvers spend their time
//! in, each timed under the scalar tier and — when the host supports
//! AVX2+FMA — the SIMD tier, driven through the in-process
//! [`set_override`] so one run reports both:
//!
//! 1. packed-Bernoulli sensing, batched forward and adjoint
//!    ([`SensingMatrix::apply_batch_into_scratch`] /
//!    [`SensingMatrix::apply_adjoint_batch_into_scratch`]);
//! 2. wavelet panel transforms ([`Dwt::forward_panel_into`] /
//!    [`Dwt::inverse_panel_into`]);
//! 3. `hybridcs-linalg` lane kernels (`axpy`, `dot_lanes`);
//! 4. `hybridcs-solver` prox/update lane kernels
//!    (`soft_threshold_lanes`, `grad_step_lanes`).
//!
//! Shapes match the default decode configuration (512-sample windows,
//! m = 96) at the gateway's default batch width K = 16. Every tier pair
//! computes bit-identical outputs (the 0-ULP contract pinned by the
//! kernel tests); these numbers only rank how fast each tier produces
//! those bits. Timings use the [`Micro`] harness: median per iteration
//! plus mean and p50/p90/p99 across samples, all recorded into the
//! global metrics registry as `bench_iter_seconds{bench=…}`.
//!
//! Environment knobs: `HYBRIDCS_BENCH_SAMPLES`, `HYBRIDCS_BENCH_SAMPLE_MS`
//! (see [`hybridcs_bench::micro`]).

use hybridcs_bench::micro::{black_box, Micro};
use hybridcs_dsp::{Dwt, Wavelet};
use hybridcs_frontend::SensingMatrix;
use hybridcs_linalg::simd::{self, set_override, simd_available};
use hybridcs_solver::simd as solver_simd;

const N: usize = 512;
const M: usize = 96;
const K: usize = 16;

/// Deterministic panel fill — a cheap xorshift so runs are reproducible
/// without pulling a PRNG dependency into the bench.
fn fill(panel: &mut [f64], mut state: u64) {
    for slot in panel.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        #[allow(clippy::cast_precision_loss)]
        let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
        *slot = unit - 0.5;
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let harness = Micro::new();
    let sensing = SensingMatrix::bernoulli(M, N, 0xBE)?;
    let dwt = Dwt::new(Wavelet::Db4, 4)?;

    let mut x_panel = vec![0.0; N * K];
    let mut y_panel = vec![0.0; M * K];
    let mut out_n = vec![0.0; N * K];
    let mut out_m = vec![0.0; M * K];
    let mut sense_scratch = vec![0.0; sensing.batch_scratch_len(K)];
    let mut dwt_scratch = vec![0.0; Dwt::panel_scratch_len(N, K)];
    let mut vector = vec![0.0; N * K];
    let mut dots = vec![0.0; K];
    let thresholds: Vec<f64> = (0..K).map(|l| 1e-3 * (l + 1) as f64).collect();
    fill(&mut x_panel, 0x5EED_0001);
    fill(&mut y_panel, 0x5EED_0002);
    fill(&mut vector, 0x5EED_0003);

    let tiers: &[(bool, &str)] = if simd_available() {
        &[(false, "scalar"), (true, "simd")]
    } else {
        println!("kernels_batch: host lacks AVX2+FMA — scalar tier only");
        &[(false, "scalar")]
    };
    println!(
        "kernels_batch: n = {N}, m = {M}, K = {K}, {} samples x ~{} ms",
        harness.samples,
        harness.sample_budget.as_millis()
    );

    for &(simd_on, tier) in tiers {
        set_override(Some(simd_on));

        harness.bench(&format!("sensing_forward_batch/k{K}/{tier}"), || {
            sensing.apply_batch_into_scratch(
                black_box(&x_panel),
                K,
                &mut out_m,
                &mut sense_scratch,
            );
        });
        harness.bench(&format!("sensing_adjoint_batch/k{K}/{tier}"), || {
            sensing.apply_adjoint_batch_into_scratch(
                black_box(&y_panel),
                K,
                &mut out_n,
                &mut sense_scratch,
            );
        });

        harness.bench(&format!("dwt_forward_panel/k{K}/{tier}"), || {
            dwt.forward_panel_into(black_box(&x_panel), K, &mut out_n, &mut dwt_scratch)
        });
        harness.bench(&format!("dwt_inverse_panel/k{K}/{tier}"), || {
            dwt.inverse_panel_into(black_box(&x_panel), K, &mut out_n, &mut dwt_scratch)
        });

        harness.bench(&format!("linalg_axpy/nk{}/{tier}", N * K), || {
            simd::axpy(black_box(0.125), &x_panel, &mut out_n);
        });
        harness.bench(&format!("linalg_dot_lanes/k{K}/{tier}"), || {
            simd::dot_lanes(black_box(&x_panel), &vector[..N], K, &mut dots);
        });

        harness.bench(&format!("solver_soft_threshold_lanes/k{K}/{tier}"), || {
            out_n.copy_from_slice(&x_panel);
            solver_simd::soft_threshold_lanes(black_box(&mut out_n), &thresholds, K);
        });
        harness.bench(&format!("solver_grad_step_lanes/k{K}/{tier}"), || {
            solver_simd::grad_step_lanes(black_box(&x_panel), &vector, &x_panel, 0.01, &mut out_n);
        });
    }
    set_override(None);
    println!("kernels_batch: OK");
    Ok(())
}
