//! Shared helpers for the paper-figure regenerators and micro-benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). Output is a plain text table on
//! stdout — the same rows/series the paper plots.
//!
//! Two environment variables trade fidelity for runtime:
//!
//! * `HYBRIDCS_RECORDS` — corpus size (default 48, the full MIT-BIH-like
//!   population; set e.g. 8 for a quick pass).
//! * `HYBRIDCS_WINDOWS` — evaluated windows per record (default 2).

// `deny` rather than `forbid`: the `alloc_counter` module needs a scoped
// `allow` for its `GlobalAlloc` impl (the one unsafe block in the workspace,
// required by the trait's signature).
#![deny(unsafe_code)]

pub mod alloc_counter;
pub mod micro;

use hybridcs_core::{DecoderAlgorithm, SystemConfig};
use hybridcs_ecg::{Corpus, CorpusConfig};
use hybridcs_solver::PdhgOptions;

/// Number of corpus records for evaluation (env-overridable).
#[must_use]
pub fn eval_records() -> usize {
    std::env::var("HYBRIDCS_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// Windows evaluated per record (env-overridable).
#[must_use]
pub fn eval_windows_per_record() -> usize {
    std::env::var("HYBRIDCS_WINDOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// The shared evaluation corpus: `eval_records()` records of 10 s each,
/// seeded identically across every regenerator so figures are mutually
/// consistent.
#[must_use]
pub fn eval_corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        records: eval_records(),
        duration_s: 10.0,
        seed: 0xEC6,
    })
}

/// The decoder configuration used by the quality sweeps: PDHG with a
/// budget suited to batch evaluation.
#[must_use]
pub fn sweep_base_config() -> SystemConfig {
    SystemConfig {
        algorithm: DecoderAlgorithm::Pdhg(PdhgOptions {
            max_iterations: 2000,
            tolerance: 5e-5,
            ..PdhgOptions::default()
        }),
        ..SystemConfig::default()
    }
}

/// Prints a standard header naming the paper artifact being regenerated.
pub fn banner(artifact: &str, description: &str) {
    println!("=== {artifact} — {description} ===");
    println!(
        "(corpus: {} records x {} windows; override with HYBRIDCS_RECORDS / HYBRIDCS_WINDOWS)",
        eval_records(),
        eval_windows_per_record()
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_builder_respects_defaults() {
        // Cannot assume env vars are unset under `cargo test`, so check
        // the parse-fallback logic directly.
        assert!(eval_records() >= 1);
        assert!(eval_windows_per_record() >= 1);
    }

    #[test]
    fn sweep_config_is_valid() {
        assert!(sweep_base_config().validate().is_ok());
    }
}
