//! Test-only counting allocator backing the zero-allocation decode gate.
//!
//! `examples/decode_throughput.rs` installs [`CountingAllocator`] as its
//! `#[global_allocator]`, warms a [`SolverWorkspace`], and then asserts that
//! a span of steady-state solves performs **zero** heap allocations — the
//! CI-enforced contract of the workspace-driven decode hot path.
//!
//! The counter is process-global and deliberately crude: it counts
//! `alloc`/`realloc`/`alloc_zeroed` calls (not bytes, not frees) while
//! [`start_counting`] is active. That is exactly the granularity the gate
//! needs — any nonzero count inside the measured span is a regression.
//!
//! [`SolverWorkspace`]: https://docs.rs/hybridcs-solver
//!
//! # Example
//!
//! ```
//! use hybridcs_bench::alloc_counter;
//!
//! // (In a real gate the global allocator must be CountingAllocator for
//! // the count to move; installing it here would poison other doctests,
//! // so this only exercises the API surface.)
//! alloc_counter::start_counting();
//! let observed = alloc_counter::stop_counting();
//! let _ = observed;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

/// A `System`-backed allocator that counts allocation calls while armed
/// via [`start_counting`]. Install with `#[global_allocator]` in the
/// binary that runs the gate (the declaration itself is safe code).
pub struct CountingAllocator;

#[allow(unsafe_code)]
// SAFETY: every method delegates verbatim to `System`; the only addition
// is a relaxed atomic increment, which cannot allocate or panic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// Zeroes the counter and arms it: subsequent allocations through
/// [`CountingAllocator`] are counted until [`stop_counting`].
pub fn start_counting() {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
}

/// Disarms the counter and returns the number of allocation calls observed
/// since [`start_counting`].
#[must_use]
pub fn stop_counting() -> u64 {
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_inert_without_the_global_allocator() {
        // This test binary uses the default allocator, so arming the
        // counter must observe nothing.
        start_counting();
        let v: Vec<u64> = (0..100).collect();
        assert_eq!(v.len(), 100);
        assert_eq!(stop_counting(), 0);
    }
}
