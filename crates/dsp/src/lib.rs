//! Wavelet transforms and digital filters for the hybrid compressed-sensing
//! ECG front-end reproduction.
//!
//! The recovery program of the paper (Eq. 1) is posed in a sparsifying basis
//! `Ψ`; following the authors' earlier ECG-CS work the basis is an
//! **orthonormal Daubechies wavelet frame**. This crate implements:
//!
//! * [`Wavelet`] — orthonormal filter families (Haar, db2, db4, db6, sym4)
//!   with their quadrature-mirror high-pass filters.
//! * [`Dwt`] — multi-level periodized discrete wavelet transform. Because
//!   the filter banks are orthonormal, [`Dwt::inverse`] is exactly the
//!   adjoint of [`Dwt::forward`], which lets the proximal solvers evaluate
//!   `prox(‖Ψᵀ·‖₁)` with two fast transforms instead of an `n × n` matrix.
//! * [`filters`] — small FIR/IIR building blocks used by the synthetic ECG
//!   noise models (baseline wander shaping, mains hum, EMG band-pass).
//!
//! # Example
//!
//! ```
//! use hybridcs_dsp::{Dwt, Wavelet};
//!
//! # fn main() -> Result<(), hybridcs_dsp::DspError> {
//! let dwt = Dwt::new(Wavelet::Db4, 3)?;
//! let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.1).sin()).collect();
//! let coeffs = dwt.forward(&x)?;
//! let back = dwt.inverse(&coeffs)?;
//! let err: f64 = x.iter().zip(&back).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
//! assert!(err < 1e-10, "orthonormal DWT reconstructs perfectly");
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: `transform::panel_kernels` scopes a single
// `allow(unsafe_code)` around its runtime-dispatched AVX2 twins of the
// filter-bank loops; everything else still refuses unsafe at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod filters;
mod transform;
mod wavelet;

pub use error::DspError;
pub use transform::{CoeffLayout, Dwt};
pub use wavelet::Wavelet;
