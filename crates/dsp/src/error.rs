use std::error::Error;
use std::fmt;

/// Errors produced by the DSP kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DspError {
    /// A transform was asked for zero decomposition levels.
    ZeroLevels,
    /// The signal length does not support the requested transform.
    ///
    /// A periodized `levels`-deep DWT requires the length to be divisible by
    /// `2^levels` and each intermediate approximation band to be at least as
    /// long as the wavelet filter.
    BadLength {
        /// Length supplied by the caller.
        len: usize,
        /// Number of decomposition levels requested.
        levels: usize,
        /// Minimal acceptable length for this configuration.
        min_len: usize,
    },
    /// A coefficient vector did not match the transform's expected length.
    CoeffLengthMismatch {
        /// Expected coefficient-vector length.
        expected: usize,
        /// Actual length supplied.
        actual: usize,
    },
    /// A filter was constructed with no taps.
    EmptyFilter,
    /// An IIR design parameter was outside its valid range.
    BadParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied.
        value: f64,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::ZeroLevels => write!(f, "transform requires at least one level"),
            DspError::BadLength {
                len,
                levels,
                min_len,
            } => write!(
                f,
                "signal length {len} unsupported for {levels} levels (needs a multiple of 2^levels and at least {min_len})"
            ),
            DspError::CoeffLengthMismatch { expected, actual } => write!(
                f,
                "coefficient length mismatch: expected {expected}, got {actual}"
            ),
            DspError::EmptyFilter => write!(f, "filter must have at least one tap"),
            DspError::BadParameter { name, value } => {
                write!(f, "parameter {name} out of range: {value}")
            }
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_numbers() {
        let e = DspError::BadLength {
            len: 100,
            levels: 5,
            min_len: 128,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains('5') && s.contains("128"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
