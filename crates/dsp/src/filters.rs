//! Small FIR/IIR building blocks.
//!
//! These are the shaping filters behind the synthetic ECG noise models:
//! a one-pole low-pass turns white noise into baseline wander, a band-pass
//! built from two one-poles shapes EMG noise, and a moving average models
//! simple anti-aliasing in front of the low-resolution ADC.

use crate::DspError;

/// Direct-form FIR filter applied by (non-circular) convolution with
/// zero-padding on the left, so the output has the same length as the input.
///
/// # Example
///
/// ```
/// use hybridcs_dsp::filters::FirFilter;
///
/// # fn main() -> Result<(), hybridcs_dsp::DspError> {
/// let diff = FirFilter::new(vec![1.0, -1.0])?;
/// assert_eq!(diff.apply(&[1.0, 3.0, 6.0]), vec![1.0, 2.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FirFilter {
    taps: Vec<f64>,
}

impl FirFilter {
    /// Creates a filter with the given taps (`taps[0]` multiplies the most
    /// recent sample).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyFilter`] when `taps` is empty.
    pub fn new(taps: Vec<f64>) -> Result<Self, DspError> {
        if taps.is_empty() {
            return Err(DspError::EmptyFilter);
        }
        Ok(FirFilter { taps })
    }

    /// Length-`len` moving-average (boxcar) filter.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyFilter`] when `len == 0`.
    pub fn moving_average(len: usize) -> Result<Self, DspError> {
        if len == 0 {
            return Err(DspError::EmptyFilter);
        }
        FirFilter::new(vec![1.0 / len as f64; len])
    }

    /// The filter taps.
    #[must_use]
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Filters `x`, returning an output of the same length (zero initial
    /// state).
    #[must_use]
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; x.len()];
        for (n, yn) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (k, &t) in self.taps.iter().enumerate() {
                if k > n {
                    break;
                }
                acc += t * x[n - k];
            }
            *yn = acc;
        }
        y
    }
}

/// One-pole IIR filter `y[n] = (1−a)·x[n] + a·y[n−1]`.
///
/// `a` close to 1 gives a very low cut-off — the classic cheap model for
/// baseline wander when driven with white noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnePole {
    a: f64,
    state: f64,
}

impl OnePole {
    /// Creates a one-pole low-pass with pole location `a ∈ [0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadParameter`] when `a` is outside `[0, 1)`.
    pub fn new(a: f64) -> Result<Self, DspError> {
        if !(0.0..1.0).contains(&a) {
            return Err(DspError::BadParameter {
                name: "pole",
                value: a,
            });
        }
        Ok(OnePole { a, state: 0.0 })
    }

    /// One-pole low-pass with a −3 dB point near `cutoff_hz` for a sampling
    /// rate of `fs_hz`, via the standard bilinear-free approximation
    /// `a = e^(−2π·fc/fs)`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadParameter`] when either frequency is
    /// non-positive or `cutoff_hz >= fs_hz / 2`.
    pub fn from_cutoff(cutoff_hz: f64, fs_hz: f64) -> Result<Self, DspError> {
        if fs_hz <= 0.0 {
            return Err(DspError::BadParameter {
                name: "fs_hz",
                value: fs_hz,
            });
        }
        if cutoff_hz <= 0.0 || cutoff_hz >= fs_hz / 2.0 {
            return Err(DspError::BadParameter {
                name: "cutoff_hz",
                value: cutoff_hz,
            });
        }
        OnePole::new((-2.0 * std::f64::consts::PI * cutoff_hz / fs_hz).exp())
    }

    /// Processes one sample.
    pub fn step(&mut self, x: f64) -> f64 {
        self.state = (1.0 - self.a) * x + self.a * self.state;
        self.state
    }

    /// Filters a whole slice, stateful across calls.
    #[must_use]
    pub fn process(&mut self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| self.step(v)).collect()
    }

    /// Resets the internal state to zero.
    pub fn reset(&mut self) {
        self.state = 0.0;
    }
}

/// Band-pass made of a low-pass/high-pass one-pole pair:
/// `y = lowpass(x) − lowerpass(x)`.
///
/// Used to shape white noise into an EMG-like band (tens of Hz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandPass {
    low: OnePole,
    high: OnePole,
}

impl BandPass {
    /// Creates a band-pass passing roughly `lo_hz..hi_hz`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadParameter`] when the band is empty or either
    /// edge is invalid for the sampling rate.
    pub fn new(lo_hz: f64, hi_hz: f64, fs_hz: f64) -> Result<Self, DspError> {
        if lo_hz >= hi_hz {
            return Err(DspError::BadParameter {
                name: "lo_hz (must be < hi_hz)",
                value: lo_hz,
            });
        }
        Ok(BandPass {
            low: OnePole::from_cutoff(hi_hz, fs_hz)?,
            high: OnePole::from_cutoff(lo_hz, fs_hz)?,
        })
    }

    /// Processes one sample.
    pub fn step(&mut self, x: f64) -> f64 {
        self.low.step(x) - self.high.step(x)
    }

    /// Filters a whole slice, stateful across calls.
    #[must_use]
    pub fn process(&mut self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| self.step(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_identity() {
        let f = FirFilter::new(vec![1.0]).unwrap();
        assert_eq!(f.apply(&[1.0, -2.0, 3.0]), vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn fir_difference() {
        let f = FirFilter::new(vec![1.0, -1.0]).unwrap();
        assert_eq!(f.apply(&[5.0, 7.0, 4.0]), vec![5.0, 2.0, -3.0]);
    }

    #[test]
    fn fir_rejects_empty() {
        assert!(matches!(FirFilter::new(vec![]), Err(DspError::EmptyFilter)));
    }

    #[test]
    fn moving_average_smooths_constant() {
        let f = FirFilter::moving_average(4).unwrap();
        let y = f.apply(&[8.0; 8]);
        // After the warm-up region the output equals the input mean.
        assert!((y[7] - 8.0).abs() < 1e-12);
        // During warm-up the zero-padded history reduces the output.
        assert!((y[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn one_pole_dc_gain_is_unity() {
        let mut f = OnePole::new(0.9).unwrap();
        let mut y = 0.0;
        for _ in 0..2000 {
            y = f.step(1.0);
        }
        assert!((y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn one_pole_attenuates_high_frequency() {
        let mut f = OnePole::from_cutoff(1.0, 360.0).unwrap();
        // 50 Hz tone through a 1 Hz low-pass: output power must collapse.
        let x: Vec<f64> = (0..3600)
            .map(|i| (2.0 * std::f64::consts::PI * 50.0 * i as f64 / 360.0).sin())
            .collect();
        let y = f.process(&x);
        let px: f64 = x.iter().map(|v| v * v).sum();
        let py: f64 = y[360..].iter().map(|v| v * v).sum();
        assert!(py < 0.01 * px, "attenuation too weak: {}", py / px);
    }

    #[test]
    fn one_pole_rejects_bad_pole() {
        assert!(OnePole::new(1.0).is_err());
        assert!(OnePole::new(-0.1).is_err());
        assert!(OnePole::from_cutoff(200.0, 360.0).is_err());
        assert!(OnePole::from_cutoff(1.0, 0.0).is_err());
    }

    #[test]
    fn one_pole_reset_clears_state() {
        let mut f = OnePole::new(0.5).unwrap();
        f.step(100.0);
        f.reset();
        assert_eq!(f.step(0.0), 0.0);
    }

    #[test]
    fn band_pass_rejects_dc_and_passes_band() {
        let mut bp = BandPass::new(5.0, 50.0, 360.0).unwrap();
        // DC input should be rejected after settling.
        let mut last = 1.0;
        for _ in 0..5000 {
            last = bp.step(1.0);
        }
        assert!(last.abs() < 1e-3, "DC leak: {last}");
        // A 20 Hz tone (inside the band) must keep a good fraction of power.
        let mut bp2 = BandPass::new(5.0, 50.0, 360.0).unwrap();
        let x: Vec<f64> = (0..3600)
            .map(|i| (2.0 * std::f64::consts::PI * 20.0 * i as f64 / 360.0).sin())
            .collect();
        let y = bp2.process(&x);
        let py: f64 = y[360..].iter().map(|v| v * v).sum();
        let px: f64 = x[360..].iter().map(|v| v * v).sum();
        assert!(py > 0.1 * px, "band attenuated too much: {}", py / px);
    }

    #[test]
    fn band_pass_rejects_empty_band() {
        assert!(BandPass::new(50.0, 5.0, 360.0).is_err());
    }
}
