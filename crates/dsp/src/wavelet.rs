/// Orthonormal wavelet filter families.
///
/// Each family carries its scaling (low-pass) decomposition filter `h`; the
/// wavelet (high-pass) filter is derived by the quadrature-mirror relation
/// `g[k] = (−1)ᵏ h[L−1−k]`, which for an orthonormal `h` yields an
/// orthonormal two-channel filter bank and therefore an exactly invertible
/// periodized DWT.
///
/// The default for ECG work is [`Wavelet::Db4`] (Daubechies with 4 vanishing
/// moments, 8 taps), matching the basis used in the authors' earlier ECG
/// compressed-sensing study.
///
/// # Example
///
/// ```
/// use hybridcs_dsp::Wavelet;
///
/// let h = Wavelet::Haar.lowpass();
/// assert_eq!(h.len(), 2);
/// let energy: f64 = h.iter().map(|c| c * c).sum();
/// assert!((energy - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Wavelet {
    /// Haar wavelet (2 taps). Piecewise-constant; poor for ECG but useful as
    /// a baseline in the wavelet ablation.
    Haar,
    /// Daubechies, 2 vanishing moments (4 taps).
    Db2,
    /// Daubechies, 4 vanishing moments (8 taps). The workspace default.
    #[default]
    Db4,
    /// Daubechies, 6 vanishing moments (12 taps).
    Db6,
    /// Symlet, 4 vanishing moments (8 taps); near-symmetric variant of db4.
    Sym4,
}

/// Scaling-filter coefficients. Values are the standard orthonormal
/// Daubechies/symlet decomposition coefficients (unit ℓ₂ norm, sum √2).
const HAAR: [f64; 2] = [
    std::f64::consts::FRAC_1_SQRT_2,
    std::f64::consts::FRAC_1_SQRT_2,
];

const DB2: [f64; 4] = [
    0.482_962_913_144_690_2,
    0.836_516_303_737_469,
    0.224_143_868_041_857_35,
    -0.129_409_522_550_921_45,
];

const DB4: [f64; 8] = [
    0.230_377_813_308_855_23,
    0.714_846_570_552_541_5,
    0.630_880_767_929_590_4,
    -0.027_983_769_416_983_85,
    -0.187_034_811_718_881_14,
    0.030_841_381_835_986_965,
    0.032_883_011_666_982_945,
    -0.010_597_401_784_997_278,
];

const DB6: [f64; 12] = [
    0.111_540_743_350_080_17,
    0.494_623_890_398_385_4,
    0.751_133_908_021_577_5,
    0.315_250_351_709_243_2,
    -0.226_264_693_965_169_13,
    -0.129_766_867_567_095_63,
    0.097_501_605_587_079_36,
    0.027_522_865_530_016_29,
    -0.031_582_039_318_031_156,
    0.000_553_842_200_993_801_6,
    0.004_777_257_511_010_651,
    -0.001_077_301_084_995_58,
];

/// Quadrature-mirror of a scaling filter: `g[k] = (−1)ᵏ h[L−1−k]`.
/// Sign flips and reversals are exact in floating point, so these
/// compile-time mirrors are bit-identical to a runtime derivation.
const fn qmf_mirror<const L: usize>(h: &[f64; L]) -> [f64; L] {
    let mut g = [0.0; L];
    let mut k = 0;
    while k < L {
        let v = h[L - 1 - k];
        g[k] = if k % 2 == 0 { v } else { -v };
        k += 1;
    }
    g
}

const HAAR_HP: [f64; 2] = qmf_mirror(&HAAR);
const DB2_HP: [f64; 4] = qmf_mirror(&DB2);
const DB4_HP: [f64; 8] = qmf_mirror(&DB4);
const DB6_HP: [f64; 12] = qmf_mirror(&DB6);
const SYM4_HP: [f64; 8] = qmf_mirror(&SYM4);

const SYM4: [f64; 8] = [
    -0.075_765_714_789_273_33,
    -0.029_635_527_645_998_51,
    0.497_618_667_632_015_45,
    0.803_738_751_805_916_1,
    0.297_857_795_605_277_36,
    -0.099_219_543_576_847_22,
    -0.012_603_967_262_037_833,
    0.032_223_100_604_042_7,
];

impl Wavelet {
    /// All supported families, in ascending filter length.
    pub const ALL: [Wavelet; 5] = [
        Wavelet::Haar,
        Wavelet::Db2,
        Wavelet::Db4,
        Wavelet::Sym4,
        Wavelet::Db6,
    ];

    /// Scaling (low-pass) decomposition filter `h`.
    #[must_use]
    pub fn lowpass(self) -> &'static [f64] {
        match self {
            Wavelet::Haar => &HAAR,
            Wavelet::Db2 => &DB2,
            Wavelet::Db4 => &DB4,
            Wavelet::Db6 => &DB6,
            Wavelet::Sym4 => &SYM4,
        }
    }

    /// Wavelet (high-pass) decomposition filter `g`, derived by the
    /// quadrature-mirror relation `g[k] = (−1)ᵏ h[L−1−k]`.
    ///
    /// Mirrored at compile time: the transforms call this once per
    /// application, so it must not allocate (the decode hot path runs
    /// under a zero-allocation gate).
    #[must_use]
    pub fn highpass(self) -> &'static [f64] {
        match self {
            Wavelet::Haar => &HAAR_HP,
            Wavelet::Db2 => &DB2_HP,
            Wavelet::Db4 => &DB4_HP,
            Wavelet::Db6 => &DB6_HP,
            Wavelet::Sym4 => &SYM4_HP,
        }
    }

    /// Number of filter taps.
    #[must_use]
    pub fn filter_len(self) -> usize {
        self.lowpass().len()
    }

    /// Short conventional name (`"haar"`, `"db4"`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Wavelet::Haar => "haar",
            Wavelet::Db2 => "db2",
            Wavelet::Db4 => "db4",
            Wavelet::Db6 => "db6",
            Wavelet::Sym4 => "sym4",
        }
    }
}

impl std::fmt::Display for Wavelet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Orthonormality of the two-channel bank: the low-pass filter must be
    /// orthogonal to its even shifts and have unit norm. These identities
    /// are what make the periodized DWT exactly invertible, so we check
    /// every family to 1e-10.
    #[test]
    fn lowpass_is_orthonormal_under_even_shifts() {
        for w in Wavelet::ALL {
            let h = w.lowpass();
            let l = h.len();
            for shift in (0..l).step_by(2) {
                let mut acc = 0.0;
                for k in 0..(l - shift) {
                    acc += h[k] * h[k + shift];
                }
                let expected = if shift == 0 { 1.0 } else { 0.0 };
                assert!(
                    (acc - expected).abs() < 1e-10,
                    "{w}: shift {shift} gave {acc}"
                );
            }
        }
    }

    #[test]
    fn lowpass_sums_to_sqrt2() {
        for w in Wavelet::ALL {
            let sum: f64 = w.lowpass().iter().sum();
            assert!(
                (sum - std::f64::consts::SQRT_2).abs() < 1e-10,
                "{w}: sum {sum}"
            );
        }
    }

    #[test]
    fn highpass_is_orthogonal_to_lowpass() {
        for w in Wavelet::ALL {
            let h = w.lowpass();
            let g = w.highpass();
            let dot: f64 = h.iter().zip(g).map(|(a, b)| a * b).sum();
            assert!(dot.abs() < 1e-10, "{w}: <h,g> = {dot}");
        }
    }

    #[test]
    fn highpass_sums_to_zero() {
        for w in Wavelet::ALL {
            let sum: f64 = w.highpass().iter().sum();
            assert!(sum.abs() < 1e-10, "{w}: hp sum {sum}");
        }
    }

    #[test]
    fn filter_lengths() {
        assert_eq!(Wavelet::Haar.filter_len(), 2);
        assert_eq!(Wavelet::Db2.filter_len(), 4);
        assert_eq!(Wavelet::Db4.filter_len(), 8);
        assert_eq!(Wavelet::Db6.filter_len(), 12);
        assert_eq!(Wavelet::Sym4.filter_len(), 8);
    }

    #[test]
    fn default_is_db4() {
        assert_eq!(Wavelet::default(), Wavelet::Db4);
    }

    #[test]
    fn display_names() {
        assert_eq!(Wavelet::Db4.to_string(), "db4");
        assert_eq!(Wavelet::Sym4.to_string(), "sym4");
    }
}
