use crate::{DspError, Wavelet};

/// Describes how [`Dwt`] lays out coefficients in its output vector.
///
/// For a length-`n` signal and `L` levels the layout is
///
/// ```text
/// [ approx(L) | detail(L) | detail(L−1) | … | detail(1) ]
///    n/2^L       n/2^L       n/2^(L−1)         n/2
/// ```
///
/// i.e. coarsest first. [`CoeffLayout`] reports the band boundaries so that
/// downstream code (sparsity statistics, band-weighted thresholds) can
/// address individual scales without re-deriving the arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoeffLayout {
    /// Signal length `n`.
    pub signal_len: usize,
    /// Decomposition depth `L`.
    pub levels: usize,
    /// Half-open coefficient ranges, coarsest band first: the approximation
    /// band followed by detail bands from level `L` down to level 1.
    pub bands: Vec<std::ops::Range<usize>>,
}

impl CoeffLayout {
    /// Range of the approximation (scaling) band.
    #[must_use]
    pub fn approx_band(&self) -> std::ops::Range<usize> {
        self.bands[0].clone()
    }

    /// Range of the detail band at `level` (1 = finest, `levels` = coarsest).
    ///
    /// # Panics
    ///
    /// Panics if `level == 0` or `level > self.levels`.
    #[must_use]
    pub fn detail_band(&self, level: usize) -> std::ops::Range<usize> {
        assert!(
            level >= 1 && level <= self.levels,
            "detail level out of range"
        );
        self.bands[1 + (self.levels - level)].clone()
    }
}

/// Multi-level periodized discrete wavelet transform with an orthonormal
/// filter bank.
///
/// Because the bank is orthonormal, the transform matrix `W = Ψᵀ` satisfies
/// `WᵀW = WWᵀ = I`: [`Dwt::inverse`] is simultaneously the inverse *and* the
/// adjoint of [`Dwt::forward`]. The sparse-recovery solvers rely on this to
/// evaluate `prox_{τ‖Ψᵀ·‖₁}(v) = Ψ soft(Ψᵀ v, τ)` with two fast transforms.
///
/// # Example
///
/// ```
/// use hybridcs_dsp::{Dwt, Wavelet};
///
/// # fn main() -> Result<(), hybridcs_dsp::DspError> {
/// let dwt = Dwt::new(Wavelet::Haar, 2)?;
/// let coeffs = dwt.forward(&[1.0, 1.0, 1.0, 1.0])?;
/// // A constant signal is captured entirely by the approximation band.
/// assert!((coeffs[0] - 2.0).abs() < 1e-12);
/// assert!(coeffs[1..].iter().all(|c| c.abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dwt {
    wavelet: Wavelet,
    levels: usize,
}

impl Dwt {
    /// Creates a transform with the given family and decomposition depth.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::ZeroLevels`] if `levels == 0`.
    pub fn new(wavelet: Wavelet, levels: usize) -> Result<Self, DspError> {
        if levels == 0 {
            return Err(DspError::ZeroLevels);
        }
        Ok(Dwt { wavelet, levels })
    }

    /// The wavelet family in use.
    #[must_use]
    pub fn wavelet(&self) -> Wavelet {
        self.wavelet
    }

    /// Decomposition depth.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Largest decomposition depth usable for a length-`len` signal with
    /// this wavelet: every approximation band must stay at least as long as
    /// the filter, and `len` must be divisible by `2^levels`.
    #[must_use]
    pub fn max_levels(wavelet: Wavelet, len: usize) -> usize {
        let mut levels = 0;
        let mut n = len;
        while n.is_multiple_of(2) && n / 2 >= wavelet.filter_len() {
            n /= 2;
            levels += 1;
        }
        levels
    }

    /// Validates a signal length without allocating.
    ///
    /// Equivalent to calling [`Dwt::layout`] and discarding the result, but
    /// usable on the decode hot path where per-window allocations are banned.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadLength`] for unsupported lengths.
    pub fn validate_len(&self, len: usize) -> Result<(), DspError> {
        self.check_len(len)
    }

    /// Scratch length required by [`Dwt::forward_into`] and
    /// [`Dwt::inverse_into`] for signals of length `len`.
    #[must_use]
    pub fn scratch_len(len: usize) -> usize {
        len
    }

    /// Validates a signal length, returning the minimal supported length on
    /// failure.
    fn check_len(&self, len: usize) -> Result<(), DspError> {
        let div = 1usize << self.levels;
        let min_len = self.wavelet.filter_len().next_power_of_two() * (1 << (self.levels - 1));
        let coarse = len >> self.levels;
        if len == 0 || !len.is_multiple_of(div) || coarse < self.wavelet.filter_len().div_ceil(2) {
            return Err(DspError::BadLength {
                len,
                levels: self.levels,
                min_len,
            });
        }
        Ok(())
    }

    /// Coefficient layout for signals of length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadLength`] for unsupported lengths.
    pub fn layout(&self, len: usize) -> Result<CoeffLayout, DspError> {
        self.check_len(len)?;
        let mut bands = Vec::with_capacity(self.levels + 1);
        let coarse = len >> self.levels;
        bands.push(0..coarse);
        let mut start = coarse;
        for level in (1..=self.levels).rev() {
            let band_len = len >> level;
            bands.push(start..start + band_len);
            start += band_len;
        }
        debug_assert_eq!(start, len);
        Ok(CoeffLayout {
            signal_len: len,
            levels: self.levels,
            bands,
        })
    }

    /// Analysis transform `Ψᵀ x` (signal → coefficients).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadLength`] when `x.len()` is not divisible by
    /// `2^levels` or a band would be shorter than the filter.
    pub fn forward(&self, x: &[f64]) -> Result<Vec<f64>, DspError> {
        let mut out = vec![0.0; x.len()];
        let mut scratch = vec![0.0; Self::scratch_len(x.len())];
        self.forward_into(x, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// Allocation-free analysis transform: writes `Ψᵀ x` into `out` using
    /// caller-provided `scratch` (at least [`Dwt::scratch_len`]`(x.len())`
    /// elements) for the intermediate approximation bands.
    ///
    /// Produces outputs bit-identical to [`Dwt::forward`]: the per-level
    /// filter arithmetic (`analyze_level`) is shared, only the buffer
    /// management differs. Intermediate approximations ping-pong between the
    /// two halves of `scratch` (sizes halve every level, so reader and
    /// writer regions never overlap).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadLength`] when `x.len()` is unsupported.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != x.len()` or `scratch` is shorter than
    /// [`Dwt::scratch_len`]`(x.len())`.
    pub fn forward_into(
        &self,
        x: &[f64],
        out: &mut [f64],
        scratch: &mut [f64],
    ) -> Result<(), DspError> {
        let _span = hybridcs_obs::span!("wavelet.forward");
        self.check_len(x.len())?;
        let n = x.len();
        assert_eq!(out.len(), n, "forward_into: output length mismatch");
        assert!(
            scratch.len() >= Self::scratch_len(n),
            "forward_into: scratch too short"
        );
        let h = self.wavelet.lowpass();
        let g = self.wavelet.highpass();
        let (ping, pong) = scratch.split_at_mut(n / 2);
        let mut write_end = n;
        // Level 1 reads the input signal directly.
        let mut cur = n / 2;
        analyze_level(
            x,
            h,
            g,
            &mut ping[..cur],
            &mut out[write_end - cur..write_end],
        );
        write_end -= cur;
        let mut src_is_ping = true;
        for _ in 1..self.levels {
            let half = cur / 2;
            let detail_slot = &mut out[write_end - half..write_end];
            if src_is_ping {
                analyze_level(&ping[..cur], h, g, &mut pong[..half], detail_slot);
            } else {
                analyze_level(&pong[..cur], h, g, &mut ping[..half], detail_slot);
            }
            write_end -= half;
            cur = half;
            src_is_ping = !src_is_ping;
        }
        let final_approx = if src_is_ping {
            &ping[..cur]
        } else {
            &pong[..cur]
        };
        out[..cur].copy_from_slice(final_approx);
        Ok(())
    }

    /// Synthesis transform `Ψ c` (coefficients → signal). Exact inverse (and
    /// adjoint) of [`Dwt::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadLength`] for unsupported lengths.
    pub fn inverse(&self, coeffs: &[f64]) -> Result<Vec<f64>, DspError> {
        let mut out = vec![0.0; coeffs.len()];
        let mut scratch = vec![0.0; Self::scratch_len(coeffs.len())];
        self.inverse_into(coeffs, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// Allocation-free synthesis transform: writes `Ψ c` into `out` using
    /// caller-provided `scratch` (at least
    /// [`Dwt::scratch_len`]`(coeffs.len())` elements).
    ///
    /// Bit-identical to [`Dwt::inverse`] — see [`Dwt::forward_into`] for the
    /// ping-pong scratch scheme; here the upsampled intermediates grow, and
    /// the final (finest) level writes straight into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadLength`] when `coeffs.len()` is unsupported.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != coeffs.len()` or `scratch` is shorter than
    /// [`Dwt::scratch_len`]`(coeffs.len())`.
    pub fn inverse_into(
        &self,
        coeffs: &[f64],
        out: &mut [f64],
        scratch: &mut [f64],
    ) -> Result<(), DspError> {
        let _span = hybridcs_obs::span!("wavelet.inverse");
        self.check_len(coeffs.len())?;
        let n = coeffs.len();
        assert_eq!(out.len(), n, "inverse_into: output length mismatch");
        assert!(
            scratch.len() >= Self::scratch_len(n),
            "inverse_into: scratch too short"
        );
        let h = self.wavelet.lowpass();
        let g = self.wavelet.highpass();
        let coarse = n >> self.levels;
        if self.levels == 1 {
            synthesize_level(&coeffs[..coarse], &coeffs[coarse..], h, g, out);
            return Ok(());
        }
        let (ping, pong) = scratch.split_at_mut(n / 2);
        // Coarsest level reads the approximation band from `coeffs`.
        synthesize_level(
            &coeffs[..coarse],
            &coeffs[coarse..2 * coarse],
            h,
            g,
            &mut ping[..2 * coarse],
        );
        let mut read_start = 2 * coarse;
        let mut cur = 2 * coarse;
        let mut src_is_ping = true;
        for level in (2..self.levels).rev() {
            let band_len = n >> level;
            debug_assert_eq!(band_len, cur);
            let detail = &coeffs[read_start..read_start + band_len];
            if src_is_ping {
                synthesize_level(&ping[..cur], detail, h, g, &mut pong[..band_len * 2]);
            } else {
                synthesize_level(&pong[..cur], detail, h, g, &mut ping[..band_len * 2]);
            }
            read_start += band_len;
            cur = band_len * 2;
            src_is_ping = !src_is_ping;
        }
        // Finest level writes the full-length signal into `out`.
        let detail = &coeffs[read_start..read_start + n / 2];
        let src = if src_is_ping {
            &ping[..cur]
        } else {
            &pong[..cur]
        };
        synthesize_level(src, detail, h, g, out);
        Ok(())
    }

    /// Scratch length required by [`Dwt::forward_panel_into`] and
    /// [`Dwt::inverse_panel_into`] for `k` lanes of length `len`.
    #[must_use]
    pub fn panel_scratch_len(len: usize, k: usize) -> usize {
        len * k
    }

    /// Batched analysis transform over a column-major panel: lane `l` of
    /// `x_panel` (elements `x_panel[i*k + l]`) is transformed exactly as
    /// [`Dwt::forward_into`] would transform it, writing lane `l` of
    /// `out_panel`. Per lane the filter arithmetic runs in the identical
    /// tap order, so every lane is bit-identical to the serial transform;
    /// the SIMD tier (when [`simd_enabled`](hybridcs_linalg::simd::simd_enabled))
    /// vectorizes across lanes only.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadLength`] when the per-lane length is
    /// unsupported.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `x_panel.len()` is not a multiple of `k`,
    /// `out_panel.len() != x_panel.len()`, or `scratch` is shorter than
    /// [`Dwt::panel_scratch_len`].
    pub fn forward_panel_into(
        &self,
        x_panel: &[f64],
        k: usize,
        out_panel: &mut [f64],
        scratch: &mut [f64],
    ) -> Result<(), DspError> {
        self.forward_panel_into_tier(
            x_panel,
            k,
            out_panel,
            scratch,
            hybridcs_linalg::simd::simd_enabled(),
        )
    }

    fn forward_panel_into_tier(
        &self,
        x_panel: &[f64],
        k: usize,
        out_panel: &mut [f64],
        scratch: &mut [f64],
        simd: bool,
    ) -> Result<(), DspError> {
        let _span = hybridcs_obs::span!("wavelet.forward_panel");
        assert!(k > 0, "forward_panel_into: zero lanes");
        assert!(
            x_panel.len().is_multiple_of(k),
            "forward_panel_into: panel shape"
        );
        let n = x_panel.len() / k;
        self.check_len(n)?;
        assert_eq!(
            out_panel.len(),
            x_panel.len(),
            "forward_panel_into: output length mismatch"
        );
        assert!(
            scratch.len() >= Self::panel_scratch_len(n, k),
            "forward_panel_into: scratch too short"
        );
        let h = self.wavelet.lowpass();
        let g = self.wavelet.highpass();
        let (ping, pong) = scratch.split_at_mut((n / 2) * k);
        let mut write_end = n;
        let mut cur = n / 2;
        panel_kernels::analyze(
            x_panel,
            k,
            h,
            g,
            &mut ping[..cur * k],
            &mut out_panel[(write_end - cur) * k..write_end * k],
            simd,
        );
        write_end -= cur;
        let mut src_is_ping = true;
        for _ in 1..self.levels {
            let half = cur / 2;
            let detail_slot = &mut out_panel[(write_end - half) * k..write_end * k];
            if src_is_ping {
                panel_kernels::analyze(
                    &ping[..cur * k],
                    k,
                    h,
                    g,
                    &mut pong[..half * k],
                    detail_slot,
                    simd,
                );
            } else {
                panel_kernels::analyze(
                    &pong[..cur * k],
                    k,
                    h,
                    g,
                    &mut ping[..half * k],
                    detail_slot,
                    simd,
                );
            }
            write_end -= half;
            cur = half;
            src_is_ping = !src_is_ping;
        }
        let final_approx = if src_is_ping {
            &ping[..cur * k]
        } else {
            &pong[..cur * k]
        };
        out_panel[..cur * k].copy_from_slice(final_approx);
        Ok(())
    }

    /// Batched synthesis transform over a column-major panel — the lane-wise
    /// twin of [`Dwt::inverse_into`], bit-identical per lane. See
    /// [`Dwt::forward_panel_into`] for the panel contract.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::BadLength`] when the per-lane length is
    /// unsupported.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `coeffs_panel.len()` is not a multiple of `k`,
    /// `out_panel.len() != coeffs_panel.len()`, or `scratch` is shorter
    /// than [`Dwt::panel_scratch_len`].
    pub fn inverse_panel_into(
        &self,
        coeffs_panel: &[f64],
        k: usize,
        out_panel: &mut [f64],
        scratch: &mut [f64],
    ) -> Result<(), DspError> {
        self.inverse_panel_into_tier(
            coeffs_panel,
            k,
            out_panel,
            scratch,
            hybridcs_linalg::simd::simd_enabled(),
        )
    }

    fn inverse_panel_into_tier(
        &self,
        coeffs_panel: &[f64],
        k: usize,
        out_panel: &mut [f64],
        scratch: &mut [f64],
        simd: bool,
    ) -> Result<(), DspError> {
        let _span = hybridcs_obs::span!("wavelet.inverse_panel");
        assert!(k > 0, "inverse_panel_into: zero lanes");
        assert!(
            coeffs_panel.len().is_multiple_of(k),
            "inverse_panel_into: panel shape"
        );
        let n = coeffs_panel.len() / k;
        self.check_len(n)?;
        assert_eq!(
            out_panel.len(),
            coeffs_panel.len(),
            "inverse_panel_into: output length mismatch"
        );
        assert!(
            scratch.len() >= Self::panel_scratch_len(n, k),
            "inverse_panel_into: scratch too short"
        );
        let h = self.wavelet.lowpass();
        let g = self.wavelet.highpass();
        let coarse = n >> self.levels;
        if self.levels == 1 {
            panel_kernels::synthesize(
                &coeffs_panel[..coarse * k],
                &coeffs_panel[coarse * k..],
                k,
                h,
                g,
                out_panel,
                simd,
            );
            return Ok(());
        }
        let (ping, pong) = scratch.split_at_mut((n / 2) * k);
        panel_kernels::synthesize(
            &coeffs_panel[..coarse * k],
            &coeffs_panel[coarse * k..2 * coarse * k],
            k,
            h,
            g,
            &mut ping[..2 * coarse * k],
            simd,
        );
        let mut read_start = 2 * coarse;
        let mut cur = 2 * coarse;
        let mut src_is_ping = true;
        for level in (2..self.levels).rev() {
            let band_len = n >> level;
            debug_assert_eq!(band_len, cur);
            let detail = &coeffs_panel[read_start * k..(read_start + band_len) * k];
            if src_is_ping {
                panel_kernels::synthesize(
                    &ping[..cur * k],
                    detail,
                    k,
                    h,
                    g,
                    &mut pong[..band_len * 2 * k],
                    simd,
                );
            } else {
                panel_kernels::synthesize(
                    &pong[..cur * k],
                    detail,
                    k,
                    h,
                    g,
                    &mut ping[..band_len * 2 * k],
                    simd,
                );
            }
            read_start += band_len;
            cur = band_len * 2;
            src_is_ping = !src_is_ping;
        }
        let detail = &coeffs_panel[read_start * k..(read_start + n / 2) * k];
        let src = if src_is_ping {
            &ping[..cur * k]
        } else {
            &pong[..cur * k]
        };
        panel_kernels::synthesize(src, detail, k, h, g, out_panel, simd);
        Ok(())
    }

    /// Counts coefficients whose magnitude is at least `threshold` times the
    /// largest magnitude — a quick effective-sparsity probe used by the
    /// wavelet ablation experiment.
    ///
    /// Returns 0 for an all-zero vector.
    #[must_use]
    pub fn effective_sparsity(coeffs: &[f64], threshold: f64) -> usize {
        let max = coeffs.iter().fold(0.0_f64, |m, c| m.max(c.abs()));
        if max == 0.0 {
            return 0;
        }
        coeffs.iter().filter(|c| c.abs() >= threshold * max).count()
    }
}

/// One analysis level with periodic (circular) extension:
/// `a[k] = Σⱼ h[j]·x[(2k+j) mod n]`, `d[k] = Σⱼ g[j]·x[(2k+j) mod n]`.
fn analyze_level(x: &[f64], h: &[f64], g: &[f64], approx: &mut [f64], detail: &mut [f64]) {
    let n = x.len();
    let half = n / 2;
    let taps = h.len();
    debug_assert_eq!(approx.len(), half);
    debug_assert_eq!(detail.len(), half);
    // Outputs whose filter window stays inside the signal (2k + taps ≤ n)
    // take straight slice indexing — the per-tap `% n` of the periodized
    // form is pure index arithmetic, so skipping it for the bulk leaves
    // each output's tap order (and bits) unchanged.
    let bulk = if n >= taps {
        ((n - taps) / 2 + 1).min(half)
    } else {
        0
    };
    for k in 0..bulk {
        let base = 2 * k;
        let mut a = 0.0;
        let mut d = 0.0;
        for ((&hj, &gj), &xv) in h.iter().zip(g).zip(&x[base..base + taps]) {
            a += hj * xv;
            d += gj * xv;
        }
        approx[k] = a;
        detail[k] = d;
    }
    for k in bulk..half {
        let mut a = 0.0;
        let mut d = 0.0;
        let base = 2 * k;
        for (j, (&hj, &gj)) in h.iter().zip(g).enumerate() {
            let idx = (base + j) % n;
            let xv = x[idx];
            a += hj * xv;
            d += gj * xv;
        }
        approx[k] = a;
        detail[k] = d;
    }
}

/// One synthesis level — the exact transpose of [`analyze_level`]:
/// `x[(2k+j) mod n] += h[j]·a[k] + g[j]·d[k]`.
fn synthesize_level(approx: &[f64], detail: &[f64], h: &[f64], g: &[f64], out: &mut [f64]) {
    let n = out.len();
    let half = n / 2;
    let taps = h.len();
    debug_assert_eq!(approx.len(), half);
    debug_assert_eq!(detail.len(), half);
    out.fill(0.0);
    // Same bulk/tail split as `analyze_level`: scatter order per output
    // sample is unchanged (inputs k ascending, taps j ascending), so the
    // accumulated bits match the fully periodized loop.
    let bulk = if n >= taps {
        ((n - taps) / 2 + 1).min(half)
    } else {
        0
    };
    for k in 0..bulk {
        let a = approx[k];
        let d = detail[k];
        let base = 2 * k;
        for (o, (&hj, &gj)) in out[base..base + taps].iter_mut().zip(h.iter().zip(g)) {
            *o += hj * a + gj * d;
        }
    }
    for k in bulk..half {
        let a = approx[k];
        let d = detail[k];
        let base = 2 * k;
        for (j, (&hj, &gj)) in h.iter().zip(g).enumerate() {
            let idx = (base + j) % n;
            out[idx] += hj * a + gj * d;
        }
    }
}

/// Lane-parallel twins of [`analyze_level`] / [`synthesize_level`] over
/// column-major panels. Per lane the tap order is identical to the serial
/// kernels, so every lane is bit-identical regardless of tier; the `% n`
/// wrap of the periodized form is pure index arithmetic (same as the
/// serial bulk/tail split) and cannot change bits.
#[allow(unsafe_code)]
mod panel_kernels {
    pub fn analyze(
        x: &[f64],
        k: usize,
        h: &[f64],
        g: &[f64],
        approx: &mut [f64],
        detail: &mut [f64],
        simd: bool,
    ) {
        #[cfg(target_arch = "x86_64")]
        if simd {
            // SAFETY: `simd` comes from `simd_enabled`, which requires
            // runtime AVX2 support.
            unsafe { analyze_avx(x, k, h, g, approx, detail) };
            return;
        }
        let _ = simd;
        analyze_scalar(x, k, h, g, approx, detail);
    }

    pub fn synthesize(
        approx: &[f64],
        detail: &[f64],
        k: usize,
        h: &[f64],
        g: &[f64],
        out: &mut [f64],
        simd: bool,
    ) {
        #[cfg(target_arch = "x86_64")]
        if simd {
            // SAFETY: `simd` comes from `simd_enabled`, which requires
            // runtime AVX2 support.
            unsafe { synthesize_avx(approx, detail, k, h, g, out) };
            return;
        }
        let _ = simd;
        synthesize_scalar(approx, detail, k, h, g, out);
    }

    fn analyze_scalar(
        x: &[f64],
        k: usize,
        h: &[f64],
        g: &[f64],
        approx: &mut [f64],
        detail: &mut [f64],
    ) {
        let n = x.len() / k;
        let half = n / 2;
        for row in 0..half {
            let base = 2 * row;
            for lane in 0..k {
                let mut a = 0.0;
                let mut d = 0.0;
                for (j, (&hj, &gj)) in h.iter().zip(g).enumerate() {
                    let mut idx = base + j;
                    if idx >= n {
                        idx -= n;
                    }
                    let xv = x[idx * k + lane];
                    a += hj * xv;
                    d += gj * xv;
                }
                approx[row * k + lane] = a;
                detail[row * k + lane] = d;
            }
        }
    }

    fn synthesize_scalar(
        approx: &[f64],
        detail: &[f64],
        k: usize,
        h: &[f64],
        g: &[f64],
        out: &mut [f64],
    ) {
        let n = out.len() / k;
        let half = n / 2;
        out.fill(0.0);
        for row in 0..half {
            let base = 2 * row;
            for (j, (&hj, &gj)) in h.iter().zip(g).enumerate() {
                let mut idx = base + j;
                if idx >= n {
                    idx -= n;
                }
                for lane in 0..k {
                    let a = approx[row * k + lane];
                    let d = detail[row * k + lane];
                    out[idx * k + lane] += hj * a + gj * d;
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn analyze_avx(
        x: &[f64],
        k: usize,
        h: &[f64],
        g: &[f64],
        approx: &mut [f64],
        detail: &mut [f64],
    ) {
        use std::arch::x86_64::{
            _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd,
            _mm256_storeu_pd,
        };
        let n = x.len() / k;
        let half = n / 2;
        let chunks = k / 4;
        for row in 0..half {
            let base = 2 * row;
            for c in 0..chunks {
                let lane = c * 4;
                let mut a = _mm256_setzero_pd();
                let mut d = _mm256_setzero_pd();
                for (j, (&hj, &gj)) in h.iter().zip(g).enumerate() {
                    let mut idx = base + j;
                    if idx >= n {
                        idx -= n;
                    }
                    let xv = _mm256_loadu_pd(x.as_ptr().add(idx * k + lane));
                    a = _mm256_add_pd(a, _mm256_mul_pd(_mm256_set1_pd(hj), xv));
                    d = _mm256_add_pd(d, _mm256_mul_pd(_mm256_set1_pd(gj), xv));
                }
                _mm256_storeu_pd(approx.as_mut_ptr().add(row * k + lane), a);
                _mm256_storeu_pd(detail.as_mut_ptr().add(row * k + lane), d);
            }
            for lane in chunks * 4..k {
                let mut a = 0.0;
                let mut d = 0.0;
                for (j, (&hj, &gj)) in h.iter().zip(g).enumerate() {
                    let mut idx = base + j;
                    if idx >= n {
                        idx -= n;
                    }
                    let xv = x[idx * k + lane];
                    a += hj * xv;
                    d += gj * xv;
                }
                approx[row * k + lane] = a;
                detail[row * k + lane] = d;
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn synthesize_avx(
        approx: &[f64],
        detail: &[f64],
        k: usize,
        h: &[f64],
        g: &[f64],
        out: &mut [f64],
    ) {
        use std::arch::x86_64::{
            _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
        };
        let n = out.len() / k;
        let half = n / 2;
        let chunks = k / 4;
        out.fill(0.0);
        for row in 0..half {
            let base = 2 * row;
            for (j, (&hj, &gj)) in h.iter().zip(g).enumerate() {
                let mut idx = base + j;
                if idx >= n {
                    idx -= n;
                }
                let hv = _mm256_set1_pd(hj);
                let gv = _mm256_set1_pd(gj);
                for c in 0..chunks {
                    let lane = c * 4;
                    let a = _mm256_loadu_pd(approx.as_ptr().add(row * k + lane));
                    let d = _mm256_loadu_pd(detail.as_ptr().add(row * k + lane));
                    let contrib = _mm256_add_pd(_mm256_mul_pd(hv, a), _mm256_mul_pd(gv, d));
                    let o = _mm256_loadu_pd(out.as_ptr().add(idx * k + lane));
                    _mm256_storeu_pd(
                        out.as_mut_ptr().add(idx * k + lane),
                        _mm256_add_pd(o, contrib),
                    );
                }
                for lane in chunks * 4..k {
                    let a = approx[row * k + lane];
                    let d = detail[row * k + lane];
                    out[idx * k + lane] += hj * a + gj * d;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    fn test_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * 3.0 * t).sin()
                    + 0.3 * (2.0 * std::f64::consts::PI * 17.0 * t).cos()
                    + 0.05 * t
            })
            .collect()
    }

    #[test]
    fn perfect_reconstruction_all_families() {
        let x = test_signal(128);
        for w in Wavelet::ALL {
            let dwt = Dwt::new(w, 3).unwrap();
            let c = dwt.forward(&x).unwrap();
            let back = dwt.inverse(&c).unwrap();
            assert!(max_abs_diff(&x, &back) < 1e-10, "{w} failed PR");
        }
    }

    #[test]
    fn energy_preservation() {
        // Orthonormality: ‖Ψᵀx‖₂ == ‖x‖₂.
        let x = test_signal(256);
        let dwt = Dwt::new(Wavelet::Db4, 4).unwrap();
        let c = dwt.forward(&x).unwrap();
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ec: f64 = c.iter().map(|v| v * v).sum();
        assert!((ex - ec).abs() < 1e-8 * ex);
    }

    #[test]
    fn adjoint_identity() {
        // ⟨Ψᵀx, y⟩ == ⟨x, Ψy⟩ — the property the solvers depend on.
        let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
        let x = test_signal(64);
        let y: Vec<f64> = (0..64).map(|i| ((i * 7 + 3) % 13) as f64 - 6.0).collect();
        let lhs: f64 = dwt
            .forward(&x)
            .unwrap()
            .iter()
            .zip(&y)
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f64 = x
            .iter()
            .zip(dwt.inverse(&y).unwrap().iter())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }

    #[test]
    fn constant_signal_concentrates_in_approx_band() {
        let dwt = Dwt::new(Wavelet::Db4, 4).unwrap();
        let x = vec![5.0; 256];
        let c = dwt.forward(&x).unwrap();
        let layout = dwt.layout(256).unwrap();
        let approx = layout.approx_band();
        for (i, v) in c.iter().enumerate() {
            if approx.contains(&i) {
                continue;
            }
            assert!(v.abs() < 1e-9, "detail leak at {i}: {v}");
        }
    }

    #[test]
    fn layout_partitions_whole_vector() {
        let dwt = Dwt::new(Wavelet::Db2, 3).unwrap();
        let layout = dwt.layout(64).unwrap();
        assert_eq!(layout.bands.len(), 4);
        assert_eq!(layout.approx_band(), 0..8);
        assert_eq!(layout.detail_band(3), 8..16);
        assert_eq!(layout.detail_band(2), 16..32);
        assert_eq!(layout.detail_band(1), 32..64);
        let total: usize = layout.bands.iter().map(|b| b.len()).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn rejects_bad_lengths() {
        let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
        assert!(matches!(
            dwt.forward(&[0.0; 100]),
            Err(DspError::BadLength { .. })
        ));
        assert!(matches!(
            dwt.inverse(&[0.0; 100]),
            Err(DspError::BadLength { .. })
        ));
        assert!(matches!(dwt.forward(&[]), Err(DspError::BadLength { .. })));
    }

    #[test]
    fn rejects_zero_levels() {
        assert!(matches!(
            Dwt::new(Wavelet::Db4, 0),
            Err(DspError::ZeroLevels)
        ));
    }

    #[test]
    fn max_levels_respects_filter_length() {
        // db4 has 8 taps; every intermediate band must hold >= 8 samples,
        // so 512 supports 6 levels (coarsest band = 8), matching pywt.
        assert_eq!(Dwt::max_levels(Wavelet::Db4, 512), 6);
        // Haar: the conservative rule (band length >= filter length) stops
        // at a coarsest band of 2 samples -> 8 levels for 512.
        assert_eq!(Dwt::max_levels(Wavelet::Haar, 512), 8);
        assert_eq!(Dwt::max_levels(Wavelet::Db4, 6), 0);
    }

    #[test]
    fn max_levels_depth_actually_works() {
        for w in Wavelet::ALL {
            let levels = Dwt::max_levels(w, 256);
            assert!(levels >= 1);
            let dwt = Dwt::new(w, levels).unwrap();
            let x = test_signal(256);
            let c = dwt.forward(&x).unwrap();
            let back = dwt.inverse(&c).unwrap();
            assert!(max_abs_diff(&x, &back) < 1e-9, "{w} at depth {levels}");
        }
    }

    #[test]
    fn smooth_signal_is_compressible_in_db4() {
        // The whole premise of CS-ECG: a smooth signal's wavelet coefficients
        // decay fast. Check that 90% of the energy sits in 25% of coefficients.
        let x = test_signal(512);
        let dwt = Dwt::new(Wavelet::Db4, 5).unwrap();
        let mut c = dwt.forward(&x).unwrap();
        let total: f64 = c.iter().map(|v| v * v).sum();
        c.sort_by(|a, b| b.abs().partial_cmp(&a.abs()).unwrap());
        let top: f64 = c[..128].iter().map(|v| v * v).sum();
        assert!(top > 0.9 * total, "top quarter holds {}", top / total);
    }

    #[test]
    fn effective_sparsity_counts() {
        let c = [10.0, 0.0, -5.0, 0.1];
        assert_eq!(Dwt::effective_sparsity(&c, 0.2), 2);
        assert_eq!(Dwt::effective_sparsity(&[0.0; 4], 0.5), 0);
    }

    #[test]
    fn into_variants_bit_identical_to_vec_api() {
        // The workspace decode path relies on forward_into/inverse_into
        // producing the same bits as the Vec-returning wrappers. Scratch and
        // output start as NaN to prove every element is written before read.
        let x = test_signal(128);
        for w in Wavelet::ALL {
            for levels in 1..=3 {
                let dwt = Dwt::new(w, levels).unwrap();
                let c = dwt.forward(&x).unwrap();
                let mut c2 = vec![f64::NAN; 128];
                let mut scratch = vec![f64::NAN; Dwt::scratch_len(128)];
                dwt.forward_into(&x, &mut c2, &mut scratch).unwrap();
                for (a, b) in c.iter().zip(&c2) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{w} L{levels} forward");
                }
                let back = dwt.inverse(&c).unwrap();
                let mut back2 = vec![f64::NAN; 128];
                dwt.inverse_into(&c, &mut back2, &mut scratch).unwrap();
                for (a, b) in back.iter().zip(&back2) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{w} L{levels} inverse");
                }
            }
        }
    }

    #[test]
    fn into_variants_reject_bad_buffers() {
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let x = test_signal(64);
        let mut out = vec![0.0; 64];
        let mut scratch = vec![0.0; 64];
        assert!(matches!(
            dwt.forward_into(&[0.0; 30], &mut out, &mut scratch),
            Err(DspError::BadLength { .. })
        ));
        assert!(dwt.validate_len(64).is_ok());
        assert!(dwt.validate_len(30).is_err());
        dwt.forward_into(&x, &mut out, &mut scratch).unwrap();
        dwt.inverse_into(&x, &mut out, &mut scratch).unwrap();
    }

    #[test]
    fn panel_transforms_bit_identical_to_serial_per_lane() {
        // Every lane of the panel transforms must reproduce the serial
        // `_into` bits exactly, for both dispatch tiers, across lane
        // counts that exercise full 4-lane chunks and remainder lanes.
        let tiers: &[bool] = if hybridcs_linalg::simd::simd_available() {
            &[false, true]
        } else {
            &[false]
        };
        for w in Wavelet::ALL {
            for levels in 1..=3 {
                let dwt = Dwt::new(w, levels).unwrap();
                let n = 64;
                for &k in &[1usize, 3, 4, 7, 8] {
                    // Column-major panel with distinct per-lane signals.
                    let mut panel = vec![0.0; n * k];
                    let mut lanes: Vec<Vec<f64>> = Vec::new();
                    for lane in 0..k {
                        let sig: Vec<f64> = (0..n)
                            .map(|i| {
                                let t = i as f64 / n as f64;
                                (2.0 * std::f64::consts::PI * (3.0 + lane as f64) * t).sin()
                                    + 0.1 * lane as f64
                            })
                            .collect();
                        for (i, &v) in sig.iter().enumerate() {
                            panel[i * k + lane] = v;
                        }
                        lanes.push(sig);
                    }
                    for &simd in tiers {
                        let mut out = vec![f64::NAN; n * k];
                        let mut scratch = vec![f64::NAN; Dwt::panel_scratch_len(n, k)];
                        dwt.forward_panel_into_tier(&panel, k, &mut out, &mut scratch, simd)
                            .unwrap();
                        for (lane, sig) in lanes.iter().enumerate() {
                            let serial = dwt.forward(sig).unwrap();
                            for (i, want) in serial.iter().enumerate() {
                                assert_eq!(
                                    out[i * k + lane].to_bits(),
                                    want.to_bits(),
                                    "{w} L{levels} k{k} lane{lane} fwd simd={simd}"
                                );
                            }
                        }
                        let mut back = vec![f64::NAN; n * k];
                        dwt.inverse_panel_into_tier(&out, k, &mut back, &mut scratch, simd)
                            .unwrap();
                        for (lane, sig) in lanes.iter().enumerate() {
                            let serial = dwt.inverse(&dwt.forward(sig).unwrap()).unwrap();
                            for (i, want) in serial.iter().enumerate() {
                                assert_eq!(
                                    back[i * k + lane].to_bits(),
                                    want.to_bits(),
                                    "{w} L{levels} k{k} lane{lane} inv simd={simd}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn delta_signal_roundtrip_deep_levels() {
        // An impulse stresses the periodic wrap-around paths.
        let mut x = vec![0.0; 64];
        x[0] = 1.0;
        x[63] = -2.0;
        for w in Wavelet::ALL {
            let levels = Dwt::max_levels(w, 64);
            let dwt = Dwt::new(w, levels).unwrap();
            let back = dwt.inverse(&dwt.forward(&x).unwrap()).unwrap();
            assert!(max_abs_diff(&x, &back) < 1e-10, "{w}");
        }
    }
}
