//! Property-based tests for the wavelet transforms: these invariants are the
//! mathematical foundation the whole decoder rests on. They run on the
//! in-repo `hybridcs_rand::check` harness (≥ 64 seeded cases each).

use hybridcs_dsp::{Dwt, Wavelet};
use hybridcs_rand::check::{check, choice, f64_in, vec_len, zip2, zip3, Gen};
use hybridcs_rand::prop_assert;

fn signal(len: usize) -> Gen<Vec<f64>> {
    vec_len(f64_in(-1e3, 1e3), len)
}

fn any_wavelet() -> Gen<Wavelet> {
    choice(Wavelet::ALL.to_vec())
}

/// Ψ(Ψᵀ x) == x for every signal and every family — perfect
/// reconstruction through the full analysis/synthesis cascade.
#[test]
fn perfect_reconstruction() {
    check(
        "perfect_reconstruction",
        &zip2(any_wavelet(), signal(128)),
        |(w, x)| {
            let levels = Dwt::max_levels(*w, 128).clamp(1, 4);
            let dwt = Dwt::new(*w, levels).unwrap();
            let back = dwt.inverse(&dwt.forward(x).unwrap()).unwrap();
            for (a, b) in x.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-8 * a.abs().max(1.0), "{a} vs {b}");
            }
            Ok(())
        },
    );
}

/// Ψᵀ(Ψ c) == c — the transform is orthonormal in both directions.
#[test]
fn inverse_then_forward() {
    check(
        "inverse_then_forward",
        &zip2(any_wavelet(), signal(64)),
        |(w, c)| {
            let levels = Dwt::max_levels(*w, 64).clamp(1, 3);
            let dwt = Dwt::new(*w, levels).unwrap();
            let back = dwt.forward(&dwt.inverse(c).unwrap()).unwrap();
            for (a, b) in c.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-8 * a.abs().max(1.0), "{a} vs {b}");
            }
            Ok(())
        },
    );
}

/// Parseval: ‖Ψᵀx‖₂ == ‖x‖₂.
#[test]
fn energy_preserved() {
    check(
        "energy_preserved",
        &zip2(any_wavelet(), signal(64)),
        |(w, x)| {
            let dwt = Dwt::new(*w, 2).unwrap();
            let c = dwt.forward(x).unwrap();
            let ex: f64 = x.iter().map(|v| v * v).sum();
            let ec: f64 = c.iter().map(|v| v * v).sum();
            prop_assert!((ex - ec).abs() <= 1e-8 * ex.max(1.0), "{ex} vs {ec}");
            Ok(())
        },
    );
}

/// Linearity: Ψᵀ(a·x + y) == a·Ψᵀx + Ψᵀy.
#[test]
fn forward_is_linear() {
    check(
        "forward_is_linear",
        &zip3(signal(32), signal(32), f64_in(-10.0, 10.0)),
        |(x, y, a)| {
            let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
            let mixed: Vec<f64> = x.iter().zip(y).map(|(xi, yi)| a * xi + yi).collect();
            let lhs = dwt.forward(&mixed).unwrap();
            let cx = dwt.forward(x).unwrap();
            let cy = dwt.forward(y).unwrap();
            for i in 0..32 {
                let rhs = a * cx[i] + cy[i];
                prop_assert!(
                    (lhs[i] - rhs).abs() <= 1e-8 * rhs.abs().max(1.0),
                    "coeff {i}: {} vs {rhs}",
                    lhs[i]
                );
            }
            Ok(())
        },
    );
}

/// Adjoint identity ⟨Ψᵀx, y⟩ == ⟨x, Ψy⟩ — required for the solvers to
/// use `inverse` as the adjoint of `forward`.
#[test]
fn adjoint_identity() {
    check(
        "adjoint_identity",
        &zip3(any_wavelet(), signal(64), signal(64)),
        |(w, x, y)| {
            let dwt = Dwt::new(*w, 3).unwrap();
            let lhs: f64 = dwt
                .forward(x)
                .unwrap()
                .iter()
                .zip(y)
                .map(|(a, b)| a * b)
                .sum();
            let rhs: f64 = x
                .iter()
                .zip(dwt.inverse(y).unwrap().iter())
                .map(|(a, b)| a * b)
                .sum();
            let scale = lhs.abs().max(rhs.abs()).max(1.0);
            prop_assert!((lhs - rhs).abs() <= 1e-8 * scale, "{lhs} vs {rhs}");
            Ok(())
        },
    );
}
