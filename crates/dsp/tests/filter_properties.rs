//! Property-based tests for the FIR/IIR building blocks.

use hybridcs_dsp::filters::{BandPass, FirFilter, OnePole};
use proptest::prelude::*;

proptest! {
    /// FIR filtering is linear: F(a·x + y) == a·F(x) + F(y).
    #[test]
    fn fir_is_linear(
        taps in prop::collection::vec(-2.0..2.0f64, 1..8),
        x in prop::collection::vec(-10.0..10.0f64, 16),
        y in prop::collection::vec(-10.0..10.0f64, 16),
        a in -3.0..3.0f64,
    ) {
        let f = FirFilter::new(taps).unwrap();
        let mixed: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| a * xi + yi).collect();
        let lhs = f.apply(&mixed);
        let fx = f.apply(&x);
        let fy = f.apply(&y);
        for i in 0..16 {
            let rhs = a * fx[i] + fy[i];
            prop_assert!((lhs[i] - rhs).abs() <= 1e-9 * rhs.abs().max(1.0));
        }
    }

    /// FIR filtering is time-invariant (up to the zero-state warm-up):
    /// shifting the input shifts the output.
    #[test]
    fn fir_is_time_invariant(
        taps in prop::collection::vec(-2.0..2.0f64, 1..6),
        x in prop::collection::vec(-10.0..10.0f64, 24),
    ) {
        let f = FirFilter::new(taps.clone()).unwrap();
        let mut shifted = vec![0.0; 4];
        shifted.extend_from_slice(&x);
        let y = f.apply(&x);
        let y_shifted = f.apply(&shifted);
        // After the warm-up region the shifted output matches.
        for i in taps.len()..x.len() {
            prop_assert!((y[i] - y_shifted[i + 4]).abs() < 1e-9);
        }
    }

    /// A one-pole low-pass is BIBO-stable: bounded input gives output
    /// bounded by the same amplitude (unity DC gain, |a| < 1).
    #[test]
    fn one_pole_is_bibo_stable(a in 0.0..0.999f64, x in prop::collection::vec(-5.0..5.0f64, 64)) {
        let mut f = OnePole::new(a).unwrap();
        let bound = x.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        for v in f.process(&x) {
            prop_assert!(v.abs() <= bound + 1e-9);
        }
    }

    /// The moving average of any signal stays within its min/max envelope.
    #[test]
    fn moving_average_respects_envelope(
        len in 1usize..12,
        x in prop::collection::vec(0.5..9.5f64, 32),
    ) {
        let f = FirFilter::moving_average(len).unwrap();
        let hi = x.iter().fold(f64::MIN, |m, v| m.max(*v));
        let y = f.apply(&x);
        // Zero initial state can pull early outputs below min; after the
        // warm-up the envelope holds.
        for v in &y[len.min(31)..] {
            prop_assert!(*v <= hi + 1e-9);
            prop_assert!(*v >= 0.0);
        }
    }

    /// Band-pass output of a bounded signal is bounded (sum of two stable
    /// one-poles).
    #[test]
    fn band_pass_is_stable(x in prop::collection::vec(-5.0..5.0f64, 128)) {
        let mut bp = BandPass::new(5.0, 40.0, 360.0).unwrap();
        let bound = x.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        for v in bp.process(&x) {
            prop_assert!(v.abs() <= 2.0 * bound + 1e-9);
        }
    }
}
