//! Property-based tests for the FIR/IIR building blocks, on the in-repo
//! `hybridcs_rand::check` harness (≥ 64 seeded cases each).

use hybridcs_dsp::filters::{BandPass, FirFilter, OnePole};
use hybridcs_rand::check::{check, f64_in, usize_in, vec_len, vec_of, zip2, zip4};
use hybridcs_rand::prop_assert;

/// FIR filtering is linear: F(a·x + y) == a·F(x) + F(y).
#[test]
fn fir_is_linear() {
    check(
        "fir_is_linear",
        &zip4(
            vec_of(f64_in(-2.0, 2.0), 1, 8),
            vec_len(f64_in(-10.0, 10.0), 16),
            vec_len(f64_in(-10.0, 10.0), 16),
            f64_in(-3.0, 3.0),
        ),
        |(taps, x, y, a)| {
            let f = FirFilter::new(taps.clone()).unwrap();
            let mixed: Vec<f64> = x.iter().zip(y).map(|(xi, yi)| a * xi + yi).collect();
            let lhs = f.apply(&mixed);
            let fx = f.apply(x);
            let fy = f.apply(y);
            for i in 0..16 {
                let rhs = a * fx[i] + fy[i];
                prop_assert!(
                    (lhs[i] - rhs).abs() <= 1e-9 * rhs.abs().max(1.0),
                    "sample {i}: {} vs {rhs}",
                    lhs[i]
                );
            }
            Ok(())
        },
    );
}

/// FIR filtering is time-invariant (up to the zero-state warm-up):
/// shifting the input shifts the output.
#[test]
fn fir_is_time_invariant() {
    check(
        "fir_is_time_invariant",
        &zip2(
            vec_of(f64_in(-2.0, 2.0), 1, 6),
            vec_len(f64_in(-10.0, 10.0), 24),
        ),
        |(taps, x)| {
            let f = FirFilter::new(taps.clone()).unwrap();
            let mut shifted = vec![0.0; 4];
            shifted.extend_from_slice(x);
            let y = f.apply(x);
            let y_shifted = f.apply(&shifted);
            // After the warm-up region the shifted output matches.
            for i in taps.len()..x.len() {
                prop_assert!(
                    (y[i] - y_shifted[i + 4]).abs() < 1e-9,
                    "sample {i}: {} vs {}",
                    y[i],
                    y_shifted[i + 4]
                );
            }
            Ok(())
        },
    );
}

/// A one-pole low-pass is BIBO-stable: bounded input gives output
/// bounded by the same amplitude (unity DC gain, |a| < 1).
#[test]
fn one_pole_is_bibo_stable() {
    check(
        "one_pole_is_bibo_stable",
        &zip2(f64_in(0.0, 0.999), vec_len(f64_in(-5.0, 5.0), 64)),
        |(a, x)| {
            let mut f = OnePole::new(*a).unwrap();
            let bound = x.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
            for v in f.process(x) {
                prop_assert!(v.abs() <= bound + 1e-9, "output {v} exceeds bound {bound}");
            }
            Ok(())
        },
    );
}

/// The moving average of any signal stays within its min/max envelope.
#[test]
fn moving_average_respects_envelope() {
    check(
        "moving_average_respects_envelope",
        &zip2(usize_in(1, 12), vec_len(f64_in(0.5, 9.5), 32)),
        |(len, x)| {
            let f = FirFilter::moving_average(*len).unwrap();
            let hi = x.iter().fold(f64::MIN, |m, v| m.max(*v));
            let y = f.apply(x);
            // Zero initial state can pull early outputs below min; after the
            // warm-up the envelope holds.
            for v in &y[(*len).min(31)..] {
                prop_assert!(*v <= hi + 1e-9, "output {v} above envelope {hi}");
                prop_assert!(*v >= 0.0, "output {v} negative");
            }
            Ok(())
        },
    );
}

/// Band-pass output of a bounded signal is bounded (sum of two stable
/// one-poles).
#[test]
fn band_pass_is_stable() {
    check(
        "band_pass_is_stable",
        &vec_len(f64_in(-5.0, 5.0), 128),
        |x| {
            let mut bp = BandPass::new(5.0, 40.0, 360.0).unwrap();
            let bound = x.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
            for v in bp.process(x) {
                prop_assert!(
                    v.abs() <= 2.0 * bound + 1e-9,
                    "output {v} exceeds 2×{bound}"
                );
            }
            Ok(())
        },
    );
}
