//! Gateway policy knobs.

use crate::GatewayError;
use hybridcs_core::SupervisorConfig;
use hybridcs_faults::ArqConfig;

/// Policy for the multi-session gateway.
///
/// The determinism contract (see the [crate docs](crate)) hinges on two of
/// these fields: `shards` fixes the session→shard mapping independently of
/// how many workers run, and `admit_quota`/`admit_window` make admission
/// shedding a function of the session's own stream position only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatewayConfig {
    /// Number of shards sessions are hashed onto. Fixed by config — NOT
    /// derived from `workers` — so shard assignment (and therefore
    /// queue-full shedding) does not move when the pool is resized.
    pub shards: usize,
    /// Worker threads per flush. Purely a throughput knob; outputs are
    /// bit-identical for any value ≥ 1.
    pub workers: usize,
    /// Largest group of same-shape windows a worker solves as one batched
    /// (lockstep, K-wide-panel) decode. Like `workers`, purely a
    /// throughput knob: the batched solvers are bit-identical to serial
    /// per window, so outputs do not depend on this value. `1` disables
    /// batching.
    pub max_decode_batch: usize,
    /// Bounded per-shard solver queue: at most this many *full* (solver
    /// admitted) windows may be queued per shard within one batch; excess
    /// windows are shed to the low-resolution rung.
    pub max_shard_queue: usize,
    /// Auto-flush threshold: when this many windows are queued across all
    /// shards, `push` flushes the batch itself.
    pub batch_capacity: usize,
    /// Per-session admission quota: at most this many solver-admitted
    /// windows per `admit_window` consecutive windows of that session's
    /// stream. Windows over quota are shed (ladder reason `"shed"`).
    pub admit_quota: u32,
    /// Epoch length (in released windows of one session) over which
    /// `admit_quota` applies. With `admit_quota >= admit_window` admission
    /// shedding never fires.
    pub admit_window: u32,
    /// Per-session ARQ limits for gap repair.
    pub arq: ArqConfig,
    /// Watchdog and concealment policy handed to every session's decode
    /// ladder and ledger.
    pub supervisor: SupervisorConfig,
    /// Group-commit threshold for the write-ahead journal: encoded records
    /// accumulate in memory and are forced to the store once this many
    /// bytes are buffered (the delivery points — `flush`, `take_nacks`,
    /// `take_outputs`, `close`, checkpoints — always sync regardless).
    /// `0` syncs every record — maximal durability, maximal overhead.
    /// Ignored when the gateway runs without a journal.
    pub journal_group_bytes: usize,
    /// A snapshot checkpoint is appended to the journal once this many
    /// journaled events have accumulated since the previous checkpoint
    /// (bounding replay work at recovery). Checked at batch boundaries so
    /// checkpoints always capture a quiescent (empty-batch) state.
    pub checkpoint_every: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            shards: 8,
            workers: 1,
            max_decode_batch: 16,
            max_shard_queue: 64,
            batch_capacity: 256,
            admit_quota: 4,
            admit_window: 4,
            arq: ArqConfig::default(),
            supervisor: SupervisorConfig::default(),
            journal_group_bytes: 16 * 1024,
            checkpoint_every: 1024,
        }
    }
}

impl GatewayConfig {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`GatewayError::Config`] naming the first bad field.
    pub fn validate(&self) -> Result<(), GatewayError> {
        if self.shards == 0 {
            return Err(GatewayError::Config("shards must be >= 1"));
        }
        if self.workers == 0 {
            return Err(GatewayError::Config("workers must be >= 1"));
        }
        if self.max_decode_batch == 0 {
            return Err(GatewayError::Config("max_decode_batch must be >= 1"));
        }
        if self.max_shard_queue == 0 {
            return Err(GatewayError::Config("max_shard_queue must be >= 1"));
        }
        if self.batch_capacity == 0 {
            return Err(GatewayError::Config("batch_capacity must be >= 1"));
        }
        if self.admit_window == 0 {
            return Err(GatewayError::Config("admit_window must be >= 1"));
        }
        if self.checkpoint_every == 0 {
            return Err(GatewayError::Config("checkpoint_every must be >= 1"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(GatewayConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_fields_are_rejected() {
        for bad in [
            GatewayConfig {
                shards: 0,
                ..GatewayConfig::default()
            },
            GatewayConfig {
                workers: 0,
                ..GatewayConfig::default()
            },
            GatewayConfig {
                max_decode_batch: 0,
                ..GatewayConfig::default()
            },
            GatewayConfig {
                max_shard_queue: 0,
                ..GatewayConfig::default()
            },
            GatewayConfig {
                batch_capacity: 0,
                ..GatewayConfig::default()
            },
            GatewayConfig {
                admit_window: 0,
                ..GatewayConfig::default()
            },
            GatewayConfig {
                checkpoint_every: 0,
                ..GatewayConfig::default()
            },
        ] {
            assert!(matches!(bad.validate(), Err(GatewayError::Config(_))));
        }
    }
}
