//! The gateway's crash-safety layer: a CRC-framed write-ahead journal of
//! ingest-order events, periodic snapshot checkpoints, and the recovery
//! scan that replays them. DESIGN §12 is the narrative version.
//!
//! # Journal = command log
//!
//! The gateway is deterministic: for a fixed config, the same sequence of
//! public API calls produces bit-identical session state and output bytes
//! regardless of worker count (DESIGN §9). The journal exploits that by
//! logging the *commands* — one [`Record`] per `handshake`/`push`/
//! `notify_lost`/`take_nacks`/`flush`/`take_outputs`/`close` call — rather
//! than the resulting state. Replay is just re-invoking the gateway's
//! internal (non-journaling) paths in order; any window that was journaled
//! but not yet committed is simply re-decoded, reproducing the exact
//! output bytes.
//!
//! # Wire format
//!
//! Every record is framed as `[len: u32 LE][crc32: u32 LE][payload: len
//! bytes]`, with the CRC over the payload only (the `crc32` from
//! `hybridcs-coding`, the same polynomial the telemetry frames use). The
//! first record is always [`Record::Genesis`], pinning a fingerprint of
//! the gateway configuration; [`Record::Checkpoint`] records carry a full
//! serialized snapshot of every session's state. All integers are
//! little-endian; every `f64` travels as its exact IEEE bit pattern, so a
//! restored ledger is bit-identical, not merely close.
//!
//! # Group commit
//!
//! Encoded records accumulate in an in-memory buffer and reach the store
//! in batches: when the buffer exceeds the configured group-commit
//! threshold, and always at the *delivery points* — `flush`,
//! `take_nacks`, `take_outputs`, `close`, and checkpoints — so nothing
//! the caller has observed can be lost to a crash. The invariant is the
//! classic WAL one: **observed ⇒ durable**; everything else is
//! re-derivable by replay.
//!
//! # Torn tails
//!
//! [`scan`] walks frames from the start and stops at the first torn,
//! CRC-bad, or undecodable record: everything before it is the valid
//! prefix, everything after is wreckage from the crash and is truncated
//! before the journal resumes appending. Because stores only tear the
//! in-flight append (an fsync contract), the valid prefix always covers
//! every observed output.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use hybridcs_coding::{crc32, LowResCodec, Payload};
use hybridcs_core::{DecodedWindow, LadderRung};
use hybridcs_core::{LedgerState, SupervisedWindow, SystemConfig};
use hybridcs_faults::{ArqState, JournalStore, StoreError};
use hybridcs_solver::RecoveryResult;

use crate::GatewayConfig;

/// Upper bound on a single record's payload (sanity cap against garbage
/// length prefixes; 64 MiB dwarfs any real checkpoint).
pub const MAX_RECORD_BYTES: usize = 1 << 26;

/// Bytes of framing ahead of every payload (`len` + `crc`).
pub const FRAME_HEADER_BYTES: usize = 8;

/// Journal record payload decode errors (all collapse to "stop the scan
/// here" — a bad record ends the valid prefix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Malformed;

// ---------------------------------------------------------------------------
// Byte-level encoding primitives
// ---------------------------------------------------------------------------

/// Little-endian append-only writer (thin, but keeps every encode site
/// symmetric with [`ByteReader`]).
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub(crate) fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("record payload fits u32"));
        self.buf.extend_from_slice(v);
    }

    pub(crate) fn f64s(&mut self, v: &[f64]) {
        self.u32(u32::try_from(v.len()).expect("signal length fits u32"));
        for x in v {
            self.f64(*x);
        }
    }

    pub(crate) fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Checked little-endian reader: every read verifies the bytes exist, and
/// every length prefix is validated against the remaining input before
/// allocating — adversarial journals cannot cause panics or huge
/// allocations.
pub(crate) struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Malformed> {
        let end = self.pos.checked_add(n).ok_or(Malformed)?;
        if end > self.data.len() {
            return Err(Malformed);
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, Malformed> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, Malformed> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, Malformed> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, Malformed> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn bytes(&mut self) -> Result<Vec<u8>, Malformed> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    pub(crate) fn f64s(&mut self) -> Result<Vec<f64>, Malformed> {
        let len = self.u32()? as usize;
        // The claim must be covered by real bytes before allocating.
        if len.checked_mul(8).ok_or(Malformed)? > self.data.len() - self.pos {
            return Err(Malformed);
        }
        (0..len).map(|_| self.f64()).collect()
    }

    pub(crate) fn opt_u32(&mut self) -> Result<Option<u32>, Malformed> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            _ => Err(Malformed),
        }
    }

    pub(crate) fn done(&self) -> Result<(), Malformed> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(Malformed)
        }
    }
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

/// FNV-1a over a byte stream (stable, dependency-free; fingerprints are
/// consistency checks, not security).
fn fnv64(chunks: &[&[u8]]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for b in *chunk {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Fingerprint of one operator shape: the `SystemConfig` (via its stable
/// `Debug` rendering) plus the trained codebook bytes and quantizer depth.
/// Checkpoints and handshake records name ladders by this value; recovery
/// matches it against the caller-supplied shape table.
#[must_use]
pub fn shape_fingerprint(system: &SystemConfig, codec: &LowResCodec) -> u64 {
    let system_repr = format!("{system:?}");
    let codebook = codec.codebook().serialize();
    let bits = codec.bits().to_le_bytes();
    fnv64(&[system_repr.as_bytes(), &codebook, &bits])
}

/// Fingerprint of the gateway policy a journal was written under. The
/// worker count and decode-batch width are canonicalized out — both are
/// pure throughput knobs with no effect on outputs (DESIGN §9 and §14: the
/// batched solvers are bit-identical to serial per window), so a journal
/// may be recovered into a gateway with a different pool size or batch
/// width. Everything else must match: shards, admission, ARQ, and
/// supervisor policy all shape the journaled decisions.
#[must_use]
pub fn config_fingerprint(config: &GatewayConfig) -> u64 {
    let canonical = GatewayConfig {
        workers: 1,
        max_decode_batch: 1,
        ..*config
    };
    fnv64(&[format!("{canonical:?}").as_bytes()])
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

const TAG_GENESIS: u8 = 0;
const TAG_HANDSHAKE: u8 = 1;
const TAG_PUSH: u8 = 2;
const TAG_NOTIFY_LOST: u8 = 3;
const TAG_TAKE_NACKS: u8 = 4;
const TAG_FLUSH: u8 = 5;
const TAG_TAKE_OUTPUTS: u8 = 6;
const TAG_CLOSE: u8 = 7;
const TAG_CHECKPOINT: u8 = 8;

/// One journal record: a gateway API command (the log proper), the
/// genesis header, or a snapshot checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// First record of every journal: the policy fingerprint the log was
    /// written under (see [`config_fingerprint`]).
    Genesis {
        /// The writing gateway's [`config_fingerprint`].
        config_fp: u64,
    },
    /// `Gateway::handshake(id, ...)`; the shape is named by fingerprint
    /// and resolved against the recovery shape table.
    Handshake {
        /// Session id.
        id: u64,
        /// [`shape_fingerprint`] of the session's `(config, codec)` pair.
        shape_fp: u64,
    },
    /// `Gateway::push(id, packet)` — the raw wire frame, replayed
    /// verbatim.
    Push {
        /// Session id.
        id: u64,
        /// The wire frame bytes exactly as pushed.
        packet: Vec<u8>,
    },
    /// `Gateway::notify_lost(id, sequence)`.
    NotifyLost {
        /// Session id.
        id: u64,
        /// The sequence whose retransmission was lost.
        sequence: u32,
    },
    /// `Gateway::take_nacks(id)` — journaled because draining consumes
    /// ARQ budget and attempts.
    TakeNacks {
        /// Session id.
        id: u64,
    },
    /// An explicit `Gateway::flush()` (capacity-triggered auto-flushes
    /// are *not* journaled — replaying the pushes reproduces them).
    Flush,
    /// `Gateway::take_outputs(id)` — journaled so replay re-drains
    /// windows that were already delivered before the crash.
    TakeOutputs {
        /// Session id.
        id: u64,
    },
    /// `Gateway::close(id)`.
    Close {
        /// Session id.
        id: u64,
    },
    /// A full state snapshot; recovery restores the last decodable one
    /// and replays only the records after it.
    Checkpoint(CheckpointState),
}

impl Record {
    /// Whether this record is a replayable gateway command (vs. journal
    /// bookkeeping).
    #[must_use]
    pub fn is_command(&self) -> bool {
        !matches!(self, Record::Genesis { .. } | Record::Checkpoint(_))
    }

    /// Encodes the record payload (unframed).
    #[must_use]
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Record::Genesis { config_fp } => {
                w.u8(TAG_GENESIS);
                w.u64(*config_fp);
            }
            Record::Handshake { id, shape_fp } => {
                w.u8(TAG_HANDSHAKE);
                w.u64(*id);
                w.u64(*shape_fp);
            }
            Record::Push { id, packet } => {
                w.u8(TAG_PUSH);
                w.u64(*id);
                w.bytes(packet);
            }
            Record::NotifyLost { id, sequence } => {
                w.u8(TAG_NOTIFY_LOST);
                w.u64(*id);
                w.u32(*sequence);
            }
            Record::TakeNacks { id } => {
                w.u8(TAG_TAKE_NACKS);
                w.u64(*id);
            }
            Record::Flush => w.u8(TAG_FLUSH),
            Record::TakeOutputs { id } => {
                w.u8(TAG_TAKE_OUTPUTS);
                w.u64(*id);
            }
            Record::Close { id } => {
                w.u8(TAG_CLOSE);
                w.u64(*id);
            }
            Record::Checkpoint(state) => {
                w.u8(TAG_CHECKPOINT);
                state.encode(&mut w);
            }
        }
        w.finish()
    }

    /// Decodes one record payload; any deviation is [`Malformed`].
    pub(crate) fn decode(payload: &[u8]) -> Result<Record, Malformed> {
        let mut r = ByteReader::new(payload);
        let record = match r.u8()? {
            TAG_GENESIS => Record::Genesis {
                config_fp: r.u64()?,
            },
            TAG_HANDSHAKE => Record::Handshake {
                id: r.u64()?,
                shape_fp: r.u64()?,
            },
            TAG_PUSH => Record::Push {
                id: r.u64()?,
                packet: r.bytes()?,
            },
            TAG_NOTIFY_LOST => Record::NotifyLost {
                id: r.u64()?,
                sequence: r.u32()?,
            },
            TAG_TAKE_NACKS => Record::TakeNacks { id: r.u64()? },
            TAG_FLUSH => Record::Flush,
            TAG_TAKE_OUTPUTS => Record::TakeOutputs { id: r.u64()? },
            TAG_CLOSE => Record::Close { id: r.u64()? },
            TAG_CHECKPOINT => Record::Checkpoint(CheckpointState::decode(&mut r)?),
            _ => return Err(Malformed),
        };
        r.done()?;
        Ok(record)
    }
}

// ---------------------------------------------------------------------------
// Checkpoint state
// ---------------------------------------------------------------------------

/// One buffered reorder-slot in a checkpoint (the serializable shadow of
/// the gateway's `Queued`; the wall-clock instant is telemetry-only and
/// restored as "now").
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedState {
    /// The deterministic logical ingest stamp.
    pub logical: u64,
    /// `None` — declared lost; `Some` — the parsed frame sections
    /// `(sequence, measurements, lowres (bytes, bit_len))`.
    #[allow(clippy::type_complexity)]
    pub frame: Option<(Option<u32>, Option<Vec<f64>>, Option<(Vec<u8>, u64)>)>,
}

/// One committed-but-undelivered output window in a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowState {
    /// Frame sequence, when the header survived.
    pub sequence: Option<u32>,
    /// Ladder rung code ([`LadderRung::code`]).
    pub rung: u8,
    /// The reconstructed signal, bit-exact.
    pub signal: Vec<f64>,
    /// Demotion trail as `(rung code, reason code)` pairs (reason codes
    /// from [`hybridcs_obs::flight::DEMOTION_REASONS`]).
    pub demotions: Vec<(u8, u8)>,
    /// Solver report, when a solver rung produced the window:
    /// `(decoded signal, recovery signal, iterations, converged,
    /// residual, objective, used_box)`.
    #[allow(clippy::type_complexity)]
    pub decoded: Option<(Vec<f64>, Vec<f64>, u64, bool, f64, f64, bool)>,
}

/// One session's full serialized state.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionState {
    /// Session id.
    pub id: u64,
    /// [`shape_fingerprint`] naming the session's decode ladder.
    pub shape_fp: u64,
    /// Lifecycle phase code ([`crate::SessionPhase::code`]).
    pub phase: u8,
    /// Concealment source, bit-exact, if any.
    pub last_good: Option<Vec<f64>>,
    /// Consecutive concealed windows.
    pub consecutive_concealed: u64,
    /// Next expected frame sequence, if tracking started.
    pub expected_sequence: Option<u32>,
    /// ARQ retransmission queue, oldest first.
    pub arq_pending: Vec<u32>,
    /// ARQ `(sequence, attempts)` pairs.
    pub arq_attempts: Vec<(u32, u32)>,
    /// ARQ budget remaining.
    pub arq_budget_left: u64,
    /// Sequences in the nack/retransmit cycle.
    pub nacked: Vec<u32>,
    /// Reorder buffer, keyed by sequence.
    pub reorder: Vec<(u32, QueuedState)>,
    /// Next sequence to release.
    pub next_release: u32,
    /// Highest sequence observed.
    pub highest_seen: Option<u32>,
    /// Released-window counter.
    pub window_index: u64,
    /// Admission epoch.
    pub epoch: u64,
    /// Solver-admitted windows in the current epoch.
    pub admitted_in_epoch: u32,
    /// Committed windows not yet delivered.
    pub outputs: Vec<WindowState>,
}

/// A full gateway snapshot: everything needed to resume as if the process
/// never died, given the same config and shape table.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// [`config_fingerprint`] (defensive duplicate of the genesis).
    pub config_fp: u64,
    /// The deterministic logical clock.
    pub clock: u64,
    /// Command records applied when the snapshot was taken — replay
    /// resumes from here.
    pub applied: u64,
    /// Every live or closed session.
    pub sessions: Vec<SessionState>,
}

impl CheckpointState {
    fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.config_fp);
        w.u64(self.clock);
        w.u64(self.applied);
        w.u32(u32::try_from(self.sessions.len()).expect("session count fits u32"));
        for s in &self.sessions {
            w.u64(s.id);
            w.u64(s.shape_fp);
            w.u8(s.phase);
            match &s.last_good {
                None => w.u8(0),
                Some(signal) => {
                    w.u8(1);
                    w.f64s(signal);
                }
            }
            w.u64(s.consecutive_concealed);
            w.opt_u32(s.expected_sequence);
            w.u32(u32::try_from(s.arq_pending.len()).expect("fits u32"));
            for seq in &s.arq_pending {
                w.u32(*seq);
            }
            w.u32(u32::try_from(s.arq_attempts.len()).expect("fits u32"));
            for (seq, attempts) in &s.arq_attempts {
                w.u32(*seq);
                w.u32(*attempts);
            }
            w.u64(s.arq_budget_left);
            w.u32(u32::try_from(s.nacked.len()).expect("fits u32"));
            for seq in &s.nacked {
                w.u32(*seq);
            }
            w.u32(u32::try_from(s.reorder.len()).expect("fits u32"));
            for (seq, queued) in &s.reorder {
                w.u32(*seq);
                w.u64(queued.logical);
                match &queued.frame {
                    None => w.u8(0),
                    Some((sequence, measurements, lowres)) => {
                        w.u8(1);
                        w.opt_u32(*sequence);
                        match measurements {
                            None => w.u8(0),
                            Some(m) => {
                                w.u8(1);
                                w.f64s(m);
                            }
                        }
                        match lowres {
                            None => w.u8(0),
                            Some((bytes, bit_len)) => {
                                w.u8(1);
                                w.bytes(bytes);
                                w.u64(*bit_len);
                            }
                        }
                    }
                }
            }
            w.u32(s.next_release);
            w.opt_u32(s.highest_seen);
            w.u64(s.window_index);
            w.u64(s.epoch);
            w.u32(s.admitted_in_epoch);
            w.u32(u32::try_from(s.outputs.len()).expect("fits u32"));
            for out in &s.outputs {
                w.opt_u32(out.sequence);
                w.u8(out.rung);
                w.f64s(&out.signal);
                w.u32(u32::try_from(out.demotions.len()).expect("fits u32"));
                for (rung, reason) in &out.demotions {
                    w.u8(*rung);
                    w.u8(*reason);
                }
                match &out.decoded {
                    None => w.u8(0),
                    Some((
                        signal,
                        rec_signal,
                        iterations,
                        converged,
                        residual,
                        objective,
                        used_box,
                    )) => {
                        w.u8(1);
                        w.f64s(signal);
                        w.f64s(rec_signal);
                        w.u64(*iterations);
                        w.u8(u8::from(*converged));
                        w.f64(*residual);
                        w.f64(*objective);
                        w.u8(u8::from(*used_box));
                    }
                }
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, Malformed> {
        let config_fp = r.u64()?;
        let clock = r.u64()?;
        let applied = r.u64()?;
        let session_count = r.u32()? as usize;
        let mut sessions = Vec::new();
        for _ in 0..session_count {
            let id = r.u64()?;
            let shape_fp = r.u64()?;
            let phase = r.u8()?;
            let last_good = match r.u8()? {
                0 => None,
                1 => Some(r.f64s()?),
                _ => return Err(Malformed),
            };
            let consecutive_concealed = r.u64()?;
            let expected_sequence = r.opt_u32()?;
            let arq_pending = read_u32s(r)?;
            let attempt_count = r.u32()? as usize;
            if attempt_count.checked_mul(8).ok_or(Malformed)? > r.data.len() - r.pos {
                return Err(Malformed);
            }
            let mut arq_attempts = Vec::with_capacity(attempt_count);
            for _ in 0..attempt_count {
                arq_attempts.push((r.u32()?, r.u32()?));
            }
            let arq_budget_left = r.u64()?;
            let nacked = read_u32s(r)?;
            let reorder_count = r.u32()? as usize;
            let mut reorder = Vec::new();
            for _ in 0..reorder_count {
                let seq = r.u32()?;
                let logical = r.u64()?;
                let frame = match r.u8()? {
                    0 => None,
                    1 => {
                        let sequence = r.opt_u32()?;
                        let measurements = match r.u8()? {
                            0 => None,
                            1 => Some(r.f64s()?),
                            _ => return Err(Malformed),
                        };
                        let lowres = match r.u8()? {
                            0 => None,
                            1 => Some((r.bytes()?, r.u64()?)),
                            _ => return Err(Malformed),
                        };
                        Some((sequence, measurements, lowres))
                    }
                    _ => return Err(Malformed),
                };
                reorder.push((seq, QueuedState { logical, frame }));
            }
            let next_release = r.u32()?;
            let highest_seen = r.opt_u32()?;
            let window_index = r.u64()?;
            let epoch = r.u64()?;
            let admitted_in_epoch = r.u32()?;
            let output_count = r.u32()? as usize;
            let mut outputs = Vec::new();
            for _ in 0..output_count {
                let sequence = r.opt_u32()?;
                let rung = r.u8()?;
                let signal = r.f64s()?;
                let demotion_count = r.u32()? as usize;
                if demotion_count.checked_mul(2).ok_or(Malformed)? > r.data.len() - r.pos {
                    return Err(Malformed);
                }
                let mut demotions = Vec::with_capacity(demotion_count);
                for _ in 0..demotion_count {
                    demotions.push((r.u8()?, r.u8()?));
                }
                let decoded = match r.u8()? {
                    0 => None,
                    1 => Some((
                        r.f64s()?,
                        r.f64s()?,
                        r.u64()?,
                        r.u8()? != 0,
                        r.f64()?,
                        r.f64()?,
                        r.u8()? != 0,
                    )),
                    _ => return Err(Malformed),
                };
                outputs.push(WindowState {
                    sequence,
                    rung,
                    signal,
                    demotions,
                    decoded,
                });
            }
            sessions.push(SessionState {
                id,
                shape_fp,
                phase,
                last_good,
                consecutive_concealed,
                expected_sequence,
                arq_pending,
                arq_attempts,
                arq_budget_left,
                nacked,
                reorder,
                next_release,
                highest_seen,
                window_index,
                epoch,
                admitted_in_epoch,
                outputs,
            });
        }
        Ok(CheckpointState {
            config_fp,
            clock,
            applied,
            sessions,
        })
    }
}

fn read_u32s(r: &mut ByteReader<'_>) -> Result<Vec<u32>, Malformed> {
    let len = r.u32()? as usize;
    if len.checked_mul(4).ok_or(Malformed)? > r.data.len() - r.pos {
        return Err(Malformed);
    }
    (0..len).map(|_| r.u32()).collect()
}

// ---------------------------------------------------------------------------
// State <-> domain conversions (used by the gateway when checkpointing /
// restoring; kept here so the wire format lives in one file)
// ---------------------------------------------------------------------------

/// [`hybridcs_obs::flight::DEMOTION_REASONS`] code for a reason string.
pub(crate) fn reason_code(reason: &str) -> u8 {
    hybridcs_obs::flight::demotion_reason_code(reason)
}

/// The static reason string for a stored code (unknown codes become
/// `"unknown"` — the table only ever grows).
pub(crate) fn reason_from_code(code: u8) -> &'static str {
    hybridcs_obs::flight::DEMOTION_REASONS
        .get(code as usize)
        .copied()
        .unwrap_or("unknown")
}

pub(crate) fn window_to_state(window: &SupervisedWindow) -> WindowState {
    WindowState {
        sequence: window.sequence,
        rung: window.rung.code(),
        signal: window.signal.clone(),
        demotions: window
            .demotions
            .iter()
            .map(|(rung, reason)| (rung.code(), reason_code(reason)))
            .collect(),
        decoded: window.decoded.as_ref().map(|d| {
            (
                d.signal.clone(),
                d.recovery.signal.clone(),
                d.recovery.iterations as u64,
                d.recovery.converged,
                d.recovery.residual,
                d.recovery.objective,
                d.used_box,
            )
        }),
    }
}

pub(crate) fn window_from_state(state: WindowState) -> Result<SupervisedWindow, Malformed> {
    Ok(SupervisedWindow {
        sequence: state.sequence,
        rung: LadderRung::from_code(state.rung).ok_or(Malformed)?,
        signal: state.signal,
        demotions: state
            .demotions
            .into_iter()
            .map(|(rung, reason)| {
                LadderRung::from_code(rung)
                    .map(|r| (r, reason_from_code(reason)))
                    .ok_or(Malformed)
            })
            .collect::<Result<_, _>>()?,
        decoded: state.decoded.map(
            |(signal, rec_signal, iterations, converged, residual, objective, used_box)| {
                DecodedWindow {
                    signal,
                    recovery: RecoveryResult {
                        signal: rec_signal,
                        iterations: iterations as usize,
                        converged,
                        residual,
                        objective,
                    },
                    used_box,
                }
            },
        ),
    })
}

pub(crate) fn ledger_to_parts(state: &LedgerState) -> (Option<Vec<f64>>, u64, Option<u32>) {
    (
        state.last_good.clone(),
        state.consecutive_concealed as u64,
        state.expected_sequence,
    )
}

pub(crate) fn ledger_from_parts(
    last_good: Option<Vec<f64>>,
    consecutive_concealed: u64,
    expected_sequence: Option<u32>,
) -> LedgerState {
    LedgerState {
        last_good,
        consecutive_concealed: usize::try_from(consecutive_concealed).unwrap_or(usize::MAX),
        expected_sequence,
    }
}

pub(crate) fn arq_from_parts(
    pending: Vec<u32>,
    attempts: Vec<(u32, u32)>,
    budget_left: u64,
) -> ArqState {
    ArqState {
        pending,
        attempts,
        budget_left,
    }
}

pub(crate) fn payload_from_parts(bytes: Vec<u8>, bit_len: u64) -> Payload {
    Payload {
        bytes,
        bit_len: usize::try_from(bit_len).unwrap_or(usize::MAX),
    }
}

// ---------------------------------------------------------------------------
// Framing, scanning
// ---------------------------------------------------------------------------

/// Frames one encoded payload: `[len][crc32][payload]`.
#[must_use]
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("payload fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The result of walking a journal image: the decodable record prefix,
/// how many bytes it spans, and whether wreckage followed it.
#[derive(Debug)]
pub struct ScannedJournal {
    /// Records decoded from the valid prefix, in order.
    pub records: Vec<Record>,
    /// Bytes of the valid prefix (truncate the store to this before
    /// resuming appends).
    pub valid_bytes: u64,
    /// Whether bytes beyond the valid prefix existed (torn/corrupt tail).
    pub torn: bool,
}

/// Walks `bytes` frame by frame, stopping at the first torn, oversized,
/// CRC-bad, or undecodable record. Never panics, never over-allocates:
/// every length claim is validated against the remaining input.
#[must_use]
pub fn scan(bytes: &[u8]) -> ScannedJournal {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < FRAME_HEADER_BYTES {
            return ScannedJournal {
                records,
                valid_bytes: pos as u64,
                torn: !rest.is_empty(),
            };
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_BYTES || rest.len() - FRAME_HEADER_BYTES < len {
            return ScannedJournal {
                records,
                valid_bytes: pos as u64,
                torn: true,
            };
        }
        let payload = &rest[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len];
        if crc32(payload) != crc {
            return ScannedJournal {
                records,
                valid_bytes: pos as u64,
                torn: true,
            };
        }
        match Record::decode(payload) {
            Ok(record) => records.push(record),
            Err(Malformed) => {
                return ScannedJournal {
                    records,
                    valid_bytes: pos as u64,
                    torn: true,
                };
            }
        }
        pos += FRAME_HEADER_BYTES + len;
    }
}

// ---------------------------------------------------------------------------
// The journal writer (group commit)
// ---------------------------------------------------------------------------

/// The write side of the journal: encodes records into an in-memory
/// buffer and group-commits them to the store. See the
/// [module docs](self) for the durability contract.
pub(crate) struct Journal {
    store: Box<dyn JournalStore + Send>,
    buffer: Vec<u8>,
    group_bytes: usize,
}

impl Journal {
    pub(crate) fn new(store: Box<dyn JournalStore + Send>, group_bytes: usize) -> Self {
        Journal {
            store,
            buffer: Vec::new(),
            group_bytes,
        }
    }

    /// Buffers one record; syncs if the group-commit threshold is hit.
    pub(crate) fn append(&mut self, record: &Record) -> Result<(), StoreError> {
        let payload = record.encode();
        self.buffer.extend_from_slice(&frame(&payload));
        hybridcs_obs::global()
            .counter("gateway_journal_records_total", &[])
            .inc();
        if self.buffer.len() >= self.group_bytes.max(1) {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces every buffered record to the store (the group commit).
    pub(crate) fn sync(&mut self) -> Result<(), StoreError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let bytes = std::mem::take(&mut self.buffer);
        let result = self.store.append(&bytes);
        let registry = hybridcs_obs::global();
        registry
            .counter("gateway_journal_bytes_total", &[])
            .add(bytes.len() as u64);
        registry.counter("gateway_journal_syncs_total", &[]).inc();
        result
    }
}

// ---------------------------------------------------------------------------
// Real-file store backend
// ---------------------------------------------------------------------------

/// The production [`JournalStore`]: a real file, synced on every append
/// (the fsync contract the torn-tail model assumes).
#[derive(Debug)]
pub struct FileStore {
    file: std::fs::File,
    path: PathBuf,
}

impl FileStore {
    /// Opens (or creates) the journal file at `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let path = path.into();
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(io_err)?;
        Ok(FileStore { file, path })
    }

    /// The backing file's path.
    #[must_use]
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

fn io_err(e: std::io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

impl JournalStore for FileStore {
    fn append(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.file.seek(SeekFrom::End(0)).map_err(io_err)?;
        self.file.write_all(bytes).map_err(io_err)?;
        self.file.sync_data().map_err(io_err)
    }

    fn read_all(&mut self) -> Result<Vec<u8>, StoreError> {
        self.file.seek(SeekFrom::Start(0)).map_err(io_err)?;
        let mut out = Vec::new();
        self.file.read_to_end(&mut out).map_err(io_err)?;
        Ok(out)
    }

    fn truncate_to(&mut self, len: u64) -> Result<(), StoreError> {
        self.file.set_len(len).map_err(io_err)?;
        self.file.sync_data().map_err(io_err)
    }

    fn len(&self) -> u64 {
        self.file.metadata().map(|m| m.len()).unwrap_or(0)
    }
}

/// What a [`crate::Gateway::recover`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// Command records replayed after the restored checkpoint (the
    /// replay lag).
    pub replayed_events: u64,
    /// Whether a checkpoint was restored (vs. replaying from genesis).
    pub checkpoint_restored: bool,
    /// Whether a torn/corrupt tail was detected and cut.
    pub torn_tail: bool,
    /// Bytes discarded past the valid prefix.
    pub truncated_bytes: u64,
    /// Wall-clock recovery duration.
    pub seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn command_records() -> Vec<Record> {
        vec![
            Record::Genesis { config_fp: 0xAB },
            Record::Handshake {
                id: 7,
                shape_fp: 0xCD,
            },
            Record::Push {
                id: 7,
                packet: vec![1, 2, 3, 4, 5],
            },
            Record::NotifyLost { id: 7, sequence: 9 },
            Record::TakeNacks { id: 7 },
            Record::Flush,
            Record::TakeOutputs { id: 7 },
            Record::Close { id: 7 },
        ]
    }

    #[test]
    fn records_round_trip() {
        for record in command_records() {
            let decoded = Record::decode(&record.encode()).unwrap();
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn checkpoint_state_round_trips_bit_exact() {
        let state = CheckpointState {
            config_fp: 42,
            clock: 99,
            applied: 17,
            sessions: vec![SessionState {
                id: 3,
                shape_fp: 0xFEED,
                phase: 2,
                last_good: Some(vec![1.5, -0.0, f64::MIN_POSITIVE, 2.5e-300]),
                consecutive_concealed: 2,
                expected_sequence: Some(11),
                arq_pending: vec![4, 5],
                arq_attempts: vec![(4, 1), (5, 2)],
                arq_budget_left: 250,
                nacked: vec![4],
                reorder: vec![
                    (
                        6,
                        QueuedState {
                            logical: 88,
                            frame: Some((Some(6), Some(vec![0.25; 3]), Some((vec![9, 8], 12)))),
                        },
                    ),
                    (
                        7,
                        QueuedState {
                            logical: 89,
                            frame: None,
                        },
                    ),
                ],
                next_release: 5,
                highest_seen: Some(7),
                window_index: 5,
                epoch: 1,
                admitted_in_epoch: 1,
                outputs: vec![WindowState {
                    sequence: Some(4),
                    rung: 0,
                    signal: vec![0.125, -3.75],
                    demotions: vec![(0, 1)],
                    decoded: Some((
                        vec![0.125, -3.75],
                        vec![0.125, -3.75],
                        200,
                        true,
                        1e-9,
                        4.25,
                        true,
                    )),
                }],
            }],
        };
        let record = Record::Checkpoint(state.clone());
        match Record::decode(&record.encode()).unwrap() {
            Record::Checkpoint(decoded) => assert_eq!(decoded, state),
            other => panic!("wrong record: {other:?}"),
        }
    }

    #[test]
    fn scan_reads_clean_journals_and_stops_at_wreckage() {
        let records = command_records();
        let mut image = Vec::new();
        for record in &records {
            image.extend_from_slice(&frame(&record.encode()));
        }
        let clean = scan(&image);
        assert_eq!(clean.records, records);
        assert_eq!(clean.valid_bytes, image.len() as u64);
        assert!(!clean.torn);

        // Torn tail: half a record at the end.
        let mut torn = image.clone();
        torn.extend_from_slice(&frame(&Record::Flush.encode())[..5]);
        let scanned = scan(&torn);
        assert_eq!(scanned.records, records);
        assert_eq!(scanned.valid_bytes, image.len() as u64);
        assert!(scanned.torn);

        // Bit flip inside the last record's payload: CRC catches it.
        let mut flipped = image.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        let scanned = scan(&flipped);
        assert_eq!(scanned.records.len(), records.len() - 1);
        assert!(scanned.torn);

        // Garbage length prefix: the sanity cap stops the scan.
        let mut garbage = image.clone();
        garbage.extend_from_slice(&u32::MAX.to_le_bytes());
        garbage.extend_from_slice(&[0xAA; 12]);
        let scanned = scan(&garbage);
        assert_eq!(scanned.records, records);
        assert!(scanned.torn);
    }

    #[test]
    fn scan_never_panics_on_arbitrary_bytes() {
        // Deterministic pseudo-random junk of many lengths.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut junk = Vec::new();
        for len in [0usize, 1, 7, 8, 9, 64, 1024] {
            junk.clear();
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                junk.push((state >> 56) as u8);
            }
            let scanned = scan(&junk);
            assert!(scanned.valid_bytes <= junk.len() as u64);
        }
    }

    #[test]
    fn group_commit_batches_until_threshold_or_sync() {
        let store = hybridcs_faults::MemStore::new();
        let image = store.clone();
        let mut journal = Journal::new(Box::new(store), 1024);
        journal.append(&Record::Flush).unwrap();
        assert_eq!(image.snapshot().len(), 0, "buffered, not yet synced");
        journal.sync().unwrap();
        let after_sync = image.snapshot().len();
        assert!(after_sync > 0);
        // A large record blows straight through the threshold.
        journal
            .append(&Record::Push {
                id: 1,
                packet: vec![0; 2048],
            })
            .unwrap();
        assert!(image.snapshot().len() > after_sync, "auto-synced");
    }

    #[test]
    fn fingerprints_distinguish_configs_but_not_throughput_knobs() {
        let base = GatewayConfig::default();
        let more_workers = GatewayConfig { workers: 4, ..base };
        let wider_batches = GatewayConfig {
            max_decode_batch: 64,
            ..base
        };
        let no_batching = GatewayConfig {
            max_decode_batch: 1,
            ..base
        };
        let more_shards = GatewayConfig { shards: 16, ..base };
        assert_eq!(config_fingerprint(&base), config_fingerprint(&more_workers));
        assert_eq!(
            config_fingerprint(&base),
            config_fingerprint(&wider_batches)
        );
        assert_eq!(config_fingerprint(&base), config_fingerprint(&no_batching));
        assert_ne!(config_fingerprint(&base), config_fingerprint(&more_shards));
    }
}
