//! The gateway orchestrator: demux, admission, batching, worker pool,
//! and the crash-safety layer (journal, checkpoint, recovery).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use hybridcs_coding::{LowResCodec, Payload};
use hybridcs_core::{
    DecodeLadder, LadderJob, LadderOutcome, ParsedSections, SessionLedger, SupervisedWindow,
    SystemConfig,
};
use hybridcs_faults::{JournalStore, NackOutcome, RetryQueue};
use hybridcs_obs::flight::{emit_with, set_context};
use hybridcs_obs::{EventContext, EventKind};
use hybridcs_solver::SolverWorkspace;

use crate::journal::{
    self, config_fingerprint, shape_fingerprint, CheckpointState, Journal, QueuedState, Record,
    RecoveryReport, SessionState,
};
use crate::session::{Queued, Session, SessionPhase, Slot};
use crate::{GatewayConfig, GatewayError};

/// One shape-keyed entry in the shared operator cache.
struct LadderEntry {
    system: SystemConfig,
    codec: LowResCodec,
    ladder: Arc<DecodeLadder>,
}

/// One queued decode job. Everything a worker needs is owned or `Arc`ed
/// here; workers never touch session state.
struct Job {
    session: u64,
    shard: usize,
    sequence: Option<u32>,
    measurements: Option<Vec<f64>>,
    lowres: Option<Payload>,
    skip_solvers: bool,
    ladder: Arc<DecodeLadder>,
    /// Deterministic logical ingest stamp (flight-event attribution).
    logical: u64,
    /// Wall-clock ingest instant — the frame-to-commit latency origin.
    ingest_at: Instant,
    /// Instant the window left the reorder buffer for the batch; the
    /// solve-queue latency origin.
    released_at: Instant,
}

impl Job {
    fn event_context(&self) -> EventContext {
        EventContext {
            logical: self.logical,
            session: self.session,
            shard: self.shard as u16,
        }
    }
}

/// The batch being assembled between flushes.
struct Batch {
    /// Jobs in global ingest order — the commit order.
    jobs: Vec<Job>,
    /// Solver-admitted jobs per shard (the bounded queue depths).
    solver_depth: Vec<usize>,
    /// Jobs queued with `skip_solvers` this batch.
    shed: usize,
}

impl Batch {
    fn new(shards: usize) -> Self {
        Batch {
            jobs: Vec::new(),
            solver_depth: vec![0; shards],
            shed: 0,
        }
    }
}

/// What one [`Gateway::flush`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GatewayReport {
    /// Windows committed to session ledgers.
    pub committed: usize,
    /// Windows that ran the full solver ladder.
    pub full_solves: usize,
    /// Windows shed to the cheap rung (quota or queue pressure).
    pub shed: usize,
}

/// The multi-session ingest and batched-decode service; see the
/// [crate docs](crate) for the architecture and determinism contract.
pub struct Gateway {
    config: GatewayConfig,
    ladders: Vec<LadderEntry>,
    sessions: BTreeMap<u64, Session>,
    batch: Batch,
    /// One solver-buffer arena per shard, reused across flushes so
    /// steady-state decodes never allocate inside the solver loops. A shard
    /// is owned by exactly one worker per flush, so each arena moves into
    /// that worker's closure and back — no locking.
    workspaces: Vec<SolverWorkspace>,
    /// The deterministic logical clock: ticks once per ingest-tier call
    /// (`push`/`notify_lost`/`close`) on the caller thread, so frame
    /// stamps — and therefore flight-event dump order — are independent
    /// of worker count and scheduling.
    clock: u64,
    /// The write-ahead journal, when durability is enabled (see
    /// [`Gateway::with_journal`] / [`Gateway::recover`]).
    journal: Option<Journal>,
    /// Command records journaled (or, without a journal, API calls made) —
    /// the replay cursor checkpoints are positioned by.
    applied: u64,
    /// `applied` at the last checkpoint (drives `checkpoint_every`).
    last_checkpoint_applied: u64,
}

impl Gateway {
    /// A gateway with no sessions.
    ///
    /// # Errors
    ///
    /// Returns [`GatewayError::Config`] for an invalid policy.
    pub fn new(config: GatewayConfig) -> Result<Self, GatewayError> {
        config.validate()?;
        Ok(Gateway {
            config,
            ladders: Vec::new(),
            sessions: BTreeMap::new(),
            batch: Batch::new(config.shards),
            workspaces: (0..config.shards).map(|_| SolverWorkspace::new()).collect(),
            clock: 0,
            journal: None,
            applied: 0,
            last_checkpoint_applied: 0,
        })
    }

    /// A gateway journaling every API call to `store` (which must be
    /// empty — resume an existing journal with [`Gateway::recover`]).
    /// The genesis record is written and synced before this returns.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Config`] for an invalid policy,
    /// [`GatewayError::Recovery`] for a non-empty store, or
    /// [`GatewayError::Journal`] when the store fails.
    pub fn with_journal(
        config: GatewayConfig,
        store: Box<dyn JournalStore + Send>,
    ) -> Result<Self, GatewayError> {
        config.validate()?;
        if !store.is_empty() {
            return Err(GatewayError::Recovery(
                "journal store is not empty; use Gateway::recover",
            ));
        }
        let mut journal = Journal::new(store, config.journal_group_bytes);
        journal
            .append(&Record::Genesis {
                config_fp: config_fingerprint(&config),
            })
            .map_err(GatewayError::Journal)?;
        journal.sync().map_err(GatewayError::Journal)?;
        let mut gateway = Self::new(config)?;
        gateway.journal = Some(journal);
        Ok(gateway)
    }

    /// The active policy.
    #[must_use]
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// The current logical clock value (ticks per ingest-tier call).
    #[must_use]
    pub fn logical_clock(&self) -> u64 {
        self.clock
    }

    /// Registers a session: pins it to a shard (SplitMix64 of the id) and
    /// binds it to the shared decode ladder for its operator shape,
    /// building that ladder only if the `(config, codec)` pair was never
    /// seen before. A *closed* session's id may be reused: the handshake
    /// replaces it with entirely fresh state — no concealment memory, ARQ
    /// budget, or degradation counters are inherited.
    ///
    /// # Errors
    ///
    /// [`GatewayError::DuplicateHandshake`] when the id is live
    /// (handshaken and not closed), or [`GatewayError::Core`] when
    /// operator setup fails.
    pub fn handshake(
        &mut self,
        id: u64,
        system: &SystemConfig,
        codec: LowResCodec,
    ) -> Result<(), GatewayError> {
        if self.journal.is_some() {
            let shape_fp = shape_fingerprint(system, &codec);
            self.journal_append(Record::Handshake { id, shape_fp })?;
        }
        self.applied += 1;
        self.handshake_inner(id, system, codec)
    }

    fn handshake_inner(
        &mut self,
        id: u64,
        system: &SystemConfig,
        codec: LowResCodec,
    ) -> Result<(), GatewayError> {
        let registry = hybridcs_obs::global();
        match self.sessions.get(&id) {
            Some(session) if session.phase != SessionPhase::Closed => {
                registry
                    .counter(
                        "gateway_handshake_rejected_total",
                        &[("reason", "duplicate")],
                    )
                    .inc();
                return Err(GatewayError::DuplicateHandshake(id));
            }
            Some(_) => {
                registry.counter("gateway_sessions_reused_total", &[]).inc();
            }
            None => {}
        }
        let shape_fp = shape_fingerprint(system, &codec);
        let ladder = self.ladder_for(system, codec)?;
        let shard = usize::try_from(hybridcs_rand::mix(id) % self.config.shards as u64)
            .expect("shard index fits usize");
        let ledger = SessionLedger::new(system.window, self.config.supervisor.max_conceal_reuse);
        let arq = RetryQueue::new(self.config.arq);
        self.sessions
            .insert(id, Session::new(shard, ladder, shape_fp, ledger, arq));
        registry.counter("gateway_sessions_total", &[]).inc();
        self.refresh_session_gauge();
        Ok(())
    }

    /// Looks up (or builds) the shared ladder for one operator shape.
    fn ladder_for(
        &mut self,
        system: &SystemConfig,
        codec: LowResCodec,
    ) -> Result<Arc<DecodeLadder>, GatewayError> {
        if let Some(entry) = self
            .ladders
            .iter()
            .find(|e| e.system == *system && e.codec == codec)
        {
            return Ok(Arc::clone(&entry.ladder));
        }
        let ladder = Arc::new(DecodeLadder::new(
            system,
            codec.clone(),
            self.config.supervisor.watchdog,
        )?);
        hybridcs_obs::global()
            .counter("gateway_ladders_built_total", &[])
            .inc();
        self.ladders.push(LadderEntry {
            system: system.clone(),
            codec,
            ladder: Arc::clone(&ladder),
        });
        Ok(ladder)
    }

    /// Ingests one wire frame for `id`. Wire noise (garbled header,
    /// duplicate or late frame) is counted and absorbed, never an error.
    /// Detected sequence gaps are nacked through the session's ARQ; poll
    /// [`take_nacks`](Gateway::take_nacks) to collect retransmission
    /// requests. May auto-flush when the batch reaches capacity.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownSession`] or [`GatewayError::SessionClosed`],
    /// plus [`GatewayError::Journal`] when journaling is on and the store
    /// fails.
    pub fn push(&mut self, id: u64, packet: &[u8]) -> Result<(), GatewayError> {
        if self.journal.is_some() {
            self.journal_append(Record::Push {
                id,
                packet: packet.to_vec(),
            })?;
        }
        self.applied += 1;
        let result = self.push_inner(id, packet);
        self.maybe_checkpoint()?;
        result
    }

    fn push_inner(&mut self, id: u64, packet: &[u8]) -> Result<(), GatewayError> {
        let _span = hybridcs_obs::span!("gateway.push");
        let started = Instant::now();
        self.clock += 1;
        let logical = self.clock;
        let registry = hybridcs_obs::global();
        let Some(session) = self.sessions.get_mut(&id) else {
            registry.counter("gateway_unknown_session_total", &[]).inc();
            return Err(GatewayError::UnknownSession(id));
        };
        if session.phase == SessionPhase::Closed {
            registry.counter("gateway_closed_session_total", &[]).inc();
            return Err(GatewayError::SessionClosed(id));
        }
        let ctx = EventContext {
            logical,
            session: id,
            shard: session.shard as u16,
        };
        let parsed = session.ladder.parse(Some(packet));
        match parsed.sequence {
            None => {
                // Unusable header: it still occupies a stream position
                // (the sensor sent *something*), so slot it at the next
                // unseen sequence and let the ladder work the surviving
                // sections.
                registry
                    .counter("gateway_frames_total", &[("result", "garbled")])
                    .inc();
                let slot_seq = session.next_unseen();
                emit_with(ctx, EventKind::Ingest, 1, u64::from(slot_seq));
                session.reorder.insert(
                    slot_seq,
                    Queued {
                        slot: Slot::Frame(parsed),
                        logical,
                        at: started,
                    },
                );
                session.highest_seen = Some(slot_seq);
            }
            Some(seq) => {
                if seq < session.next_release || session.reorder.contains_key(&seq) {
                    // Already released or already buffered (including
                    // declared-lost): a late duplicate. Count and drop.
                    registry
                        .counter("gateway_frames_total", &[("result", "late")])
                        .inc();
                    emit_with(ctx, EventKind::Ingest, 2, u64::from(seq));
                    return Ok(());
                }
                registry
                    .counter("gateway_frames_total", &[("result", "accepted")])
                    .inc();
                emit_with(ctx, EventKind::Ingest, 0, u64::from(seq));
                if session.nacked.remove(&seq) {
                    session.arq.resolve(seq);
                    emit_with(ctx, EventKind::ArqVerdict, 1, u64::from(seq));
                }
                // Everything between the highest frame seen and this one
                // is now a known hole: start the nack cycle for each.
                for gap in session.next_unseen()..seq {
                    Self::open_gap(session, id, logical, gap);
                }
                session.highest_seen = Some(session.highest_seen.map_or(seq, |h| h.max(seq)));
                session.reorder.insert(
                    seq,
                    Queued {
                        slot: Slot::Frame(parsed),
                        logical,
                        at: started,
                    },
                );
            }
        }
        if session.phase == SessionPhase::Handshake {
            session.phase = SessionPhase::Streaming;
            emit_with(
                ctx,
                EventKind::StageTransition,
                SessionPhase::Streaming.code(),
                0,
            );
        }
        self.release_ready(id);
        registry
            .histogram("gateway_stage_seconds", &[("stage", "ingest")])
            .record(started.elapsed().as_secs_f64());
        if self.batch.jobs.len() >= self.config.batch_capacity {
            // Capacity auto-flush is NOT journaled: replaying the pushes
            // reproduces it deterministically, so a Flush record here
            // would double-flush on replay.
            self.flush_inner()?;
        }
        Ok(())
    }

    /// Reports that a nacked retransmission for `sequence` was itself
    /// lost (the driver's stand-in for a retransmission timeout). Either
    /// re-nacks it or — once ARQ limits are spent — declares it lost so
    /// the window concedes to concealment.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownSession`] or [`GatewayError::SessionClosed`],
    /// plus [`GatewayError::Journal`] when journaling is on and the store
    /// fails.
    pub fn notify_lost(&mut self, id: u64, sequence: u32) -> Result<(), GatewayError> {
        if self.journal.is_some() {
            self.journal_append(Record::NotifyLost { id, sequence })?;
        }
        self.applied += 1;
        let result = self.notify_lost_inner(id, sequence);
        self.maybe_checkpoint()?;
        result
    }

    fn notify_lost_inner(&mut self, id: u64, sequence: u32) -> Result<(), GatewayError> {
        self.clock += 1;
        let logical = self.clock;
        let Some(session) = self.sessions.get_mut(&id) else {
            hybridcs_obs::global()
                .counter("gateway_unknown_session_total", &[])
                .inc();
            return Err(GatewayError::UnknownSession(id));
        };
        if session.phase == SessionPhase::Closed {
            return Err(GatewayError::SessionClosed(id));
        }
        if sequence < session.next_release || session.reorder.contains_key(&sequence) {
            return Ok(()); // stale notification
        }
        Self::open_gap(session, id, logical, sequence);
        self.release_ready(id);
        if self.batch.jobs.len() >= self.config.batch_capacity {
            self.flush_inner()?;
        }
        Ok(())
    }

    /// Drains the retransmission requests the session's ARQ has queued.
    /// Each drained sequence consumes one unit of retry budget and one
    /// per-frame attempt; the caller is expected to retransmit it (and
    /// call [`notify_lost`](Gateway::notify_lost) if that fails).
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownSession`], plus [`GatewayError::Journal`]
    /// when journaling is on and the store fails.
    pub fn take_nacks(&mut self, id: u64) -> Result<Vec<u32>, GatewayError> {
        if self.journal.is_some() {
            self.journal_append(Record::TakeNacks { id })?;
        }
        self.applied += 1;
        let result = self.take_nacks_inner(id);
        // Draining consumed ARQ budget the caller will now act on
        // (retransmissions): observed ⇒ durable.
        self.journal_sync()?;
        result
    }

    fn take_nacks_inner(&mut self, id: u64) -> Result<Vec<u32>, GatewayError> {
        let Some(session) = self.sessions.get_mut(&id) else {
            return Err(GatewayError::UnknownSession(id));
        };
        let mut out = Vec::new();
        while let Some(seq) = session.arq.next_attempt() {
            out.push(seq);
        }
        if !out.is_empty() {
            hybridcs_obs::global()
                .counter("gateway_nacks_sent_total", &[])
                .add(out.len() as u64);
        }
        Ok(out)
    }

    /// Nacks a fresh hole, or declares it lost when ARQ limits say no.
    fn open_gap(session: &mut Session, id: u64, logical: u64, sequence: u32) {
        let ctx = EventContext {
            logical,
            session: id,
            shard: session.shard as u16,
        };
        match session.arq.nack(sequence) {
            NackOutcome::Queued => {
                session.nacked.insert(sequence);
                emit_with(ctx, EventKind::ArqVerdict, 0, u64::from(sequence));
            }
            _ => {
                session.nacked.remove(&sequence);
                // Declared lost: release the frame's slice of the
                // retransmission budget and its attempt history — it will
                // conceal, never retransmit.
                session.arq.abandon(sequence);
                session.reorder.insert(
                    sequence,
                    Queued {
                        slot: Slot::Lost,
                        logical,
                        at: Instant::now(),
                    },
                );
                hybridcs_obs::global()
                    .counter("gateway_declared_lost_total", &[])
                    .inc();
                emit_with(ctx, EventKind::ArqVerdict, 2, u64::from(sequence));
            }
        }
    }

    /// Releases the contiguous prefix of the reorder buffer into the
    /// batch, applying admission control per released window.
    fn release_ready(&mut self, id: u64) {
        let session = self.sessions.get_mut(&id).expect("caller checked session");
        let registry = hybridcs_obs::global();
        let phase_before = session.phase;
        while let Some(queued) = session.reorder.remove(&session.next_release) {
            let Queued { slot, logical, at } = queued;
            let seq = session.next_release;
            session.next_release = seq.wrapping_add(1);
            let epoch = session.window_index / u64::from(self.config.admit_window);
            if epoch != session.epoch {
                session.epoch = epoch;
                session.admitted_in_epoch = 0;
            }
            session.window_index += 1;
            let (sequence, measurements, lowres) = match slot {
                Slot::Frame(parsed) => (parsed.sequence, parsed.measurements, parsed.lowres),
                Slot::Lost => (None, None, None),
            };
            if let Some(s) = sequence {
                session.ledger.track_sequence(s);
            }
            let ctx = EventContext {
                logical,
                session: id,
                shard: session.shard as u16,
            };
            let mut skip_solvers = false;
            if measurements.is_some() {
                if session.admitted_in_epoch >= self.config.admit_quota {
                    skip_solvers = true;
                    registry
                        .counter("gateway_shed_total", &[("kind", "quota")])
                        .inc();
                    emit_with(ctx, EventKind::Shed, 0, u64::from(seq));
                } else if self.batch.solver_depth[session.shard] >= self.config.max_shard_queue {
                    skip_solvers = true;
                    registry
                        .counter("gateway_shed_total", &[("kind", "queue")])
                        .inc();
                    emit_with(ctx, EventKind::Shed, 1, u64::from(seq));
                } else {
                    session.admitted_in_epoch += 1;
                    self.batch.solver_depth[session.shard] += 1;
                }
            }
            if skip_solvers {
                self.batch.shed += 1;
            }
            let released_at = Instant::now();
            // Repair latency: ingest (or loss declaration) → release out
            // of the reorder buffer. Near-zero for in-order streams.
            registry
                .histogram("gateway_stage_seconds", &[("stage", "repair")])
                .record(released_at.duration_since(at).as_secs_f64());
            self.batch.jobs.push(Job {
                session: id,
                shard: session.shard,
                sequence,
                measurements,
                lowres,
                skip_solvers,
                ladder: Arc::clone(&session.ladder),
                logical,
                ingest_at: at,
                released_at,
            });
        }
        session.refresh_phase();
        if session.phase != phase_before {
            emit_with(
                EventContext {
                    logical: self.clock,
                    session: id,
                    shard: session.shard as u16,
                },
                EventKind::StageTransition,
                session.phase.code(),
                0,
            );
        }
    }

    /// Windows queued and not yet flushed.
    #[must_use]
    pub fn pending_windows(&self) -> usize {
        self.batch.jobs.len()
    }

    /// The session's lifecycle phase, if it exists.
    #[must_use]
    pub fn phase(&self, id: u64) -> Option<SessionPhase> {
        self.sessions.get(&id).map(|s| s.phase)
    }

    /// Runs the queued batch: solves fan out to the worker pool (worker
    /// `j` owns every shard whose index ≡ `j` mod `workers`; the solve
    /// half of the ladder is pure), then every window commits to its
    /// session ledger on this thread **in global ingest order** — the
    /// batch-synchronous flush that makes outputs independent of worker
    /// count and scheduling.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Journal`] when journaling is on and the store
    /// fails; otherwise currently infallible after construction.
    pub fn flush(&mut self) -> Result<GatewayReport, GatewayError> {
        if self.journal.is_some() {
            self.journal_append(Record::Flush)?;
        }
        self.applied += 1;
        let result = self.flush_inner();
        // Flush is a delivery point (outputs become drainable): sync the
        // group-commit buffer before the caller can observe them.
        self.journal_sync()?;
        self.maybe_checkpoint()?;
        result
    }

    fn flush_inner(&mut self) -> Result<GatewayReport, GatewayError> {
        let _span = hybridcs_obs::span!("gateway.flush");
        if self.batch.jobs.is_empty() {
            return Ok(GatewayReport::default());
        }
        let registry = hybridcs_obs::global();
        for depth in &self.batch.solver_depth {
            registry
                .histogram("gateway_shard_queue_depth", &[])
                .record(*depth as f64);
        }
        let workers = self.config.workers;
        let max_decode_batch = self.config.max_decode_batch;
        let jobs = &self.batch.jobs;
        // Each worker takes ownership of the workspaces of the shards it
        // owns this flush (shard ≡ worker mod workers) and returns them when
        // done, so the warmed buffer pools persist across flushes.
        let mut shard_workspaces: Vec<Vec<(usize, SolverWorkspace)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (shard, ws) in std::mem::take(&mut self.workspaces).into_iter().enumerate() {
            shard_workspaces[shard % workers].push((shard, ws));
        }
        // Fan out: each worker walks the job list in order, solving only
        // its shards. Results carry the job index for exact scatter, plus
        // the solve and queue-wait durations for the stage histograms.
        let obs_on = hybridcs_obs::enabled();
        let mut solved: Vec<Option<(LadderOutcome, f64, f64)>> = vec![None; jobs.len()];
        let mut returned: Vec<(usize, SolverWorkspace)> = Vec::with_capacity(self.config.shards);
        std::thread::scope(|scope| {
            let handles: Vec<_> = shard_workspaces
                .into_iter()
                .enumerate()
                .map(|(worker, mut owned)| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        // This worker's jobs, grouped per (shard, ladder):
                        // windows sharing operator state solve as one
                        // lockstep batch, so the packed-sign and wavelet
                        // kernels amortize across the group. A group never
                        // crosses shards (one workspace per shard), and
                        // chunking at `max_decode_batch` bounds panel width.
                        let mut groups: Vec<(usize, &Arc<DecodeLadder>, Vec<usize>)> = Vec::new();
                        for (index, job) in jobs.iter().enumerate() {
                            if job.shard % workers != worker {
                                continue;
                            }
                            match groups.iter_mut().find(|(shard, ladder, _)| {
                                *shard == job.shard && Arc::ptr_eq(ladder, &job.ladder)
                            }) {
                                Some((_, _, members)) => members.push(index),
                                None => groups.push((job.shard, &job.ladder, vec![index])),
                            }
                        }
                        for (shard, ladder, members) in groups {
                            let ws = &mut owned
                                .iter_mut()
                                .find(|(owned_shard, _)| *owned_shard == shard)
                                .expect("worker owns its shards' workspaces")
                                .1;
                            for chunk in members.chunks(max_decode_batch) {
                                let started = Instant::now();
                                // Flight contexts ride inside the jobs: a
                                // batched solve interleaves windows, so the
                                // ladder scopes each window's watchdog
                                // events itself.
                                let ladder_jobs: Vec<LadderJob<'_>> = chunk
                                    .iter()
                                    .map(|&index| {
                                        let job = &jobs[index];
                                        LadderJob {
                                            measurements: job.measurements.as_deref(),
                                            lowres: job.lowres.as_ref(),
                                            skip_solvers: job.skip_solvers,
                                            context: obs_on.then(|| job.event_context()),
                                        }
                                    })
                                    .collect();
                                let outcomes = ladder.solve_batch_with(&ladder_jobs, ws);
                                let seconds = started.elapsed().as_secs_f64() / chunk.len() as f64;
                                for (&index, outcome) in chunk.iter().zip(outcomes) {
                                    let queued = started
                                        .duration_since(jobs[index].released_at)
                                        .as_secs_f64();
                                    out.push((index, outcome, seconds, queued));
                                }
                            }
                        }
                        (out, owned)
                    })
                })
                .collect();
            for handle in handles {
                let (out, owned) = handle.join().expect("gateway worker panicked");
                for (index, outcome, seconds, queued) in out {
                    solved[index] = Some((outcome, seconds, queued));
                }
                returned.extend(owned);
            }
        });
        self.workspaces = {
            let mut restored: Vec<SolverWorkspace> = (0..self.config.shards)
                .map(|_| SolverWorkspace::new())
                .collect();
            for (shard, ws) in returned {
                restored[shard] = ws;
            }
            restored
        };
        // Commit on this thread in ingest order.
        let jobs = std::mem::take(&mut self.batch.jobs);
        let shed = std::mem::take(&mut self.batch.shed);
        self.batch.solver_depth = vec![0; self.config.shards];
        let mut report = GatewayReport {
            committed: 0,
            full_solves: 0,
            shed,
        };
        for (job, slot) in jobs.into_iter().zip(solved) {
            let (outcome, seconds, queued) = slot.expect("every job was solved");
            registry
                .histogram("gateway_stage_seconds", &[("stage", "queue")])
                .record(queued);
            registry
                .histogram("gateway_stage_seconds", &[("stage", "solve")])
                .record(seconds);
            let started = Instant::now();
            let session = self
                .sessions
                .get_mut(&job.session)
                .expect("sessions outlive queued jobs");
            if obs_on {
                // Attribute the ledger's demotion/commit flight events.
                set_context(Some(job.event_context()));
            }
            let window = session.ledger.commit(job.sequence, outcome);
            session.outputs.push(window);
            registry
                .histogram("gateway_stage_seconds", &[("stage", "commit")])
                .record(started.elapsed().as_secs_f64());
            // The tentpole metric: wire ingest → ledger commit, end to end
            // through reorder, repair, queueing, and the solve.
            registry
                .histogram("gateway_frame_to_commit_seconds", &[])
                .record(job.ingest_at.elapsed().as_secs_f64());
            report.committed += 1;
            if !job.skip_solvers && job.measurements.is_some() {
                report.full_solves += 1;
            }
        }
        if obs_on {
            set_context(None);
        }
        registry.counter("gateway_batches_total", &[]).inc();
        registry
            .counter("gateway_windows_committed_total", &[])
            .add(report.committed as u64);
        Ok(report)
    }

    /// Drains the session's committed windows (in stream order). Windows
    /// only appear here after a [`flush`](Gateway::flush).
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownSession`], plus [`GatewayError::Journal`]
    /// when journaling is on and the store fails.
    pub fn take_outputs(&mut self, id: u64) -> Result<Vec<SupervisedWindow>, GatewayError> {
        if self.journal.is_some() {
            self.journal_append(Record::TakeOutputs { id })?;
        }
        self.applied += 1;
        let result = self.take_outputs_inner(id);
        // The windows leave the gateway now: observed ⇒ durable.
        self.journal_sync()?;
        result
    }

    fn take_outputs_inner(&mut self, id: u64) -> Result<Vec<SupervisedWindow>, GatewayError> {
        let Some(session) = self.sessions.get_mut(&id) else {
            return Err(GatewayError::UnknownSession(id));
        };
        Ok(std::mem::take(&mut session.outputs))
    }

    /// Closes a session: every outstanding hole below the highest frame
    /// seen is declared lost (it will conceal), in-flight work is flushed,
    /// and the remaining outputs are returned. Further frames for the id
    /// are [`GatewayError::SessionClosed`]; a later
    /// [`handshake`](Gateway::handshake) may reuse the id with entirely
    /// fresh state. On close, the session's ledger counters (concealment
    /// memory, staleness) are reset and any remaining ARQ reservations
    /// are released.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownSession`] or [`GatewayError::SessionClosed`],
    /// plus [`GatewayError::Journal`] when journaling is on and the store
    /// fails.
    pub fn close(&mut self, id: u64) -> Result<Vec<SupervisedWindow>, GatewayError> {
        if self.journal.is_some() {
            self.journal_append(Record::Close { id })?;
        }
        self.applied += 1;
        let result = self.close_inner(id);
        // The trailing windows leave the gateway now: observed ⇒ durable.
        self.journal_sync()?;
        self.maybe_checkpoint()?;
        result
    }

    fn close_inner(&mut self, id: u64) -> Result<Vec<SupervisedWindow>, GatewayError> {
        let registry = hybridcs_obs::global();
        self.clock += 1;
        let logical = self.clock;
        {
            let Some(session) = self.sessions.get_mut(&id) else {
                return Err(GatewayError::UnknownSession(id));
            };
            if session.phase == SessionPhase::Closed {
                return Err(GatewayError::SessionClosed(id));
            }
            let ctx = EventContext {
                logical,
                session: id,
                shard: session.shard as u16,
            };
            if let Some(highest) = session.highest_seen {
                for seq in session.next_release..=highest {
                    session.reorder.entry(seq).or_insert_with(|| {
                        registry.counter("gateway_declared_lost_total", &[]).inc();
                        emit_with(ctx, EventKind::ArqVerdict, 2, u64::from(seq));
                        Queued {
                            slot: Slot::Lost,
                            logical,
                            at: Instant::now(),
                        }
                    });
                }
            }
        }
        self.release_ready(id);
        self.flush_inner()?;
        let session = self.sessions.get_mut(&id).expect("session still present");
        session.phase = SessionPhase::Closed;
        // Release every outstanding ARQ reservation and reset the ledger's
        // degradation counters, so nothing stale survives into a reuse of
        // this session id.
        let abandoned: Vec<u32> = session.nacked.iter().copied().collect();
        for seq in abandoned {
            session.arq.abandon(seq);
        }
        session.ledger.reset();
        session.nacked.clear();
        session.reorder.clear();
        emit_with(
            EventContext {
                logical,
                session: id,
                shard: session.shard as u16,
            },
            EventKind::StageTransition,
            SessionPhase::Closed.code(),
            0,
        );
        let outputs = std::mem::take(&mut session.outputs);
        self.refresh_session_gauge();
        Ok(outputs)
    }

    // -- crash safety: journal, checkpoint, recovery ----------------------

    /// Appends one record to the journal (no-op without one).
    fn journal_append(&mut self, record: Record) -> Result<(), GatewayError> {
        if let Some(journal) = self.journal.as_mut() {
            journal.append(&record).map_err(GatewayError::Journal)?;
        }
        Ok(())
    }

    /// Forces the group-commit buffer to the store (no-op without a
    /// journal).
    fn journal_sync(&mut self) -> Result<(), GatewayError> {
        if let Some(journal) = self.journal.as_mut() {
            journal.sync().map_err(GatewayError::Journal)?;
        }
        Ok(())
    }

    /// Writes a checkpoint if one is due and the batch is quiescent.
    fn maybe_checkpoint(&mut self) -> Result<(), GatewayError> {
        if self.journal.is_none() || !self.batch.jobs.is_empty() {
            return Ok(());
        }
        if self.applied.saturating_sub(self.last_checkpoint_applied) < self.config.checkpoint_every
        {
            return Ok(());
        }
        self.checkpoint_now()
    }

    /// Appends a snapshot checkpoint to the journal, first flushing any
    /// queued batch (a journaled flush, so replay stays faithful).
    /// Checkpoints bound recovery's replay work; the policy knob
    /// `checkpoint_every` writes them automatically. No-op without a
    /// journal.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Journal`] when the store fails.
    pub fn checkpoint(&mut self) -> Result<(), GatewayError> {
        if self.journal.is_none() {
            return Ok(());
        }
        if !self.batch.jobs.is_empty() {
            self.flush()?;
            if self.last_checkpoint_applied == self.applied {
                return Ok(()); // the flush already checkpointed
            }
        }
        self.checkpoint_now()
    }

    fn checkpoint_now(&mut self) -> Result<(), GatewayError> {
        debug_assert!(self.batch.jobs.is_empty(), "checkpoints are quiescent");
        let state = self.snapshot();
        let at = self.applied;
        if let Some(journal) = self.journal.as_mut() {
            journal
                .append(&Record::Checkpoint(state))
                .map_err(GatewayError::Journal)?;
            journal.sync().map_err(GatewayError::Journal)?;
        }
        self.last_checkpoint_applied = at;
        hybridcs_obs::global()
            .counter("gateway_checkpoints_total", &[])
            .inc();
        emit_with(
            EventContext {
                logical: self.clock,
                session: 0,
                shard: 0,
            },
            EventKind::Checkpoint,
            0,
            at,
        );
        Ok(())
    }

    /// Serializes the full mutable state (see `journal.rs` for the wire
    /// format). Wall-clock instants are telemetry-only and not captured.
    fn snapshot(&self) -> CheckpointState {
        CheckpointState {
            config_fp: config_fingerprint(&self.config),
            clock: self.clock,
            applied: self.applied,
            sessions: self
                .sessions
                .iter()
                .map(|(id, session)| {
                    let ledger = session.ledger.state();
                    let (last_good, consecutive_concealed, expected_sequence) =
                        journal::ledger_to_parts(&ledger);
                    let arq = session.arq.state();
                    SessionState {
                        id: *id,
                        shape_fp: session.shape_fp,
                        phase: session.phase.code(),
                        last_good,
                        consecutive_concealed,
                        expected_sequence,
                        arq_pending: arq.pending,
                        arq_attempts: arq.attempts,
                        arq_budget_left: arq.budget_left,
                        nacked: session.nacked.iter().copied().collect(),
                        reorder: session
                            .reorder
                            .iter()
                            .map(|(seq, queued)| {
                                (
                                    *seq,
                                    QueuedState {
                                        logical: queued.logical,
                                        frame: match &queued.slot {
                                            Slot::Lost => None,
                                            Slot::Frame(parsed) => Some((
                                                parsed.sequence,
                                                parsed.measurements.clone(),
                                                parsed.lowres.as_ref().map(|lr| {
                                                    (lr.bytes.clone(), lr.bit_len as u64)
                                                }),
                                            )),
                                        },
                                    },
                                )
                            })
                            .collect(),
                        next_release: session.next_release,
                        highest_seen: session.highest_seen,
                        window_index: session.window_index,
                        epoch: session.epoch,
                        admitted_in_epoch: session.admitted_in_epoch,
                        outputs: session
                            .outputs
                            .iter()
                            .map(journal::window_to_state)
                            .collect(),
                    }
                })
                .collect(),
        }
    }

    /// Finds the shape for a journaled fingerprint in the recovery table.
    fn find_shape(
        shapes: &[(SystemConfig, LowResCodec)],
        shape_fp: u64,
    ) -> Result<&(SystemConfig, LowResCodec), GatewayError> {
        shapes
            .iter()
            .find(|(system, codec)| shape_fingerprint(system, codec) == shape_fp)
            .ok_or(GatewayError::Recovery(
                "journal names an operator shape missing from the recovery shape table",
            ))
    }

    /// Restores a decoded checkpoint into this (fresh) gateway.
    fn restore_checkpoint(
        &mut self,
        state: &CheckpointState,
        shapes: &[(SystemConfig, LowResCodec)],
    ) -> Result<(), GatewayError> {
        self.clock = state.clock;
        self.applied = state.applied;
        self.last_checkpoint_applied = state.applied;
        self.sessions.clear();
        for s in &state.sessions {
            let (system, codec) = Self::find_shape(shapes, s.shape_fp)?;
            let ladder = self.ladder_for(system, codec.clone())?;
            let shard = usize::try_from(hybridcs_rand::mix(s.id) % self.config.shards as u64)
                .expect("shard index fits usize");
            let ledger =
                SessionLedger::new(system.window, self.config.supervisor.max_conceal_reuse);
            let arq = RetryQueue::new(self.config.arq);
            let mut session = Session::new(shard, ladder, s.shape_fp, ledger, arq);
            session.phase = SessionPhase::from_code(s.phase).ok_or(GatewayError::Recovery(
                "checkpoint carries an unknown session phase",
            ))?;
            session.ledger.restore(journal::ledger_from_parts(
                s.last_good.clone(),
                s.consecutive_concealed,
                s.expected_sequence,
            ));
            session.arq.restore(journal::arq_from_parts(
                s.arq_pending.clone(),
                s.arq_attempts.clone(),
                s.arq_budget_left,
            ));
            session.nacked = s.nacked.iter().copied().collect();
            let restored_at = Instant::now();
            for (seq, queued) in &s.reorder {
                let slot = match &queued.frame {
                    None => Slot::Lost,
                    Some((sequence, measurements, lowres)) => Slot::Frame(ParsedSections {
                        sequence: *sequence,
                        measurements: measurements.clone(),
                        lowres: lowres.as_ref().map(|(bytes, bit_len)| {
                            journal::payload_from_parts(bytes.clone(), *bit_len)
                        }),
                    }),
                };
                session.reorder.insert(
                    *seq,
                    Queued {
                        slot,
                        logical: queued.logical,
                        // Wall-clock stamps don't survive a crash; latency
                        // telemetry for restored windows restarts here.
                        at: restored_at,
                    },
                );
            }
            session.next_release = s.next_release;
            session.highest_seen = s.highest_seen;
            session.window_index = s.window_index;
            session.epoch = s.epoch;
            session.admitted_in_epoch = s.admitted_in_epoch;
            session.outputs = s
                .outputs
                .iter()
                .map(|w| {
                    journal::window_from_state(w.clone()).map_err(|_| {
                        GatewayError::Recovery("checkpoint carries an undecodable output window")
                    })
                })
                .collect::<Result<_, _>>()?;
            self.sessions.insert(s.id, session);
        }
        Ok(())
    }

    /// Re-applies one journaled command through the non-journaling paths.
    /// Command-level errors (unknown session, closed session) replay
    /// deterministically and are swallowed, exactly as the original
    /// caller swallowed (or observed) them.
    fn replay(
        &mut self,
        record: &Record,
        shapes: &[(SystemConfig, LowResCodec)],
    ) -> Result<(), GatewayError> {
        match record {
            Record::Handshake { id, shape_fp } => {
                let duplicate = self
                    .sessions
                    .get(id)
                    .is_some_and(|s| s.phase != SessionPhase::Closed);
                if !duplicate {
                    let (system, codec) = Self::find_shape(shapes, *shape_fp)?;
                    let codec = codec.clone();
                    let system = system.clone();
                    let _ = self.handshake_inner(*id, &system, codec);
                }
            }
            Record::Push { id, packet } => {
                let _ = self.push_inner(*id, packet);
            }
            Record::NotifyLost { id, sequence } => {
                let _ = self.notify_lost_inner(*id, *sequence);
            }
            Record::TakeNacks { id } => {
                let _ = self.take_nacks_inner(*id);
            }
            Record::Flush => {
                self.flush_inner()?;
            }
            Record::TakeOutputs { id } => {
                let _ = self.take_outputs_inner(*id);
            }
            Record::Close { id } => {
                let _ = self.close_inner(*id);
            }
            Record::Genesis { .. } | Record::Checkpoint(_) => {}
        }
        Ok(())
    }

    /// Rebuilds a gateway from a surviving journal: scans the store,
    /// verifies the genesis fingerprint, restores the last decodable
    /// checkpoint, replays the command tail (re-decoding any journaled
    /// but uncommitted windows — bit-identical by the determinism
    /// contract), truncates torn wreckage, and resumes journaling.
    ///
    /// `shapes` must contain every `(SystemConfig, LowResCodec)` pair
    /// ever handshaken into the journal, matched by fingerprint.
    ///
    /// An empty store recovers to a fresh journaling gateway (equivalent
    /// to [`Gateway::with_journal`]).
    ///
    /// # Errors
    ///
    /// [`GatewayError::Config`] for an invalid policy,
    /// [`GatewayError::Recovery`] for a config-fingerprint mismatch or a
    /// missing shape, or [`GatewayError::Journal`] when the store fails.
    pub fn recover(
        config: GatewayConfig,
        mut store: Box<dyn JournalStore + Send>,
        shapes: &[(SystemConfig, LowResCodec)],
    ) -> Result<(Self, RecoveryReport), GatewayError> {
        config.validate()?;
        let started = Instant::now();
        let registry = hybridcs_obs::global();
        let ctx = EventContext {
            logical: 0,
            session: 0,
            shard: 0,
        };
        emit_with(ctx, EventKind::Recover, 0, 0);
        let bytes = store.read_all().map_err(GatewayError::Journal)?;
        let scanned = journal::scan(&bytes);
        let my_fp = config_fingerprint(&config);
        if let Some(first) = scanned.records.first() {
            match first {
                Record::Genesis { config_fp } if *config_fp == my_fp => {}
                Record::Genesis { .. } => {
                    return Err(GatewayError::Recovery(
                        "journal was written under a different gateway config",
                    ));
                }
                _ => {
                    return Err(GatewayError::Recovery(
                        "journal does not start with a genesis record",
                    ));
                }
            }
        }
        let mut gateway = Self::new(config)?;
        let checkpoint_index = scanned
            .records
            .iter()
            .rposition(|r| matches!(r, Record::Checkpoint(_)));
        let mut checkpoint_restored = false;
        let mut replay_from = 0usize;
        if let Some(index) = checkpoint_index {
            if let Record::Checkpoint(state) = &scanned.records[index] {
                gateway.restore_checkpoint(state, shapes)?;
                emit_with(ctx, EventKind::Checkpoint, 1, state.applied);
                checkpoint_restored = true;
                replay_from = index + 1;
            }
        }
        let mut replayed = 0u64;
        for record in &scanned.records[replay_from..] {
            if record.is_command() {
                gateway.replay(record, shapes)?;
                gateway.applied += 1;
                replayed += 1;
            }
        }
        let truncated_bytes = bytes.len() as u64 - scanned.valid_bytes;
        if scanned.torn {
            store
                .truncate_to(scanned.valid_bytes)
                .map_err(GatewayError::Journal)?;
            registry
                .counter("gateway_journal_torn_tails_total", &[])
                .inc();
            emit_with(ctx, EventKind::Recover, 3, scanned.valid_bytes);
        }
        let mut journal = Journal::new(store, gateway.config.journal_group_bytes);
        if scanned.records.is_empty() {
            journal
                .append(&Record::Genesis { config_fp: my_fp })
                .map_err(GatewayError::Journal)?;
            journal.sync().map_err(GatewayError::Journal)?;
        }
        gateway.journal = Some(journal);
        let seconds = started.elapsed().as_secs_f64();
        registry
            .counter("gateway_recovery_replayed_events", &[])
            .add(replayed);
        registry
            .histogram("gateway_recovery_seconds", &[])
            .record(seconds);
        registry
            .histogram("gateway_recovery_replay_lag_events", &[])
            .record(replayed as f64);
        emit_with(ctx, EventKind::Recover, 1, replayed);
        emit_with(ctx, EventKind::Recover, 2, replayed);
        gateway.refresh_session_gauge();
        Ok((
            gateway,
            RecoveryReport {
                replayed_events: replayed,
                checkpoint_restored,
                torn_tail: scanned.torn,
                truncated_bytes,
                seconds,
            },
        ))
    }

    /// Re-publishes the per-phase session gauge.
    fn refresh_session_gauge(&self) {
        let registry = hybridcs_obs::global();
        for phase in [
            SessionPhase::Handshake,
            SessionPhase::Streaming,
            SessionPhase::Repairing,
            SessionPhase::Closed,
        ] {
            let count = self.sessions.values().filter(|s| s.phase == phase).count();
            registry
                .gauge("gateway_sessions", &[("phase", phase.name())])
                .set(count as f64);
        }
    }
}
