//! Per-session demux state: phase machine, reorder buffer, ARQ bookkeeping.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

use hybridcs_core::{DecodeLadder, ParsedSections, SessionLedger, SupervisedWindow};
use hybridcs_faults::RetryQueue;

/// Where a session sits in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// Handshake accepted, no frame seen yet.
    Handshake,
    /// Frames flowing, no outstanding sequence holes.
    Streaming,
    /// At least one sequence hole is outstanding (nacked or awaiting
    /// declare-lost); new frames still flow.
    Repairing,
    /// Closed; further frames are a protocol error.
    Closed,
}

impl SessionPhase {
    /// Stable lower-snake identifier (used as the metrics label).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SessionPhase::Handshake => "handshake",
            SessionPhase::Streaming => "streaming",
            SessionPhase::Repairing => "repairing",
            SessionPhase::Closed => "closed",
        }
    }

    /// Stable numeric code matching the flight-recorder
    /// [`EventKind::StageTransition`](hybridcs_obs::EventKind) code names.
    #[must_use]
    pub fn code(&self) -> u8 {
        match self {
            SessionPhase::Handshake => 0,
            SessionPhase::Streaming => 1,
            SessionPhase::Repairing => 2,
            SessionPhase::Closed => 3,
        }
    }

    /// The phase for a stable code (inverse of [`code`](SessionPhase::code));
    /// `None` for unknown codes. Used when deserializing checkpoints.
    #[must_use]
    pub fn from_code(code: u8) -> Option<SessionPhase> {
        Some(match code {
            0 => SessionPhase::Handshake,
            1 => SessionPhase::Streaming,
            2 => SessionPhase::Repairing,
            3 => SessionPhase::Closed,
            _ => return None,
        })
    }
}

/// One position in the reorder buffer.
#[derive(Debug, Clone)]
pub(crate) enum Slot {
    /// The frame arrived (possibly with sections lost on the wire).
    Frame(ParsedSections),
    /// ARQ gave up on this sequence; it will conceal.
    Lost,
}

/// A [`Slot`] plus its telemetry stamps: the gateway's deterministic
/// logical ingest tick (carried through to every flight event for the
/// window) and the wall-clock ingest instant (the start of the window's
/// frame-to-commit latency; for a declared-lost slot, the instant the
/// loss was declared).
#[derive(Debug, Clone)]
pub(crate) struct Queued {
    pub(crate) slot: Slot,
    pub(crate) logical: u64,
    pub(crate) at: Instant,
}

/// All mutable state for one sensor session. Only ever touched from the
/// gateway's caller thread — workers see sessions solely through the
/// shared [`DecodeLadder`].
pub(crate) struct Session {
    pub(crate) shard: usize,
    pub(crate) ladder: Arc<DecodeLadder>,
    /// Fingerprint of the `(SystemConfig, LowResCodec)` shape behind
    /// `ladder` — how checkpoints name the ladder without serializing it.
    pub(crate) shape_fp: u64,
    pub(crate) ledger: SessionLedger,
    pub(crate) phase: SessionPhase,
    pub(crate) arq: RetryQueue,
    /// Sequences currently in the nack/retransmit cycle.
    pub(crate) nacked: BTreeSet<u32>,
    /// Out-of-order arrivals and declared-lost markers, keyed by sequence.
    pub(crate) reorder: BTreeMap<u32, Queued>,
    /// Next sequence to release into the decode batch.
    pub(crate) next_release: u32,
    /// Highest sequence observed so far.
    pub(crate) highest_seen: Option<u32>,
    /// Released-window counter (drives admission epochs).
    pub(crate) window_index: u64,
    /// Admission epoch currently being counted.
    pub(crate) epoch: u64,
    /// Solver-admitted windows within the current epoch.
    pub(crate) admitted_in_epoch: u32,
    /// Committed windows awaiting `take_outputs`/`close`.
    pub(crate) outputs: Vec<SupervisedWindow>,
}

impl Session {
    pub(crate) fn new(
        shard: usize,
        ladder: Arc<DecodeLadder>,
        shape_fp: u64,
        ledger: SessionLedger,
        arq: RetryQueue,
    ) -> Self {
        Session {
            shard,
            ladder,
            shape_fp,
            ledger,
            phase: SessionPhase::Handshake,
            arq,
            nacked: BTreeSet::new(),
            reorder: BTreeMap::new(),
            next_release: 0,
            highest_seen: None,
            window_index: 0,
            epoch: 0,
            admitted_in_epoch: 0,
            outputs: Vec::new(),
        }
    }

    /// The sequence a brand-new (never seen) frame would occupy.
    pub(crate) fn next_unseen(&self) -> u32 {
        self.highest_seen
            .map_or(self.next_release, |h| h.wrapping_add(1))
    }

    /// Sequence holes outstanding between the release cursor and the
    /// highest seen frame.
    pub(crate) fn holes_outstanding(&self) -> bool {
        match self.highest_seen {
            None => false,
            Some(h) => {
                if h < self.next_release {
                    return false;
                }
                let span = (h - self.next_release) as usize + 1;
                span > self.reorder.len()
            }
        }
    }

    /// Recomputes the streaming/repairing phase after buffer changes.
    pub(crate) fn refresh_phase(&mut self) {
        if matches!(
            self.phase,
            SessionPhase::Streaming | SessionPhase::Repairing
        ) {
            self.phase = if self.holes_outstanding() {
                SessionPhase::Repairing
            } else {
                SessionPhase::Streaming
            };
        }
    }
}
