//! Multi-patient ingest and batched-decode gateway.
//!
//! The single-session receiver story ends at
//! [`RecoverySupervisor`](hybridcs_core::RecoverySupervisor): one sensor,
//! one decode ladder, one window at a time. A monitoring deployment is
//! N wards' worth of sensors whose telemetry arrives *interleaved* at one
//! collection point, and whose decode cost dwarfs their ingest cost. This
//! crate is that collection point, kept hermetic and deterministic:
//!
//! * [`Gateway`] demultiplexes interleaved frames into per-session state
//!   machines (`handshake → streaming → repairing → closed`, see
//!   [`SessionPhase`]) with per-session reorder buffers and the bounded
//!   ARQ from `hybridcs-faults` driving gap repair;
//! * reconstruction runs on a sharded `std::thread` worker pool with
//!   bounded per-shard solver queues; sessions are pinned to shards by a
//!   SplitMix64 hash of their id, and expensive operator state (sensing
//!   matrix, wavelet, entropy codec) is built **once per distinct
//!   `(m, n, basis)` shape** and shared behind an `Arc` across every
//!   shard and worker;
//! * overload never queues unboundedly: admission control (a per-session
//!   solve quota per window epoch) and full shard queues *shed* load by
//!   demoting the affected window through the existing decode ladder
//!   (reason `"shed"`), landing on the cheap low-resolution rung instead
//!   of stalling the batch.
//!
//! # Determinism
//!
//! Per-session outputs are **bit-identical regardless of worker count and
//! of how sessions are interleaved** on the wire. The design choices that
//! buy this are spelled out in `DESIGN.md` §9; in short: the solver half
//! of the ladder is pure and runs on workers, all session state mutates
//! on the caller thread in global ingest order (batch-synchronous
//! flush), shard count is fixed by config rather than derived from
//! worker count, and admission decisions depend only on the session's own
//! stream position.
//!
//! Queue-depths, shed counts, ladder demotions and per-stage latencies
//! all land in the [global metrics registry](hybridcs_obs::global) under
//! `gateway_*` names.
//!
//! ```
//! use hybridcs_core::{train_lowres_codec, HybridFrontEnd, SystemConfig};
//! use hybridcs_core::experiment::default_training_windows;
//! use hybridcs_core::telemetry::FrameCodec;
//! use hybridcs_gateway::{Gateway, GatewayConfig};
//!
//! let system = SystemConfig { measurements: 64, ..SystemConfig::default() };
//! let codec = train_lowres_codec(
//!     system.lowres_bits,
//!     &default_training_windows(system.window),
//! ).unwrap();
//! let frontend = HybridFrontEnd::new(&system, codec.clone()).unwrap();
//! let wire = FrameCodec::new(&system).unwrap();
//!
//! let mut gateway = Gateway::new(GatewayConfig::default()).unwrap();
//! gateway.handshake(7, &system, codec).unwrap();
//! let window = vec![0.25; system.window];
//! let encoded = frontend.encode(&window).unwrap();
//! let bytes = wire.serialize(0, &encoded).unwrap();
//! gateway.push(7, &bytes).unwrap();
//! let outputs = gateway.close(7).unwrap();
//! assert_eq!(outputs.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod gateway;
mod journal;
mod session;

pub use config::GatewayConfig;
pub use gateway::{Gateway, GatewayReport};
pub use journal::{
    config_fingerprint, scan, shape_fingerprint, FileStore, Record, RecoveryReport, ScannedJournal,
};
pub use session::SessionPhase;

/// Errors surfaced by the gateway API (wire noise is *not* an error — a
/// garbled or duplicate frame is counted and absorbed; these are caller
/// protocol violations, invalid configuration, or durability failures).
#[derive(Debug, Clone, PartialEq)]
pub enum GatewayError {
    /// A frame, nack poll or close referenced a session id that never
    /// completed a handshake.
    UnknownSession(u64),
    /// A handshake was offered for a session id that is still live
    /// (closed ids may be reused).
    DuplicateHandshake(u64),
    /// The session was already closed.
    SessionClosed(u64),
    /// The gateway configuration is invalid.
    Config(&'static str),
    /// Building per-shape decode state failed.
    Core(hybridcs_core::CoreError),
    /// The journal store failed an append, read or truncate.
    Journal(hybridcs_faults::StoreError),
    /// [`Gateway::recover`] could not rebuild a consistent gateway from
    /// the journal (config mismatch, missing shape, undecodable state).
    Recovery(&'static str),
}

impl core::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GatewayError::UnknownSession(id) => {
                write!(f, "no handshake for session {id}")
            }
            GatewayError::DuplicateHandshake(id) => {
                write!(f, "duplicate handshake for session {id}")
            }
            GatewayError::SessionClosed(id) => write!(f, "session {id} is closed"),
            GatewayError::Config(what) => write!(f, "invalid gateway config: {what}"),
            GatewayError::Core(e) => write!(f, "decode state setup failed: {e}"),
            GatewayError::Journal(e) => write!(f, "journal store failed: {e}"),
            GatewayError::Recovery(what) => write!(f, "recovery failed: {what}"),
        }
    }
}

impl std::error::Error for GatewayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GatewayError::Core(e) => Some(e),
            GatewayError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hybridcs_faults::StoreError> for GatewayError {
    fn from(e: hybridcs_faults::StoreError) -> Self {
        GatewayError::Journal(e)
    }
}

impl From<hybridcs_core::CoreError> for GatewayError {
    fn from(e: hybridcs_core::CoreError) -> Self {
        GatewayError::Core(e)
    }
}
