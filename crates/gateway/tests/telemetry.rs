//! Telemetry integration: flight-recorder dump determinism across worker
//! counts, end-to-end latency histograms, and schema validity of dumps —
//! all driven through the real gateway with an injected watchdog trip.

use hybridcs_coding::LowResCodec;
use hybridcs_core::experiment::default_training_windows;
use hybridcs_core::telemetry::FrameCodec;
use hybridcs_core::{train_lowres_codec, HybridFrontEnd, SupervisorConfig, SystemConfig};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_faults::{ArqConfig, CrashPlan, CrashingStore, MemStore, TailFault};
use hybridcs_gateway::{Gateway, GatewayConfig};
use hybridcs_obs::flight::recorder;
use hybridcs_solver::WatchdogConfig;
use std::sync::{Mutex, PoisonError};

struct Rig {
    system: SystemConfig,
    codec: LowResCodec,
    frontend: HybridFrontEnd,
    wire: FrameCodec,
    windows: Vec<Vec<f64>>,
}

fn rig() -> Rig {
    let system = SystemConfig {
        measurements: 64,
        ..SystemConfig::default()
    };
    let codec =
        train_lowres_codec(system.lowres_bits, &default_training_windows(system.window)).unwrap();
    let frontend = HybridFrontEnd::new(&system, codec.clone()).unwrap();
    let wire = FrameCodec::new(&system).unwrap();
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).unwrap();
    let strip = generator.generate(8.0, 0x7E11);
    let windows = strip
        .chunks_exact(system.window)
        .take(6)
        .map(<[f64]>::to_vec)
        .collect();
    Rig {
        system,
        codec,
        frontend,
        wire,
        windows,
    }
}

impl Rig {
    fn frame(&self, seq: u32) -> Vec<u8> {
        let encoded = self
            .frontend
            .encode(&self.windows[seq as usize % self.windows.len()])
            .unwrap();
        self.wire.serialize(seq, &encoded).unwrap()
    }
}

/// A config whose watchdog trips every solve after two iterations — the
/// injected anomaly — with tight admission so shed events appear too.
fn tripping_config(workers: usize) -> GatewayConfig {
    GatewayConfig {
        workers,
        admit_quota: 2,
        admit_window: 4,
        arq: ArqConfig {
            max_retries_per_frame: 1,
            ..ArqConfig::default()
        },
        supervisor: SupervisorConfig {
            watchdog: WatchdogConfig {
                max_iterations: Some(2),
                ..WatchdogConfig::default()
            },
            ..SupervisorConfig::default()
        },
        ..GatewayConfig::default()
    }
}

/// One fixed multi-session scenario: in-order frames, one wire gap that
/// exhausts ARQ, a close with a trailing hole. Returns every session's
/// outputs plus the flight-recorder JSONL dump.
fn drive(workers: usize) -> (Vec<Vec<Vec<f64>>>, String) {
    recorder().clear();
    let rig = rig();
    let mut gateway = Gateway::new(tripping_config(workers)).unwrap();
    let ids = [11u64, 22, 33, 44];
    for id in ids {
        gateway
            .handshake(id, &rig.system, rig.codec.clone())
            .unwrap();
    }
    for id in ids {
        gateway.push(id, &rig.frame(0)).unwrap();
        // Frame 1 is lost on the wire; frame 2 exposes the gap.
        gateway.push(id, &rig.frame(2)).unwrap();
        for seq in gateway.take_nacks(id).unwrap() {
            gateway.notify_lost(id, seq).unwrap();
        }
        for seq in 3..5 {
            gateway.push(id, &rig.frame(seq)).unwrap();
        }
    }
    gateway.flush().unwrap();
    let mut outputs = Vec::new();
    for id in ids {
        let mut windows: Vec<Vec<f64>> = gateway
            .take_outputs(id)
            .unwrap()
            .into_iter()
            .map(|w| w.signal)
            .collect();
        // Close with a trailing hole: frame 5 was seen by nobody, but a
        // garbled frame occupies a position for session 11 only.
        if id == 11 {
            gateway.push(id, b"garbage-frame").unwrap();
        }
        windows.extend(gateway.close(id).unwrap().into_iter().map(|w| w.signal));
        outputs.push(windows);
    }
    let dump = recorder().dump_jsonl("telemetry_test");
    (outputs, dump)
}

/// Serializes the tests in this binary: they share the process-global
/// recorder and enabled flag.
fn with_telemetry(f: impl FnOnce()) {
    static GATE: Mutex<()> = Mutex::new(());
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    hybridcs_obs::set_enabled(true);
    f();
    hybridcs_obs::set_enabled(false);
    recorder().clear();
}

#[test]
fn flight_dump_is_deterministic_across_worker_counts() {
    with_telemetry(|| {
        let (outputs_1, dump_1) = drive(1);
        let (outputs_4, dump_4) = drive(4);
        let (outputs_8, dump_8) = drive(8);
        // The decode outputs keep the gateway's bit-identity contract
        // even with telemetry enabled and a tripping watchdog...
        assert_eq!(outputs_1, outputs_4);
        assert_eq!(outputs_1, outputs_8);
        // ...and the dumped event order is identical too: logical stamps
        // come from the ingest tier, not from worker scheduling.
        assert_eq!(dump_1, dump_4, "workers=1 vs workers=4 dumps differ");
        assert_eq!(dump_1, dump_8, "workers=1 vs workers=8 dumps differ");
    });
}

#[test]
fn injected_watchdog_trip_is_dumped_and_schema_valid() {
    with_telemetry(|| {
        let (_, dump) = drive(4);
        let mut lines = dump.lines();
        let meta = lines.next().expect("dump has a meta line");
        assert!(meta.contains("\"kind\":\"meta\""));
        assert!(
            meta.contains("\"anomaly\":true"),
            "a tripping watchdog must latch the anomaly flag: {meta}"
        );
        for line in dump.lines() {
            hybridcs_obs::jsonl::validate_line(line)
                .unwrap_or_else(|e| panic!("invalid dump line: {e}\n{line}"));
        }
        // The anomaly is explained end to end: the trip itself, the
        // demotion it caused, and the surrounding pipeline context.
        assert!(dump.contains("\"event\":\"watchdog_trip\""));
        assert!(dump.contains("\"code\":\"iteration_budget\""));
        assert!(dump.contains("\"event\":\"demotion\""));
        assert!(dump.contains("\"reason\":\"watchdog\""));
        assert!(dump.contains("\"event\":\"ingest\""));
        assert!(dump.contains("\"code\":\"garbled\""));
        assert!(dump.contains("\"event\":\"shed\""));
        assert!(dump.contains("\"event\":\"arq_verdict\""));
        assert!(dump.contains("\"code\":\"declared_lost\""));
        assert!(dump.contains("\"event\":\"commit\""));
        assert!(dump.contains("\"event\":\"stage_transition\""));
        assert!(dump.contains("\"code\":\"closed\""));
    });
}

#[test]
fn crash_safety_metrics_and_flight_events_are_exposed() {
    with_telemetry(|| {
        recorder().clear();
        let rig = rig();
        let config = GatewayConfig {
            journal_group_bytes: 0,
            checkpoint_every: 2,
            ..tripping_config(1)
        };
        let before = hybridcs_obs::global().snapshot();

        // Journal a short run, crash with a garbage tail, recover.
        let store = CrashingStore::new(
            MemStore::new(),
            CrashPlan {
                kill_at_record: 9,
                tail: TailFault::Garbage(11),
            },
        );
        let image = store.image();
        let mut gateway = Gateway::with_journal(config, Box::new(store)).unwrap();
        gateway
            .handshake(1, &rig.system, rig.codec.clone())
            .unwrap();
        let mut crashed = false;
        for seq in 0..8 {
            if gateway.push(1, &rig.frame(seq)).is_err() || gateway.flush().is_err() {
                crashed = true;
                break;
            }
        }
        assert!(crashed, "the crash plan must fire");
        let shapes = vec![(rig.system.clone(), rig.codec.clone())];
        let (mut recovered, report) = Gateway::recover(
            config,
            Box::new(MemStore::from_bytes(image.snapshot())),
            &shapes,
        )
        .unwrap();
        assert!(report.torn_tail);
        assert!(report.checkpoint_restored);
        assert!(report.replayed_events > 0);
        recovered.close(1).unwrap();

        // Every crash-safety counter moved and lands in the Prometheus
        // exposition under its stable name.
        let window = hybridcs_obs::global().snapshot().delta(&before);
        let counters = [
            "gateway_journal_records_total",
            "gateway_journal_bytes_total",
            "gateway_journal_syncs_total",
            "gateway_checkpoints_total",
            "gateway_journal_torn_tails_total",
            "gateway_recovery_replayed_events",
        ];
        for name in counters {
            assert!(
                window.counter_value(name, &[]).is_some_and(|v| v > 0),
                "counter {name} did not move"
            );
        }
        let recovery = window
            .histogram_snapshot("gateway_recovery_seconds", &[])
            .expect("recovery duration histogram exists");
        assert!(recovery.count >= 1);
        let rendered = hybridcs_obs::render_prometheus(&hybridcs_obs::global().snapshot());
        for name in counters.iter().chain(&["gateway_recovery_seconds"]) {
            assert!(rendered.contains(name), "{name} missing from exposition");
        }

        // The flight recorder explains the whole arc with stable codes.
        let dump = recorder().dump_jsonl("crash_safety_test");
        for line in dump.lines() {
            hybridcs_obs::jsonl::validate_line(line)
                .unwrap_or_else(|e| panic!("invalid dump line: {e}\n{line}"));
        }
        assert!(dump.contains("\"event\":\"checkpoint\""));
        assert!(dump.contains("\"code\":\"written\""));
        assert!(dump.contains("\"code\":\"restored\""));
        assert!(dump.contains("\"event\":\"recover\""));
        assert!(dump.contains("\"code\":\"started\""));
        assert!(dump.contains("\"code\":\"complete\""));
        assert!(dump.contains("\"code\":\"torn_tail\""));
        recorder().clear();
    });
}

#[test]
fn latency_histograms_cover_every_stage_and_end_to_end() {
    with_telemetry(|| {
        let before = hybridcs_obs::global().snapshot();
        let (outputs, _) = drive(1);
        let committed: usize = outputs.iter().map(Vec::len).sum();
        let window = hybridcs_obs::global().snapshot().delta(&before);
        for stage in ["ingest", "repair", "queue", "solve", "commit"] {
            let h = window
                .histogram_snapshot("gateway_stage_seconds", &[("stage", stage)])
                .unwrap_or_else(|| panic!("missing stage histogram: {stage}"));
            assert!(h.count > 0, "stage {stage} recorded nothing");
        }
        let e2e = window
            .histogram_snapshot("gateway_frame_to_commit_seconds", &[])
            .expect("frame-to-commit histogram exists");
        assert_eq!(
            e2e.count, committed as u64,
            "every committed window gets a frame-to-commit sample"
        );
        let p = e2e.percentiles().expect("non-empty histogram");
        assert!(p.p50 >= 0.0 && p.p99 >= p.p50);
    });
}
