//! Journal robustness properties: no byte sequence — truncated, bit
//! flipped, or outright random — may panic the scanner or the recovery
//! path, and whenever recovery *does* accept an image, the rebuilt
//! gateway must agree with the durable-prefix oracle.

mod common;
use common::*;

use hybridcs_rand::check::{check, u64_in, u8_any, usize_in, vec_of, zip2};

/// A full scripted run's journal image — the corpus the mutations gnaw
/// on.
fn base_image() -> Vec<u8> {
    let rig = rig();
    let config = sweep_config();
    let store = MemStore::new();
    let mut gateway = Gateway::with_journal(config, Box::new(store.clone())).unwrap();
    let mut sink = BTreeMap::new();
    for op in script() {
        drive(&mut gateway, &rig, op, &mut sink).unwrap();
    }
    store.snapshot()
}

#[test]
fn truncated_and_bit_flipped_journals_never_panic_and_recover_consistently() {
    let rig = rig();
    let shapes = rig.shapes();
    let config = sweep_config();
    let base = base_image();
    let bits = (base.len() * 8) as u64;

    check(
        "mutated journal recovers to the durable prefix",
        &zip2(usize_in(0, base.len() + 2), vec_of(u64_in(0, bits), 0, 9)),
        |(truncate, flips)| {
            let mut bytes = base[..(*truncate).min(base.len())].to_vec();
            for flip in flips {
                if bytes.is_empty() {
                    break;
                }
                let bit = flip % (bytes.len() as u64 * 8);
                bytes[usize::try_from(bit / 8).unwrap()] ^= 1 << (bit % 8);
            }
            // Neither the scanner nor recovery may panic, however mangled
            // the image (a panic fails this property via the harness).
            let durable = scan(&bytes);
            match Gateway::recover(config, Box::new(MemStore::from_bytes(bytes)), &shapes) {
                // Rejected images (bad genesis, undecodable checkpoint)
                // are a legitimate outcome — the property is "no panic,
                // no inconsistent acceptance".
                Err(_) => Ok(()),
                Ok((mut recovered, report)) => {
                    let commands = durable.records.iter().filter(|r| r.is_command()).count() as u64;
                    if report.replayed_events > commands {
                        return Err(format!(
                            "replayed {} events from a {} command prefix",
                            report.replayed_events, commands
                        ));
                    }
                    let mut oracle = oracle_from_records(&durable.records, &rig, config);
                    assert_equivalent(&mut recovered, &mut oracle, "mutated image");
                    Ok(())
                }
            }
        },
    );
}

#[test]
fn arbitrary_bytes_never_panic_the_scanner_or_recovery() {
    let rig = rig();
    let shapes = rig.shapes();
    let config = sweep_config();

    check(
        "random bytes scan and recover without panicking",
        &vec_of(u8_any(), 0, 512),
        |bytes| {
            let durable = scan(bytes);
            if durable.valid_bytes > bytes.len() as u64 {
                return Err("scanner claimed more bytes than exist".to_owned());
            }
            let _ = Gateway::recover(
                config,
                Box::new(MemStore::from_bytes(bytes.clone())),
                &shapes,
            );
            Ok(())
        },
    );
}
