//! Session lifecycle edges: unknown sessions, duplicate handshakes,
//! ARQ exhaustion, shedding, and close with in-flight work.

use hybridcs_coding::LowResCodec;
use hybridcs_core::experiment::default_training_windows;
use hybridcs_core::telemetry::FrameCodec;
use hybridcs_core::{train_lowres_codec, HybridFrontEnd, LadderRung, SystemConfig};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_faults::ArqConfig;
use hybridcs_gateway::{Gateway, GatewayConfig, GatewayError, SessionPhase};

struct Rig {
    system: SystemConfig,
    codec: LowResCodec,
    frontend: HybridFrontEnd,
    wire: FrameCodec,
    windows: Vec<Vec<f64>>,
}

fn rig() -> Rig {
    let system = SystemConfig {
        measurements: 64,
        ..SystemConfig::default()
    };
    let codec =
        train_lowres_codec(system.lowres_bits, &default_training_windows(system.window)).unwrap();
    let frontend = HybridFrontEnd::new(&system, codec.clone()).unwrap();
    let wire = FrameCodec::new(&system).unwrap();
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).unwrap();
    let strip = generator.generate(8.0, 0x11FE);
    let windows = strip
        .chunks_exact(system.window)
        .take(8)
        .map(<[f64]>::to_vec)
        .collect();
    Rig {
        system,
        codec,
        frontend,
        wire,
        windows,
    }
}

impl Rig {
    fn frame(&self, seq: u32) -> Vec<u8> {
        let encoded = self
            .frontend
            .encode(&self.windows[seq as usize % self.windows.len()])
            .unwrap();
        self.wire.serialize(seq, &encoded).unwrap()
    }
}

/// Sheds every solver window (low-res rung only) — keeps tests fast and
/// exercises the demotion path.
fn shed_all_config() -> GatewayConfig {
    GatewayConfig {
        admit_quota: 0,
        ..GatewayConfig::default()
    }
}

#[test]
fn frame_for_unknown_session_is_rejected() {
    let rig = rig();
    let mut gateway = Gateway::new(shed_all_config()).unwrap();
    let bytes = rig.frame(0);
    assert_eq!(
        gateway.push(99, &bytes),
        Err(GatewayError::UnknownSession(99))
    );
    assert_eq!(
        gateway.take_nacks(99),
        Err(GatewayError::UnknownSession(99))
    );
    assert_eq!(gateway.close(99), Err(GatewayError::UnknownSession(99)));
    assert_eq!(gateway.phase(99), None);
}

#[test]
fn duplicate_handshake_is_rejected_while_live_but_closed_ids_are_reusable() {
    let rig = rig();
    let mut gateway = Gateway::new(shed_all_config()).unwrap();
    gateway
        .handshake(1, &rig.system, rig.codec.clone())
        .unwrap();
    assert_eq!(gateway.phase(1), Some(SessionPhase::Handshake));
    assert_eq!(
        gateway.handshake(1, &rig.system, rig.codec.clone()),
        Err(GatewayError::DuplicateHandshake(1))
    );
    gateway.close(1).unwrap();
    // A closed id may be re-handshaken: sensors reconnect under the same
    // patient id after a battery swap. The new incarnation is fresh.
    gateway
        .handshake(1, &rig.system, rig.codec.clone())
        .unwrap();
    assert_eq!(gateway.phase(1), Some(SessionPhase::Handshake));
}

#[test]
fn reused_session_id_does_not_inherit_degradation_state() {
    let rig = rig();
    let config = GatewayConfig {
        arq: ArqConfig {
            max_retries_per_frame: 1,
            ..ArqConfig::default()
        },
        ..shed_all_config()
    };
    let mut gateway = Gateway::new(config).unwrap();
    gateway
        .handshake(4, &rig.system, rig.codec.clone())
        .unwrap();
    // First incarnation limps: a hole, a spent retry, a concealment.
    gateway.push(4, &rig.frame(0)).unwrap();
    gateway.push(4, &rig.frame(2)).unwrap();
    assert_eq!(gateway.take_nacks(4).unwrap(), vec![1]);
    gateway.notify_lost(4, 1).unwrap();
    let outputs = gateway.close(4).unwrap();
    assert_eq!(outputs[1].rung, LadderRung::Concealed);

    // Second incarnation under the same id: the ledger starts clean, so
    // sequence 0 decodes normally (no inherited conceal streak, no
    // expectation of the old stream position) and the ARQ budget is full.
    gateway
        .handshake(4, &rig.system, rig.codec.clone())
        .unwrap();
    gateway.push(4, &rig.frame(0)).unwrap();
    gateway.push(4, &rig.frame(2)).unwrap();
    assert_eq!(
        gateway.take_nacks(4).unwrap(),
        vec![1],
        "fresh incarnation nacks its own gap — budget was not inherited"
    );
    gateway.notify_lost(4, 1).unwrap();
    let outputs = gateway.close(4).unwrap();
    assert_eq!(outputs.len(), 3);
    assert_eq!(outputs[0].sequence, Some(0));
    assert_eq!(outputs[0].rung, LadderRung::LowResOnly);
    assert_eq!(outputs[1].rung, LadderRung::Concealed);
    // The concealment repeats the *new* incarnation's window 0, proving
    // the ledger's last-good buffer was reset at close.
    assert_eq!(outputs[1].signal, outputs[0].signal);
}

#[test]
fn duplicate_frames_are_absorbed_without_disturbing_the_stream() {
    let rig = rig();
    let mut gateway = Gateway::new(shed_all_config()).unwrap();
    gateway
        .handshake(6, &rig.system, rig.codec.clone())
        .unwrap();
    gateway.push(6, &rig.frame(0)).unwrap();
    // The sensor's radio stutters: sequence 0 arrives three more times,
    // once before release and twice after.
    gateway.push(6, &rig.frame(0)).unwrap();
    gateway.flush().unwrap();
    gateway.push(6, &rig.frame(0)).unwrap();
    gateway.push(6, &rig.frame(0)).unwrap();
    gateway.push(6, &rig.frame(1)).unwrap();
    let outputs = gateway.close(6).unwrap();
    let sequences: Vec<_> = outputs.iter().map(|w| w.sequence).collect();
    assert_eq!(sequences, vec![Some(0), Some(1)]);
}

#[test]
fn late_frame_after_window_commit_is_dropped_not_replayed() {
    let rig = rig();
    let config = GatewayConfig {
        arq: ArqConfig {
            max_retries_per_frame: 1,
            ..ArqConfig::default()
        },
        ..shed_all_config()
    };
    let mut gateway = Gateway::new(config).unwrap();
    gateway
        .handshake(8, &rig.system, rig.codec.clone())
        .unwrap();
    gateway.push(8, &rig.frame(0)).unwrap();
    gateway.push(8, &rig.frame(2)).unwrap();
    assert_eq!(gateway.take_nacks(8).unwrap(), vec![1]);
    gateway.notify_lost(8, 1).unwrap();
    gateway.flush().unwrap();
    // Window 1 has already committed (as a concealment). The straggler
    // retransmission finally lands: it must not resurrect the window.
    let committed = gateway.take_outputs(8).unwrap();
    assert_eq!(committed.len(), 3);
    gateway.push(8, &rig.frame(1)).unwrap();
    gateway.flush().unwrap();
    assert!(gateway.take_outputs(8).unwrap().is_empty());
    assert_eq!(gateway.phase(8), Some(SessionPhase::Streaming));
}

#[test]
fn handshake_for_other_sessions_during_repair_leaves_repair_undisturbed() {
    let rig = rig();
    let mut gateway = Gateway::new(shed_all_config()).unwrap();
    gateway
        .handshake(10, &rig.system, rig.codec.clone())
        .unwrap();
    gateway.push(10, &rig.frame(0)).unwrap();
    gateway.push(10, &rig.frame(2)).unwrap();
    assert_eq!(gateway.phase(10), Some(SessionPhase::Repairing));
    // A new sensor joins mid-repair; the repairing session's pending nack
    // survives and the repair completes normally afterwards.
    gateway
        .handshake(11, &rig.system, rig.codec.clone())
        .unwrap();
    gateway.push(11, &rig.frame(0)).unwrap();
    assert_eq!(gateway.phase(10), Some(SessionPhase::Repairing));
    assert_eq!(gateway.take_nacks(10).unwrap(), vec![1]);
    gateway.push(10, &rig.frame(1)).unwrap();
    assert_eq!(gateway.phase(10), Some(SessionPhase::Streaming));
    let outputs = gateway.close(10).unwrap();
    let sequences: Vec<_> = outputs.iter().map(|w| w.sequence).collect();
    assert_eq!(sequences, vec![Some(0), Some(1), Some(2)]);
    assert_eq!(gateway.close(11).unwrap().len(), 1);
}

#[test]
fn arq_exhaustion_declares_lost_and_late_arrival_is_dropped() {
    let rig = rig();
    let config = GatewayConfig {
        arq: ArqConfig {
            max_retries_per_frame: 1,
            ..ArqConfig::default()
        },
        ..shed_all_config()
    };
    let mut gateway = Gateway::new(config).unwrap();
    gateway
        .handshake(5, &rig.system, rig.codec.clone())
        .unwrap();

    gateway.push(5, &rig.frame(0)).unwrap();
    // Frame 1 is lost on the wire; frame 2 exposes the gap.
    gateway.push(5, &rig.frame(2)).unwrap();
    assert_eq!(gateway.phase(5), Some(SessionPhase::Repairing));
    assert_eq!(gateway.take_nacks(5).unwrap(), vec![1]);
    // The retransmission is lost too; the single retry is now spent, so
    // the gateway gives up on sequence 1 and releases the stream.
    gateway.notify_lost(5, 1).unwrap();
    assert_eq!(gateway.phase(5), Some(SessionPhase::Streaming));
    assert!(gateway.take_nacks(5).unwrap().is_empty());

    gateway.flush().unwrap();
    let outputs = gateway.take_outputs(5).unwrap();
    assert_eq!(outputs.len(), 3);
    assert_eq!(outputs[0].sequence, Some(0));
    assert_eq!(outputs[0].rung, LadderRung::LowResOnly);
    // The abandoned sequence concealed (repeating window 0).
    assert_eq!(outputs[1].sequence, None);
    assert_eq!(outputs[1].rung, LadderRung::Concealed);
    assert_eq!(outputs[1].signal, outputs[0].signal);
    assert_eq!(outputs[2].sequence, Some(2));

    // Sequence 1 finally limps in after the window was already released:
    // it must be absorbed (counted as late), not re-enter the stream.
    gateway.push(5, &rig.frame(1)).unwrap();
    gateway.flush().unwrap();
    assert!(gateway.take_outputs(5).unwrap().is_empty());
}

#[test]
fn quota_shedding_follows_the_sessions_own_stream() {
    let rig = rig();
    let config = GatewayConfig {
        admit_quota: 1,
        admit_window: 2,
        ..GatewayConfig::default()
    };
    let mut gateway = Gateway::new(config).unwrap();
    gateway
        .handshake(2, &rig.system, rig.codec.clone())
        .unwrap();
    for seq in 0..4 {
        gateway.push(2, &rig.frame(seq)).unwrap();
    }
    let report = gateway.flush().unwrap();
    assert_eq!(report.committed, 4);
    assert_eq!(report.full_solves, 2);
    assert_eq!(report.shed, 2);
    let rungs: Vec<_> = gateway
        .take_outputs(2)
        .unwrap()
        .iter()
        .map(|w| w.rung)
        .collect();
    // One admitted solve per 2-window epoch; the second window of each
    // epoch is shed down to the low-res rung.
    assert_eq!(
        rungs,
        vec![
            LadderRung::Hybrid,
            LadderRung::LowResOnly,
            LadderRung::Hybrid,
            LadderRung::LowResOnly,
        ]
    );
}

#[test]
fn full_shard_queue_sheds_instead_of_queuing() {
    let rig = rig();
    let config = GatewayConfig {
        max_shard_queue: 1,
        admit_quota: u32::MAX,
        ..GatewayConfig::default()
    };
    let mut gateway = Gateway::new(config).unwrap();
    gateway
        .handshake(3, &rig.system, rig.codec.clone())
        .unwrap();
    for seq in 0..3 {
        gateway.push(3, &rig.frame(seq)).unwrap();
    }
    let report = gateway.flush().unwrap();
    // One solver slot in the session's shard: the other two windows shed.
    assert_eq!(report.committed, 3);
    assert_eq!(report.full_solves, 1);
    assert_eq!(report.shed, 2);
    // The shed windows demote through the ladder with reason "shed".
    let outputs = gateway.take_outputs(3).unwrap();
    assert_eq!(outputs[0].rung, LadderRung::Hybrid);
    for window in &outputs[1..] {
        assert_eq!(window.rung, LadderRung::LowResOnly);
        assert!(window.demotions.iter().all(|(_, reason)| *reason == "shed"));
    }
}

#[test]
fn close_flushes_in_flight_work_and_seals_the_session() {
    let rig = rig();
    let mut gateway = Gateway::new(shed_all_config()).unwrap();
    gateway
        .handshake(7, &rig.system, rig.codec.clone())
        .unwrap();
    for seq in 0..4 {
        gateway.push(7, &rig.frame(seq)).unwrap();
    }
    // Nothing flushed yet: all four windows are in-flight.
    assert_eq!(gateway.pending_windows(), 4);
    let outputs = gateway.close(7).unwrap();
    assert_eq!(outputs.len(), 4);
    assert_eq!(gateway.pending_windows(), 0);
    let sequences: Vec<_> = outputs.iter().map(|w| w.sequence).collect();
    assert_eq!(sequences, vec![Some(0), Some(1), Some(2), Some(3)]);
    assert_eq!(gateway.phase(7), Some(SessionPhase::Closed));
    assert_eq!(
        gateway.push(7, &rig.frame(4)),
        Err(GatewayError::SessionClosed(7))
    );
    assert_eq!(gateway.close(7), Err(GatewayError::SessionClosed(7)));
}

#[test]
fn close_declares_trailing_holes_lost() {
    let rig = rig();
    let mut gateway = Gateway::new(shed_all_config()).unwrap();
    gateway
        .handshake(9, &rig.system, rig.codec.clone())
        .unwrap();
    gateway.push(9, &rig.frame(0)).unwrap();
    // Frames 1 and 2 never arrive; frame 3 shows how far the sensor got.
    gateway.push(9, &rig.frame(3)).unwrap();
    let outputs = gateway.close(9).unwrap();
    assert_eq!(outputs.len(), 4);
    assert_eq!(outputs[1].rung, LadderRung::Concealed);
    assert_eq!(outputs[2].rung, LadderRung::Concealed);
    assert_eq!(outputs[3].sequence, Some(3));
}
