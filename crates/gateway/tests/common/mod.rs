//! Shared fixture for the crash-recovery and journal-fuzz suites: a
//! trained rig, a scripted two-session run with a full repair cycle,
//! and the durable-prefix oracle the recovered gateway is compared
//! against.
// Each test binary uses a different subset of the fixture.
#![allow(dead_code)]
#![allow(unused_imports)]

pub use std::collections::BTreeMap;

pub use hybridcs_coding::LowResCodec;
use hybridcs_core::experiment::default_training_windows;
use hybridcs_core::telemetry::FrameCodec;
pub use hybridcs_core::{
    train_lowres_codec, HybridFrontEnd, LadderRung, SupervisedWindow, SystemConfig,
};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
pub use hybridcs_faults::{ArqConfig, CrashPlan, CrashingStore, MemStore, TailFault};
pub use hybridcs_gateway::{
    scan, FileStore, Gateway, GatewayConfig, GatewayError, Record, SessionPhase,
};

pub struct Rig {
    pub system: SystemConfig,
    pub codec: LowResCodec,
    pub frontend: HybridFrontEnd,
    pub wire: FrameCodec,
    pub windows: Vec<Vec<f64>>,
}

pub fn rig() -> Rig {
    let system = SystemConfig {
        measurements: 64,
        ..SystemConfig::default()
    };
    let codec =
        train_lowres_codec(system.lowres_bits, &default_training_windows(system.window)).unwrap();
    let frontend = HybridFrontEnd::new(&system, codec.clone()).unwrap();
    let wire = FrameCodec::new(&system).unwrap();
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).unwrap();
    let strip = generator.generate(8.0, 0xC4A5);
    let windows = strip
        .chunks_exact(system.window)
        .take(8)
        .map(<[f64]>::to_vec)
        .collect();
    Rig {
        system,
        codec,
        frontend,
        wire,
        windows,
    }
}

impl Rig {
    pub fn frame(&self, seq: u32) -> Vec<u8> {
        let encoded = self
            .frontend
            .encode(&self.windows[seq as usize % self.windows.len()])
            .unwrap();
        self.wire.serialize(seq, &encoded).unwrap()
    }

    pub fn shapes(&self) -> Vec<(SystemConfig, LowResCodec)> {
        vec![(self.system.clone(), self.codec.clone())]
    }
}

/// Every record durable the moment it is appended (kill points then line
/// up with journal records one-to-one) and checkpoints every few events.
pub fn sweep_config() -> GatewayConfig {
    GatewayConfig {
        admit_quota: 0, // low-res rung only: keeps the sweep fast
        arq: ArqConfig {
            max_retries_per_frame: 1,
            ..ArqConfig::default()
        },
        journal_group_bytes: 0,
        checkpoint_every: 6,
        ..GatewayConfig::default()
    }
}

/// One scripted gateway API call. The script is the ground truth both
/// the crashing run and the oracle execute.
#[derive(Clone, Copy)]
pub enum Op {
    Handshake(u64),
    Push(u64, u32),
    NotifyLost(u64, u32),
    TakeNacks(u64),
    Flush,
    TakeOutputs(u64),
    Close(u64),
    Checkpoint,
}

pub const SESSION_IDS: [u64; 2] = [1, 2];

/// Two interleaved sessions; session 1 loses frame 1 on the wire and its
/// retransmission too, so the script walks the whole repair state
/// machine (nack → notify_lost → concealment) around flushes, output
/// drains, an explicit checkpoint, and a close.
pub fn script() -> Vec<Op> {
    vec![
        Op::Handshake(1),
        Op::Push(1, 0),
        Op::Handshake(2),
        Op::Push(2, 0),
        Op::Push(1, 2),
        Op::TakeNacks(1),
        Op::Push(2, 1),
        Op::Flush,
        Op::TakeOutputs(2),
        Op::NotifyLost(1, 1),
        Op::Flush,
        Op::TakeOutputs(1),
        Op::Push(1, 3),
        Op::Push(2, 2),
        Op::Checkpoint,
        Op::Push(1, 4),
        Op::Close(2),
        Op::Push(1, 5),
        Op::Flush,
        Op::Close(1),
    ]
}

/// Applies one op, folding any delivered windows into `sink`.
pub fn drive(
    gateway: &mut Gateway,
    rig: &Rig,
    op: Op,
    sink: &mut BTreeMap<u64, Vec<SupervisedWindow>>,
) -> Result<(), GatewayError> {
    match op {
        Op::Handshake(id) => gateway.handshake(id, &rig.system, rig.codec.clone()),
        Op::Push(id, seq) => gateway.push(id, &rig.frame(seq)),
        Op::NotifyLost(id, seq) => gateway.notify_lost(id, seq),
        Op::TakeNacks(id) => gateway.take_nacks(id).map(|_| ()),
        Op::Flush => gateway.flush().map(|_| ()),
        Op::TakeOutputs(id) => gateway
            .take_outputs(id)
            .map(|w| sink.entry(id).or_default().extend(w)),
        Op::Close(id) => gateway
            .close(id)
            .map(|w| sink.entry(id).or_default().extend(w)),
        Op::Checkpoint => gateway.checkpoint(),
    }
}

/// The oracle: executes the durable record prefix directly on a fresh
/// non-journaling gateway via the public API — the state recovery must
/// reproduce, whether it restored a checkpoint or replayed from genesis.
pub fn oracle_from_records(records: &[Record], rig: &Rig, config: GatewayConfig) -> Gateway {
    let mut gateway = Gateway::new(config).unwrap();
    for record in records {
        match record {
            Record::Handshake { id, .. } => {
                let _ = gateway.handshake(*id, &rig.system, rig.codec.clone());
            }
            Record::Push { id, packet } => {
                let _ = gateway.push(*id, packet);
            }
            Record::NotifyLost { id, sequence } => {
                let _ = gateway.notify_lost(*id, *sequence);
            }
            Record::TakeNacks { id } => {
                let _ = gateway.take_nacks(*id);
            }
            Record::Flush => {
                let _ = gateway.flush();
            }
            Record::TakeOutputs { id } => {
                let _ = gateway.take_outputs(*id);
            }
            Record::Close { id } => {
                let _ = gateway.close(*id);
            }
            Record::Genesis { .. } | Record::Checkpoint(_) => {}
        }
    }
    gateway
}

pub fn assert_windows_eq(a: &[SupervisedWindow], b: &[SupervisedWindow], context: &str) {
    assert_eq!(a.len(), b.len(), "output count diverged: {context}");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.sequence, y.sequence, "sequence of window {i}: {context}");
        assert_eq!(x.rung, y.rung, "rung of window {i}: {context}");
        assert_eq!(
            x.demotions, y.demotions,
            "demotions of window {i}: {context}"
        );
        let xb: Vec<u64> = x.signal.iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u64> = y.signal.iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb, "signal bits of window {i}: {context}");
    }
}

/// Drains both gateways to exhaustion and demands bit-identical results:
/// same phases, same pending nacks, same remaining outputs.
pub fn assert_equivalent(recovered: &mut Gateway, oracle: &mut Gateway, context: &str) {
    for id in SESSION_IDS {
        assert_eq!(
            recovered.phase(id),
            oracle.phase(id),
            "phase of session {id}: {context}"
        );
        let live = matches!(recovered.phase(id), Some(p) if p != SessionPhase::Closed);
        if !live {
            continue;
        }
        assert_eq!(
            recovered.take_nacks(id).unwrap(),
            oracle.take_nacks(id).unwrap(),
            "pending nacks of session {id}: {context}"
        );
        let a = recovered.close(id).unwrap();
        let b = oracle.close(id).unwrap();
        assert_windows_eq(&a, &b, &format!("close of session {id}: {context}"));
    }
}
