//! Crash/recovery equivalence: kill the journal store at every record
//! boundary under every tail fault, recover, and demand the rebuilt
//! gateway be indistinguishable from one that executed the durable
//! command prefix directly. This is the determinism contract doing
//! double duty: replay *is* re-execution, so recovered outputs must be
//! bit-identical.

mod common;
use common::*;

#[test]
fn kill_point_sweep_recovers_the_durable_prefix_bit_identically() {
    let rig = rig();
    let shapes = rig.shapes();
    let config = sweep_config();

    // Uninterrupted reference run, to size the sweep.
    let reference_store = MemStore::new();
    let mut reference = Gateway::with_journal(config, Box::new(reference_store.clone())).unwrap();
    let mut reference_sink = BTreeMap::new();
    for op in script() {
        drive(&mut reference, &rig, op, &mut reference_sink).unwrap();
    }
    let total_records = scan(&reference_store.snapshot()).records.len() as u64;
    assert!(total_records > 20, "script should journal a real log");

    let faults = [
        TailFault::Clean,
        TailFault::TornWrite(3),
        TailFault::FlipBit(41),
        TailFault::Garbage(9),
    ];
    let mut checkpoints_restored = 0usize;
    for kill_at in 0..total_records {
        for fault in faults {
            let context = format!("kill_at={kill_at} fault={}", fault.name());
            let store = CrashingStore::new(
                MemStore::new(),
                CrashPlan {
                    kill_at_record: kill_at,
                    tail: fault,
                },
            );
            let image = store.image();
            // Drive until the crash surfaces as a journal error. Killing
            // record 0 fails construction itself.
            let mut sink = BTreeMap::new();
            let mut crashed = false;
            match Gateway::with_journal(config, Box::new(store)) {
                Err(GatewayError::Journal(_)) => crashed = true,
                Err(e) => panic!("unexpected construction error ({context}): {e}"),
                Ok(mut gateway) => {
                    for op in script() {
                        match drive(&mut gateway, &rig, op, &mut sink) {
                            Ok(()) => {}
                            Err(GatewayError::Journal(_)) => {
                                crashed = true;
                                break;
                            }
                            Err(e) => panic!("unexpected script error ({context}): {e}"),
                        }
                    }
                }
            }
            assert!(crashed, "the plan must fire within the script ({context})");

            let surviving = image.snapshot();
            let durable = scan(&surviving);
            let (mut recovered, report) =
                Gateway::recover(config, Box::new(MemStore::from_bytes(surviving)), &shapes)
                    .unwrap_or_else(|e| panic!("recovery failed ({context}): {e}"));
            // Corrupt tails are CRC-detected and reported; a clean kill
            // leaves no wreckage behind.
            match fault {
                TailFault::Clean => assert!(!report.torn_tail, "clean kill torn ({context})"),
                _ => assert!(report.torn_tail, "corrupt tail undetected ({context})"),
            }
            if report.checkpoint_restored {
                checkpoints_restored += 1;
            }
            let mut oracle = oracle_from_records(&durable.records, &rig, config);
            assert_equivalent(&mut recovered, &mut oracle, &context);
        }
    }
    assert!(
        checkpoints_restored > 0,
        "the sweep should exercise checkpoint restore, not just replay"
    );
}

#[test]
fn recovery_reproduces_full_solver_outputs_bit_identically() {
    let rig = rig();
    let shapes = rig.shapes();
    // Real solves this time: recovery must re-run the solver and land on
    // the same bits.
    let config = GatewayConfig {
        journal_group_bytes: 0,
        checkpoint_every: 4,
        ..GatewayConfig::default()
    };
    let store = CrashingStore::new(
        MemStore::new(),
        CrashPlan {
            kill_at_record: 9,
            tail: TailFault::TornWrite(5),
        },
    );
    let image = store.image();
    let mut gateway = Gateway::with_journal(config, Box::new(store)).unwrap();
    let mut sink = BTreeMap::new();
    let mut crashed = false;
    for op in script() {
        if let Err(GatewayError::Journal(_)) = drive(&mut gateway, &rig, op, &mut sink) {
            crashed = true;
            break;
        }
    }
    assert!(crashed);

    let surviving = image.snapshot();
    let durable = scan(&surviving);
    let (mut recovered, _) =
        Gateway::recover(config, Box::new(MemStore::from_bytes(surviving)), &shapes).unwrap();
    let mut oracle = oracle_from_records(&durable.records, &rig, config);
    let a = recovered.close(1).unwrap();
    let b = oracle.close(1).unwrap();
    assert!(
        a.iter().any(|w| w.rung == LadderRung::Hybrid),
        "the crashed prefix should contain at least one full solve"
    );
    assert_windows_eq(&a, &b, "full-solver session 1");
}

#[test]
fn recovered_gateway_resumes_journaling_and_survives_a_second_crashless_run() {
    let rig = rig();
    let shapes = rig.shapes();
    let config = sweep_config();
    let store = CrashingStore::new(
        MemStore::new(),
        CrashPlan {
            kill_at_record: 12,
            tail: TailFault::Garbage(17),
        },
    );
    let image = store.image();
    let mut gateway = Gateway::with_journal(config, Box::new(store)).unwrap();
    let mut sink = BTreeMap::new();
    for op in script() {
        if drive(&mut gateway, &rig, op, &mut sink).is_err() {
            break;
        }
    }

    // Recover onto a store we keep a shared handle to: the garbage tail
    // is CRC-detected, truncated, and appends resume after it.
    let recovered_store = MemStore::from_bytes(image.snapshot());
    let shared = recovered_store.clone();
    let (mut resumed, report) =
        Gateway::recover(config, Box::new(recovered_store), &shapes).unwrap();
    assert!(report.torn_tail);
    assert!(report.truncated_bytes > 0);

    // Post-recovery traffic journals into the truncated image...
    resumed.push(1, &rig.frame(6)).unwrap();
    resumed.flush().unwrap();
    resumed.close(1).unwrap();

    // ...and a second recovery of that image reproduces it bit-for-bit.
    let final_image = shared.snapshot();
    let durable = scan(&final_image);
    assert!(!durable.torn, "the truncated-and-resumed image is clean");
    let (mut second, _) =
        Gateway::recover(config, Box::new(MemStore::from_bytes(final_image)), &shapes).unwrap();
    assert_eq!(second.phase(1), Some(SessionPhase::Closed));
    let mut oracle = oracle_from_records(&durable.records, &rig, config);
    assert_equivalent(&mut second, &mut oracle, "post-recovery journaling");
}

#[test]
fn file_store_round_trips_recovery_across_process_death() {
    let rig = rig();
    let shapes = rig.shapes();
    let config = sweep_config();
    let path = std::env::temp_dir().join(format!("hybridcs-journal-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);

    {
        let store = FileStore::open(&path).unwrap();
        let mut gateway = Gateway::with_journal(config, Box::new(store)).unwrap();
        let mut sink = BTreeMap::new();
        for op in script().into_iter().take(12) {
            drive(&mut gateway, &rig, op, &mut sink).unwrap();
        }
    } // the "process" dies here; journal_group_bytes 0 synced every record

    let store = FileStore::open(&path).unwrap();
    let (mut recovered, report) = Gateway::recover(config, Box::new(store), &shapes).unwrap();
    assert!(!report.torn_tail);
    assert!(report.replayed_events > 0 || report.checkpoint_restored);

    // Finish the script on the recovered gateway, journaling to the file.
    let mut sink = BTreeMap::new();
    for op in script().into_iter().skip(12) {
        drive(&mut recovered, &rig, op, &mut sink).unwrap();
    }
    assert_eq!(recovered.phase(1), Some(SessionPhase::Closed));
    assert_eq!(recovered.phase(2), Some(SessionPhase::Closed));
    drop(recovered);

    // The file now holds the stitched run; recovering it once more agrees
    // with an oracle over every durable record.
    let bytes = std::fs::read(&path).unwrap();
    let mut oracle = oracle_from_records(&scan(&bytes).records, &rig, config);
    let (mut third, _) =
        Gateway::recover(config, Box::new(FileStore::open(&path).unwrap()), &shapes).unwrap();
    assert_equivalent(&mut third, &mut oracle, "file store");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn recover_rejects_a_journal_from_a_different_config() {
    let rig = rig();
    let shapes = rig.shapes();
    let config = sweep_config();
    let store = MemStore::new();
    let mut gateway = Gateway::with_journal(config, Box::new(store.clone())).unwrap();
    gateway
        .handshake(1, &rig.system, rig.codec.clone())
        .unwrap();
    drop(gateway);

    let other = GatewayConfig {
        shards: 4,
        ..config
    };
    let result = Gateway::recover(other, Box::new(store), &shapes);
    assert!(
        matches!(result, Err(GatewayError::Recovery(_))),
        "config fingerprint mismatch must refuse recovery: {:?}",
        result.err()
    );
}

#[test]
fn recover_requires_the_session_shape_in_the_table() {
    let rig = rig();
    let config = sweep_config();
    let store = MemStore::new();
    let mut gateway = Gateway::with_journal(config, Box::new(store.clone())).unwrap();
    gateway
        .handshake(1, &rig.system, rig.codec.clone())
        .unwrap();
    gateway.push(1, &rig.frame(0)).unwrap();
    drop(gateway);

    let result = Gateway::recover(config, Box::new(store), &[]);
    assert!(
        matches!(result, Err(GatewayError::Recovery(_))),
        "a missing shape must refuse recovery: {:?}",
        result.err()
    );
}

#[test]
fn empty_store_recovers_to_a_fresh_journaling_gateway() {
    let rig = rig();
    let shapes = rig.shapes();
    let config = sweep_config();
    let store = MemStore::new();
    let shared = store.clone();
    let (mut gateway, report) = Gateway::recover(config, Box::new(store), &shapes).unwrap();
    assert_eq!(report.replayed_events, 0);
    assert!(!report.checkpoint_restored);
    gateway
        .handshake(3, &rig.system, rig.codec.clone())
        .unwrap();
    gateway.push(3, &rig.frame(0)).unwrap();
    let outputs = gateway.close(3).unwrap();
    assert_eq!(outputs.len(), 1);
    // The genesis record was installed, so the image is recoverable.
    let (third, _) = Gateway::recover(
        config,
        Box::new(MemStore::from_bytes(shared.snapshot())),
        &shapes,
    )
    .unwrap();
    assert_eq!(third.phase(3), Some(SessionPhase::Closed));
}
