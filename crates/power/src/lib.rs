//! Analytical power models for RMPI and hybrid CS front-ends.
//!
//! Section VI of the paper evaluates both architectures with the
//! block-level 90 nm power models of Chen, Chandrakasan & Stojanović
//! (*IEEE JSSC* 2012), not with silicon. This crate implements those
//! closed forms verbatim:
//!
//! * Eq. (4) — ADC array: `P_adc = (m/n)·FOM·2^B·fs`
//! * Eq. (5) — integrator + sample/hold:
//!   `P_int = 2·BW_f·m·V_DD²·10π·n·C_p/16`
//! * Eq. (9) — amplifiers:
//!   `P_amp = 2·BW·3mn·2^(2B_y)·G_A²·NEF²/V_DD · π(kT)²/q`
//!
//! Absolute values inherit every idealization of the source models; what
//! the paper (and this reproduction) actually uses them for is the *ratio*
//! between architectures at fixed reconstruction quality, which depends
//! only on the channel counts `m` — the amplifier term dominates by orders
//! of magnitude and scales linearly in `m`.
//!
//! # Example
//!
//! ```
//! use hybridcs_power::{hybrid_power, rmpi_power, PowerParams};
//!
//! let params = PowerParams::default();
//! // Paper operating points at 20 dB: normal CS needs m = 240, hybrid m = 96.
//! let normal = rmpi_power(240, 512, 360.0, &params);
//! let hybrid = hybrid_power(96, 512, 360.0, 7, &params);
//! let gain = normal.total_w() / hybrid.total_w();
//! assert!(gain > 2.0 && gain < 3.0, "power gain {gain}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Boltzmann constant in J/K.
const BOLTZMANN_J_PER_K: f64 = 1.380_649e-23;
/// Elementary charge in C.
const ELEMENTARY_CHARGE_C: f64 = 1.602_176_634e-19;

/// Technology and design constants for the power models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// ADC figure of merit in J per conversion step (the paper quotes
    /// ~100 fJ/conversion for modern ADCs).
    pub fom_j_per_conversion: f64,
    /// Supply voltage in volts.
    pub vdd_v: f64,
    /// Amplifier noise-efficiency factor (2–3 for the state of the art).
    pub nef: f64,
    /// Total voltage gain from amplifier input to ADC input, in dB (the
    /// paper uses 40 dB for an ECG front end).
    pub gain_db: f64,
    /// Absolute temperature in kelvin.
    pub temperature_k: f64,
    /// Dominant-pole capacitance `C_p` of the unloaded OTA, in farads.
    pub pole_capacitance_f: f64,
    /// CS-measurement ADC resolution `B` (= `B_y`), in bits; the paper
    /// transmits 12-bit measurements.
    pub measurement_bits: u32,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            fom_j_per_conversion: 100e-15,
            vdd_v: 1.0,
            nef: 2.5,
            gain_db: 40.0,
            temperature_k: 300.0,
            pole_capacitance_f: 1e-12,
            measurement_bits: 12,
        }
    }
}

impl PowerParams {
    /// Linear amplifier gain `G_A` from the dB figure.
    #[must_use]
    pub fn gain_linear(&self) -> f64 {
        10f64.powf(self.gain_db / 20.0)
    }
}

/// Per-block power of one front end, in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontEndPower {
    /// ADC array power (Eq. 4), plus the parallel low-resolution ADC for
    /// the hybrid architecture.
    pub adc_w: f64,
    /// Integrator and sample/hold power (Eq. 5).
    pub integrator_w: f64,
    /// Amplifier power (Eq. 9) — dominant in every configuration the paper
    /// considers.
    pub amplifier_w: f64,
}

impl FrontEndPower {
    /// Total power in watts.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.adc_w + self.integrator_w + self.amplifier_w
    }

    /// Total power in microwatts (the unit of Fig. 11's y-axis).
    #[must_use]
    pub fn total_uw(&self) -> f64 {
        self.total_w() * 1e6
    }
}

/// Eq. (4): power of the `m`-ADC array digitizing one measurement per
/// window of `n` Nyquist samples at rate `fs_hz`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn adc_power_w(m: usize, n: usize, fs_hz: f64, params: &PowerParams) -> f64 {
    assert!(n > 0, "window must be non-empty");
    (m as f64 / n as f64)
        * params.fom_j_per_conversion
        * 2f64.powi(params.measurement_bits as i32)
        * fs_hz
}

/// Power of a single Nyquist-rate ADC at `bits` resolution — the parallel
/// low-resolution path (same FOM model as Eq. 4 with `m = n`).
#[must_use]
pub fn nyquist_adc_power_w(bits: u32, fs_hz: f64, params: &PowerParams) -> f64 {
    params.fom_j_per_conversion * 2f64.powi(bits as i32) * fs_hz
}

/// Eq. (5): integrator and sample/hold power for `m` channels over
/// `n`-sample windows with signal bandwidth `bw_hz`.
#[must_use]
pub fn integrator_power_w(m: usize, n: usize, bw_hz: f64, params: &PowerParams) -> f64 {
    2.0 * bw_hz
        * m as f64
        * params.vdd_v
        * params.vdd_v
        * 10.0
        * std::f64::consts::PI
        * n as f64
        * params.pole_capacitance_f
        / 16.0
}

/// Eq. (9): amplifier power for `m` channels over `n`-sample windows with
/// signal bandwidth `bw_hz`.
#[must_use]
pub fn amplifier_power_w(m: usize, n: usize, bw_hz: f64, params: &PowerParams) -> f64 {
    let ga = params.gain_linear();
    let kt = BOLTZMANN_J_PER_K * params.temperature_k;
    2.0 * bw_hz
        * 3.0
        * (m * n) as f64
        * 2f64.powi(2 * params.measurement_bits as i32)
        * ga
        * ga
        * params.nef
        * params.nef
        / params.vdd_v
        * std::f64::consts::PI
        * kt
        * kt
        / ELEMENTARY_CHARGE_C
}

/// Full RMPI (normal CS) power breakdown at sampling rate `fs_hz` with `m`
/// parallel channels over `n`-sample windows. The signal bandwidth is
/// taken as the Nyquist bandwidth `fs/2`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn rmpi_power(m: usize, n: usize, fs_hz: f64, params: &PowerParams) -> FrontEndPower {
    let bw = fs_hz / 2.0;
    FrontEndPower {
        adc_w: adc_power_w(m, n, fs_hz, params),
        integrator_w: integrator_power_w(m, n, bw, params),
        amplifier_w: amplifier_power_w(m, n, bw, params),
    }
}

/// Hybrid-CS power breakdown: an RMPI with `m` channels plus the parallel
/// `lowres_bits` Nyquist ADC (whose power lands in the ADC bucket; it has
/// no per-channel amplifier or integrator — that is the whole point of the
/// design).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn hybrid_power(
    m: usize,
    n: usize,
    fs_hz: f64,
    lowres_bits: u32,
    params: &PowerParams,
) -> FrontEndPower {
    let mut power = rmpi_power(m, n, fs_hz, params);
    power.adc_w += nyquist_adc_power_w(lowres_bits, fs_hz, params);
    power
}

/// One row of a sampling-frequency sweep (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Sampling frequency in Hz.
    pub fs_hz: f64,
    /// Power breakdown at that frequency.
    pub power: FrontEndPower,
}

/// Logarithmic sampling-frequency sweep of an architecture's power
/// breakdown, reproducing the x-axis of Fig. 11 (`points` samples from
/// `fs_lo_hz` to `fs_hi_hz`, inclusive, geometrically spaced).
///
/// `build` maps a frequency to the architecture's breakdown — pass a
/// closure over [`rmpi_power`] or [`hybrid_power`].
///
/// # Panics
///
/// Panics if `points < 2` or the frequency range is not positive and
/// increasing.
#[must_use]
pub fn sweep_sampling_frequency(
    fs_lo_hz: f64,
    fs_hi_hz: f64,
    points: usize,
    mut build: impl FnMut(f64) -> FrontEndPower,
) -> Vec<SweepPoint> {
    assert!(points >= 2, "need at least two sweep points");
    assert!(
        fs_lo_hz > 0.0 && fs_hi_hz > fs_lo_hz,
        "frequency range must be positive and increasing"
    );
    let log_lo = fs_lo_hz.ln();
    let log_hi = fs_hi_hz.ln();
    (0..points)
        .map(|i| {
            let t = i as f64 / (points - 1) as f64;
            let fs = (log_lo + t * (log_hi - log_lo)).exp();
            SweepPoint {
                fs_hz: fs,
                power: build(fs),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> PowerParams {
        PowerParams::default()
    }

    #[test]
    fn adc_power_matches_formula() {
        // (96/512) · 100 fJ · 2^12 · 360 Hz
        let expected = 96.0 / 512.0 * 100e-15 * 4096.0 * 360.0;
        assert!((adc_power_w(96, 512, 360.0, &p()) - expected).abs() < 1e-20);
    }

    #[test]
    fn amplifier_dominates_at_ecg_rates() {
        // The paper: "the dominant part of power consumption — with a large
        // margin — is for amplifier".
        let power = rmpi_power(240, 512, 360.0, &p());
        assert!(power.amplifier_w > 10.0 * power.adc_w);
        assert!(power.amplifier_w > 10.0 * power.integrator_w);
    }

    #[test]
    fn power_scales_linearly_with_channels() {
        let p96 = rmpi_power(96, 512, 360.0, &p());
        let p240 = rmpi_power(240, 512, 360.0, &p());
        let ratio = p240.amplifier_w / p96.amplifier_w;
        assert!((ratio - 240.0 / 96.0).abs() < 1e-9);
    }

    #[test]
    fn paper_headline_2_5x_at_20db() {
        let normal = rmpi_power(240, 512, 360.0, &p());
        let hybrid = hybrid_power(96, 512, 360.0, 7, &p());
        let gain = normal.total_w() / hybrid.total_w();
        assert!((2.0..3.0).contains(&gain), "gain {gain}");
    }

    #[test]
    fn paper_headline_11x_at_17db() {
        let normal = rmpi_power(176, 512, 360.0, &p());
        let hybrid = hybrid_power(16, 512, 360.0, 7, &p());
        let gain = normal.total_w() / hybrid.total_w();
        assert!((9.0..13.0).contains(&gain), "gain {gain}");
    }

    #[test]
    fn lowres_adc_is_negligible() {
        // "the overall power consumption from this path should be
        // negligible compared to CS path."
        let lowres = nyquist_adc_power_w(7, 360.0, &p());
        let cs = rmpi_power(96, 512, 360.0, &p()).total_w();
        assert!(lowres < 1e-3 * cs, "lowres {lowres} vs cs {cs}");
    }

    #[test]
    fn sweep_is_monotone_in_frequency() {
        let params = p();
        let sweep =
            sweep_sampling_frequency(100.0, 1e8, 25, |fs| rmpi_power(240, 512, fs, &params));
        assert_eq!(sweep.len(), 25);
        assert!((sweep[0].fs_hz - 100.0).abs() < 1e-6);
        assert!((sweep[24].fs_hz - 1e8).abs() < 1.0);
        for pair in sweep.windows(2) {
            assert!(pair[1].power.total_w() > pair[0].power.total_w());
        }
    }

    #[test]
    fn totals_add_up() {
        let power = rmpi_power(96, 512, 360.0, &p());
        assert!(
            (power.total_w() - (power.adc_w + power.integrator_w + power.amplifier_w)).abs()
                < 1e-18
        );
        assert!((power.total_uw() - power.total_w() * 1e6).abs() < 1e-9);
    }

    #[test]
    fn gain_linear_conversion() {
        assert!((p().gain_linear() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn adc_power_rejects_zero_window() {
        let _ = adc_power_w(10, 0, 360.0, &p());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn sweep_rejects_single_point() {
        let params = p();
        let _ = sweep_sampling_frequency(1.0, 2.0, 1, |fs| rmpi_power(1, 512, fs, &params));
    }
}
