//! A bounded NACK/retry queue modelling link-layer ARQ.
//!
//! The paper's power argument lives or dies on radio duty cycle, so
//! retransmissions cannot be free: [`RetryQueue`] enforces a hard
//! retransmission *budget* (total retries across the whole run), a
//! per-frame retry cap, and a bounded queue — when any of the three is
//! exhausted the frame is abandoned and the receiver's decode ladder has
//! to conceal it instead.

use std::collections::VecDeque;

/// Limits for [`RetryQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArqConfig {
    /// Maximum retransmission attempts per frame.
    pub max_retries_per_frame: u32,
    /// Total retransmissions allowed across the run (the radio-energy
    /// budget).
    pub retransmission_budget: u64,
    /// Maximum frames queued for retry at once.
    pub queue_capacity: usize,
}

impl Default for ArqConfig {
    fn default() -> Self {
        ArqConfig {
            max_retries_per_frame: 2,
            retransmission_budget: 256,
            queue_capacity: 16,
        }
    }
}

/// Result of [`RetryQueue::nack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackOutcome {
    /// The frame was queued for retransmission.
    Queued,
    /// The frame already used its per-frame retry cap.
    RetriesExhausted,
    /// The run-wide retransmission budget is spent.
    BudgetExhausted,
    /// The retry queue is full.
    QueueFull,
}

impl NackOutcome {
    /// Stable lower-snake identifier (used as the metrics label).
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self {
            NackOutcome::Queued => "queued",
            NackOutcome::RetriesExhausted => "retries_exhausted",
            NackOutcome::BudgetExhausted => "budget_exhausted",
            NackOutcome::QueueFull => "queue_full",
        }
    }
}

/// A [`RetryQueue`]'s mutable state, detached from its configuration —
/// what a durability layer checkpoints. Restoring it into a fresh queue
/// of the same configuration reproduces identical ARQ verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArqState {
    /// Sequences queued for retransmission, oldest first.
    pub pending: Vec<u32>,
    /// `(sequence, attempts)` for frames with at least one attempt.
    pub attempts: Vec<(u32, u32)>,
    /// Retransmissions still allowed by the run-wide budget.
    pub budget_left: u64,
}

/// The bounded retry queue. Sequence numbers are the telemetry frame
/// sequence; the caller owns the actual frame bytes.
#[derive(Debug, Clone)]
pub struct RetryQueue {
    config: ArqConfig,
    pending: VecDeque<u32>,
    /// `(sequence, attempts)` for frames with at least one attempt.
    attempts: Vec<(u32, u32)>,
    budget_left: u64,
}

impl RetryQueue {
    /// An empty queue with the full budget.
    #[must_use]
    pub fn new(config: ArqConfig) -> Self {
        RetryQueue {
            config,
            pending: VecDeque::new(),
            attempts: Vec::new(),
            budget_left: config.retransmission_budget,
        }
    }

    /// Frames currently queued for retransmission.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Retransmissions still allowed by the run-wide budget.
    #[must_use]
    pub fn budget_remaining(&self) -> u64 {
        self.budget_left
    }

    /// The queue's mutable state, for checkpointing.
    #[must_use]
    pub fn state(&self) -> ArqState {
        ArqState {
            pending: self.pending.iter().copied().collect(),
            attempts: self.attempts.clone(),
            budget_left: self.budget_left,
        }
    }

    /// Restores previously captured state into this queue (which must be
    /// configured identically to the one that produced it).
    pub fn restore(&mut self, state: ArqState) {
        self.pending = state.pending.into();
        self.attempts = state.attempts;
        self.budget_left = state.budget_left;
    }

    fn attempts_for(&self, sequence: u32) -> u32 {
        self.attempts
            .iter()
            .find(|(s, _)| *s == sequence)
            .map_or(0, |(_, a)| *a)
    }

    /// Reports a lost/corrupt frame. Queues it for retransmission unless a
    /// limit says otherwise; every outcome is counted under
    /// `faults_arq_nacks_total{outcome}`.
    pub fn nack(&mut self, sequence: u32) -> NackOutcome {
        let outcome = if self.pending.contains(&sequence) {
            // Already scheduled; don't double-book the budget. Checked
            // before the budget/capacity limits: a duplicate NACK for a
            // queued frame commits no new resources, so it must not be
            // rejected (or mis-counted) by them.
            NackOutcome::Queued
        } else if self.attempts_for(sequence) >= self.config.max_retries_per_frame {
            NackOutcome::RetriesExhausted
        } else if u64::try_from(self.pending.len()).unwrap_or(u64::MAX) >= self.budget_left {
            // Everything already queued will consume the rest of the
            // budget; queueing more would overcommit it.
            NackOutcome::BudgetExhausted
        } else if self.pending.len() >= self.config.queue_capacity {
            NackOutcome::QueueFull
        } else {
            self.pending.push_back(sequence);
            NackOutcome::Queued
        };
        hybridcs_obs::global()
            .counter("faults_arq_nacks_total", &[("outcome", outcome.reason())])
            .inc();
        outcome
    }

    /// Takes the next frame to retransmit, consuming one unit of budget
    /// and one per-frame attempt. Returns `None` when nothing is queued or
    /// the budget is spent. Counted under `faults_arq_retries_total`.
    pub fn next_attempt(&mut self) -> Option<u32> {
        if self.budget_left == 0 {
            return None;
        }
        let sequence = self.pending.pop_front()?;
        self.budget_left -= 1;
        match self.attempts.iter_mut().find(|(s, _)| *s == sequence) {
            Some((_, a)) => *a += 1,
            None => self.attempts.push((sequence, 1)),
        }
        hybridcs_obs::global()
            .counter("faults_arq_retries_total", &[])
            .inc();
        Some(sequence)
    }

    /// Declares `sequence` lost for good: removes it from the retry queue
    /// so the budget slice reserved for it is released to other frames,
    /// and clears its attempt record. Call this when the receiver gives up
    /// on a frame (declare-lost) — without it, abandoned frames would sit
    /// in `pending` forever, pinning budget that
    /// [`nack`](RetryQueue::nack) counts as committed and starving live
    /// frames into [`NackOutcome::BudgetExhausted`]. Counted under
    /// `faults_arq_abandoned_total`.
    pub fn abandon(&mut self, sequence: u32) {
        self.pending.retain(|s| *s != sequence);
        self.attempts.retain(|(s, _)| *s != sequence);
        hybridcs_obs::global()
            .counter("faults_arq_abandoned_total", &[])
            .inc();
    }

    /// Reports that `sequence` finally arrived intact: clears its attempt
    /// record. Counted under `faults_arq_recovered_total`.
    pub fn resolve(&mut self, sequence: u32) {
        self.attempts.retain(|(s, _)| *s != sequence);
        self.pending.retain(|s| *s != sequence);
        hybridcs_obs::global()
            .counter("faults_arq_recovered_total", &[])
            .inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(max_retries: u32, budget: u64, capacity: usize) -> ArqConfig {
        ArqConfig {
            max_retries_per_frame: max_retries,
            retransmission_budget: budget,
            queue_capacity: capacity,
        }
    }

    #[test]
    fn nack_then_attempt_round_trip() {
        let mut q = RetryQueue::new(ArqConfig::default());
        assert_eq!(q.nack(7), NackOutcome::Queued);
        assert_eq!(q.pending(), 1);
        assert_eq!(q.next_attempt(), Some(7));
        assert_eq!(q.pending(), 0);
        assert_eq!(
            q.budget_remaining(),
            ArqConfig::default().retransmission_budget - 1
        );
        q.resolve(7);
        // After resolution the per-frame cap is reset.
        assert_eq!(q.nack(7), NackOutcome::Queued);
    }

    #[test]
    fn per_frame_cap_is_enforced() {
        let mut q = RetryQueue::new(config(2, 100, 10));
        for _ in 0..2 {
            assert_eq!(q.nack(3), NackOutcome::Queued);
            assert_eq!(q.next_attempt(), Some(3));
        }
        assert_eq!(q.nack(3), NackOutcome::RetriesExhausted);
    }

    #[test]
    fn budget_is_enforced() {
        let mut q = RetryQueue::new(config(10, 2, 10));
        assert_eq!(q.nack(1), NackOutcome::Queued);
        assert_eq!(q.nack(2), NackOutcome::Queued);
        // Budget (2) is fully committed to the queued frames.
        assert_eq!(q.nack(3), NackOutcome::BudgetExhausted);
        assert_eq!(q.next_attempt(), Some(1));
        assert_eq!(q.next_attempt(), Some(2));
        assert_eq!(q.budget_remaining(), 0);
        assert_eq!(q.nack(4), NackOutcome::BudgetExhausted);
        assert_eq!(q.next_attempt(), None);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let mut q = RetryQueue::new(config(1, 1000, 2));
        assert_eq!(q.nack(1), NackOutcome::Queued);
        assert_eq!(q.nack(2), NackOutcome::Queued);
        assert_eq!(q.nack(3), NackOutcome::QueueFull);
    }

    #[test]
    fn duplicate_nack_does_not_double_queue() {
        let mut q = RetryQueue::new(config(5, 100, 10));
        assert_eq!(q.nack(9), NackOutcome::Queued);
        assert_eq!(q.nack(9), NackOutcome::Queued);
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn abandon_releases_the_budget_slice() {
        // Regression: a declare-lost frame left in `pending` used to pin
        // its slice of the budget forever, starving later frames into
        // BudgetExhausted even though no retransmission ever happened.
        let mut q = RetryQueue::new(config(10, 2, 10));
        assert_eq!(q.nack(1), NackOutcome::Queued);
        assert_eq!(q.nack(2), NackOutcome::Queued);
        // Budget (2) fully committed to the queued frames.
        assert_eq!(q.nack(3), NackOutcome::BudgetExhausted);
        q.abandon(1);
        assert_eq!(q.pending(), 1);
        assert_eq!(q.budget_remaining(), 2, "no retransmission was spent");
        // The released slice is available again.
        assert_eq!(q.nack(3), NackOutcome::Queued);
        assert_eq!(q.next_attempt(), Some(2));
        assert_eq!(q.next_attempt(), Some(3));
        assert_eq!(q.budget_remaining(), 0);
        assert_eq!(q.next_attempt(), None);
    }

    #[test]
    fn abandon_clears_attempt_history() {
        let mut q = RetryQueue::new(config(1, 100, 10));
        assert_eq!(q.nack(5), NackOutcome::Queued);
        assert_eq!(q.next_attempt(), Some(5));
        assert_eq!(q.nack(5), NackOutcome::RetriesExhausted);
        q.abandon(5);
        // A fresh appearance of the sequence starts from zero attempts.
        assert_eq!(q.nack(5), NackOutcome::Queued);
    }

    #[test]
    fn duplicate_nack_of_queued_frame_is_exempt_from_limits() {
        // A duplicate NACK commits nothing new, so it must be reported
        // Queued even when budget/capacity are at their limits.
        let mut q = RetryQueue::new(config(10, 1, 1));
        assert_eq!(q.nack(1), NackOutcome::Queued);
        assert_eq!(q.nack(1), NackOutcome::Queued);
        assert_eq!(q.pending(), 1);
        assert_eq!(q.nack(2), NackOutcome::BudgetExhausted);
    }

    #[test]
    fn state_round_trips_verdicts() {
        let mut q = RetryQueue::new(config(2, 10, 10));
        assert_eq!(q.nack(1), NackOutcome::Queued);
        assert_eq!(q.next_attempt(), Some(1));
        assert_eq!(q.nack(1), NackOutcome::Queued);
        let state = q.state();
        let mut restored = RetryQueue::new(config(2, 10, 10));
        restored.restore(state);
        assert_eq!(restored.pending(), 1);
        assert_eq!(restored.budget_remaining(), 9);
        assert_eq!(restored.next_attempt(), Some(1));
        // The per-frame cap carries over: two attempts are now spent.
        assert_eq!(restored.nack(1), NackOutcome::RetriesExhausted);
        assert_eq!(q.next_attempt(), Some(1));
        assert_eq!(q.nack(1), NackOutcome::RetriesExhausted);
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let mut q = RetryQueue::new(ArqConfig::default());
        assert_eq!(q.next_attempt(), None);
    }
}
