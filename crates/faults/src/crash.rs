//! Crash and storage-fault injection for write-ahead journals.
//!
//! The gateway's durability story (DESIGN §12) is only as good as its
//! behaviour at the worst possible instant: mid-append, with the tail of
//! the journal torn, truncated, or bit-flipped. This module supplies the
//! storage side of that test surface:
//!
//! * [`JournalStore`] — the minimal append/read/truncate contract a
//!   write-ahead journal needs from its backing store. The production
//!   file backend lives with the journal (`hybridcs-gateway`); the
//!   injectable in-memory backend lives here.
//! * [`MemStore`] — an in-memory store whose byte image is shared behind
//!   an `Arc`, so a test harness can keep a handle, let the "process"
//!   (the gateway instance) die, and hand the surviving bytes to
//!   recovery — exactly the crash/restart lifecycle, minus the kernel.
//! * [`CrashingStore`] — a deterministic kill-point wrapper: counts
//!   appended journal *records* (the store understands the length-prefix
//!   framing, nothing else) and "crashes" when record number
//!   `kill_at_record` is offered — persisting everything before it,
//!   optionally corrupting the in-flight write per a [`TailFault`], and
//!   failing every subsequent operation with [`StoreError::Crashed`].
//!
//! The durability model matches a real `fsync` contract: bytes from
//! *completed* appends are never touched by a fault — only the append in
//! flight at the kill point can tear. That is what lets the crash soak
//! assert exact output equivalence: anything the gateway reported durable
//! really is.
//!
//! # Record framing (shared contract)
//!
//! A journal record on the wire is `[len: u32 LE][crc32: u32 LE][payload:
//! len bytes]`. This module walks that framing only to *count* records at
//! append time; it never validates CRCs or interprets payloads — that is
//! the journal reader's job.

use std::sync::{Arc, Mutex};

use hybridcs_rand::{Rng, SplitMix64};

/// Bytes of framing ahead of every journal record payload (`len` + `crc`).
pub const RECORD_HEADER_BYTES: usize = 8;

/// Errors surfaced by a [`JournalStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The injected crash point was reached (or the store was already
    /// dead); nothing after the surviving prefix was persisted.
    Crashed,
    /// A real backend I/O failure, stringified.
    Io(String),
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Crashed => write!(f, "journal store crashed at its kill point"),
            StoreError::Io(detail) => write!(f, "journal store i/o error: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// The backing-store contract for a write-ahead journal: append-only
/// writes, full reads for recovery, and truncation of an invalid tail.
///
/// An `append` that returns `Ok` is *durable*: a later
/// [`read_all`](JournalStore::read_all) — even across a crash — sees every
/// byte of it. An append that errors may have persisted any prefix of the
/// offered bytes (a torn write); recovery must tolerate that.
pub trait JournalStore {
    /// Appends `bytes` (one or more whole framed records) durably.
    ///
    /// # Errors
    ///
    /// [`StoreError::Crashed`] once a kill point fired, or
    /// [`StoreError::Io`] from a real backend.
    fn append(&mut self, bytes: &[u8]) -> Result<(), StoreError>;

    /// Reads the entire journal image (used once, at recovery).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] from a real backend.
    fn read_all(&mut self) -> Result<Vec<u8>, StoreError>;

    /// Discards everything past the first `len` bytes (recovery cuts the
    /// corrupt tail before resuming appends).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] from a real backend.
    fn truncate_to(&mut self, len: u64) -> Result<(), StoreError>;

    /// Current journal length in bytes.
    fn len(&self) -> u64;

    /// Whether the journal holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An in-memory [`JournalStore`] whose image is shared: clones see the
/// same bytes, so a harness can keep a handle across the death of the
/// gateway that owned the store (the crash/restart lifecycle in miniature).
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    image: Arc<Mutex<Vec<u8>>>,
}

impl MemStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        MemStore::default()
    }

    /// A store pre-loaded with a surviving journal image (recovery input).
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        MemStore {
            image: Arc::new(Mutex::new(bytes)),
        }
    }

    /// A copy of the current image (what a crash would leave on disk).
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        self.image.lock().expect("mem store lock").clone()
    }
}

impl JournalStore for MemStore {
    fn append(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.image
            .lock()
            .expect("mem store lock")
            .extend_from_slice(bytes);
        Ok(())
    }

    fn read_all(&mut self) -> Result<Vec<u8>, StoreError> {
        Ok(self.snapshot())
    }

    fn truncate_to(&mut self, len: u64) -> Result<(), StoreError> {
        let mut image = self.image.lock().expect("mem store lock");
        let keep = usize::try_from(len).unwrap_or(usize::MAX).min(image.len());
        image.truncate(keep);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.image.lock().expect("mem store lock").len() as u64
    }
}

/// What the in-flight write looks like after the crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailFault {
    /// Clean cut at a record boundary (power loss between sectors).
    Clean,
    /// The killing record is torn: only its first `n` bytes land.
    TornWrite(usize),
    /// One bit of the bytes written by the in-flight append is flipped
    /// (chosen by this index, modulo the bits actually written).
    FlipBit(u64),
    /// `n` seeded garbage bytes land where the record should have been.
    Garbage(usize),
}

impl TailFault {
    /// Stable lower-snake identifier (used as the metrics label).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TailFault::Clean => "clean",
            TailFault::TornWrite(_) => "torn_write",
            TailFault::FlipBit(_) => "flip_bit",
            TailFault::Garbage(_) => "garbage",
        }
    }
}

/// A deterministic crash plan: die when journal record number
/// `kill_at_record` (0-based, counted across the store's lifetime) is
/// offered for append, leaving the tail in the given [`TailFault`] state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Record index at which the store dies.
    pub kill_at_record: u64,
    /// Shape of the in-flight write's wreckage.
    pub tail: TailFault,
}

/// A [`JournalStore`] wrapper that executes a [`CrashPlan`]: records
/// before the kill point are durably forwarded to the inner [`MemStore`];
/// the kill record (and everything after) is lost or corrupted, and every
/// later operation fails with [`StoreError::Crashed`].
#[derive(Debug)]
pub struct CrashingStore {
    inner: MemStore,
    plan: CrashPlan,
    records_appended: u64,
    crashed: bool,
}

impl CrashingStore {
    /// Wraps `inner` with the given plan. Keep a [`MemStore`] clone (or
    /// call [`image`](CrashingStore::image)) to read the surviving bytes
    /// after the crash.
    #[must_use]
    pub fn new(inner: MemStore, plan: CrashPlan) -> Self {
        CrashingStore {
            inner,
            plan,
            records_appended: 0,
            crashed: false,
        }
    }

    /// A shared handle to the surviving byte image.
    #[must_use]
    pub fn image(&self) -> MemStore {
        self.inner.clone()
    }

    /// Whether the kill point has fired.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Whole records durably appended so far.
    #[must_use]
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// Splits a chunk of framed records into `(frame, rest)` slices; a
    /// malformed remainder comes back as one opaque frame so nothing is
    /// silently dropped.
    fn next_frame(bytes: &[u8]) -> (&[u8], &[u8]) {
        if bytes.len() < RECORD_HEADER_BYTES {
            return (bytes, &[]);
        }
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        let total = RECORD_HEADER_BYTES.saturating_add(len);
        if total > bytes.len() {
            return (bytes, &[]);
        }
        bytes.split_at(total)
    }

    /// Executes the crash: persists the surviving prefix plus the tail
    /// wreckage, latches the dead state, and counts the injection.
    fn crash(&mut self, kept: &mut Vec<u8>, killing_frame: &[u8]) -> StoreError {
        match self.plan.tail {
            TailFault::Clean => {}
            TailFault::TornWrite(n) => {
                let cut = n.min(killing_frame.len());
                kept.extend_from_slice(&killing_frame[..cut]);
            }
            TailFault::FlipBit(bit) => {
                // Corrupt only bytes written by THIS append: completed
                // appends are fsync-durable and must stay pristine.
                kept.extend_from_slice(killing_frame);
                if !kept.is_empty() {
                    let pos = (bit % (kept.len() as u64 * 8)) as usize;
                    kept[pos / 8] ^= 1 << (pos % 8);
                }
            }
            TailFault::Garbage(n) => {
                let mut rng = SplitMix64::new(0xDEAD ^ self.plan.kill_at_record);
                kept.extend((0..n).map(|_| (rng.next_u64() & 0xFF) as u8));
            }
        }
        if !kept.is_empty() {
            // The inner MemStore cannot fail; a real backend would be
            // torn by the crash no matter what it returns here.
            let _ = self.inner.append(kept);
        }
        self.crashed = true;
        hybridcs_obs::global()
            .counter(
                "faults_crash_injected_total",
                &[("tail", self.plan.tail.name())],
            )
            .inc();
        StoreError::Crashed
    }
}

impl JournalStore for CrashingStore {
    fn append(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        if self.crashed {
            return Err(StoreError::Crashed);
        }
        let mut kept = Vec::new();
        let mut rest = bytes;
        while !rest.is_empty() {
            let (frame, tail) = Self::next_frame(rest);
            if self.records_appended == self.plan.kill_at_record {
                return Err(self.crash(&mut kept, frame));
            }
            kept.extend_from_slice(frame);
            self.records_appended += 1;
            rest = tail;
        }
        self.inner.append(&kept)
    }

    fn read_all(&mut self) -> Result<Vec<u8>, StoreError> {
        if self.crashed {
            return Err(StoreError::Crashed);
        }
        self.inner.read_all()
    }

    fn truncate_to(&mut self, len: u64) -> Result<(), StoreError> {
        if self.crashed {
            return Err(StoreError::Crashed);
        }
        self.inner.truncate_to(len)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds one framed record with the given payload length (contents
    /// are the record index, so survivors are identifiable).
    fn frame(index: u8, payload_len: usize) -> Vec<u8> {
        let payload = vec![index; payload_len];
        let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + payload_len);
        out.extend_from_slice(&(payload_len as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // CRC is opaque here
        out.extend_from_slice(&payload);
        out
    }

    #[test]
    fn mem_store_round_trips_and_shares_its_image() {
        let mut store = MemStore::new();
        let handle = store.clone();
        store.append(b"abc").unwrap();
        store.append(b"def").unwrap();
        assert_eq!(store.len(), 6);
        assert_eq!(handle.snapshot(), b"abcdef");
        store.truncate_to(4).unwrap();
        assert_eq!(handle.snapshot(), b"abcd");
        assert_eq!(store.read_all().unwrap(), b"abcd");
    }

    #[test]
    fn kill_point_keeps_exactly_the_preceding_records() {
        let mut store = CrashingStore::new(
            MemStore::new(),
            CrashPlan {
                kill_at_record: 2,
                tail: TailFault::Clean,
            },
        );
        let image = store.image();
        store.append(&frame(0, 4)).unwrap();
        // Records 1 and 2 arrive in one group commit; only 1 survives.
        let mut group = frame(1, 4);
        group.extend_from_slice(&frame(2, 4));
        assert_eq!(store.append(&group), Err(StoreError::Crashed));
        assert!(store.crashed());
        let survived = image.snapshot();
        let mut expected = frame(0, 4);
        expected.extend_from_slice(&frame(1, 4));
        assert_eq!(survived, expected);
        // The dead store refuses everything.
        assert_eq!(store.append(&frame(3, 4)), Err(StoreError::Crashed));
        assert_eq!(store.read_all(), Err(StoreError::Crashed));
    }

    #[test]
    fn torn_write_persists_a_partial_record() {
        let mut store = CrashingStore::new(
            MemStore::new(),
            CrashPlan {
                kill_at_record: 1,
                tail: TailFault::TornWrite(5),
            },
        );
        let image = store.image();
        store.append(&frame(0, 4)).unwrap();
        assert_eq!(store.append(&frame(1, 4)), Err(StoreError::Crashed));
        let survived = image.snapshot();
        let whole = frame(0, 4);
        assert_eq!(&survived[..whole.len()], &whole[..]);
        assert_eq!(survived.len(), whole.len() + 5, "5 torn bytes of record 1");
    }

    #[test]
    fn flip_bit_corrupts_only_the_inflight_append() {
        let mut store = CrashingStore::new(
            MemStore::new(),
            CrashPlan {
                kill_at_record: 1,
                tail: TailFault::FlipBit(17),
            },
        );
        let image = store.image();
        store.append(&frame(0, 4)).unwrap();
        assert_eq!(store.append(&frame(1, 4)), Err(StoreError::Crashed));
        let survived = image.snapshot();
        let durable = frame(0, 4);
        assert_eq!(
            &survived[..durable.len()],
            &durable[..],
            "completed appends stay pristine"
        );
        let inflight = &survived[durable.len()..];
        let clean = frame(1, 4);
        assert_eq!(inflight.len(), clean.len());
        let flipped: u32 = inflight
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit differs");
    }

    #[test]
    fn garbage_tail_is_deterministic_per_plan() {
        let run = || {
            let mut store = CrashingStore::new(
                MemStore::new(),
                CrashPlan {
                    kill_at_record: 0,
                    tail: TailFault::Garbage(16),
                },
            );
            let image = store.image();
            assert_eq!(store.append(&frame(0, 4)), Err(StoreError::Crashed));
            image.snapshot()
        };
        let a = run();
        assert_eq!(a.len(), 16);
        assert_eq!(a, run(), "garbage is seeded by the plan");
    }

    #[test]
    fn malformed_chunk_is_treated_as_one_frame() {
        // A chunk whose header claims more bytes than offered must still
        // count as one record (nothing silently dropped, no panic).
        let mut store = CrashingStore::new(
            MemStore::new(),
            CrashPlan {
                kill_at_record: 10,
                tail: TailFault::Clean,
            },
        );
        let mut bogus = (100u32).to_le_bytes().to_vec();
        bogus.extend_from_slice(&[0u8; 6]);
        store.append(&bogus).unwrap();
        assert_eq!(store.records_appended(), 1);
        assert_eq!(store.len(), bogus.len() as u64);
    }
}
