//! The Gilbert–Elliott two-state burst channel.
//!
//! A hidden Markov chain alternates between a *good* and a *bad* state;
//! each state has its own packet-drop and bit-error probabilities. With
//! `drop_bad = 1` this is the standard burst-loss model for body-area
//! wireless links: losses arrive in runs whose mean length is
//! `1 / p_bad_to_good`, not independently.

use hybridcs_rand::rngs::StdRng;
use hybridcs_rand::{RngExt, SeedableRng};

/// Transition and corruption probabilities of the two-state channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliottConfig {
    /// Per-packet probability of moving good → bad.
    pub p_good_to_bad: f64,
    /// Per-packet probability of moving bad → good. Its reciprocal is the
    /// mean burst length in packets.
    pub p_bad_to_good: f64,
    /// Packet-drop probability while in the good state.
    pub drop_good: f64,
    /// Packet-drop probability while in the bad state.
    pub drop_bad: f64,
    /// Per-bit flip probability while in the good state (applied to
    /// packets that are not dropped).
    pub bit_error_good: f64,
    /// Per-bit flip probability while in the bad state.
    pub bit_error_bad: f64,
}

impl GilbertElliottConfig {
    /// A pure burst-loss channel calibrated to a stationary packet-loss
    /// rate of `target_loss` with mean burst length `mean_burst_len`
    /// packets: packets in the bad state are always dropped, packets in
    /// the good state always delivered, and no bits are flipped.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ target_loss < 1` and `mean_burst_len ≥ 1`.
    #[must_use]
    pub fn burst_loss(target_loss: f64, mean_burst_len: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&target_loss),
            "target_loss {target_loss} outside [0, 1)"
        );
        assert!(
            mean_burst_len >= 1.0 && mean_burst_len.is_finite(),
            "mean_burst_len {mean_burst_len} must be >= 1"
        );
        let mut p_bad_to_good = 1.0 / mean_burst_len;
        // Stationary bad-state mass π_bad = p_gb / (p_gb + p_bg) = target.
        let mut p_good_to_bad = if target_loss == 0.0 {
            0.0
        } else {
            target_loss * p_bad_to_good / (1.0 - target_loss)
        };
        if p_good_to_bad > 1.0 {
            // The requested burst length cannot realize this loss rate
            // (π_bad ≤ L/(L+1) when p_gb ≤ 1). Keep the rate — the primary
            // calibration — and lengthen the bursts instead.
            p_good_to_bad = 1.0;
            p_bad_to_good = (1.0 - target_loss) / target_loss;
        }
        GilbertElliottConfig {
            p_good_to_bad,
            p_bad_to_good,
            drop_good: 0.0,
            drop_bad: 1.0,
            bit_error_good: 0.0,
            bit_error_bad: 0.0,
        }
    }

    /// Stationary probability of the bad state,
    /// `π_bad = p_gb / (p_gb + p_bg)` (0 when the chain never leaves
    /// good).
    #[must_use]
    pub fn stationary_bad(&self) -> f64 {
        let total = self.p_good_to_bad + self.p_bad_to_good;
        if total == 0.0 {
            0.0
        } else {
            self.p_good_to_bad / total
        }
    }

    /// Long-run packet-drop rate,
    /// `π_good·drop_good + π_bad·drop_bad`.
    #[must_use]
    pub fn stationary_drop_rate(&self) -> f64 {
        let pi_bad = self.stationary_bad();
        (1.0 - pi_bad) * self.drop_good + pi_bad * self.drop_bad
    }

    fn validate(&self) {
        for (name, p) in [
            ("p_good_to_bad", self.p_good_to_bad),
            ("p_bad_to_good", self.p_bad_to_good),
            ("drop_good", self.drop_good),
            ("drop_bad", self.drop_bad),
            ("bit_error_good", self.bit_error_good),
            ("bit_error_bad", self.bit_error_bad),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} = {p} is not a probability"
            );
        }
    }
}

/// The seeded channel simulator. Packets stream through
/// [`GilbertElliott::transmit`]; the Markov state advances once per packet.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    config: GilbertElliottConfig,
    rng: StdRng,
    in_bad: bool,
}

impl GilbertElliott {
    /// A channel starting in the good state with a deterministic stream
    /// derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any probability in `config` is outside `[0, 1]`.
    #[must_use]
    pub fn new(config: GilbertElliottConfig, seed: u64) -> Self {
        config.validate();
        GilbertElliott {
            config,
            rng: StdRng::seed_from_u64(seed),
            in_bad: false,
        }
    }

    /// The channel's configuration.
    #[must_use]
    pub fn config(&self) -> &GilbertElliottConfig {
        &self.config
    }

    /// Whether the chain is currently in the bad state.
    #[must_use]
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }

    /// Sends one packet: advances the Markov state, then drops or
    /// bit-corrupts the packet according to the new state. Returns `None`
    /// for a dropped packet, otherwise the (possibly corrupted) bytes.
    pub fn transmit(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
        let flip = if self.in_bad {
            self.config.p_bad_to_good
        } else {
            self.config.p_good_to_bad
        };
        if self.rng.random_bool(flip) {
            self.in_bad = !self.in_bad;
        }
        let state = if self.in_bad { "bad" } else { "good" };
        let registry = hybridcs_obs::global();
        registry
            .counter("faults_channel_packets_total", &[("state", state)])
            .inc();

        let drop_p = if self.in_bad {
            self.config.drop_bad
        } else {
            self.config.drop_good
        };
        if self.rng.random_bool(drop_p) {
            registry
                .counter("faults_channel_dropped_total", &[("state", state)])
                .inc();
            return None;
        }

        let bit_p = if self.in_bad {
            self.config.bit_error_bad
        } else {
            self.config.bit_error_good
        };
        let mut bytes = packet.to_vec();
        if bit_p > 0.0 {
            let mut flips = 0u64;
            for byte in &mut bytes {
                for bit in 0..8 {
                    if self.rng.random_bool(bit_p) {
                        *byte ^= 1 << bit;
                        flips += 1;
                    }
                }
            }
            if flips > 0 {
                registry
                    .counter("faults_channel_bit_flips_total", &[])
                    .add(flips);
            }
        }
        Some(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_loss_calibration_matches_stationary_rate() {
        for target in [0.0, 0.05, 0.2, 0.5] {
            let config = GilbertElliottConfig::burst_loss(target, 4.0);
            assert!(
                (config.stationary_drop_rate() - target).abs() < 1e-12,
                "target {target}"
            );
        }
    }

    #[test]
    fn zero_loss_channel_delivers_everything_unchanged() {
        let mut ch = GilbertElliott::new(GilbertElliottConfig::burst_loss(0.0, 4.0), 7);
        let packet = [0xAB, 0xCD, 0xEF];
        for _ in 0..200 {
            assert_eq!(ch.transmit(&packet).as_deref(), Some(&packet[..]));
        }
    }

    #[test]
    fn total_loss_channel_drops_almost_everything() {
        // π_bad near 1: p_gb >> p_bg.
        let config = GilbertElliottConfig {
            p_good_to_bad: 0.99,
            p_bad_to_good: 0.01,
            drop_good: 0.0,
            drop_bad: 1.0,
            bit_error_good: 0.0,
            bit_error_bad: 0.0,
        };
        let mut ch = GilbertElliott::new(config, 11);
        let delivered = (0..1000).filter(|_| ch.transmit(&[0]).is_some()).count();
        assert!(delivered < 100, "delivered {delivered}/1000");
    }

    #[test]
    fn losses_arrive_in_bursts() {
        // With mean burst length 8 at 20% loss, consecutive-loss runs must
        // be much longer on average than the Bernoulli expectation (1.25).
        let mut ch = GilbertElliott::new(GilbertElliottConfig::burst_loss(0.2, 8.0), 13);
        let outcomes: Vec<bool> = (0..20_000).map(|_| ch.transmit(&[0]).is_some()).collect();
        let mut runs = Vec::new();
        let mut current = 0usize;
        for &ok in &outcomes {
            if ok {
                if current > 0 {
                    runs.push(current);
                    current = 0;
                }
            } else {
                current += 1;
            }
        }
        if current > 0 {
            runs.push(current);
        }
        let mean_run = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
        assert!(mean_run > 3.0, "mean loss-run length {mean_run}");
    }

    #[test]
    fn bit_errors_corrupt_without_dropping() {
        let config = GilbertElliottConfig {
            p_good_to_bad: 0.0,
            p_bad_to_good: 1.0,
            drop_good: 0.0,
            drop_bad: 0.0,
            bit_error_good: 0.05,
            bit_error_bad: 0.05,
        };
        let mut ch = GilbertElliott::new(config, 17);
        let packet = vec![0u8; 64];
        let mut corrupted = 0;
        for _ in 0..100 {
            let got = ch.transmit(&packet).expect("never drops");
            assert_eq!(got.len(), packet.len());
            if got != packet {
                corrupted += 1;
            }
        }
        assert!(corrupted > 50, "corrupted {corrupted}/100");
    }

    #[test]
    fn same_seed_same_trace() {
        let config = GilbertElliottConfig::burst_loss(0.3, 4.0);
        let mut a = GilbertElliott::new(config, 99);
        let mut b = GilbertElliott::new(config, 99);
        for _ in 0..500 {
            assert_eq!(a.transmit(&[1, 2, 3]), b.transmit(&[1, 2, 3]));
        }
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn rejects_non_probability() {
        let config = GilbertElliottConfig {
            p_good_to_bad: 1.5,
            p_bad_to_good: 0.1,
            drop_good: 0.0,
            drop_bad: 1.0,
            bit_error_good: 0.0,
            bit_error_bad: 0.0,
        };
        let _ = GilbertElliott::new(config, 0);
    }
}
