//! Analog/sensor-side fault models, applied to a window of samples
//! *before* the encoder sees it — the faults a front-end actually
//! suffers: rail saturation, electrode-contact pops, and lead-off
//! flat-lines. Amplitudes are in millivolts, the workspace's signal
//! unit (the MIT-BIH corpus spans ±5.12 mV).

use hybridcs_rand::rngs::StdRng;
use hybridcs_rand::{RngExt, SeedableRng};

/// ADC rail saturation: every sample is clipped into `[-limit, +limit]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcSaturation {
    /// Rail magnitude in millivolts (half the full-scale range).
    pub limit: f64,
}

impl AdcSaturation {
    /// Clips `window` into the rails in place. Returns how many samples
    /// were clipped.
    pub fn apply(&self, window: &mut [f64]) -> usize {
        let mut clipped = 0;
        for v in window.iter_mut() {
            let c = v.clamp(-self.limit, self.limit);
            if c != *v {
                *v = c;
                clipped += 1;
            }
        }
        clipped
    }
}

/// An electrode-pop transient: a step of `amplitude` millivolts at a
/// random onset that decays exponentially — the classic motion/contact
/// artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElectrodePop {
    /// Initial step amplitude in millivolts (sign chosen randomly per
    /// event).
    pub amplitude: f64,
    /// Per-sample exponential decay rate (e.g. 0.02 ⇒ ~50-sample tail).
    pub decay: f64,
}

impl ElectrodePop {
    /// Adds one pop with a random onset and sign to `window` in place.
    /// Returns the onset index.
    pub fn apply(&self, window: &mut [f64], rng: &mut StdRng) -> usize {
        let onset = rng.random_range(0..window.len());
        let sign = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
        for (k, v) in window[onset..].iter_mut().enumerate() {
            *v += sign * self.amplitude * (-self.decay * k as f64).exp();
        }
        onset
    }
}

/// A lead-off flat-line: from a random onset, `duration` samples hold the
/// last pre-onset value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatlineDropout {
    /// Number of samples held constant (clipped at the window edge).
    pub duration: usize,
}

impl FlatlineDropout {
    /// Flattens one run in `window` in place. Returns the onset index.
    pub fn apply(&self, window: &mut [f64], rng: &mut StdRng) -> usize {
        let onset = rng.random_range(0..window.len());
        let held = window[onset];
        let end = (onset + self.duration).min(window.len());
        for v in &mut window[onset..end] {
            *v = held;
        }
        onset
    }
}

/// Which fault kinds [`SensorFaultInjector::inject`] applied to a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorFault {
    /// Samples were clipped at the rails.
    Saturation,
    /// An electrode-pop transient was added.
    Pop,
    /// A flat-line run was written.
    Flatline,
}

impl SensorFault {
    /// Stable lower-snake identifier (used as the metrics label).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SensorFault::Saturation => "saturation",
            SensorFault::Pop => "pop",
            SensorFault::Flatline => "flatline",
        }
    }
}

/// Per-window fault probabilities and shapes for
/// [`SensorFaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorFaultConfig {
    /// Probability that a window suffers an electrode pop.
    pub p_pop: f64,
    /// The pop shape.
    pub pop: ElectrodePop,
    /// Probability that a window suffers a flat-line dropout.
    pub p_flatline: f64,
    /// The flat-line shape.
    pub flatline: FlatlineDropout,
    /// Saturation rails applied to every window *after* any transient
    /// (saturation is a property of the ADC, not a random event). `None`
    /// disables clipping.
    pub saturation: Option<AdcSaturation>,
}

impl Default for SensorFaultConfig {
    fn default() -> Self {
        SensorFaultConfig {
            p_pop: 0.05,
            pop: ElectrodePop {
                amplitude: 1.0, // 1 mV step — comparable to a QRS complex
                decay: 0.02,
            },
            p_flatline: 0.02,
            flatline: FlatlineDropout { duration: 64 },
            // The MIT-BIH ±5.12 mV rails.
            saturation: Some(AdcSaturation { limit: 5.12 }),
        }
    }
}

/// Seeded per-window fault injector. Every decision comes from one
/// [`StdRng`] stream, so a fault scenario is a pure function of
/// `(config, seed, windows)`.
#[derive(Debug, Clone)]
pub struct SensorFaultInjector {
    config: SensorFaultConfig,
    rng: StdRng,
}

impl SensorFaultInjector {
    /// A deterministic injector.
    ///
    /// # Panics
    ///
    /// Panics if a probability in `config` is outside `[0, 1]`.
    #[must_use]
    pub fn new(config: SensorFaultConfig, seed: u64) -> Self {
        for (name, p) in [("p_pop", config.p_pop), ("p_flatline", config.p_flatline)] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} = {p} is not a probability"
            );
        }
        SensorFaultInjector {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Mutates one sample window in place, possibly applying each enabled
    /// fault kind. Returns the faults applied (empty for a clean window).
    /// Every application is counted under
    /// `faults_sensor_injected_total{kind}`.
    pub fn inject(&mut self, window: &mut [f64]) -> Vec<SensorFault> {
        let mut applied = Vec::new();
        if window.is_empty() {
            return applied;
        }
        if self.rng.random_bool(self.config.p_pop) {
            self.config.pop.apply(window, &mut self.rng);
            applied.push(SensorFault::Pop);
        }
        if self.rng.random_bool(self.config.p_flatline) {
            self.config.flatline.apply(window, &mut self.rng);
            applied.push(SensorFault::Flatline);
        }
        if let Some(saturation) = self.config.saturation {
            if saturation.apply(window) > 0 {
                applied.push(SensorFault::Saturation);
            }
        }
        let registry = hybridcs_obs::global();
        for fault in &applied {
            registry
                .counter("faults_sensor_injected_total", &[("kind", fault.kind())])
                .inc();
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_clips_to_rails() {
        let sat = AdcSaturation { limit: 1.0 };
        let mut w = vec![-3.0, -1.0, 0.5, 2.0];
        assert_eq!(sat.apply(&mut w), 2);
        assert_eq!(w, vec![-1.0, -1.0, 0.5, 1.0]);
    }

    #[test]
    fn pop_decays_from_onset() {
        let pop = ElectrodePop {
            amplitude: 1.0,
            decay: 0.1,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut w = vec![0.0; 128];
        let onset = pop.apply(&mut w, &mut rng);
        assert!(w[..onset].iter().all(|&v| v == 0.0));
        assert!((w[onset].abs() - 1.0).abs() < 1e-12);
        // Strictly decaying magnitude after onset.
        for pair in w[onset..].windows(2) {
            assert!(pair[1].abs() < pair[0].abs() + 1e-12);
        }
    }

    #[test]
    fn flatline_holds_value() {
        let flat = FlatlineDropout { duration: 10 };
        let mut rng = StdRng::seed_from_u64(5);
        let mut w: Vec<f64> = (0..64).map(f64::from).collect();
        let onset = flat.apply(&mut w, &mut rng);
        let end = (onset + 10).min(64);
        assert!(w[onset..end].iter().all(|&v| v == onset as f64));
        if end < 64 {
            assert_eq!(w[end], end as f64);
        }
    }

    #[test]
    fn injector_is_deterministic() {
        let config = SensorFaultConfig {
            p_pop: 0.5,
            p_flatline: 0.5,
            ..SensorFaultConfig::default()
        };
        let mut a = SensorFaultInjector::new(config, 42);
        let mut b = SensorFaultInjector::new(config, 42);
        for i in 0..50 {
            let base: Vec<f64> = (0..256)
                .map(|k| 1e-3 * ((k + i) as f64 * 0.1).sin())
                .collect();
            let mut wa = base.clone();
            let mut wb = base;
            assert_eq!(a.inject(&mut wa), b.inject(&mut wb));
            assert_eq!(wa, wb);
        }
    }

    #[test]
    fn zero_probability_injector_is_identity_within_rails() {
        let config = SensorFaultConfig {
            p_pop: 0.0,
            p_flatline: 0.0,
            saturation: None,
            ..SensorFaultConfig::default()
        };
        let mut inj = SensorFaultInjector::new(config, 1);
        let base: Vec<f64> = (0..128).map(|k| (k as f64 * 0.3).cos()).collect();
        let mut w = base.clone();
        assert!(inj.inject(&mut w).is_empty());
        assert_eq!(w, base);
    }

    #[test]
    fn empty_window_is_a_noop() {
        let mut inj = SensorFaultInjector::new(
            SensorFaultConfig {
                p_pop: 1.0,
                p_flatline: 1.0,
                ..SensorFaultConfig::default()
            },
            9,
        );
        let mut w: Vec<f64> = Vec::new();
        assert!(inj.inject(&mut w).is_empty());
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(SensorFault::Saturation.kind(), "saturation");
        assert_eq!(SensorFault::Pop.kind(), "pop");
        assert_eq!(SensorFault::Flatline.kind(), "flatline");
    }
}
