//! Deterministic fault injection for the hybrid compressed-sensing
//! pipeline.
//!
//! Everything a wireless body-sensor deployment breaks — and nothing the
//! clean-path golden tests depend on — lives here, behind seeds from
//! [`hybridcs_rand`] so every fault scenario replays bit-identically:
//!
//! * [`GilbertElliott`] — the classic two-state burst channel for the
//!   telemetry wire: correlated packet loss and state-dependent bit
//!   errors, with closed-form stationary rates for calibration
//!   ([`GilbertElliottConfig::stationary_drop_rate`]).
//! * [`SensorFaultInjector`] — analog-side faults applied to a sample
//!   window before encoding: ADC saturation ([`AdcSaturation`]),
//!   electrode-pop transients ([`ElectrodePop`]), and flat-line dropouts
//!   ([`FlatlineDropout`]).
//! * [`RetryQueue`] — a bounded NACK/retry queue modelling a link-layer
//!   ARQ with a hard retransmission budget, so resilience experiments can
//!   charge retransmissions against the power model instead of assuming a
//!   perfect wire.
//! * [`FaultyTransport`] — a socket-layer byte-stream wrapper (seeded
//!   Gilbert–Elliott message loss and bit flips, adjacent reorder,
//!   partial-write splitting) so an ingest soak can inject faults below
//!   the frame layer, where the wire codec's CRC and resync logic must
//!   catch them.
//! * [`CrashingStore`] — deterministic crash/storage-fault injection for
//!   write-ahead journals: kill-points keyed by record sequence number,
//!   with torn, bit-flipped, or garbage tail writes behind the
//!   [`JournalStore`] trait (in-memory backend here; the real-file
//!   backend lives with the gateway journal).
//!
//! All injected faults are counted in the [global metrics
//! registry](hybridcs_obs::global) under `faults_*` names, so a resilience
//! run can report exactly what it survived.
//!
//! The *receiving* half of the story — the decode ladder that degrades
//! gracefully under these faults — is `hybridcs_core`'s recovery
//! supervisor; this crate deliberately knows nothing about frames or
//! decoders so the two sides cannot accidentally collude.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arq;
mod channel;
mod crash;
mod sensor;
mod transport;

pub use arq::{ArqConfig, ArqState, NackOutcome, RetryQueue};
pub use channel::{GilbertElliott, GilbertElliottConfig};
pub use crash::{
    CrashPlan, CrashingStore, JournalStore, MemStore, StoreError, TailFault, RECORD_HEADER_BYTES,
};
pub use sensor::{
    AdcSaturation, ElectrodePop, FlatlineDropout, SensorFault, SensorFaultConfig,
    SensorFaultInjector,
};
pub use transport::{FaultyTransport, TransportFaultConfig};
