//! Socket-layer fault injection: a seeded byte-stream wrapper for
//! transports.
//!
//! [`GilbertElliott`] mangles *frames* — it decides whether one logical
//! packet survives. A real ingest tier talks to the kernel in *byte
//! chunks*, and the failure modes live at that layer: a message never
//! makes it out of a dying radio (loss), arrives with flipped bits
//! (corruption the CRC must catch), gets swapped with its neighbour by a
//! retrying link layer (reorder), or is split across several `write`
//! calls (partial writes that exercise every incremental-decode path).
//!
//! [`FaultyTransport`] wraps an outbound message stream with all four,
//! behind one seed, so a loopback soak can inject socket-layer faults
//! deterministically: offer each framed message to
//! [`send`](FaultyTransport::send) and write whatever chunks come back,
//! in order, to the real socket. The burst structure of loss and bit
//! errors comes from the same two-state [`GilbertElliott`] channel the
//! frame layer uses; reorder and splitting are independent Bernoulli
//! draws from a second seeded stream.
//!
//! Injected faults are counted in the [global metrics
//! registry](hybridcs_obs::global) under `faults_transport_*` names.

use hybridcs_rand::rngs::StdRng;
use hybridcs_rand::{Rng, RngExt, SeedableRng};

use crate::channel::{GilbertElliott, GilbertElliottConfig};

/// Policy for one [`FaultyTransport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportFaultConfig {
    /// The two-state burst channel deciding message loss and bit flips
    /// (state advances once per offered message).
    pub channel: GilbertElliottConfig,
    /// Probability that a surviving message is held back and emitted
    /// *after* the next surviving message (adjacent reorder).
    pub reorder: f64,
    /// Probability that an emitted chunk is split into two partial
    /// writes (content-preserving; stresses incremental decoders).
    pub split: f64,
}

impl TransportFaultConfig {
    /// A clean transport: no loss, no corruption, no reorder, no splits.
    #[must_use]
    pub fn clean() -> Self {
        TransportFaultConfig {
            channel: GilbertElliottConfig::burst_loss(0.0, 1.0),
            reorder: 0.0,
            split: 0.0,
        }
    }

    fn validate(&self) {
        for (name, p) in [("reorder", self.reorder), ("split", self.split)] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} = {p} is not a probability"
            );
        }
    }
}

/// The seeded socket-layer fault wrapper. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct FaultyTransport {
    config: TransportFaultConfig,
    channel: GilbertElliott,
    rng: StdRng,
    /// A message held back for adjacent reorder, released by the next
    /// surviving message (or [`flush`](FaultyTransport::flush)).
    held: Option<Vec<u8>>,
}

impl FaultyTransport {
    /// A transport whose fault schedule derives entirely from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any probability in `config` is outside `[0, 1]`.
    #[must_use]
    pub fn new(config: TransportFaultConfig, seed: u64) -> Self {
        config.validate();
        FaultyTransport {
            config,
            channel: GilbertElliott::new(config.channel, seed),
            rng: StdRng::seed_from_u64(seed ^ 0x7A05_F0A7_5EED_5EED),
            held: None,
        }
    }

    /// The transport's policy.
    #[must_use]
    pub fn config(&self) -> &TransportFaultConfig {
        &self.config
    }

    /// Offers one outbound message; returns the byte chunks to actually
    /// write, in order. An empty result means the message was dropped (or
    /// is being held for reorder — [`flush`](FaultyTransport::flush)
    /// releases it).
    pub fn send(&mut self, message: &[u8]) -> Vec<Vec<u8>> {
        let registry = hybridcs_obs::global();
        let Some(survived) = self.channel.transmit(message) else {
            registry
                .counter("faults_transport_dropped_total", &[])
                .inc();
            return Vec::new();
        };
        if survived != message {
            registry
                .counter("faults_transport_corrupted_total", &[])
                .inc();
        }
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(2);
        if let Some(earlier) = self.held.take() {
            // The held message trades places with this one: the newer
            // message goes out first, the older follows it.
            out.push(survived);
            out.push(earlier);
            registry
                .counter("faults_transport_reordered_total", &[])
                .inc();
        } else if self.rng.random_bool(self.config.reorder) {
            self.held = Some(survived);
            return Vec::new();
        } else {
            out.push(survived);
        }
        self.split_chunks(out)
    }

    /// Whether a message is currently held back for reorder. Callers can
    /// compare this across a [`send`](FaultyTransport::send) that
    /// returned no chunks to tell a drop (held state unchanged) from a
    /// reorder hold (newly held).
    #[must_use]
    pub fn held(&self) -> bool {
        self.held.is_some()
    }

    /// Releases any message held back for reorder (call at end of stream
    /// so the last message is not silently swallowed).
    pub fn flush(&mut self) -> Vec<Vec<u8>> {
        match self.held.take() {
            None => Vec::new(),
            Some(chunk) => self.split_chunks(vec![chunk]),
        }
    }

    /// Applies the partial-write fault to each chunk independently.
    fn split_chunks(&mut self, chunks: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            if chunk.len() >= 2 && self.rng.random_bool(self.config.split) {
                let cut = 1 + (self.rng.next_u64() % (chunk.len() as u64 - 1)) as usize;
                hybridcs_obs::global()
                    .counter("faults_transport_split_total", &[])
                    .inc();
                out.push(chunk[..cut].to_vec());
                out.push(chunk[cut..].to_vec());
            } else {
                out.push(chunk);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(loss: f64, reorder: f64, split: f64) -> TransportFaultConfig {
        TransportFaultConfig {
            channel: GilbertElliottConfig::burst_loss(loss, 2.0),
            reorder,
            split,
        }
    }

    fn messages(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i as u8; 16]).collect()
    }

    fn drain(transport: &mut FaultyTransport, msgs: &[Vec<u8>]) -> Vec<u8> {
        let mut stream = Vec::new();
        for m in msgs {
            for chunk in transport.send(m) {
                stream.extend_from_slice(&chunk);
            }
        }
        for chunk in transport.flush() {
            stream.extend_from_slice(&chunk);
        }
        stream
    }

    #[test]
    fn clean_transport_is_the_identity() {
        let mut t = FaultyTransport::new(TransportFaultConfig::clean(), 1);
        let msgs = messages(50);
        let stream = drain(&mut t, &msgs);
        assert_eq!(stream, msgs.concat());
    }

    #[test]
    fn same_seed_same_chunk_sequence() {
        let config = lossy(0.2, 0.3, 0.5);
        let mut a = FaultyTransport::new(config, 99);
        let mut b = FaultyTransport::new(config, 99);
        for m in messages(200) {
            assert_eq!(a.send(&m), b.send(&m));
        }
        assert_eq!(a.flush(), b.flush());
    }

    #[test]
    fn splits_preserve_content() {
        let config = lossy(0.0, 0.0, 1.0);
        let mut t = FaultyTransport::new(config, 7);
        let msgs = messages(40);
        let stream = drain(&mut t, &msgs);
        assert_eq!(stream, msgs.concat(), "splitting must not change bytes");
    }

    #[test]
    fn reorder_swaps_adjacent_messages_without_losing_any() {
        let config = lossy(0.0, 0.5, 0.0);
        let mut t = FaultyTransport::new(config, 21);
        let msgs = messages(100);
        let mut seen = Vec::new();
        for m in &msgs {
            for chunk in t.send(m) {
                seen.push(chunk);
            }
        }
        seen.extend(t.flush());
        assert_eq!(seen.len(), msgs.len(), "reorder must not drop messages");
        let mut sorted_seen = seen.clone();
        sorted_seen.sort();
        let mut sorted_msgs = msgs.clone();
        sorted_msgs.sort();
        assert_eq!(sorted_seen, sorted_msgs, "same multiset of messages");
        assert_ne!(seen, msgs, "at 50% reorder some pair must have swapped");
        // Adjacent reorder displaces a message by at most one slot.
        for (i, m) in seen.iter().enumerate() {
            let original = msgs.iter().position(|x| x == m).unwrap();
            assert!(
                original.abs_diff(i) <= 1,
                "message {original} landed at {i}"
            );
        }
    }

    #[test]
    fn lossy_transport_drops_roughly_the_stationary_rate() {
        let config = lossy(0.25, 0.0, 0.0);
        let mut t = FaultyTransport::new(config, 5);
        let msgs = messages(255);
        let mut delivered = 0usize;
        for m in &msgs {
            delivered += t.send(m).len();
        }
        delivered += t.flush().len();
        let rate = 1.0 - delivered as f64 / msgs.len() as f64;
        assert!((0.10..0.40).contains(&rate), "loss rate {rate}");
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn rejects_non_probability_reorder() {
        let _ = FaultyTransport::new(lossy(0.0, 1.5, 0.0), 0);
    }
}
