//! Property tests for the fault models, run through the workspace's
//! seeded `hybridcs_rand::check` harness (replay with
//! `HYBRIDCS_CHECK_SEED`).

use hybridcs_faults::{
    GilbertElliott, GilbertElliottConfig, SensorFaultConfig, SensorFaultInjector,
};
use hybridcs_rand::check::{check, f64_in, u64_any, zip3};
use hybridcs_rand::prop_assert;

/// The empirical drop rate of a long seeded run converges to the
/// closed-form stationary rate of the chain. Burst correlation inflates
/// the variance of the empirical mean by roughly the burst length, so the
/// tolerance is sized for the worst generated case (L = 10, N = 30 000).
#[test]
fn empirical_loss_rate_matches_stationary_distribution() {
    let gen = zip3(f64_in(0.02, 0.6), f64_in(1.0, 10.0), u64_any());
    check(
        "gilbert_elliott_stationary",
        &gen,
        |&(target, burst_len, seed)| {
            let config = GilbertElliottConfig::burst_loss(target, burst_len);
            let mut channel = GilbertElliott::new(config, seed);
            let packets = 30_000;
            let dropped = (0..packets)
                .filter(|_| channel.transmit(&[0u8; 4]).is_none())
                .count();
            let empirical = dropped as f64 / f64::from(packets);
            let expected = config.stationary_drop_rate();
            prop_assert!(
                (empirical - expected).abs() < 0.06,
                "empirical {empirical:.4} vs stationary {expected:.4} \
                 (target {target:.3}, burst {burst_len:.2})"
            );
            Ok(())
        },
    );
}

/// Two channels with the same config and seed produce identical
/// packet-by-packet outcomes.
#[test]
fn channel_is_deterministic() {
    let gen = zip3(f64_in(0.0, 0.9), f64_in(1.0, 8.0), u64_any());
    check(
        "gilbert_elliott_deterministic",
        &gen,
        |&(target, burst_len, seed)| {
            let config = GilbertElliottConfig::burst_loss(target, burst_len);
            let mut a = GilbertElliott::new(config, seed);
            let mut b = GilbertElliott::new(config, seed);
            for k in 0..512u16 {
                let payload = k.to_le_bytes();
                prop_assert!(a.transmit(&payload) == b.transmit(&payload));
            }
            Ok(())
        },
    );
}

/// Injected windows stay finite, and with saturation enabled they stay
/// inside the rails no matter which transient fired first.
#[test]
fn injected_windows_stay_finite_and_railed() {
    let gen = zip3(f64_in(0.0, 1.0), f64_in(0.0, 1.0), u64_any());
    check(
        "sensor_faults_bounded",
        &gen,
        |&(p_pop, p_flatline, seed)| {
            let limit = 5.12;
            let config = SensorFaultConfig {
                p_pop,
                p_flatline,
                ..SensorFaultConfig::default()
            };
            let mut injector = SensorFaultInjector::new(config, seed);
            for w in 0..16 {
                let mut window: Vec<f64> = (0..256)
                    .map(|k| 5.0 * ((k + 64 * w) as f64 * 0.07).sin())
                    .collect();
                injector.inject(&mut window);
                prop_assert!(window.iter().all(|v| v.is_finite()));
                prop_assert!(
                    window.iter().all(|v| v.abs() <= limit + 1e-15),
                    "sample escaped the rails"
                );
            }
            Ok(())
        },
    );
}
