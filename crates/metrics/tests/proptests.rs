//! Property-based tests for the evaluation metrics.

use hybridcs_metrics::{
    compression_ratio_percent, prd, prd_to_snr_db, snr_db, snr_to_prd, DiscretePdf, SummaryStats,
};
use proptest::prelude::*;

proptest! {
    /// PRD is zero iff the reconstruction is exact, positive otherwise,
    /// and scale-invariant.
    #[test]
    fn prd_basic_properties(x in prop::collection::vec(0.1..100.0f64, 1..64), k in 0.1..10.0f64) {
        prop_assert_eq!(prd(&x, &x), 0.0);
        let scaled: Vec<f64> = x.iter().map(|v| v * k).collect();
        let perturbed: Vec<f64> = x.iter().map(|v| v + 1.0).collect();
        let scaled_perturbed: Vec<f64> = perturbed.iter().map(|v| v * k).collect();
        let a = prd(&x, &perturbed);
        let b = prd(&scaled, &scaled_perturbed);
        prop_assert!(a > 0.0);
        prop_assert!((a - b).abs() < 1e-6 * a, "scale invariance: {} vs {}", a, b);
    }

    /// PRD↔SNR conversions are mutually inverse.
    #[test]
    fn prd_snr_bijection(p in 0.001..500.0f64) {
        let s = prd_to_snr_db(p);
        prop_assert!((snr_to_prd(s) - p).abs() < 1e-9 * p.max(1.0));
    }

    /// SNR decreases as error grows.
    #[test]
    fn snr_monotone_in_error(x in prop::collection::vec(0.5..10.0f64, 4..32), e in 0.01..1.0f64) {
        let small: Vec<f64> = x.iter().map(|v| v + e).collect();
        let large: Vec<f64> = x.iter().map(|v| v + 2.0 * e).collect();
        prop_assert!(snr_db(&x, &small) > snr_db(&x, &large));
    }

    /// Eq. (3) algebra: CR of equal sizes is 0, of zero payload is 100.
    #[test]
    fn compression_ratio_identities(bits in 1usize..100_000) {
        prop_assert_eq!(compression_ratio_percent(bits, bits), 0.0);
        prop_assert_eq!(compression_ratio_percent(bits, 0), 100.0);
    }

    /// Summary statistics are order-invariant and internally ordered.
    #[test]
    fn summary_stats_invariants(mut xs in prop::collection::vec(-100.0..100.0f64, 1..64)) {
        let a = SummaryStats::from_samples(&xs).unwrap();
        xs.reverse();
        let b = SummaryStats::from_samples(&xs).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.min <= a.q1 + 1e-12);
        prop_assert!(a.q1 <= a.median + 1e-12);
        prop_assert!(a.median <= a.q3 + 1e-12);
        prop_assert!(a.q3 <= a.max + 1e-12);
        prop_assert!(a.whisker_low >= a.min - 1e-12);
        prop_assert!(a.whisker_high <= a.max + 1e-12);
        // Outliers + in-whisker samples account for the full sample.
        let inside = xs
            .iter()
            .filter(|v| **v >= a.whisker_low && **v <= a.whisker_high)
            .count();
        prop_assert_eq!(inside + a.outliers.len(), xs.len());
    }

    /// Empirical PDFs normalize and bound entropy by log2(support size).
    #[test]
    fn pdf_invariants(symbols in prop::collection::vec(-50i64..50, 1..512)) {
        let pdf = DiscretePdf::from_symbols(symbols.iter().copied());
        let total_p: f64 = pdf.points().iter().map(|(_, p)| p).sum();
        prop_assert!((total_p - 1.0).abs() < 1e-9);
        let support = pdf.counts().len() as f64;
        prop_assert!(pdf.entropy_bits() <= support.log2() + 1e-9);
        prop_assert!(pdf.entropy_bits() >= 0.0);
    }
}
