//! Property-based tests for the evaluation metrics, on the in-repo
//! `hybridcs_rand::check` harness (≥ 64 seeded cases each).

use hybridcs_metrics::{
    compression_ratio_percent, prd, prd_to_snr_db, snr_db, snr_to_prd, DiscretePdf, SummaryStats,
};
use hybridcs_rand::check::{check, f64_in, i64_in, usize_in, vec_of, zip2};
use hybridcs_rand::{prop_assert, prop_assert_eq};

/// PRD is zero iff the reconstruction is exact, positive otherwise,
/// and scale-invariant.
#[test]
fn prd_basic_properties() {
    check(
        "prd_basic_properties",
        &zip2(vec_of(f64_in(0.1, 100.0), 1, 64), f64_in(0.1, 10.0)),
        |(x, k)| {
            prop_assert_eq!(prd(x, x), 0.0);
            let scaled: Vec<f64> = x.iter().map(|v| v * k).collect();
            let perturbed: Vec<f64> = x.iter().map(|v| v + 1.0).collect();
            let scaled_perturbed: Vec<f64> = perturbed.iter().map(|v| v * k).collect();
            let a = prd(x, &perturbed);
            let b = prd(&scaled, &scaled_perturbed);
            prop_assert!(a > 0.0);
            prop_assert!((a - b).abs() < 1e-6 * a, "scale invariance: {} vs {}", a, b);
            Ok(())
        },
    );
}

/// PRD↔SNR conversions are mutually inverse.
#[test]
fn prd_snr_bijection() {
    check("prd_snr_bijection", &f64_in(0.001, 500.0), |p| {
        let s = prd_to_snr_db(*p);
        prop_assert!(
            (snr_to_prd(s) - p).abs() < 1e-9 * p.max(1.0),
            "{p} round-trips badly"
        );
        Ok(())
    });
}

/// SNR decreases as error grows.
#[test]
fn snr_monotone_in_error() {
    check(
        "snr_monotone_in_error",
        &zip2(vec_of(f64_in(0.5, 10.0), 4, 32), f64_in(0.01, 1.0)),
        |(x, e)| {
            let small: Vec<f64> = x.iter().map(|v| v + e).collect();
            let large: Vec<f64> = x.iter().map(|v| v + 2.0 * e).collect();
            prop_assert!(snr_db(x, &small) > snr_db(x, &large));
            Ok(())
        },
    );
}

/// Eq. (3) algebra: CR of equal sizes is 0, of zero payload is 100.
#[test]
fn compression_ratio_identities() {
    check(
        "compression_ratio_identities",
        &usize_in(1, 100_000),
        |bits| {
            prop_assert_eq!(compression_ratio_percent(*bits, *bits), 0.0);
            prop_assert_eq!(compression_ratio_percent(*bits, 0), 100.0);
            Ok(())
        },
    );
}

/// Summary statistics are order-invariant and internally ordered.
#[test]
fn summary_stats_invariants() {
    check(
        "summary_stats_invariants",
        &vec_of(f64_in(-100.0, 100.0), 1, 64),
        |xs| {
            let mut xs = xs.clone();
            let a = SummaryStats::from_samples(&xs).unwrap();
            xs.reverse();
            let b = SummaryStats::from_samples(&xs).unwrap();
            prop_assert_eq!(&a, &b);
            prop_assert!(a.min <= a.q1 + 1e-12);
            prop_assert!(a.q1 <= a.median + 1e-12);
            prop_assert!(a.median <= a.q3 + 1e-12);
            prop_assert!(a.q3 <= a.max + 1e-12);
            prop_assert!(a.whisker_low >= a.min - 1e-12);
            prop_assert!(a.whisker_high <= a.max + 1e-12);
            // Outliers + in-whisker samples account for the full sample.
            let inside = xs
                .iter()
                .filter(|v| **v >= a.whisker_low && **v <= a.whisker_high)
                .count();
            prop_assert_eq!(inside + a.outliers.len(), xs.len());
            Ok(())
        },
    );
}

/// Empirical PDFs normalize and bound entropy by log2(support size).
#[test]
fn pdf_invariants() {
    check(
        "pdf_invariants",
        &vec_of(i64_in(-50, 50), 1, 512),
        |symbols| {
            let pdf = DiscretePdf::from_symbols(symbols.iter().copied());
            let total_p: f64 = pdf.points().iter().map(|(_, p)| p).sum();
            prop_assert!((total_p - 1.0).abs() < 1e-9, "total probability {total_p}");
            let support = pdf.counts().len() as f64;
            prop_assert!(pdf.entropy_bits() <= support.log2() + 1e-9);
            prop_assert!(pdf.entropy_bits() >= 0.0);
            Ok(())
        },
    );
}
