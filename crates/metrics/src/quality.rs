//! Reconstruction-quality metrics: PRD, SNR and diagnostic grades.

/// Percentage root-mean-square difference between an original signal and
/// its reconstruction: `‖x − x̃‖₂ / ‖x‖₂ × 100`.
///
/// Returns `f64::INFINITY` when the reference has zero energy but the
/// reconstruction does not, and `0.0` when both are zero.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn prd(original: &[f64], reconstructed: &[f64]) -> f64 {
    assert_eq!(original.len(), reconstructed.len(), "prd: length mismatch");
    let mut err = 0.0;
    let mut energy = 0.0;
    for (x, y) in original.iter().zip(reconstructed) {
        let d = x - y;
        err += d * d;
        energy += x * x;
    }
    if energy == 0.0 {
        return if err == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (err / energy).sqrt() * 100.0
}

/// Converts a PRD percentage to the paper's SNR: `−20·log₁₀(0.01·PRD)`.
///
/// `PRD = 0` maps to `f64::INFINITY`.
#[must_use]
pub fn prd_to_snr_db(prd_percent: f64) -> f64 {
    if prd_percent <= 0.0 {
        return f64::INFINITY;
    }
    -20.0 * (0.01 * prd_percent).log10()
}

/// Converts an SNR in dB back to a PRD percentage.
#[must_use]
pub fn snr_to_prd(snr_db: f64) -> f64 {
    100.0 * 10f64.powf(-snr_db / 20.0)
}

/// Reconstruction SNR in dB, computed through the PRD definition.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn snr_db(original: &[f64], reconstructed: &[f64]) -> f64 {
    prd_to_snr_db(prd(original, reconstructed))
}

/// Diagnostic-quality grade per the Zigel et al. PRD bands used throughout
/// the ECG-compression literature (and implicitly by the paper when it
/// speaks of "good" reconstruction quality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QualityGrade {
    /// PRD < 2% — "very good" quality.
    VeryGood,
    /// 2% ≤ PRD < 9% — "good" quality.
    Good,
    /// PRD ≥ 9% — not acceptable for diagnosis.
    NotGood,
}

impl QualityGrade {
    /// Grades a PRD percentage.
    ///
    /// # Example
    ///
    /// ```
    /// use hybridcs_metrics::QualityGrade;
    ///
    /// assert_eq!(QualityGrade::from_prd(1.0), QualityGrade::VeryGood);
    /// assert_eq!(QualityGrade::from_prd(5.0), QualityGrade::Good);
    /// assert_eq!(QualityGrade::from_prd(20.0), QualityGrade::NotGood);
    /// ```
    #[must_use]
    pub fn from_prd(prd_percent: f64) -> Self {
        if prd_percent < 2.0 {
            QualityGrade::VeryGood
        } else if prd_percent < 9.0 {
            QualityGrade::Good
        } else {
            QualityGrade::NotGood
        }
    }

    /// Whether the grade is diagnostically acceptable ("good" or better).
    #[must_use]
    pub fn is_acceptable(self) -> bool {
        self != QualityGrade::NotGood
    }
}

impl std::fmt::Display for QualityGrade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QualityGrade::VeryGood => "very good",
            QualityGrade::Good => "good",
            QualityGrade::NotGood => "not good",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_reconstruction_is_zero_prd() {
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(prd(&x, &x), 0.0);
        assert_eq!(snr_db(&x, &x), f64::INFINITY);
    }

    #[test]
    fn known_prd_value() {
        // 10% amplitude error on a unit signal.
        let x = vec![1.0, 1.0, 1.0, 1.0];
        let y = vec![1.1, 1.1, 1.1, 1.1];
        assert!((prd(&x, &y) - 10.0).abs() < 1e-9);
        assert!((snr_db(&x, &y) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn prd_snr_roundtrip() {
        for p in [0.5, 2.0, 9.0, 50.0, 120.0] {
            let s = prd_to_snr_db(p);
            assert!((snr_to_prd(s) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_quality_anchor() {
        // The paper calls ~17 dB "reasonable": that's PRD ≈ 14%.
        let p = snr_to_prd(17.0);
        assert!((p - 14.125).abs() < 0.01, "prd {p}");
    }

    #[test]
    fn zero_reference_edge_cases() {
        assert_eq!(prd(&[0.0; 3], &[0.0; 3]), 0.0);
        assert_eq!(prd(&[0.0; 3], &[1.0, 0.0, 0.0]), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn prd_length_mismatch_panics() {
        let _ = prd(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn grades_partition_prd_axis() {
        assert_eq!(QualityGrade::from_prd(0.0), QualityGrade::VeryGood);
        assert_eq!(QualityGrade::from_prd(1.99), QualityGrade::VeryGood);
        assert_eq!(QualityGrade::from_prd(2.0), QualityGrade::Good);
        assert_eq!(QualityGrade::from_prd(8.99), QualityGrade::Good);
        assert_eq!(QualityGrade::from_prd(9.0), QualityGrade::NotGood);
        assert!(QualityGrade::Good.is_acceptable());
        assert!(!QualityGrade::NotGood.is_acceptable());
    }

    #[test]
    fn grade_display() {
        assert_eq!(QualityGrade::VeryGood.to_string(), "very good");
    }
}
