//! Box-plot summary statistics (Fig. 8 of the paper).

/// Five-number-plus summary of a sample: mean/std, median, quartiles,
/// Tukey whiskers (most extreme points within 1.5·IQR of the box) and
/// outliers — exactly the quantities MATLAB's `boxplot` (used by the
/// paper) draws.
///
/// # Example
///
/// ```
/// use hybridcs_metrics::SummaryStats;
///
/// let stats = SummaryStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
/// assert_eq!(stats.median, 3.0);
/// assert_eq!(stats.outliers, vec![100.0]);
/// assert_eq!(stats.whisker_high, 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryStats {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n = 1).
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// First quartile (25th percentile, linear interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
    /// Lower whisker: smallest sample ≥ `q1 − 1.5·IQR`.
    pub whisker_low: f64,
    /// Upper whisker: largest sample ≤ `q3 + 1.5·IQR`.
    pub whisker_high: f64,
    /// Samples outside the whiskers, ascending.
    pub outliers: Vec<f64>,
}

impl SummaryStats {
    /// Computes the summary; returns `None` for an empty slice or any
    /// non-finite sample.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let std_dev = if count > 1 {
            (sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count - 1) as f64)
                .sqrt()
        } else {
            0.0
        };
        let q1 = percentile(&sorted, 25.0);
        let median = percentile(&sorted, 50.0);
        let q3 = percentile(&sorted, 75.0);
        let iqr = q3 - q1;
        let low_fence = q1 - 1.5 * iqr;
        let high_fence = q3 + 1.5 * iqr;
        let whisker_low = *sorted
            .iter()
            .find(|&&v| v >= low_fence)
            .expect("q1 is inside the fence");
        let whisker_high = *sorted
            .iter()
            .rev()
            .find(|&&v| v <= high_fence)
            .expect("q3 is inside the fence");
        let outliers = sorted
            .iter()
            .copied()
            .filter(|&v| v < low_fence || v > high_fence)
            .collect();
        Some(SummaryStats {
            count,
            mean,
            std_dev,
            min: sorted[0],
            q1,
            median,
            q3,
            max: sorted[count - 1],
            whisker_low,
            whisker_high,
            outliers,
        })
    }
}

/// Linear-interpolation percentile of pre-sorted data (the common
/// `(n − 1)·p` convention, matching NumPy's default).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = (n - 1) as f64 * p / 100.0;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_odd_sample() {
        let s = SummaryStats::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quartiles_interpolate() {
        let s = SummaryStats::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.q1 - 1.75).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn outliers_are_detected() {
        let mut data: Vec<f64> = (1..=20).map(f64::from).collect();
        data.push(1000.0);
        let s = SummaryStats::from_samples(&data).unwrap();
        assert_eq!(s.outliers, vec![1000.0]);
        assert!(s.whisker_high <= 20.0);
        assert_eq!(s.max, 1000.0);
    }

    #[test]
    fn no_outliers_whiskers_hit_extremes() {
        let data: Vec<f64> = (1..=9).map(f64::from).collect();
        let s = SummaryStats::from_samples(&data).unwrap();
        assert!(s.outliers.is_empty());
        assert_eq!(s.whisker_low, 1.0);
        assert_eq!(s.whisker_high, 9.0);
    }

    #[test]
    fn single_sample() {
        let s = SummaryStats::from_samples(&[7.0]).unwrap();
        assert_eq!(s.median, 7.0);
        assert_eq!(s.q1, 7.0);
        assert_eq!(s.q3, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert!(s.outliers.is_empty());
    }

    #[test]
    fn rejects_empty_and_nan() {
        assert!(SummaryStats::from_samples(&[]).is_none());
        assert!(SummaryStats::from_samples(&[1.0, f64::NAN]).is_none());
        assert!(SummaryStats::from_samples(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn order_invariant() {
        let a = SummaryStats::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        let b = SummaryStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(a, b);
    }
}
