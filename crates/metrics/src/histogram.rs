//! Discrete PDF estimation over integer symbols (Fig. 4 of the paper).

use std::collections::BTreeMap;

/// An empirical probability mass function over `i64` symbols, built from
/// observed counts — the object plotted in the paper's Fig. 4 (PDF of
/// quantized-sample differences per bit depth).
///
/// # Example
///
/// ```
/// use hybridcs_metrics::DiscretePdf;
///
/// let pdf = DiscretePdf::from_symbols([0, 0, 0, 1, -1].iter().copied());
/// assert!((pdf.probability(0) - 0.6).abs() < 1e-12);
/// assert!((pdf.probability(1) - 0.2).abs() < 1e-12);
/// assert_eq!(pdf.probability(5), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiscretePdf {
    counts: BTreeMap<i64, u64>,
    total: u64,
}

impl DiscretePdf {
    /// Accumulates a PDF from a symbol stream.
    #[must_use]
    pub fn from_symbols<I: IntoIterator<Item = i64>>(symbols: I) -> Self {
        let mut counts = BTreeMap::new();
        let mut total = 0;
        for s in symbols {
            *counts.entry(s).or_insert(0u64) += 1;
            total += 1;
        }
        DiscretePdf { counts, total }
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Empirical probability of `symbol` (0 for unseen symbols or an empty
    /// PDF).
    #[must_use]
    pub fn probability(&self, symbol: i64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.get(&symbol).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Raw counts, ascending by symbol.
    #[must_use]
    pub fn counts(&self) -> &BTreeMap<i64, u64> {
        &self.counts
    }

    /// `(symbol, probability)` pairs, ascending by symbol.
    #[must_use]
    pub fn points(&self) -> Vec<(i64, f64)> {
        self.counts
            .iter()
            .map(|(&s, &c)| (s, c as f64 / self.total.max(1) as f64))
            .collect()
    }

    /// Shannon entropy in bits — the lower bound for the Huffman stage.
    #[must_use]
    pub fn entropy_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .values()
            .map(|&c| {
                let p = c as f64 / self.total as f64;
                -p * p.log2()
            })
            .sum()
    }

    /// Smallest and largest observed symbols, if any.
    #[must_use]
    pub fn support(&self) -> Option<(i64, i64)> {
        let min = *self.counts.keys().next()?;
        let max = *self.counts.keys().next_back()?;
        Some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one() {
        let pdf = DiscretePdf::from_symbols((0..100).map(|i| i % 7));
        let sum: f64 = pdf.points().iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_pdf_is_degenerate() {
        let pdf = DiscretePdf::from_symbols(std::iter::empty());
        assert_eq!(pdf.total(), 0);
        assert_eq!(pdf.probability(0), 0.0);
        assert_eq!(pdf.entropy_bits(), 0.0);
        assert_eq!(pdf.support(), None);
    }

    #[test]
    fn uniform_entropy() {
        let pdf = DiscretePdf::from_symbols((0..8).flat_map(|s| std::iter::repeat_n(s, 10)));
        assert!((pdf.entropy_bits() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_entropy_is_zero() {
        let pdf = DiscretePdf::from_symbols(std::iter::repeat_n(5, 100));
        assert!(pdf.entropy_bits().abs() < 1e-12);
    }

    #[test]
    fn support_tracks_extremes() {
        let pdf = DiscretePdf::from_symbols([-3, 0, 12]);
        assert_eq!(pdf.support(), Some((-3, 12)));
    }

    #[test]
    fn peaked_distribution_has_low_entropy() {
        // The Fig. 4 premise: low-resolution differences concentrate at 0,
        // so entropy is far below the fixed-width cost.
        let symbols = std::iter::repeat_n(0, 900)
            .chain(std::iter::repeat_n(1, 50))
            .chain(std::iter::repeat_n(-1, 50));
        let pdf = DiscretePdf::from_symbols(symbols);
        assert!(pdf.entropy_bits() < 0.6, "entropy {}", pdf.entropy_bits());
    }
}
