//! Evaluation metrics for the hybrid compressed-sensing ECG reproduction:
//! reconstruction quality (PRD/SNR), rate accounting (CR/overhead), summary
//! statistics for box plots, and discrete PDF estimation.
//!
//! Definitions follow Section IV of the paper exactly:
//!
//! * `PRD = ‖x − x̃‖₂ / ‖x‖₂ × 100`
//! * `SNR = −20·log₁₀(0.01·PRD)`
//! * `CR = (b_orig − b_comp) / b_orig × 100` (Eq. 3)
//! * `Dᵢ = CRᵢ · i / 12` (Eq. 2, low-resolution-channel overhead)
//!
//! # Example
//!
//! ```
//! use hybridcs_metrics::{prd, snr_db};
//!
//! let x = vec![1.0, 2.0, 3.0];
//! let x_hat = vec![1.0, 2.0, 3.03];
//! let p = prd(&x, &x_hat);
//! assert!(p < 1.0, "sub-percent error");
//! assert!(snr_db(&x, &x_hat) > 40.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod quality;
mod rate;
mod summary;

pub use histogram::DiscretePdf;
pub use quality::{prd, prd_to_snr_db, snr_db, snr_to_prd, QualityGrade};
pub use rate::{compression_ratio_percent, lowres_overhead_percent, net_compression_ratio};
pub use summary::SummaryStats;
