//! Rate accounting: compression ratio (Eq. 3) and the low-resolution
//! channel's overhead (Eq. 2).

/// Compression ratio per Eq. (3): `(b_orig − b_comp)/b_orig × 100`.
///
/// Higher is better; 0 means no compression, negative values mean
/// expansion.
///
/// # Panics
///
/// Panics if `original_bits == 0`.
///
/// # Example
///
/// ```
/// // 512 samples at 12 bits compressed into 96 measurements at 12 bits.
/// let cr = hybridcs_metrics::compression_ratio_percent(512 * 12, 96 * 12);
/// assert!((cr - 81.25).abs() < 1e-9);
/// ```
#[must_use]
pub fn compression_ratio_percent(original_bits: usize, compressed_bits: usize) -> f64 {
    assert!(original_bits > 0, "original size must be positive");
    (original_bits as f64 - compressed_bits as f64) / original_bits as f64 * 100.0
}

/// Overhead of the low-resolution channel per Eq. (2):
/// `Dᵢ = CRᵢ · i / original_bits × 100` (in percent of the original
/// stream), where `CRᵢ` is the *fraction* `compressed/raw` achieved by
/// entropy coding at resolution `i`.
///
/// The paper's Table I assumes 12-bit originals; `original_bits` is kept
/// explicit so ablations can vary it.
///
/// # Panics
///
/// Panics if `original_bits == 0` or `lowres_cr_fraction < 0`.
///
/// # Example
///
/// ```
/// // Paper operating point: 7-bit channel whose Huffman-coded stream is
/// // ~13.5% of its raw size -> ~7.9% overhead on the 12-bit original.
/// let d = hybridcs_metrics::lowres_overhead_percent(0.135, 7, 12);
/// assert!((d - 7.875).abs() < 0.01);
/// ```
#[must_use]
pub fn lowres_overhead_percent(
    lowres_cr_fraction: f64,
    lowres_bits: u32,
    original_bits: u32,
) -> f64 {
    assert!(original_bits > 0, "original bits must be positive");
    assert!(
        lowres_cr_fraction >= 0.0,
        "compression fraction must be non-negative"
    );
    lowres_cr_fraction * f64::from(lowres_bits) / f64::from(original_bits) * 100.0
}

/// Net compression ratio of the hybrid scheme: the CS channel's CR minus
/// the low-resolution channel's overhead, both in percent.
///
/// # Example
///
/// ```
/// // The paper: 81% CS compression minus 7.86% overhead ≈ 73.14% net.
/// let net = hybridcs_metrics::net_compression_ratio(81.0, 7.86);
/// assert!((net - 73.14).abs() < 1e-9);
/// ```
#[must_use]
pub fn net_compression_ratio(cs_cr_percent: f64, overhead_percent: f64) -> f64 {
    cs_cr_percent - overhead_percent
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cr_basic_values() {
        assert_eq!(compression_ratio_percent(100, 100), 0.0);
        assert_eq!(compression_ratio_percent(100, 50), 50.0);
        assert_eq!(compression_ratio_percent(100, 0), 100.0);
        assert_eq!(compression_ratio_percent(100, 150), -50.0);
    }

    #[test]
    fn cr_matches_measurement_fraction() {
        // With equal bit widths, CR = (1 − m/n)·100.
        let n = 512;
        for m in [16usize, 96, 240] {
            let cr = compression_ratio_percent(n * 12, m * 12);
            let expected = (1.0 - m as f64 / n as f64) * 100.0;
            assert!((cr - expected).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn cr_rejects_zero_original() {
        let _ = compression_ratio_percent(0, 10);
    }

    #[test]
    fn table1_overhead_reconstruction() {
        // Invert Table I: the paper's Dᵢ values imply these CRᵢ fractions;
        // feeding them back must reproduce the table row.
        let table = [
            (10u32, 26.3f64),
            (9, 17.6),
            (8, 11.4),
            (7, 7.8),
            (6, 5.6),
            (5, 4.2),
            (4, 3.1),
            (3, 2.3),
        ];
        for (bits, d_percent) in table {
            let cr_fraction = d_percent / 100.0 * 12.0 / f64::from(bits);
            let d = lowres_overhead_percent(cr_fraction, bits, 12);
            assert!((d - d_percent).abs() < 1e-9, "bits {bits}");
        }
    }

    #[test]
    fn net_cr_matches_paper_headline() {
        assert!((net_compression_ratio(97.0, 7.86) - 89.14).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn overhead_rejects_negative_fraction() {
        let _ = lowres_overhead_percent(-0.1, 7, 12);
    }
}
