//! Adversarial-input properties for the telemetry frame codec: no byte
//! slice — random, mutated, or truncated — may panic the deserializer or
//! the recovery supervisor. Corruption must surface as `Err` or as a
//! lower ladder rung, never as a crash or an absurd allocation.

use hybridcs_core::telemetry::FrameCodec;
use hybridcs_core::{
    train_lowres_codec, HybridFrontEnd, RecoverySupervisor, SupervisorConfig, SystemConfig,
};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_rand::check::{check, u64_any, u8_any, vec_of, zip2};
use hybridcs_rand::prop_assert;

fn system() -> SystemConfig {
    SystemConfig {
        measurements: 64,
        ..SystemConfig::default()
    }
}

fn codec() -> FrameCodec {
    FrameCodec::new(&system()).unwrap()
}

fn valid_frame() -> Vec<u8> {
    let system = system();
    let lowres = train_lowres_codec(
        system.lowres_bits,
        &hybridcs_core::experiment::default_training_windows(system.window),
    )
    .unwrap();
    let frontend = HybridFrontEnd::new(&system, lowres).unwrap();
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).unwrap();
    let window = generator.generate(2.0, 0xF0_0D)[..system.window].to_vec();
    let encoded = frontend.encode(&window).unwrap();
    codec().serialize(9, &encoded).unwrap()
}

#[test]
fn arbitrary_bytes_never_panic_the_deserializer() {
    let codec = codec();
    check(
        "arbitrary_bytes_never_panic_the_deserializer",
        &vec_of(u8_any(), 0, 256),
        |bytes| {
            // Any outcome is fine; panicking or allocating absurdly is not.
            let _ = codec.deserialize(bytes);
            let _ = codec.deserialize_sections(bytes);
            Ok(())
        },
    );
}

#[test]
fn mutated_valid_frames_never_panic_the_ladder() {
    let frame = valid_frame();
    let codec = codec();
    let lowres =
        train_lowres_codec(7, &hybridcs_core::experiment::default_training_windows(512)).unwrap();
    let supervisor = std::cell::RefCell::new(
        RecoverySupervisor::new(&system(), lowres, SupervisorConfig::default()).unwrap(),
    );
    check(
        "mutated_valid_frames_never_panic_the_ladder",
        &vec_of(zip2(u64_any(), u8_any()), 1, 16),
        |mutations| {
            let mut bytes = frame.clone();
            for (index, mask) in mutations {
                let i = (*index as usize) % bytes.len();
                bytes[i] ^= mask | 0x01; // guarantee at least one flipped bit
            }
            let _ = codec.deserialize_sections(&bytes);
            let out = supervisor.borrow_mut().receive(Some(&bytes));
            prop_assert!(
                out.signal.iter().all(|v| v.is_finite()),
                "supervisor emitted non-finite samples"
            );
            prop_assert!(out.signal.len() == 512, "wrong window length");
            Ok(())
        },
    );
}

#[test]
fn truncated_frames_never_panic() {
    let frame = valid_frame();
    let codec = codec();
    check("truncated_frames_never_panic", &u64_any(), |cut| {
        let len = (*cut as usize) % (frame.len() + 1);
        let _ = codec.deserialize(&frame[..len]);
        let _ = codec.deserialize_sections(&frame[..len]);
        Ok(())
    });
}

#[test]
fn absurd_header_values_are_rejected_before_allocation() {
    // Hand-craft a header claiming a gigantic frame: the deserializer must
    // reject it from the sanity caps, not attempt the allocation. The CRC
    // is recomputed so only the plausibility checks can reject it.
    let frame = valid_frame();
    let codec = codec();
    let mut bytes = frame;
    // m lives at offset 6..8, n at 8..10 (after magic + sequence); the
    // header CRC covers bytes 0..16 and is stored at 16..20.
    bytes[6..8].copy_from_slice(&u16::MAX.to_le_bytes());
    bytes[8..10].copy_from_slice(&u16::MAX.to_le_bytes());
    let crc = hybridcs_coding::crc32(&bytes[..16]);
    bytes[16..20].copy_from_slice(&crc.to_le_bytes());
    let err = codec.deserialize_sections(&bytes).unwrap_err();
    let text = format!("{err}");
    assert!(
        text.contains("implausible"),
        "expected plausibility rejection, got: {text}"
    );
}
