//! Decode-ladder coverage for [`RecoverySupervisor`]: every rung is
//! reachable, lower rungs always produce finite windows, and a fixed seed
//! gives a bit-identical degradation trail.

use hybridcs_core::{
    train_lowres_codec, HybridFrontEnd, LadderRung, RecoverySupervisor, SupervisedWindow,
    SupervisorConfig, SystemConfig,
};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
use hybridcs_frontend::LowResChannel;
use hybridcs_solver::WatchdogConfig;

fn setup(config: SupervisorConfig) -> (HybridFrontEnd, RecoverySupervisor, Vec<f64>) {
    let system = SystemConfig {
        measurements: 64,
        ..SystemConfig::default()
    };
    let codec = train_lowres_codec(
        system.lowres_bits,
        &hybridcs_core::experiment::default_training_windows(system.window),
    )
    .unwrap();
    let frontend = HybridFrontEnd::new(&system, codec.clone()).unwrap();
    let supervisor = RecoverySupervisor::new(&system, codec, config).unwrap();
    let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).unwrap();
    let window = generator.generate(2.0, 0x5AFE)[..system.window].to_vec();
    (frontend, supervisor, window)
}

fn assert_finite_window(out: &SupervisedWindow, window_len: usize) {
    assert_eq!(out.signal.len(), window_len);
    assert!(
        out.signal.iter().all(|v| v.is_finite()),
        "rung {:?} produced non-finite samples",
        out.rung
    );
}

#[test]
fn every_rung_is_reachable() {
    let (frontend, mut supervisor, window) = setup(SupervisorConfig::default());
    let codec = supervisor.frame_codec().clone();
    let encoded = frontend.encode(&window).unwrap();

    // Rung 1: clean frame → hybrid.
    let clean = codec.serialize(0, &encoded).unwrap();
    let out = supervisor.receive(Some(&clean));
    assert_eq!(out.rung, LadderRung::Hybrid);
    assert!(out.demotions.is_empty());
    assert_eq!(out.sequence, Some(0));
    let snr = hybridcs_metrics::snr_db(&window, &out.signal);
    assert!(snr > 12.0, "hybrid rung SNR {snr} dB");
    assert_finite_window(&out, window.len());

    // Rung 2: corrupt low-res section → CS-only (box dropped).
    let mut bytes = codec.serialize(1, &encoded).unwrap();
    let last = bytes.len() - 6;
    bytes[last] ^= 0x01;
    let out = supervisor.receive(Some(&bytes));
    assert_eq!(out.rung, LadderRung::CsOnly);
    assert!(!out.decoded.as_ref().unwrap().used_box);
    assert_finite_window(&out, window.len());

    // Rung 3: corrupt CS section → low-res midpoints.
    let mut bytes = codec.serialize(2, &encoded).unwrap();
    bytes[25] ^= 0x10;
    let out = supervisor.receive(Some(&bytes));
    assert_eq!(out.rung, LadderRung::LowResOnly);
    let channel = LowResChannel::new(7).unwrap();
    for (v, x) in out.signal.iter().zip(&window) {
        assert!((v - x).abs() <= channel.step(), "midpoint {v} vs {x}");
    }
    assert_finite_window(&out, window.len());

    // Rung 4: lost packet → concealment (repeats the last good window).
    let out = supervisor.receive(None);
    assert_eq!(out.rung, LadderRung::Concealed);
    assert_eq!(out.sequence, None);
    assert_finite_window(&out, window.len());
}

#[test]
fn header_corruption_conceals() {
    let (frontend, mut supervisor, window) = setup(SupervisorConfig::default());
    let encoded = frontend.encode(&window).unwrap();
    let mut bytes = supervisor.frame_codec().serialize(3, &encoded).unwrap();
    bytes[3] ^= 0xFF; // sequence byte, protected by the header CRC
    let out = supervisor.receive(Some(&bytes));
    assert_eq!(out.rung, LadderRung::Concealed);
    assert_eq!(out.sequence, None);
    assert_finite_window(&out, window.len());

    // Garbage that is not even a header conceals too, without panicking.
    let out = supervisor.receive(Some(&[0xEC, 0x65, 0x00]));
    assert_eq!(out.rung, LadderRung::Concealed);
    assert_finite_window(&out, window.len());
}

#[test]
fn watchdog_trip_demotes_down_the_ladder() {
    // A one-iteration budget trips on every solve, so both solver rungs
    // demote and the supervisor lands on low-res midpoints — it never
    // errors, and the demotion trail says why.
    let config = SupervisorConfig {
        watchdog: WatchdogConfig {
            max_iterations: Some(1),
            ..WatchdogConfig::default()
        },
        ..SupervisorConfig::default()
    };
    let (frontend, mut supervisor, window) = setup(config);
    let encoded = frontend.encode(&window).unwrap();
    let bytes = supervisor.frame_codec().serialize(0, &encoded).unwrap();
    let out = supervisor.receive(Some(&bytes));
    assert_eq!(out.rung, LadderRung::LowResOnly);
    assert_eq!(
        out.demotions,
        vec![
            (LadderRung::Hybrid, "watchdog"),
            (LadderRung::CsOnly, "watchdog")
        ]
    );
    assert_finite_window(&out, window.len());
}

#[test]
fn concealment_repeats_last_good_then_flatlines() {
    let config = SupervisorConfig {
        max_conceal_reuse: 2,
        ..SupervisorConfig::default()
    };
    let (frontend, mut supervisor, window) = setup(config);
    let encoded = frontend.encode(&window).unwrap();
    let bytes = supervisor.frame_codec().serialize(0, &encoded).unwrap();
    let good = supervisor.receive(Some(&bytes));
    assert_eq!(good.rung, LadderRung::Hybrid);

    // First two losses repeat the last good window.
    for _ in 0..2 {
        let out = supervisor.receive(None);
        assert_eq!(out.rung, LadderRung::Concealed);
        assert_eq!(out.signal, good.signal);
    }
    // Past the reuse budget the supervisor flat-lines instead of replaying
    // stale ECG forever.
    let out = supervisor.receive(None);
    assert_eq!(out.rung, LadderRung::Concealed);
    assert!(out.signal.iter().all(|v| *v == 0.0));

    // A fresh good frame resets the concealment budget.
    let bytes = supervisor.frame_codec().serialize(1, &encoded).unwrap();
    assert_eq!(supervisor.receive(Some(&bytes)).rung, LadderRung::Hybrid);
    let out = supervisor.receive(None);
    assert_eq!(out.signal, good.signal);
}

#[test]
fn cold_start_loss_conceals_with_zeros() {
    let (_, mut supervisor, window) = setup(SupervisorConfig::default());
    let out = supervisor.receive(None);
    assert_eq!(out.rung, LadderRung::Concealed);
    assert_eq!(out.signal.len(), window.len());
    assert!(out.signal.iter().all(|v| *v == 0.0));
}

#[test]
fn degradation_trail_is_deterministic_for_fixed_seed() {
    // Two supervisors fed the identical damaged stream produce bit-identical
    // rungs, demotion trails, and signals.
    let (frontend, mut a, window) = setup(SupervisorConfig::default());
    let (_, mut b, _) = setup(SupervisorConfig::default());
    let codec = a.frame_codec().clone();
    let encoded = frontend.encode(&window).unwrap();

    let mut packets: Vec<Option<Vec<u8>>> = Vec::new();
    for seq in 0..6u32 {
        let mut bytes = codec.serialize(seq, &encoded).unwrap();
        match seq % 3 {
            1 => bytes[25] ^= 0x40,                  // damage CS section
            2 => *bytes.last_mut().unwrap() ^= 0x02, // damage low-res CRC
            _ => {}
        }
        packets.push(if seq == 4 { None } else { Some(bytes) });
    }

    for packet in &packets {
        let out_a = a.receive(packet.as_deref());
        let out_b = b.receive(packet.as_deref());
        assert_eq!(out_a, out_b);
        assert_finite_window(&out_a, window.len());
    }
}
