//! The paper's contribution: a hybrid compressed-sensing ECG codec built
//! from the workspace substrates.
//!
//! The system of Fig. 1 acquires every processing window twice, in
//! parallel:
//!
//! 1. the **CS channel** — an RMPI taking `m ≪ n` random measurements
//!    (`hybridcs_frontend::Rmpi`), digitized at 12 bits;
//! 2. the **low-resolution channel** — a B-bit Nyquist ADC whose
//!    difference stream is Huffman-coded
//!    ([`hybridcs_coding::LowResCodec`]).
//!
//! At the receiver, [`HybridDecoder`] turns the low-resolution codes into
//! per-sample box bounds and solves the paper's Eq. (1) — box-constrained
//! basis-pursuit denoising — with a first-order convex solver. The same
//! machinery minus the parallel channel is [`NormalCsCodec`], the baseline
//! the paper compares against.
//!
//! [`experiment`] hosts the corpus sweep runner used by the figure
//! regenerators (quality vs compression ratio, per-record box plots).
//! [`telemetry`] frames both payloads for a lossy wire, and
//! [`RecoverySupervisor`] walks a graceful-degradation decode ladder over
//! whatever arrives, never failing a window outright.
//!
//! # Example
//!
//! ```
//! use hybridcs_core::{HybridCodec, SystemConfig};
//! use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
//!
//! # fn main() -> Result<(), hybridcs_core::CoreError> {
//! // One 512-sample window at m = 128 measurements (CR = 75%).
//! let config = SystemConfig {
//!     measurements: 128,
//!     ..SystemConfig::default()
//! };
//! let codec = HybridCodec::with_default_training(&config)?;
//! let generator = EcgGenerator::new(GeneratorConfig::normal_sinus())
//!     .expect("default generator config is valid");
//! let strip = generator.generate(2.0, 42);
//! let window = &strip[..config.window];
//!
//! let encoded = codec.encode(window)?;
//! let decoded = codec.decode(&encoded)?;
//! let snr = hybridcs_metrics::snr_db(window, &decoded.signal);
//! assert!(snr > 10.0, "reconstruction SNR {snr} dB");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapter;
mod codec;
mod config;
mod decoder;
mod encoder;
mod error;
pub mod experiment;
mod supervisor;
pub mod telemetry;
mod training;

pub use adapter::SensingOperator;
pub use codec::{DecodedWindow, EncodedWindow, HybridCodec, NormalCsCodec};
pub use config::{DecoderAlgorithm, SystemConfig};
pub use decoder::HybridDecoder;
pub use encoder::HybridFrontEnd;
pub use error::CoreError;
pub use supervisor::{
    ChosenRung, DecodeLadder, LadderJob, LadderOutcome, LadderRung, LedgerState, ParsedSections,
    RecoverySupervisor, SessionLedger, SupervisedWindow, SupervisorConfig,
};
pub use training::{train_lowres_codec, train_rle_lowres_codec};
