use crate::codec::{DecodedWindow, EncodedWindow};
use crate::{CoreError, DecoderAlgorithm, SensingOperator, SystemConfig};
use hybridcs_coding::LowResCodec;
use hybridcs_dsp::Dwt;
use hybridcs_frontend::{LowResChannel, LowResFrame, MeasurementQuantizer, SensingMatrix};
use hybridcs_solver::{
    solve_admm_workspace, solve_pdhg_batch_workspace, solve_pdhg_workspace,
    solve_reweighted_batch_workspace, solve_reweighted_workspace, BatchProblem, BpdnProblem,
    IterationObserver, LinearOperator, NoopObserver, RecoveryResult, SolverError, SolverWorkspace,
};

/// One window's entropy-decoded box bounds (`lo`, `hi`).
type BoxBounds = (Vec<f64>, Vec<f64>);

/// The receiver-side decoder: regenerates `Φ` from the shared seed,
/// entropy-decodes the low-resolution stream into box bounds, and solves
/// the paper's Eq. (1).
///
/// Decoding with `use_box = false` on the same payloads gives the "normal
/// CS" reconstruction of the paper's comparisons — identical measurements,
/// identical solver, no side information.
#[derive(Debug, Clone)]
pub struct HybridDecoder {
    config: SystemConfig,
    sensing: SensingMatrix,
    sensing_norm: f64,
    dwt: Dwt,
    lowres_channel: LowResChannel,
    lowres_codec: LowResCodec,
    sigma: f64,
}

impl HybridDecoder {
    /// Builds a decoder for the given configuration and trained codec.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on an invalid configuration or a codec whose
    /// bit depth disagrees with it.
    pub fn new(config: &SystemConfig, lowres_codec: LowResCodec) -> Result<Self, CoreError> {
        config.validate()?;
        if lowres_codec.bits() != config.lowres_bits {
            return Err(CoreError::BadConfig {
                name: "lowres_codec bits (must match config.lowres_bits)",
                value: f64::from(lowres_codec.bits()),
            });
        }
        let sensing = SensingMatrix::bernoulli(config.measurements, config.window, config.seed)?;
        // The sensing matrix is fixed for the decoder's lifetime, so the
        // power iteration behind `norm_est` runs exactly once here and every
        // per-window solve reuses the estimate (bit-identical to computing it
        // per decode — same operator, same iteration).
        let sensing_norm = SensingOperator::new(&sensing).norm_est();
        let digitizer =
            MeasurementQuantizer::new(config.measurement_bits, config.measurement_full_scale_mv)?;
        let sigma = digitizer.noise_sigma(config.measurements) * config.sigma_scale;
        Ok(HybridDecoder {
            config: config.clone(),
            sensing,
            sensing_norm,
            dwt: config.dwt()?,
            lowres_channel: LowResChannel::new(config.lowres_bits)?,
            lowres_codec,
            sigma,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The fidelity budget σ used in Eq. (1).
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Decodes one window using both channels (the hybrid reconstruction).
    ///
    /// # Errors
    ///
    /// Propagates entropy-decoding and solver failures, and rejects windows
    /// encoded under a different configuration.
    pub fn decode(&self, encoded: &EncodedWindow) -> Result<DecodedWindow, CoreError> {
        self.decode_with_box(encoded, true)
    }

    /// Decodes one window ignoring the low-resolution side information —
    /// the paper's "normal CS" baseline on identical measurements.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HybridDecoder::decode`].
    pub fn decode_normal(&self, encoded: &EncodedWindow) -> Result<DecodedWindow, CoreError> {
        self.decode_with_box(encoded, false)
    }

    /// [`HybridDecoder::decode`] with an
    /// [`IterationObserver`] receiving the configured solver's
    /// per-iteration events and final
    /// [`ConvergenceTrace`](hybridcs_solver::ConvergenceTrace).
    ///
    /// # Errors
    ///
    /// Same conditions as [`HybridDecoder::decode`].
    pub fn decode_observed(
        &self,
        encoded: &EncodedWindow,
        observer: &mut dyn IterationObserver,
    ) -> Result<DecodedWindow, CoreError> {
        self.decode_observed_with_box(encoded, true, observer)
    }

    /// [`HybridDecoder::decode_normal`] with an [`IterationObserver`] —
    /// the hook the recovery supervisor uses to watchdog the CS-only
    /// ladder rung exactly like the hybrid one.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HybridDecoder::decode_normal`].
    pub fn decode_normal_observed(
        &self,
        encoded: &EncodedWindow,
        observer: &mut dyn IterationObserver,
    ) -> Result<DecodedWindow, CoreError> {
        self.decode_observed_with_box(encoded, false, observer)
    }

    fn decode_with_box(
        &self,
        encoded: &EncodedWindow,
        use_box: bool,
    ) -> Result<DecodedWindow, CoreError> {
        self.decode_observed_with_box(encoded, use_box, &mut NoopObserver)
    }

    fn decode_observed_with_box(
        &self,
        encoded: &EncodedWindow,
        use_box: bool,
        observer: &mut dyn IterationObserver,
    ) -> Result<DecodedWindow, CoreError> {
        self.decode_workspace(encoded, use_box, observer, &mut SolverWorkspace::new())
    }

    /// [`HybridDecoder::decode_observed`] (or `decode_normal_observed` with
    /// `use_box = false`) drawing all solver buffers from a caller-owned
    /// [`SolverWorkspace`]. Reusing one workspace across windows keeps the
    /// solver inner loop allocation-free after warm-up; results are
    /// bit-identical to the plain entry points.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HybridDecoder::decode`].
    pub fn decode_workspace(
        &self,
        encoded: &EncodedWindow,
        use_box: bool,
        observer: &mut dyn IterationObserver,
        ws: &mut SolverWorkspace,
    ) -> Result<DecodedWindow, CoreError> {
        let _span = hybridcs_obs::span!("decode");
        let bounds = self.prepare_window(encoded, use_box)?;
        let operator = SensingOperator::with_norm(&self.sensing, self.sensing_norm);
        let problem = BpdnProblem {
            sensing: &operator,
            dwt: &self.dwt,
            measurements: &encoded.measurements,
            sigma: self.sigma,
            box_bounds: bounds.as_ref().map(|(lo, hi)| (&lo[..], &hi[..])),
            coefficient_weights: None,
        };
        let recovery = {
            let _span = hybridcs_obs::span!("decode.solve");
            match &self.config.algorithm {
                DecoderAlgorithm::Pdhg(opts) => solve_pdhg_workspace(&problem, opts, observer, ws)?,
                DecoderAlgorithm::Admm(opts) => solve_admm_workspace(&problem, opts, observer, ws)?,
                DecoderAlgorithm::Reweighted(opts) => {
                    solve_reweighted_workspace(&problem, opts, observer, ws)?
                }
            }
        };
        Ok(DecodedWindow {
            signal: recovery.signal.clone(),
            recovery,
            used_box: use_box,
        })
    }

    /// Shape checks and (when `use_box`) entropy-decoding of the low-res
    /// bounds for one window — everything in a decode that is per-window
    /// and precedes the solver.
    fn prepare_window(
        &self,
        encoded: &EncodedWindow,
        use_box: bool,
    ) -> Result<Option<BoxBounds>, CoreError> {
        if encoded.window_len != self.config.window {
            return Err(CoreError::WindowMismatch {
                expected: self.config.window,
                actual: encoded.window_len,
            });
        }
        if encoded.measurements.len() != self.config.measurements {
            return Err(CoreError::WindowMismatch {
                expected: self.config.measurements,
                actual: encoded.measurements.len(),
            });
        }
        if use_box {
            let _span = hybridcs_obs::span!("decode.bounds");
            let codes = self
                .lowres_codec
                .decode(&encoded.lowres, encoded.window_len)?;
            let frame = LowResFrame::from_codes(codes, &self.lowres_channel)?;
            Ok(Some(frame.bounds()))
        } else {
            Ok(None)
        }
    }

    /// Decodes a batch of same-shape windows in one lockstep solve,
    /// bit-identical per window to calling
    /// [`decode_workspace`](HybridDecoder::decode_workspace) on each — the
    /// batched solvers iterate all windows over K-wide panels so the
    /// packed-sign and wavelet kernels amortize their table work across the
    /// batch (and vectorize across it when SIMD is enabled).
    ///
    /// Each window gets its own result slot in `out` (in input order) and
    /// its own observer. Windows that fail their per-window pre-checks
    /// (shape mismatch, undecodable low-res section) get exactly the error
    /// the one-window path would produce, without disturbing their
    /// batch-mates; a batch-level solver rejection (e.g. a non-finite
    /// window) re-runs the group serially so per-window errors still land
    /// in the right slots. The ADMM algorithm has no batched variant and
    /// decodes the group serially.
    ///
    /// # Errors
    ///
    /// Errs only on a malformed *batch* (observer count ≠ window count);
    /// per-window failures are reported in `out`.
    pub fn decode_batch_workspace(
        &self,
        encoded: &[&EncodedWindow],
        use_box: bool,
        observers: &mut [&mut dyn IterationObserver],
        ws: &mut SolverWorkspace,
        out: &mut Vec<Result<DecodedWindow, CoreError>>,
    ) -> Result<(), CoreError> {
        let _span = hybridcs_obs::span!("decode.batch");
        if observers.len() != encoded.len() {
            return Err(CoreError::Solver(SolverError::DimensionMismatch {
                what: "observers vs batch windows",
                expected: encoded.len(),
                actual: observers.len(),
            }));
        }
        out.clear();
        if matches!(self.config.algorithm, DecoderAlgorithm::Admm(_)) {
            for (enc, obs) in encoded.iter().zip(observers.iter_mut()) {
                out.push(self.decode_workspace(enc, use_box, &mut **obs, ws));
            }
            return Ok(());
        }

        let mut staged: Vec<Option<Result<DecodedWindow, CoreError>>> =
            (0..encoded.len()).map(|_| None).collect();
        let mut bounds: Vec<Option<BoxBounds>> = vec![None; encoded.len()];
        let mut pending: Vec<usize> = Vec::new();
        for (i, enc) in encoded.iter().enumerate() {
            match self.prepare_window(enc, use_box) {
                Ok(b) => {
                    bounds[i] = b;
                    pending.push(i);
                }
                Err(e) => staged[i] = Some(Err(e)),
            }
        }

        if !pending.is_empty() {
            let operator = SensingOperator::with_norm(&self.sensing, self.sensing_norm);
            let problems: Vec<BpdnProblem<'_>> = pending
                .iter()
                .map(|&i| BpdnProblem {
                    sensing: &operator,
                    dwt: &self.dwt,
                    measurements: &encoded[i].measurements,
                    sigma: self.sigma,
                    box_bounds: bounds[i].as_ref().map(|(lo, hi)| (&lo[..], &hi[..])),
                    coefficient_weights: None,
                })
                .collect();
            let mut results: Vec<Option<RecoveryResult>> = Vec::new();
            let solved = match BatchProblem::new(&problems) {
                Err(_) => false,
                Ok(batch) => {
                    // The `as` cast re-derives the trait-object lifetime from
                    // this short reborrow, so `observers` is usable again on
                    // the serial fallback below.
                    let mut refs: Vec<&mut dyn IterationObserver> = observers
                        .iter_mut()
                        .enumerate()
                        .filter(|(i, _)| pending.binary_search(i).is_ok())
                        .map(|(_, obs)| &mut **obs as &mut dyn IterationObserver)
                        .collect();
                    let _span = hybridcs_obs::span!("decode.solve");
                    match &self.config.algorithm {
                        DecoderAlgorithm::Pdhg(opts) => {
                            solve_pdhg_batch_workspace(&batch, opts, &mut refs, ws, &mut results)
                                .is_ok()
                        }
                        DecoderAlgorithm::Reweighted(opts) => solve_reweighted_batch_workspace(
                            &batch,
                            opts,
                            &mut refs,
                            ws,
                            &mut results,
                        )
                        .is_ok(),
                        DecoderAlgorithm::Admm(_) => unreachable!("routed to serial above"),
                    }
                }
            };
            if solved {
                for (&slot, recovery) in pending.iter().zip(results) {
                    let recovery = recovery.expect("batch solvers fill every window");
                    staged[slot] = Some(Ok(DecodedWindow {
                        signal: recovery.signal.clone(),
                        recovery,
                        used_box: use_box,
                    }));
                }
            } else {
                // Batch construction/validation rejected the group before a
                // single iteration ran (e.g. one window's measurements are
                // non-finite). Re-raise per window through the serial path so
                // each slot gets exactly the one-window error or result.
                for &i in &pending {
                    staged[i] =
                        Some(self.decode_workspace(encoded[i], use_box, &mut *observers[i], ws));
                }
            }
        }
        out.extend(
            staged
                .into_iter()
                .map(|slot| slot.expect("every window staged")),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::default_training_windows;
    use crate::{train_lowres_codec, HybridFrontEnd};
    use hybridcs_ecg::{EcgGenerator, GeneratorConfig};

    fn pair(config: &SystemConfig) -> (HybridFrontEnd, HybridDecoder) {
        let codec =
            train_lowres_codec(config.lowres_bits, &default_training_windows(config.window))
                .unwrap();
        (
            HybridFrontEnd::new(config, codec.clone()).unwrap(),
            HybridDecoder::new(config, codec).unwrap(),
        )
    }

    fn ecg_window(config: &SystemConfig, seed: u64) -> Vec<f64> {
        let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).unwrap();
        generator.generate(2.0, seed)[..config.window].to_vec()
    }

    #[test]
    fn hybrid_roundtrip_reconstructs_ecg() {
        let config = SystemConfig::default(); // m = 96, CR 81.25%
        let (fe, dec) = pair(&config);
        let window = ecg_window(&config, 11);
        let encoded = fe.encode(&window).unwrap();
        let decoded = dec.decode(&encoded).unwrap();
        let snr = hybridcs_metrics::snr_db(&window, &decoded.signal);
        assert!(snr > 15.0, "hybrid SNR {snr} dB at CR 81%");
        assert!(decoded.used_box);
    }

    #[test]
    fn hybrid_beats_normal_at_high_compression() {
        let config = SystemConfig {
            measurements: 32, // CR ~93.75%
            ..SystemConfig::default()
        };
        let (fe, dec) = pair(&config);
        let window = ecg_window(&config, 13);
        let encoded = fe.encode(&window).unwrap();
        let hybrid = dec.decode(&encoded).unwrap();
        let normal = dec.decode_normal(&encoded).unwrap();
        let snr_h = hybridcs_metrics::snr_db(&window, &hybrid.signal);
        let snr_n = hybridcs_metrics::snr_db(&window, &normal.signal);
        assert!(
            snr_h > snr_n + 3.0,
            "hybrid {snr_h} dB must beat normal {snr_n} dB at CR 94%"
        );
    }

    #[test]
    fn decoded_signal_respects_lowres_bounds() {
        let config = SystemConfig::default();
        let (fe, dec) = pair(&config);
        let window = ecg_window(&config, 17);
        let encoded = fe.encode(&window).unwrap();
        let decoded = dec.decode(&encoded).unwrap();
        let channel = LowResChannel::new(config.lowres_bits).unwrap();
        let (lo, hi) = channel.acquire(&window).bounds();
        for ((v, l), h) in decoded.signal.iter().zip(&lo).zip(&hi) {
            assert!(*l - 1e-9 <= *v && *v <= *h + 1e-9);
        }
    }

    #[test]
    fn decoder_rejects_mismatched_payloads() {
        let config = SystemConfig::default();
        let (fe, _) = pair(&config);
        let other = SystemConfig {
            measurements: 64,
            ..SystemConfig::default()
        };
        let codec =
            train_lowres_codec(other.lowres_bits, &default_training_windows(other.window)).unwrap();
        let dec = HybridDecoder::new(&other, codec).unwrap();
        let window = ecg_window(&config, 19);
        let encoded = fe.encode(&window).unwrap();
        assert!(matches!(
            dec.decode(&encoded),
            Err(CoreError::WindowMismatch { .. })
        ));
    }

    fn assert_window_bits(batch: &DecodedWindow, serial: &DecodedWindow) {
        assert_eq!(batch.used_box, serial.used_box);
        assert_eq!(batch.recovery.iterations, serial.recovery.iterations);
        assert_eq!(batch.recovery.converged, serial.recovery.converged);
        assert_eq!(
            batch.recovery.residual.to_bits(),
            serial.recovery.residual.to_bits()
        );
        assert_eq!(
            batch.recovery.objective.to_bits(),
            serial.recovery.objective.to_bits()
        );
        assert_eq!(batch.signal.len(), serial.signal.len());
        for (a, b) in batch.signal.iter().zip(&serial.signal) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_decode_bit_identical_to_serial() {
        let config = SystemConfig {
            measurements: 64,
            ..SystemConfig::default()
        };
        let (fe, dec) = pair(&config);
        let encoded: Vec<EncodedWindow> = (0..3)
            .map(|w| fe.encode(&ecg_window(&config, 23 + w)).unwrap())
            .collect();
        for use_box in [true, false] {
            let mut ws = hybridcs_solver::SolverWorkspace::new();
            let serial: Vec<DecodedWindow> = encoded
                .iter()
                .map(|enc| {
                    dec.decode_workspace(enc, use_box, &mut NoopObserver, &mut ws)
                        .unwrap()
                })
                .collect();
            let refs: Vec<&EncodedWindow> = encoded.iter().collect();
            let mut noops = vec![NoopObserver; refs.len()];
            let mut obs: Vec<&mut dyn IterationObserver> = noops
                .iter_mut()
                .map(|o| o as &mut dyn IterationObserver)
                .collect();
            let mut out = Vec::new();
            dec.decode_batch_workspace(&refs, use_box, &mut obs, &mut ws, &mut out)
                .unwrap();
            assert_eq!(out.len(), serial.len());
            for (got, want) in out.iter().zip(&serial) {
                assert_window_bits(got.as_ref().unwrap(), want);
            }
        }
    }

    #[test]
    fn batch_decode_isolates_per_window_errors() {
        let config = SystemConfig {
            measurements: 64,
            ..SystemConfig::default()
        };
        let (fe, dec) = pair(&config);
        let good_a = fe.encode(&ecg_window(&config, 29)).unwrap();
        let good_b = fe.encode(&ecg_window(&config, 31)).unwrap();
        let mut bad = good_a.clone();
        bad.window_len += 1;
        let mut ws = hybridcs_solver::SolverWorkspace::new();
        let serial_a = dec
            .decode_workspace(&good_a, true, &mut NoopObserver, &mut ws)
            .unwrap();
        let serial_b = dec
            .decode_workspace(&good_b, true, &mut NoopObserver, &mut ws)
            .unwrap();
        let refs: Vec<&EncodedWindow> = vec![&good_a, &bad, &good_b];
        let mut noops = vec![NoopObserver; refs.len()];
        let mut obs: Vec<&mut dyn IterationObserver> = noops
            .iter_mut()
            .map(|o| o as &mut dyn IterationObserver)
            .collect();
        let mut out = Vec::new();
        dec.decode_batch_workspace(&refs, true, &mut obs, &mut ws, &mut out)
            .unwrap();
        assert_window_bits(out[0].as_ref().unwrap(), &serial_a);
        assert!(matches!(out[1], Err(CoreError::WindowMismatch { .. })));
        assert_window_bits(out[2].as_ref().unwrap(), &serial_b);

        // The batch itself is only malformed when observers don't pair up.
        let mut lone = NoopObserver;
        let mut short: Vec<&mut dyn IterationObserver> = vec![&mut lone];
        assert!(dec
            .decode_batch_workspace(&refs, true, &mut short, &mut ws, &mut out)
            .is_err());
    }

    #[test]
    fn sigma_scales_with_measurement_count() {
        let config_small = SystemConfig {
            measurements: 16,
            ..SystemConfig::default()
        };
        let config_large = SystemConfig {
            measurements: 256,
            ..SystemConfig::default()
        };
        let codec = train_lowres_codec(7, &default_training_windows(512)).unwrap();
        let d_small = HybridDecoder::new(&config_small, codec.clone()).unwrap();
        let d_large = HybridDecoder::new(&config_large, codec).unwrap();
        assert!(d_large.sigma() > d_small.sigma());
    }
}
