use crate::codec::{DecodedWindow, EncodedWindow};
use crate::{CoreError, DecoderAlgorithm, SensingOperator, SystemConfig};
use hybridcs_coding::LowResCodec;
use hybridcs_dsp::Dwt;
use hybridcs_frontend::{LowResChannel, LowResFrame, MeasurementQuantizer, SensingMatrix};
use hybridcs_solver::{
    solve_admm_workspace, solve_pdhg_workspace, solve_reweighted_workspace, BpdnProblem,
    IterationObserver, LinearOperator, NoopObserver, SolverWorkspace,
};

/// The receiver-side decoder: regenerates `Φ` from the shared seed,
/// entropy-decodes the low-resolution stream into box bounds, and solves
/// the paper's Eq. (1).
///
/// Decoding with `use_box = false` on the same payloads gives the "normal
/// CS" reconstruction of the paper's comparisons — identical measurements,
/// identical solver, no side information.
#[derive(Debug, Clone)]
pub struct HybridDecoder {
    config: SystemConfig,
    sensing: SensingMatrix,
    sensing_norm: f64,
    dwt: Dwt,
    lowres_channel: LowResChannel,
    lowres_codec: LowResCodec,
    sigma: f64,
}

impl HybridDecoder {
    /// Builds a decoder for the given configuration and trained codec.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on an invalid configuration or a codec whose
    /// bit depth disagrees with it.
    pub fn new(config: &SystemConfig, lowres_codec: LowResCodec) -> Result<Self, CoreError> {
        config.validate()?;
        if lowres_codec.bits() != config.lowres_bits {
            return Err(CoreError::BadConfig {
                name: "lowres_codec bits (must match config.lowres_bits)",
                value: f64::from(lowres_codec.bits()),
            });
        }
        let sensing = SensingMatrix::bernoulli(config.measurements, config.window, config.seed)?;
        // The sensing matrix is fixed for the decoder's lifetime, so the
        // power iteration behind `norm_est` runs exactly once here and every
        // per-window solve reuses the estimate (bit-identical to computing it
        // per decode — same operator, same iteration).
        let sensing_norm = SensingOperator::new(&sensing).norm_est();
        let digitizer =
            MeasurementQuantizer::new(config.measurement_bits, config.measurement_full_scale_mv)?;
        let sigma = digitizer.noise_sigma(config.measurements) * config.sigma_scale;
        Ok(HybridDecoder {
            config: config.clone(),
            sensing,
            sensing_norm,
            dwt: config.dwt()?,
            lowres_channel: LowResChannel::new(config.lowres_bits)?,
            lowres_codec,
            sigma,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The fidelity budget σ used in Eq. (1).
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Decodes one window using both channels (the hybrid reconstruction).
    ///
    /// # Errors
    ///
    /// Propagates entropy-decoding and solver failures, and rejects windows
    /// encoded under a different configuration.
    pub fn decode(&self, encoded: &EncodedWindow) -> Result<DecodedWindow, CoreError> {
        self.decode_with_box(encoded, true)
    }

    /// Decodes one window ignoring the low-resolution side information —
    /// the paper's "normal CS" baseline on identical measurements.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HybridDecoder::decode`].
    pub fn decode_normal(&self, encoded: &EncodedWindow) -> Result<DecodedWindow, CoreError> {
        self.decode_with_box(encoded, false)
    }

    /// [`HybridDecoder::decode`] with an
    /// [`IterationObserver`] receiving the configured solver's
    /// per-iteration events and final
    /// [`ConvergenceTrace`](hybridcs_solver::ConvergenceTrace).
    ///
    /// # Errors
    ///
    /// Same conditions as [`HybridDecoder::decode`].
    pub fn decode_observed(
        &self,
        encoded: &EncodedWindow,
        observer: &mut dyn IterationObserver,
    ) -> Result<DecodedWindow, CoreError> {
        self.decode_observed_with_box(encoded, true, observer)
    }

    /// [`HybridDecoder::decode_normal`] with an [`IterationObserver`] —
    /// the hook the recovery supervisor uses to watchdog the CS-only
    /// ladder rung exactly like the hybrid one.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HybridDecoder::decode_normal`].
    pub fn decode_normal_observed(
        &self,
        encoded: &EncodedWindow,
        observer: &mut dyn IterationObserver,
    ) -> Result<DecodedWindow, CoreError> {
        self.decode_observed_with_box(encoded, false, observer)
    }

    fn decode_with_box(
        &self,
        encoded: &EncodedWindow,
        use_box: bool,
    ) -> Result<DecodedWindow, CoreError> {
        self.decode_observed_with_box(encoded, use_box, &mut NoopObserver)
    }

    fn decode_observed_with_box(
        &self,
        encoded: &EncodedWindow,
        use_box: bool,
        observer: &mut dyn IterationObserver,
    ) -> Result<DecodedWindow, CoreError> {
        self.decode_workspace(encoded, use_box, observer, &mut SolverWorkspace::new())
    }

    /// [`HybridDecoder::decode_observed`] (or `decode_normal_observed` with
    /// `use_box = false`) drawing all solver buffers from a caller-owned
    /// [`SolverWorkspace`]. Reusing one workspace across windows keeps the
    /// solver inner loop allocation-free after warm-up; results are
    /// bit-identical to the plain entry points.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HybridDecoder::decode`].
    pub fn decode_workspace(
        &self,
        encoded: &EncodedWindow,
        use_box: bool,
        observer: &mut dyn IterationObserver,
        ws: &mut SolverWorkspace,
    ) -> Result<DecodedWindow, CoreError> {
        let _span = hybridcs_obs::span!("decode");
        if encoded.window_len != self.config.window {
            return Err(CoreError::WindowMismatch {
                expected: self.config.window,
                actual: encoded.window_len,
            });
        }
        if encoded.measurements.len() != self.config.measurements {
            return Err(CoreError::WindowMismatch {
                expected: self.config.measurements,
                actual: encoded.measurements.len(),
            });
        }

        let bounds = if use_box {
            let _span = hybridcs_obs::span!("decode.bounds");
            let codes = self
                .lowres_codec
                .decode(&encoded.lowres, encoded.window_len)?;
            let frame = LowResFrame::from_codes(codes, &self.lowres_channel)?;
            Some(frame.bounds())
        } else {
            None
        };

        let operator = SensingOperator::with_norm(&self.sensing, self.sensing_norm);
        let problem = BpdnProblem {
            sensing: &operator,
            dwt: &self.dwt,
            measurements: &encoded.measurements,
            sigma: self.sigma,
            box_bounds: bounds.as_ref().map(|(lo, hi)| (&lo[..], &hi[..])),
            coefficient_weights: None,
        };
        let recovery = {
            let _span = hybridcs_obs::span!("decode.solve");
            match &self.config.algorithm {
                DecoderAlgorithm::Pdhg(opts) => solve_pdhg_workspace(&problem, opts, observer, ws)?,
                DecoderAlgorithm::Admm(opts) => solve_admm_workspace(&problem, opts, observer, ws)?,
                DecoderAlgorithm::Reweighted(opts) => {
                    solve_reweighted_workspace(&problem, opts, observer, ws)?
                }
            }
        };
        Ok(DecodedWindow {
            signal: recovery.signal.clone(),
            recovery,
            used_box: use_box,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::default_training_windows;
    use crate::{train_lowres_codec, HybridFrontEnd};
    use hybridcs_ecg::{EcgGenerator, GeneratorConfig};

    fn pair(config: &SystemConfig) -> (HybridFrontEnd, HybridDecoder) {
        let codec =
            train_lowres_codec(config.lowres_bits, &default_training_windows(config.window))
                .unwrap();
        (
            HybridFrontEnd::new(config, codec.clone()).unwrap(),
            HybridDecoder::new(config, codec).unwrap(),
        )
    }

    fn ecg_window(config: &SystemConfig, seed: u64) -> Vec<f64> {
        let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).unwrap();
        generator.generate(2.0, seed)[..config.window].to_vec()
    }

    #[test]
    fn hybrid_roundtrip_reconstructs_ecg() {
        let config = SystemConfig::default(); // m = 96, CR 81.25%
        let (fe, dec) = pair(&config);
        let window = ecg_window(&config, 11);
        let encoded = fe.encode(&window).unwrap();
        let decoded = dec.decode(&encoded).unwrap();
        let snr = hybridcs_metrics::snr_db(&window, &decoded.signal);
        assert!(snr > 15.0, "hybrid SNR {snr} dB at CR 81%");
        assert!(decoded.used_box);
    }

    #[test]
    fn hybrid_beats_normal_at_high_compression() {
        let config = SystemConfig {
            measurements: 32, // CR ~93.75%
            ..SystemConfig::default()
        };
        let (fe, dec) = pair(&config);
        let window = ecg_window(&config, 13);
        let encoded = fe.encode(&window).unwrap();
        let hybrid = dec.decode(&encoded).unwrap();
        let normal = dec.decode_normal(&encoded).unwrap();
        let snr_h = hybridcs_metrics::snr_db(&window, &hybrid.signal);
        let snr_n = hybridcs_metrics::snr_db(&window, &normal.signal);
        assert!(
            snr_h > snr_n + 3.0,
            "hybrid {snr_h} dB must beat normal {snr_n} dB at CR 94%"
        );
    }

    #[test]
    fn decoded_signal_respects_lowres_bounds() {
        let config = SystemConfig::default();
        let (fe, dec) = pair(&config);
        let window = ecg_window(&config, 17);
        let encoded = fe.encode(&window).unwrap();
        let decoded = dec.decode(&encoded).unwrap();
        let channel = LowResChannel::new(config.lowres_bits).unwrap();
        let (lo, hi) = channel.acquire(&window).bounds();
        for ((v, l), h) in decoded.signal.iter().zip(&lo).zip(&hi) {
            assert!(*l - 1e-9 <= *v && *v <= *h + 1e-9);
        }
    }

    #[test]
    fn decoder_rejects_mismatched_payloads() {
        let config = SystemConfig::default();
        let (fe, _) = pair(&config);
        let other = SystemConfig {
            measurements: 64,
            ..SystemConfig::default()
        };
        let codec =
            train_lowres_codec(other.lowres_bits, &default_training_windows(other.window)).unwrap();
        let dec = HybridDecoder::new(&other, codec).unwrap();
        let window = ecg_window(&config, 19);
        let encoded = fe.encode(&window).unwrap();
        assert!(matches!(
            dec.decode(&encoded),
            Err(CoreError::WindowMismatch { .. })
        ));
    }

    #[test]
    fn sigma_scales_with_measurement_count() {
        let config_small = SystemConfig {
            measurements: 16,
            ..SystemConfig::default()
        };
        let config_large = SystemConfig {
            measurements: 256,
            ..SystemConfig::default()
        };
        let codec = train_lowres_codec(7, &default_training_windows(512)).unwrap();
        let d_small = HybridDecoder::new(&config_small, codec.clone()).unwrap();
        let d_large = HybridDecoder::new(&config_large, codec).unwrap();
        assert!(d_large.sigma() > d_small.sigma());
    }
}
