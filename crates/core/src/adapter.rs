use hybridcs_frontend::SensingMatrix;
use hybridcs_solver::LinearOperator;

/// Adapter exposing a [`SensingMatrix`] to the solver crate's
/// [`LinearOperator`] interface (the two crates are deliberately unaware of
/// each other; this codec layer is where they meet).
///
/// # Example
///
/// ```
/// use hybridcs_core::SensingOperator;
/// use hybridcs_frontend::SensingMatrix;
/// use hybridcs_solver::LinearOperator;
///
/// # fn main() -> Result<(), hybridcs_frontend::FrontEndError> {
/// let phi = SensingMatrix::bernoulli(8, 32, 1)?;
/// let op = SensingOperator::new(&phi);
/// assert_eq!(op.rows(), 8);
/// assert_eq!(op.cols(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SensingOperator<'a> {
    matrix: &'a SensingMatrix,
}

impl<'a> SensingOperator<'a> {
    /// Wraps a sensing matrix.
    #[must_use]
    pub fn new(matrix: &'a SensingMatrix) -> Self {
        SensingOperator { matrix }
    }
}

impl LinearOperator for SensingOperator<'_> {
    fn rows(&self) -> usize {
        self.matrix.measurements()
    }

    fn cols(&self) -> usize {
        self.matrix.window()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&self.matrix.apply(x));
    }

    fn apply_adjoint(&self, y: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&self.matrix.apply_adjoint(y));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridcs_linalg::vector;

    #[test]
    fn adapter_preserves_action_and_adjoint() {
        let phi = SensingMatrix::bernoulli(6, 32, 9).unwrap();
        let op = SensingOperator::new(&phi);
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).cos()).collect();
        let y: Vec<f64> = (0..6).map(|i| i as f64 - 3.0).collect();
        let mut ax = vec![0.0; 6];
        op.apply(&x, &mut ax);
        assert_eq!(ax, phi.apply(&x));
        let mut aty = vec![0.0; 32];
        op.apply_adjoint(&y, &mut aty);
        assert_eq!(aty, phi.apply_adjoint(&y));
        // Adjoint identity through the trait.
        assert!((vector::dot(&ax, &y) - vector::dot(&x, &aty)).abs() < 1e-9);
    }

    #[test]
    fn norm_estimate_is_sane() {
        let phi = SensingMatrix::bernoulli(16, 64, 2).unwrap();
        let op = SensingOperator::new(&phi);
        let norm = op.norm_est();
        assert!(norm > 0.5 && norm < 3.0, "norm {norm}");
    }
}
