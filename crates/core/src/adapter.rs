use hybridcs_frontend::SensingMatrix;
use hybridcs_solver::LinearOperator;

/// Adapter exposing a [`SensingMatrix`] to the solver crate's
/// [`LinearOperator`] interface (the two crates are deliberately unaware of
/// each other; this codec layer is where they meet).
///
/// # Example
///
/// ```
/// use hybridcs_core::SensingOperator;
/// use hybridcs_frontend::SensingMatrix;
/// use hybridcs_solver::LinearOperator;
///
/// # fn main() -> Result<(), hybridcs_frontend::FrontEndError> {
/// let phi = SensingMatrix::bernoulli(8, 32, 1)?;
/// let op = SensingOperator::new(&phi);
/// assert_eq!(op.rows(), 8);
/// assert_eq!(op.cols(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SensingOperator<'a> {
    matrix: &'a SensingMatrix,
    cached_norm: Option<f64>,
}

impl<'a> SensingOperator<'a> {
    /// Wraps a sensing matrix.
    #[must_use]
    pub fn new(matrix: &'a SensingMatrix) -> Self {
        SensingOperator {
            matrix,
            cached_norm: None,
        }
    }

    /// Wraps a sensing matrix with a precomputed spectral-norm estimate, so
    /// [`LinearOperator::norm_est`] returns it without re-running the power
    /// iteration. `Φ` is fixed per [`SystemConfig`](crate::SystemConfig), so
    /// the decoder computes the norm once at construction and reuses it for
    /// every window — the power iteration (hundreds of matvec pairs) would
    /// otherwise dominate short decodes.
    #[must_use]
    pub fn with_norm(matrix: &'a SensingMatrix, norm: f64) -> Self {
        SensingOperator {
            matrix,
            cached_norm: Some(norm),
        }
    }
}

impl LinearOperator for SensingOperator<'_> {
    fn rows(&self) -> usize {
        self.matrix.measurements()
    }

    fn cols(&self) -> usize {
        self.matrix.window()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        self.matrix.apply_into(x, out);
    }

    fn apply_adjoint(&self, y: &[f64], out: &mut [f64]) {
        self.matrix.apply_adjoint_into(y, out);
    }

    fn scratch_len(&self) -> usize {
        self.matrix.forward_scratch_len()
    }

    fn apply_into(&self, x: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        // The table-driven forward kernel; bit-identical to `apply`, the
        // scratch holding the shared per-4-column sign-sum table.
        self.matrix.apply_into_scratch(x, out, scratch);
    }

    fn apply_adjoint_into(&self, y: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        let _ = scratch;
        self.matrix.apply_adjoint_into(y, out);
    }

    fn batch_scratch_len(&self, k: usize) -> usize {
        self.matrix.batch_scratch_len(k)
    }

    fn apply_batch_into(
        &self,
        x_panel: &[f64],
        k: usize,
        out_panel: &mut [f64],
        scratch: &mut [f64],
    ) {
        // The batched packed-sign kernel shares each per-4-column sign table
        // across all K lanes; per lane it is bit-identical to `apply_into`.
        self.matrix
            .apply_batch_into_scratch(x_panel, k, out_panel, scratch);
    }

    fn apply_adjoint_batch_into(
        &self,
        y_panel: &[f64],
        k: usize,
        out_panel: &mut [f64],
        scratch: &mut [f64],
    ) {
        self.matrix
            .apply_adjoint_batch_into_scratch(y_panel, k, out_panel, scratch);
    }

    fn norm_est(&self) -> f64 {
        match self.cached_norm {
            Some(norm) => norm,
            None => {
                let (norm, _) = hybridcs_linalg::operator_norm_est(
                    self.cols(),
                    self.rows(),
                    |x, out| self.apply(x, out),
                    |y, out| self.apply_adjoint(y, out),
                    hybridcs_linalg::PowerIterationOptions::default(),
                );
                norm
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridcs_linalg::vector;

    #[test]
    fn adapter_preserves_action_and_adjoint() {
        let phi = SensingMatrix::bernoulli(6, 32, 9).unwrap();
        let op = SensingOperator::new(&phi);
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).cos()).collect();
        let y: Vec<f64> = (0..6).map(|i| i as f64 - 3.0).collect();
        let mut ax = vec![0.0; 6];
        op.apply(&x, &mut ax);
        assert_eq!(ax, phi.apply(&x));
        let mut aty = vec![0.0; 32];
        op.apply_adjoint(&y, &mut aty);
        assert_eq!(aty, phi.apply_adjoint(&y));
        // Adjoint identity through the trait.
        assert!((vector::dot(&ax, &y) - vector::dot(&x, &aty)).abs() < 1e-9);
    }

    #[test]
    fn norm_estimate_is_sane() {
        let phi = SensingMatrix::bernoulli(16, 64, 2).unwrap();
        let op = SensingOperator::new(&phi);
        let norm = op.norm_est();
        assert!(norm > 0.5 && norm < 3.0, "norm {norm}");
    }

    #[test]
    fn cached_norm_matches_power_iteration_bit_for_bit() {
        let phi = SensingMatrix::bernoulli(16, 64, 2).unwrap();
        let fresh = SensingOperator::new(&phi).norm_est();
        let cached = SensingOperator::with_norm(&phi, fresh);
        assert_eq!(cached.norm_est().to_bits(), fresh.to_bits());
    }
}
