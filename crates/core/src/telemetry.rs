//! Telemetry framing and loss-resilient reception.
//!
//! The paper's Fig. 1 ends at "Transmit"; any real WBSN deployment needs a
//! wire format and a story for corrupted/lost frames. This module provides
//! both, and in doing so demonstrates a structural advantage of the hybrid
//! design that the paper leaves implicit: the two payloads degrade
//! **independently**. Lose the CS section and the low-resolution section
//! still yields a coarse but diagnostically usable trace; lose the
//! low-resolution section and the CS section still decodes as normal CS.
//!
//! Wire format (little-endian):
//!
//! ```text
//! magic u16 | seq u32 | m u16 | n u16 | meas_bits u8 | lowres_bits u8
//! | lowres_bit_len u32 | header crc32
//! | CS section (m × meas_bits, bit-packed) | cs crc32
//! | low-res section bytes | lowres crc32
//! ```

use crate::codec::{DecodedWindow, EncodedWindow};
use crate::{CoreError, HybridDecoder, SystemConfig};
use hybridcs_coding::{crc32, BitReader, BitWriter, CodingError, Payload};
use hybridcs_frontend::{LowResChannel, LowResFrame, MeasurementQuantizer};
use hybridcs_obs::Counter;

const MAGIC: u16 = 0xEC65;

/// Header sanity caps: generous multiples of anything the system ever
/// configures, rejected before allocating for a section.
const MAX_MEASUREMENTS: usize = 4096;
const MAX_WINDOW: usize = 16384;
const MAX_LOWRES_BITS_PER_SAMPLE: usize = 64;

/// Serializer/deserializer between [`EncodedWindow`]s and wire bytes.
#[derive(Debug, Clone)]
pub struct FrameCodec {
    config: SystemConfig,
    digitizer: MeasurementQuantizer,
}

/// One parsed frame.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryFrame {
    /// Monotonic frame counter from the sensor.
    pub sequence: u32,
    /// The re-assembled window payload.
    pub encoded: EncodedWindow,
}

/// Per-section integrity verdict of a received frame.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionedFrame {
    /// Frame counter (valid whenever the header passed its CRC).
    pub sequence: u32,
    /// CS measurements, present iff that section's CRC passed.
    pub measurements: Option<Vec<f64>>,
    /// Low-resolution payload, present iff that section's CRC passed.
    pub lowres: Option<Payload>,
}

impl FrameCodec {
    /// Builds a codec for the given system configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on an invalid configuration.
    pub fn new(config: &SystemConfig) -> Result<Self, CoreError> {
        config.validate()?;
        let digitizer =
            MeasurementQuantizer::new(config.measurement_bits, config.measurement_full_scale_mv)?;
        Ok(FrameCodec {
            config: config.clone(),
            digitizer,
        })
    }

    /// Serializes an encoded window into wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::WindowMismatch`] when the window was encoded
    /// under a different configuration.
    pub fn serialize(&self, sequence: u32, window: &EncodedWindow) -> Result<Vec<u8>, CoreError> {
        let _span = hybridcs_obs::span!("frame.serialize");
        if window.window_len != self.config.window
            || window.measurements.len() != self.config.measurements
        {
            return Err(CoreError::WindowMismatch {
                expected: self.config.window,
                actual: window.window_len,
            });
        }
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&sequence.to_le_bytes());
        out.extend_from_slice(&(self.config.measurements as u16).to_le_bytes());
        out.extend_from_slice(&(self.config.window as u16).to_le_bytes());
        out.push(self.config.measurement_bits as u8);
        out.push(self.config.lowres_bits as u8);
        out.extend_from_slice(&(window.lowres.bit_len as u32).to_le_bytes());
        let header_crc = crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());

        // CS section: measurement codes, bit-packed.
        let mut writer = BitWriter::new();
        for code in self.digitizer.codes(&window.measurements) {
            writer.write_bits(u64::from(code), self.config.measurement_bits);
        }
        let (cs_bytes, _) = writer.finish();
        let cs_start = out.len();
        out.extend_from_slice(&cs_bytes);
        let cs_crc = crc32(&out[cs_start..]);
        out.extend_from_slice(&cs_crc.to_le_bytes());

        // Low-resolution section.
        let lr_start = out.len();
        out.extend_from_slice(&window.lowres.bytes);
        let lr_crc = crc32(&out[lr_start..]);
        out.extend_from_slice(&lr_crc.to_le_bytes());
        Ok(out)
    }

    /// Parses wire bytes, validating every CRC; fails on the first bad
    /// section. Use [`FrameCodec::deserialize_sections`] for the
    /// degradation-tolerant path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Coding`] describing the corruption.
    pub fn deserialize(&self, bytes: &[u8]) -> Result<TelemetryFrame, CoreError> {
        let sectioned = self.deserialize_sections(bytes)?;
        let measurements =
            sectioned
                .measurements
                .ok_or(CoreError::Coding(CodingError::CorruptStream {
                    detail: "CS section failed CRC",
                }))?;
        let lowres = sectioned
            .lowres
            .ok_or(CoreError::Coding(CodingError::CorruptStream {
                detail: "low-res section failed CRC",
            }))?;
        Ok(TelemetryFrame {
            sequence: sectioned.sequence,
            encoded: EncodedWindow {
                measurements,
                lowres,
                window_len: self.config.window,
                measurement_bits: self.config.measurement_bits,
            },
        })
    }

    /// Parses wire bytes with per-section integrity: a bad CS or low-res
    /// CRC clears that section instead of failing the frame.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Coding`] only when the *header* is unusable
    /// (bad magic, truncation, bad header CRC, or config mismatch).
    pub fn deserialize_sections(&self, bytes: &[u8]) -> Result<SectionedFrame, CoreError> {
        let _span = hybridcs_obs::span!("frame.parse");
        const HEADER_LEN: usize = 2 + 4 + 2 + 2 + 1 + 1 + 4;
        let corrupt =
            |detail: &'static str| CoreError::Coding(CodingError::CorruptStream { detail });

        if bytes.len() < HEADER_LEN + 4 {
            return Err(corrupt("frame shorter than header"));
        }
        let (header, rest) = bytes.split_at(HEADER_LEN);
        let stored_header_crc = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
        if crc32(header) != stored_header_crc {
            return Err(corrupt("header failed CRC"));
        }
        if u16::from_le_bytes(header[0..2].try_into().expect("2 bytes")) != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let sequence = u32::from_le_bytes(header[2..6].try_into().expect("4 bytes"));
        let m = u16::from_le_bytes(header[6..8].try_into().expect("2 bytes")) as usize;
        let n = u16::from_le_bytes(header[8..10].try_into().expect("2 bytes")) as usize;
        let meas_bits = u32::from(header[10]);
        let lowres_bits = u32::from(header[11]);
        let lowres_bit_len =
            u32::from_le_bytes(header[12..16].try_into().expect("4 bytes")) as usize;
        // Absolute sanity caps, checked before the config comparison and
        // before any section allocation, so an adversarial header that
        // happens to carry a valid CRC still cannot request absurd work.
        if m == 0 || m > MAX_MEASUREMENTS || n == 0 || n > MAX_WINDOW {
            return Err(corrupt("implausible frame geometry"));
        }
        if !(1..=32).contains(&meas_bits) || !(1..=24).contains(&lowres_bits) {
            return Err(corrupt("implausible bit depth"));
        }
        if lowres_bit_len > MAX_LOWRES_BITS_PER_SAMPLE * n {
            return Err(corrupt("implausible low-res payload length"));
        }
        if m != self.config.measurements
            || n != self.config.window
            || meas_bits != self.config.measurement_bits
            || lowres_bits != self.config.lowres_bits
        {
            return Err(corrupt("frame built under a different configuration"));
        }

        let cs_len = (m * meas_bits as usize).div_ceil(8);
        let lr_len = lowres_bit_len.div_ceil(8);
        let body = &rest[4..];
        if body.len() != cs_len + 4 + lr_len + 4 {
            return Err(corrupt("frame body length mismatch"));
        }
        let (cs_section, tail) = body.split_at(cs_len);
        let stored_cs_crc = u32::from_le_bytes(tail[..4].try_into().expect("4 bytes"));
        let (lr_section, lr_tail) = tail[4..].split_at(lr_len);
        let stored_lr_crc = u32::from_le_bytes(lr_tail[..4].try_into().expect("4 bytes"));

        let measurements = if crc32(cs_section) == stored_cs_crc {
            let mut reader = BitReader::new(cs_section, m * meas_bits as usize);
            let mut values = Vec::with_capacity(m);
            for _ in 0..m {
                let code = reader.read_bits(meas_bits).map_err(CoreError::Coding)? as u32;
                values.push(code);
            }
            Some(self.decode_measurement_codes(&values))
        } else {
            None
        };
        let lowres = if crc32(lr_section) == stored_lr_crc {
            Some(Payload {
                bytes: lr_section.to_vec(),
                bit_len: lowres_bit_len,
            })
        } else {
            None
        };
        Ok(SectionedFrame {
            sequence,
            measurements,
            lowres,
        })
    }

    fn decode_measurement_codes(&self, codes: &[u32]) -> Vec<f64> {
        // Mid-tread reconstruction mirrors the digitizer used on encode.
        let step = self.digitizer.step();
        let lo = -self.config.measurement_full_scale_mv;
        codes
            .iter()
            .map(|&c| lo + (f64::from(c) + 0.5) * step)
            .collect()
    }
}

/// What a resilient receiver managed to recover for one window.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveredWindow {
    /// Both sections arrived: full hybrid reconstruction.
    Hybrid(DecodedWindow),
    /// Low-res section lost: plain-CS reconstruction from measurements.
    CsOnly(DecodedWindow),
    /// CS section lost: coarse trace from the low-res cells (midpoints).
    LowResOnly(Vec<f64>),
    /// Nothing usable arrived.
    Lost,
}

impl RecoveredWindow {
    /// The best-effort signal, if any section survived.
    #[must_use]
    pub fn signal(&self) -> Option<&[f64]> {
        match self {
            RecoveredWindow::Hybrid(d) | RecoveredWindow::CsOnly(d) => Some(&d.signal),
            RecoveredWindow::LowResOnly(s) => Some(s),
            RecoveredWindow::Lost => None,
        }
    }
}

/// Reception-side loss accounting, registered in the
/// [global metrics registry](hybridcs_obs::global):
///
/// * `telemetry_frames_total` — every [`ResilientReceiver::receive`] call;
/// * `telemetry_frames_lost{reason=...}` — `dropped` (no packet), `header`
///   (unusable header), `decode` (sections OK but reconstruction failed);
/// * `telemetry_section_lost{section=...}` — per-section CRC failures
///   (`cs`, `lowres`) on frames whose header parsed;
/// * `telemetry_outcome{outcome=...}` — one of `hybrid`, `cs_only`,
///   `lowres_only`, `lost` per received frame.
#[derive(Debug, Clone)]
struct ReceiverCounters {
    frames_total: Counter,
    lost_dropped: Counter,
    lost_header: Counter,
    lost_decode: Counter,
    section_cs: Counter,
    section_lowres: Counter,
    outcome_hybrid: Counter,
    outcome_cs_only: Counter,
    outcome_lowres_only: Counter,
    outcome_lost: Counter,
}

impl ReceiverCounters {
    fn new() -> Self {
        let registry = hybridcs_obs::global();
        let lost = |reason| registry.counter("telemetry_frames_lost", &[("reason", reason)]);
        let section = |section| registry.counter("telemetry_section_lost", &[("section", section)]);
        let outcome = |outcome| registry.counter("telemetry_outcome", &[("outcome", outcome)]);
        ReceiverCounters {
            frames_total: registry.counter("telemetry_frames_total", &[]),
            lost_dropped: lost("dropped"),
            lost_header: lost("header"),
            lost_decode: lost("decode"),
            section_cs: section("cs"),
            section_lowres: section("lowres"),
            outcome_hybrid: outcome("hybrid"),
            outcome_cs_only: outcome("cs_only"),
            outcome_lowres_only: outcome("lowres_only"),
            outcome_lost: outcome("lost"),
        }
    }

    fn record_outcome(&self, window: &RecoveredWindow) {
        match window {
            RecoveredWindow::Hybrid(_) => self.outcome_hybrid.add(1),
            RecoveredWindow::CsOnly(_) => self.outcome_cs_only.add(1),
            RecoveredWindow::LowResOnly(_) => self.outcome_lowres_only.add(1),
            RecoveredWindow::Lost => self.outcome_lost.add(1),
        }
    }
}

/// A receiver that degrades gracefully under section loss.
#[derive(Debug, Clone)]
pub struct ResilientReceiver {
    frame_codec: FrameCodec,
    decoder: HybridDecoder,
    lowres_channel: LowResChannel,
    lowres_codec: hybridcs_coding::LowResCodec,
    counters: ReceiverCounters,
}

impl ResilientReceiver {
    /// Builds the receiver from a configuration and the trained low-res
    /// codec (must match the sensor's).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on an invalid configuration.
    pub fn new(
        config: &SystemConfig,
        lowres_codec: hybridcs_coding::LowResCodec,
    ) -> Result<Self, CoreError> {
        Ok(ResilientReceiver {
            frame_codec: FrameCodec::new(config)?,
            decoder: HybridDecoder::new(config, lowres_codec.clone())?,
            lowres_channel: LowResChannel::new(config.lowres_bits)?,
            lowres_codec,
            counters: ReceiverCounters::new(),
        })
    }

    /// The framing codec (for the sensor side of a simulation).
    #[must_use]
    pub fn frame_codec(&self) -> &FrameCodec {
        &self.frame_codec
    }

    /// Receives one wire frame (or `None` for a wholly lost packet) and
    /// recovers as much as the surviving sections allow.
    ///
    /// Every call updates the loss counters documented on the type (see
    /// the module docs); `examples/lossy_link.rs` prints the resulting
    /// per-section summary.
    #[must_use]
    pub fn receive(&self, packet: Option<&[u8]>) -> RecoveredWindow {
        let recovered = self.receive_inner(packet);
        self.counters.record_outcome(&recovered);
        recovered
    }

    fn receive_inner(&self, packet: Option<&[u8]>) -> RecoveredWindow {
        self.counters.frames_total.add(1);
        let Some(bytes) = packet else {
            self.counters.lost_dropped.add(1);
            return RecoveredWindow::Lost;
        };
        let Ok(sections) = self.frame_codec.deserialize_sections(bytes) else {
            self.counters.lost_header.add(1);
            return RecoveredWindow::Lost;
        };
        if sections.measurements.is_none() {
            self.counters.section_cs.add(1);
        }
        if sections.lowres.is_none() {
            self.counters.section_lowres.add(1);
        }
        let config = self.decoder.config().clone();
        match (sections.measurements, sections.lowres) {
            (Some(measurements), Some(lowres)) => {
                let encoded = EncodedWindow {
                    measurements,
                    lowres,
                    window_len: config.window,
                    measurement_bits: config.measurement_bits,
                };
                match self.decoder.decode(&encoded) {
                    Ok(decoded) => RecoveredWindow::Hybrid(decoded),
                    Err(_) => {
                        self.counters.lost_decode.add(1);
                        RecoveredWindow::Lost
                    }
                }
            }
            (Some(measurements), None) => {
                // Build a placeholder low-res payload; decode_normal never
                // reads it.
                let encoded = EncodedWindow {
                    measurements,
                    lowres: Payload {
                        bytes: Vec::new(),
                        bit_len: 0,
                    },
                    window_len: config.window,
                    measurement_bits: config.measurement_bits,
                };
                match self.decoder.decode_normal(&encoded) {
                    Ok(decoded) => RecoveredWindow::CsOnly(decoded),
                    Err(_) => {
                        self.counters.lost_decode.add(1);
                        RecoveredWindow::Lost
                    }
                }
            }
            (None, Some(lowres)) => {
                let decode_failed = || {
                    self.counters.lost_decode.add(1);
                    RecoveredWindow::Lost
                };
                let Ok(codes) = self.lowres_codec.decode(&lowres, config.window) else {
                    return decode_failed();
                };
                let Ok(frame) = LowResFrame::from_codes(codes, &self.lowres_channel) else {
                    return decode_failed();
                };
                let half = frame.step() / 2.0;
                RecoveredWindow::LowResOnly(frame.samples().iter().map(|v| v + half).collect())
            }
            (None, None) => RecoveredWindow::Lost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::default_training_windows;
    use crate::{train_lowres_codec, HybridFrontEnd};
    use hybridcs_ecg::{EcgGenerator, GeneratorConfig};

    fn setup() -> (HybridFrontEnd, ResilientReceiver, Vec<f64>) {
        let config = SystemConfig {
            measurements: 64,
            ..SystemConfig::default()
        };
        let codec =
            train_lowres_codec(config.lowres_bits, &default_training_windows(config.window))
                .unwrap();
        let frontend = HybridFrontEnd::new(&config, codec.clone()).unwrap();
        let receiver = ResilientReceiver::new(&config, codec).unwrap();
        let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).unwrap();
        let window = generator.generate(2.0, 0x7E1E)[..config.window].to_vec();
        (frontend, receiver, window)
    }

    #[test]
    fn clean_frame_roundtrips_to_hybrid() {
        let (frontend, receiver, window) = setup();
        let encoded = frontend.encode(&window).unwrap();
        let bytes = receiver.frame_codec().serialize(7, &encoded).unwrap();
        // Full parse also works.
        let frame = receiver.frame_codec().deserialize(&bytes).unwrap();
        assert_eq!(frame.sequence, 7);
        assert_eq!(frame.encoded.lowres, encoded.lowres);
        for (a, b) in frame.encoded.measurements.iter().zip(&encoded.measurements) {
            assert!((a - b).abs() < 1e-9, "measurement drift {a} vs {b}");
        }
        match receiver.receive(Some(&bytes)) {
            RecoveredWindow::Hybrid(decoded) => {
                let snr = hybridcs_metrics::snr_db(&window, &decoded.signal);
                assert!(snr > 12.0, "SNR {snr}");
            }
            other => panic!("expected hybrid recovery, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_cs_section_falls_back_to_lowres() {
        let (frontend, receiver, window) = setup();
        let encoded = frontend.encode(&window).unwrap();
        let mut bytes = receiver.frame_codec().serialize(1, &encoded).unwrap();
        // Flip a bit inside the CS section (just after the 20-byte header).
        bytes[25] ^= 0x10;
        match receiver.receive(Some(&bytes)) {
            RecoveredWindow::LowResOnly(signal) => {
                // Coarse but sane: within one quantization step everywhere.
                let channel = LowResChannel::new(7).unwrap();
                for (v, x) in signal.iter().zip(&window) {
                    assert!((v - x).abs() <= channel.step());
                }
            }
            other => panic!("expected low-res fallback, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_lowres_section_falls_back_to_normal_cs() {
        let (frontend, receiver, window) = setup();
        let encoded = frontend.encode(&window).unwrap();
        let mut bytes = receiver.frame_codec().serialize(2, &encoded).unwrap();
        let last = bytes.len() - 6; // inside the low-res section
        bytes[last] ^= 0x01;
        match receiver.receive(Some(&bytes)) {
            RecoveredWindow::CsOnly(decoded) => {
                assert!(!decoded.used_box);
                assert_eq!(decoded.signal.len(), window.len());
            }
            other => panic!("expected CS-only fallback, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_header_is_lost() {
        let (frontend, receiver, window) = setup();
        let encoded = frontend.encode(&window).unwrap();
        let mut bytes = receiver.frame_codec().serialize(3, &encoded).unwrap();
        bytes[3] ^= 0xFF; // sequence byte, protected by header CRC
        assert_eq!(receiver.receive(Some(&bytes)), RecoveredWindow::Lost);
        assert_eq!(receiver.receive(None), RecoveredWindow::Lost);
        assert_eq!(receiver.receive(Some(&[1, 2, 3])), RecoveredWindow::Lost);
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let (frontend, receiver, window) = setup();
        let encoded = frontend.encode(&window).unwrap();
        let bytes = receiver.frame_codec().serialize(4, &encoded).unwrap();
        let other_config = SystemConfig {
            measurements: 96,
            ..SystemConfig::default()
        };
        let other = FrameCodec::new(&other_config).unwrap();
        assert!(other.deserialize_sections(&bytes).is_err());
    }

    #[test]
    fn recovered_window_signal_accessor() {
        assert!(RecoveredWindow::Lost.signal().is_none());
        assert_eq!(
            RecoveredWindow::LowResOnly(vec![1.0]).signal(),
            Some(&[1.0][..])
        );
    }
}
