//! The receiver-side recovery supervisor: a decode ladder that degrades
//! gracefully instead of failing.
//!
//! [`ResilientReceiver`](crate::telemetry::ResilientReceiver) already maps
//! per-section CRC verdicts to fallback decodes, but it still *errors
//! upward*: a solver blow-up or an unusable frame yields
//! [`RecoveredWindow::Lost`](crate::telemetry::RecoveredWindow) and the
//! caller has to cope. [`RecoverySupervisor`] closes that last gap — its
//! [`receive`](RecoverySupervisor::receive) **always** returns a finite
//! signal of the configured window length, chosen from a four-rung ladder:
//!
//! 1. [`Hybrid`](LadderRung::Hybrid) — both sections intact, Eq. (1) with
//!    the box, watched by a [`SolverWatchdog`];
//! 2. [`CsOnly`](LadderRung::CsOnly) — box dropped (low-res section lost
//!    or the hybrid solve tripped the watchdog), plain CS on the same
//!    measurements;
//! 3. [`LowResOnly`](LadderRung::LowResOnly) — CS section lost: cell
//!    midpoints from the low-resolution stream;
//! 4. [`Concealed`](LadderRung::Concealed) — nothing usable: repeat the
//!    last good window (bounded by
//!    [`SupervisorConfig::max_conceal_reuse`], then flat-line zeros).
//!
//! The ladder is split into two halves so a multi-session service (the
//! `hybridcs-gateway` crate) can run them on different threads:
//!
//! * [`DecodeLadder`] — the **stateless** half: frame parsing and the
//!   solver-backed rung attempts. It is `Send + Sync`, holds the expensive
//!   per-shape operator state (sensing matrix, wavelet, entropy codec),
//!   and can be shared behind an `Arc` by any number of worker threads —
//!   one ladder per `(m, n, basis)` shape, reused across sessions.
//! * [`SessionLedger`] — the **stateful** half: sequence-gap tracking,
//!   last-good concealment, and the metrics bookkeeping. One per session,
//!   cheap, and only ever touched by its owning thread.
//!
//! [`RecoverySupervisor`] composes the two for the single-session case;
//! its behaviour is unchanged.
//!
//! Every ladder decision, demotion and sequence gap is counted in the
//! [global metrics registry](hybridcs_obs::global) under `supervisor_*`
//! names, and watchdog trips under `solver_watchdog_trips` — so a
//! resilience run can report exactly how it degraded.
//!
//! Unlike the plain decoder path, every supervised solve runs with an
//! *active* observer (the watchdog), which costs one extra `Φ`-application
//! per iteration. That is the price of divergence detection; the clean
//! benchmarking paths keep using [`HybridDecoder`] directly.

use crate::codec::{DecodedWindow, EncodedWindow};
use crate::telemetry::FrameCodec;
use crate::{CoreError, HybridDecoder, SystemConfig};
use hybridcs_coding::{LowResCodec, Payload};
use hybridcs_frontend::{LowResChannel, LowResFrame};
use hybridcs_obs::{ConvergenceTrace, EventContext, IterationEvent, IterationObserver};
use hybridcs_solver::{SolverWatchdog, SolverWorkspace, WatchdogConfig};

/// Which rung of the decode ladder produced a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderRung {
    /// Full hybrid reconstruction (box-constrained Eq. (1)).
    Hybrid,
    /// Plain-CS reconstruction; the box was unavailable or harmful.
    CsOnly,
    /// Low-resolution cell midpoints only.
    LowResOnly,
    /// Concealment: last good window, or zeros when staleness exceeded
    /// [`SupervisorConfig::max_conceal_reuse`].
    Concealed,
}

impl LadderRung {
    /// Stable lower-snake identifier (used as the metrics label).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            LadderRung::Hybrid => "hybrid",
            LadderRung::CsOnly => "cs_only",
            LadderRung::LowResOnly => "lowres_only",
            LadderRung::Concealed => "concealed",
        }
    }

    /// Stable numeric code matching the flight-recorder
    /// [`RUNGS`](hybridcs_obs::flight::RUNGS) table.
    #[must_use]
    pub fn code(&self) -> u8 {
        match self {
            LadderRung::Hybrid => 0,
            LadderRung::CsOnly => 1,
            LadderRung::LowResOnly => 2,
            LadderRung::Concealed => 3,
        }
    }

    /// The rung for a stable code (inverse of [`code`](LadderRung::code));
    /// `None` for unknown codes. Used when deserializing checkpointed
    /// windows.
    #[must_use]
    pub fn from_code(code: u8) -> Option<LadderRung> {
        Some(match code {
            0 => LadderRung::Hybrid,
            1 => LadderRung::CsOnly,
            2 => LadderRung::LowResOnly,
            3 => LadderRung::Concealed,
            _ => return None,
        })
    }
}

/// Supervisor policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Watchdog thresholds applied to every supervised solve (hybrid and
    /// CS-only rungs). The default has no wall-clock budget, keeping
    /// supervised decodes deterministic; deployments add one.
    pub watchdog: WatchdogConfig,
    /// Consecutive concealed windows allowed to repeat the last good
    /// window before the supervisor flat-lines to zeros instead (stale
    /// ECG is worse than an honest gap once the gap is long).
    pub max_conceal_reuse: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            watchdog: WatchdogConfig::default(),
            max_conceal_reuse: 8,
        }
    }
}

/// One supervised window: the chosen rung, the (always finite) signal, and
/// the demotion trail explaining every rung that was tried and failed.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedWindow {
    /// Frame sequence number, when the header survived.
    pub sequence: Option<u32>,
    /// The rung that produced `signal`.
    pub rung: LadderRung,
    /// The reconstruction — always `window` samples, always finite.
    pub signal: Vec<f64>,
    /// Rungs attempted before `rung`, with the failure reason
    /// (`"decode_error"`, `"watchdog"`, `"non_finite"`, `"shed"`).
    pub demotions: Vec<(LadderRung, &'static str)>,
    /// The solver output backing `signal`, for the hybrid/CS-only rungs.
    pub decoded: Option<DecodedWindow>,
}

/// The per-section content of one parsed wire frame (or of a wholly lost
/// packet: everything `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSections {
    /// Frame sequence number, when the header survived.
    pub sequence: Option<u32>,
    /// CS measurements, when that section's CRC passed.
    pub measurements: Option<Vec<f64>>,
    /// Low-resolution payload, when that section's CRC passed.
    pub lowres: Option<Payload>,
}

/// The accepted rung for one window: the rung itself, the signal it
/// committed, and the full solver report when a solver backed it (the
/// low-resolution rung carries `None`).
pub type ChosenRung = (LadderRung, Vec<f64>, Option<DecodedWindow>);

/// The outcome of the stateless rung attempts for one window: the first
/// rung that produced a finite signal (if any — concealment is the
/// ledger's job), plus the demotion trail.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderOutcome {
    /// The successful rung, its signal, and the solver report when one
    /// backed it. `None` means every non-concealment rung failed.
    pub chosen: Option<ChosenRung>,
    /// Rungs attempted and failed before `chosen` (or before giving up).
    pub demotions: Vec<(LadderRung, &'static str)>,
}

impl LadderOutcome {
    /// An outcome with nothing usable — the ledger will conceal.
    #[must_use]
    pub fn empty() -> Self {
        LadderOutcome {
            chosen: None,
            demotions: Vec::new(),
        }
    }
}

/// One window's surviving sections for a batched ladder solve
/// ([`DecodeLadder::solve_batch_with`]).
#[derive(Debug, Clone, Copy)]
pub struct LadderJob<'a> {
    /// CS measurements, when that section's CRC passed.
    pub measurements: Option<&'a [f64]>,
    /// Low-resolution payload, when that section's CRC passed.
    pub lowres: Option<&'a Payload>,
    /// Load shedding: demote the solver rungs with reason `"shed"`.
    pub skip_solvers: bool,
    /// Flight-recorder context for this window's solver-side events
    /// (watchdog trips). Batched solves interleave windows on one thread,
    /// so a single ambient thread-local context would tag every window
    /// alike; `None` leaves the ambient context untouched.
    pub context: Option<EventContext>,
}

/// Runs every event-emitting observer callback under a fixed
/// flight-recorder context, so watchdog trips fired from inside a batched
/// solve attribute to the wrapped window rather than to whatever the
/// thread-local happens to hold.
struct ContextScoped<'a, 'w> {
    inner: &'a mut SolverWatchdog<'w>,
    ctx: Option<EventContext>,
}

impl<'w> ContextScoped<'_, 'w> {
    fn scoped<T>(&mut self, f: impl FnOnce(&mut SolverWatchdog<'w>) -> T) -> T {
        use hybridcs_obs::flight::{context, set_context};
        match self.ctx {
            None => f(self.inner),
            Some(ctx) => {
                let prev = context();
                set_context(Some(ctx));
                let out = f(self.inner);
                set_context(prev);
                out
            }
        }
    }
}

impl IterationObserver for ContextScoped<'_, '_> {
    fn active(&self) -> bool {
        self.inner.active()
    }

    fn on_iteration(&mut self, event: &IterationEvent) {
        self.scoped(|dog| dog.on_iteration(event));
    }

    fn on_complete(&mut self, trace: &ConvergenceTrace) {
        self.scoped(|dog| dog.on_complete(trace));
    }

    fn should_abort(&self) -> bool {
        self.inner.should_abort()
    }
}

/// The stateless half of the decode ladder: parsing and solver-backed rung
/// attempts. `Send + Sync`; share one per operator shape behind an `Arc`.
#[derive(Debug, Clone)]
pub struct DecodeLadder {
    frame_codec: FrameCodec,
    decoder: HybridDecoder,
    lowres_channel: LowResChannel,
    lowres_codec: LowResCodec,
    watchdog: WatchdogConfig,
}

impl DecodeLadder {
    /// Builds the ladder for one system configuration and trained low-res
    /// codec (must match the sensor's).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on an invalid configuration.
    pub fn new(
        system: &SystemConfig,
        lowres_codec: LowResCodec,
        watchdog: WatchdogConfig,
    ) -> Result<Self, CoreError> {
        Ok(DecodeLadder {
            frame_codec: FrameCodec::new(system)?,
            decoder: HybridDecoder::new(system, lowres_codec.clone())?,
            lowres_channel: LowResChannel::new(system.lowres_bits)?,
            lowres_codec,
            watchdog,
        })
    }

    /// The framing codec (for the sensor side of a simulation).
    #[must_use]
    pub fn frame_codec(&self) -> &FrameCodec {
        &self.frame_codec
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        self.decoder.config()
    }

    /// Parses one wire frame (or `None` for a wholly lost packet) into its
    /// surviving sections. Unusable headers are counted under
    /// `supervisor_header_unusable_total` and yield an all-`None` parse —
    /// they never error.
    #[must_use]
    pub fn parse(&self, packet: Option<&[u8]>) -> ParsedSections {
        match packet {
            None => ParsedSections {
                sequence: None,
                measurements: None,
                lowres: None,
            },
            Some(bytes) => match self.frame_codec.deserialize_sections(bytes) {
                Ok(sections) => ParsedSections {
                    sequence: Some(sections.sequence),
                    measurements: sections.measurements,
                    lowres: sections.lowres,
                },
                Err(_) => {
                    hybridcs_obs::global()
                        .counter("supervisor_header_unusable_total", &[])
                        .inc();
                    ParsedSections {
                        sequence: None,
                        measurements: None,
                        lowres: None,
                    }
                }
            },
        }
    }

    /// Walks the non-concealment rungs over the surviving sections. With
    /// `skip_solvers` (load shedding) the hybrid and CS-only rungs are
    /// demoted with reason `"shed"` without running a solver, landing on
    /// the cheap low-res rung when that section survived.
    ///
    /// This is the expensive, pure half of
    /// [`RecoverySupervisor::receive`]: no session state is read or
    /// written, so any thread may run it.
    #[must_use]
    pub fn solve(
        &self,
        measurements: Option<&[f64]>,
        lowres: Option<&Payload>,
        skip_solvers: bool,
    ) -> LadderOutcome {
        self.solve_with(
            measurements,
            lowres,
            skip_solvers,
            &mut SolverWorkspace::new(),
        )
    }

    /// [`DecodeLadder::solve`] drawing all solver buffers from a
    /// caller-owned [`SolverWorkspace`]. The gateway keeps one workspace per
    /// shard and threads it through every window, so steady-state decodes
    /// allocate nothing inside the solver loops. Results are bit-identical
    /// to [`DecodeLadder::solve`].
    #[must_use]
    pub fn solve_with(
        &self,
        measurements: Option<&[f64]>,
        lowres: Option<&Payload>,
        skip_solvers: bool,
        ws: &mut SolverWorkspace,
    ) -> LadderOutcome {
        let _span = hybridcs_obs::span!("ladder.solve");
        let mut demotions: Vec<(LadderRung, &'static str)> = Vec::new();

        if skip_solvers {
            if measurements.is_some() && lowres.is_some() {
                demotions.push((LadderRung::Hybrid, "shed"));
            }
            if measurements.is_some() {
                demotions.push((LadderRung::CsOnly, "shed"));
            }
        } else {
            if let (Some(meas), Some(lr)) = (measurements, lowres) {
                match self.try_decode(meas, lr, true, ws) {
                    Ok(decoded) => {
                        return LadderOutcome {
                            chosen: Some((
                                LadderRung::Hybrid,
                                decoded.signal.clone(),
                                Some(decoded),
                            )),
                            demotions,
                        };
                    }
                    Err(reason) => demotions.push((LadderRung::Hybrid, reason)),
                }
            }
            if let Some(meas) = measurements {
                let placeholder = Payload {
                    bytes: Vec::new(),
                    bit_len: 0,
                };
                match self.try_decode(meas, &placeholder, false, ws) {
                    Ok(decoded) => {
                        return LadderOutcome {
                            chosen: Some((
                                LadderRung::CsOnly,
                                decoded.signal.clone(),
                                Some(decoded),
                            )),
                            demotions,
                        };
                    }
                    Err(reason) => demotions.push((LadderRung::CsOnly, reason)),
                }
            }
        }
        if let Some(lr) = lowres {
            match self.lowres_midpoints(lr) {
                Ok(signal) => {
                    return LadderOutcome {
                        chosen: Some((LadderRung::LowResOnly, signal, None)),
                        demotions,
                    };
                }
                Err(reason) => demotions.push((LadderRung::LowResOnly, reason)),
            }
        }
        LadderOutcome {
            chosen: None,
            demotions,
        }
    }

    /// Batched [`DecodeLadder::solve_with`]: walks the same rung ladder for
    /// a group of same-shape windows, batching the hybrid and CS-only
    /// solver rungs across every window still on that rung so the operator
    /// kernels amortize their per-iteration table work across the group
    /// (and vectorize across it when SIMD is enabled). Outcomes come back
    /// in job order and are bit-identical to calling `solve_with` once per
    /// window — each window keeps its own watchdog, its own demotion
    /// trail, and its own stopping decisions.
    #[must_use]
    pub fn solve_batch_with(
        &self,
        jobs: &[LadderJob<'_>],
        ws: &mut SolverWorkspace,
    ) -> Vec<LadderOutcome> {
        let _span = hybridcs_obs::span!("ladder.solve_batch");
        let mut demotions: Vec<Vec<(LadderRung, &'static str)>> = vec![Vec::new(); jobs.len()];
        let mut chosen: Vec<Option<ChosenRung>> = (0..jobs.len()).map(|_| None).collect();
        for (i, job) in jobs.iter().enumerate() {
            if job.skip_solvers {
                if job.measurements.is_some() && job.lowres.is_some() {
                    demotions[i].push((LadderRung::Hybrid, "shed"));
                }
                if job.measurements.is_some() {
                    demotions[i].push((LadderRung::CsOnly, "shed"));
                }
            }
        }
        let hybrid: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| !j.skip_solvers && j.measurements.is_some() && j.lowres.is_some())
            .map(|(i, _)| i)
            .collect();
        self.rung_batch(
            jobs,
            &hybrid,
            LadderRung::Hybrid,
            ws,
            &mut chosen,
            &mut demotions,
        );
        let cs_only: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(i, j)| !j.skip_solvers && j.measurements.is_some() && chosen[*i].is_none())
            .map(|(i, _)| i)
            .collect();
        self.rung_batch(
            jobs,
            &cs_only,
            LadderRung::CsOnly,
            ws,
            &mut chosen,
            &mut demotions,
        );
        jobs.iter()
            .enumerate()
            .map(|(i, job)| {
                let mut outcome = LadderOutcome {
                    chosen: chosen[i].take(),
                    demotions: std::mem::take(&mut demotions[i]),
                };
                if outcome.chosen.is_none() {
                    if let Some(lr) = job.lowres {
                        match self.lowres_midpoints(lr) {
                            Ok(signal) => {
                                outcome.chosen = Some((LadderRung::LowResOnly, signal, None));
                            }
                            Err(reason) => outcome.demotions.push((LadderRung::LowResOnly, reason)),
                        }
                    }
                }
                outcome
            })
            .collect()
    }

    /// One solver rung of [`solve_batch_with`](DecodeLadder::solve_batch_with):
    /// a watched batched decode over `group`, scattering per-window success
    /// into `chosen` and failure reasons into `demotions` — exactly
    /// [`try_decode`](DecodeLadder::try_decode)'s verdicts, per window.
    fn rung_batch(
        &self,
        jobs: &[LadderJob<'_>],
        group: &[usize],
        rung: LadderRung,
        ws: &mut SolverWorkspace,
        chosen: &mut [Option<ChosenRung>],
        demotions: &mut [Vec<(LadderRung, &'static str)>],
    ) {
        if group.is_empty() {
            return;
        }
        let system = self.decoder.config();
        let use_box = rung == LadderRung::Hybrid;
        let placeholder = Payload {
            bytes: Vec::new(),
            bit_len: 0,
        };
        let encoded: Vec<EncodedWindow> = group
            .iter()
            .map(|&i| EncodedWindow {
                measurements: jobs[i]
                    .measurements
                    .expect("rung group has measurements")
                    .to_vec(),
                lowres: if use_box {
                    jobs[i].lowres.expect("hybrid group has low-res").clone()
                } else {
                    placeholder.clone()
                },
                window_len: system.window,
                measurement_bits: system.measurement_bits,
            })
            .collect();
        let enc_refs: Vec<&EncodedWindow> = encoded.iter().collect();
        let mut dogs: Vec<SolverWatchdog<'_>> = group
            .iter()
            .map(|_| SolverWatchdog::new(self.watchdog))
            .collect();
        let mut scoped: Vec<ContextScoped<'_, '_>> = dogs
            .iter_mut()
            .zip(group)
            .map(|(dog, &i)| ContextScoped {
                inner: dog,
                ctx: jobs[i].context,
            })
            .collect();
        let mut refs: Vec<&mut dyn IterationObserver> = scoped
            .iter_mut()
            .map(|s| s as &mut dyn IterationObserver)
            .collect();
        let mut results = Vec::new();
        let batch_ok = self
            .decoder
            .decode_batch_workspace(&enc_refs, use_box, &mut refs, ws, &mut results)
            .is_ok();
        drop(refs);
        drop(scoped);
        if !batch_ok {
            // Unreachable in practice (observers are built pairwise with the
            // windows), but a malformed batch demotes instead of panicking.
            for &i in group {
                demotions[i].push((rung, "decode_error"));
            }
            return;
        }
        for ((&i, result), dog) in group.iter().zip(results).zip(dogs) {
            match result {
                Err(_) => demotions[i].push((rung, "decode_error")),
                Ok(decoded) => {
                    if dog.trip().is_some() {
                        demotions[i].push((rung, "watchdog"));
                    } else if decoded.signal.iter().any(|v| !v.is_finite()) {
                        demotions[i].push((rung, "non_finite"));
                    } else {
                        chosen[i] = Some((rung, decoded.signal.clone(), Some(decoded)));
                    }
                }
            }
        }
    }

    /// Runs one watched decode; a solver error, a watchdog trip, or a
    /// non-finite output all demote instead of propagating.
    fn try_decode(
        &self,
        measurements: &[f64],
        lowres: &Payload,
        use_box: bool,
        ws: &mut SolverWorkspace,
    ) -> Result<DecodedWindow, &'static str> {
        let system = self.decoder.config();
        let encoded = EncodedWindow {
            measurements: measurements.to_vec(),
            lowres: lowres.clone(),
            window_len: system.window,
            measurement_bits: system.measurement_bits,
        };
        let mut watchdog = SolverWatchdog::new(self.watchdog);
        let result = self
            .decoder
            .decode_workspace(&encoded, use_box, &mut watchdog, ws);
        match result {
            Err(_) => Err("decode_error"),
            Ok(decoded) => {
                if watchdog.trip().is_some() {
                    return Err("watchdog");
                }
                if decoded.signal.iter().any(|v| !v.is_finite()) {
                    return Err("non_finite");
                }
                Ok(decoded)
            }
        }
    }

    /// Cell-midpoint reconstruction from the low-resolution stream.
    fn lowres_midpoints(&self, lowres: &Payload) -> Result<Vec<f64>, &'static str> {
        let window = self.decoder.config().window;
        let codes = self
            .lowres_codec
            .decode(lowres, window)
            .map_err(|_| "decode_error")?;
        let frame =
            LowResFrame::from_codes(codes, &self.lowres_channel).map_err(|_| "decode_error")?;
        let half = frame.step() / 2.0;
        let signal: Vec<f64> = frame.samples().iter().map(|v| v + half).collect();
        if signal.iter().any(|v| !v.is_finite()) {
            return Err("non_finite");
        }
        Ok(signal)
    }
}

/// The stateful half of the ladder: one session's sequence tracking,
/// concealment memory, and metrics bookkeeping. Cheap, single-owner.
#[derive(Debug, Clone)]
pub struct SessionLedger {
    window: usize,
    max_conceal_reuse: usize,
    last_good: Option<Vec<f64>>,
    consecutive_concealed: usize,
    expected_sequence: Option<u32>,
}

/// A [`SessionLedger`]'s mutable state, detached from its configuration
/// (`window`, `max_conceal_reuse` are rebuilt from config at restore).
/// This is what a durability layer checkpoints: restoring it into a fresh
/// ledger of the same configuration reproduces bit-identical behaviour,
/// because every `f64` is carried exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerState {
    /// The last successfully decoded window, if any (concealment source).
    pub last_good: Option<Vec<f64>>,
    /// Consecutive concealed windows so far (drives the flat-line cutoff).
    pub consecutive_concealed: usize,
    /// The next expected frame sequence, if tracking has started.
    pub expected_sequence: Option<u32>,
}

impl SessionLedger {
    /// A fresh ledger for windows of `window` samples.
    #[must_use]
    pub fn new(window: usize, max_conceal_reuse: usize) -> Self {
        SessionLedger {
            window,
            max_conceal_reuse,
            last_good: None,
            consecutive_concealed: 0,
            expected_sequence: None,
        }
    }

    /// The ledger's mutable state, for checkpointing.
    #[must_use]
    pub fn state(&self) -> LedgerState {
        LedgerState {
            last_good: self.last_good.clone(),
            consecutive_concealed: self.consecutive_concealed,
            expected_sequence: self.expected_sequence,
        }
    }

    /// Restores previously captured state into this ledger (which must be
    /// configured identically to the one that produced it).
    pub fn restore(&mut self, state: LedgerState) {
        self.last_good = state.last_good;
        self.consecutive_concealed = state.consecutive_concealed;
        self.expected_sequence = state.expected_sequence;
    }

    /// Clears all session state back to freshly-constructed: concealment
    /// memory, staleness counter, and sequence tracking. Called when a
    /// session closes so a reused session id cannot inherit stale
    /// degradation state.
    pub fn reset(&mut self) {
        self.last_good = None;
        self.consecutive_concealed = 0;
        self.expected_sequence = None;
    }

    /// Counts sequence gaps: `supervisor_sequence_gap_events_total` per
    /// discontinuity and `supervisor_missing_frames_total` for the frames
    /// skipped over.
    pub fn track_sequence(&mut self, sequence: u32) {
        if let Some(expected) = self.expected_sequence {
            if sequence > expected {
                let registry = hybridcs_obs::global();
                registry
                    .counter("supervisor_sequence_gap_events_total", &[])
                    .inc();
                registry
                    .counter("supervisor_missing_frames_total", &[])
                    .add(u64::from(sequence - expected));
            }
        }
        self.expected_sequence = Some(sequence.wrapping_add(1));
    }

    /// Books one window's outcome: counters, demotion trail, concealment
    /// or last-good update. Always yields a finite window — the bottom
    /// (concealment) rung cannot fail.
    pub fn commit(&mut self, sequence: Option<u32>, outcome: LadderOutcome) -> SupervisedWindow {
        use hybridcs_obs::flight::{demotion_reason_code, emit};
        use hybridcs_obs::EventKind;
        let registry = hybridcs_obs::global();
        registry.counter("supervisor_windows_total", &[]).inc();
        let commit_arg = sequence.map_or(u64::MAX, u64::from);
        for (rung, reason) in &outcome.demotions {
            registry
                .counter(
                    "supervisor_rung_failed_total",
                    &[("rung", rung.name()), ("reason", reason)],
                )
                .inc();
            emit(
                EventKind::Demotion,
                rung.code(),
                u64::from(demotion_reason_code(reason)),
            );
        }
        match outcome.chosen {
            Some((rung, signal, decoded)) => {
                registry
                    .counter("supervisor_rung_total", &[("rung", rung.name())])
                    .inc();
                emit(EventKind::Commit, rung.code(), commit_arg);
                self.last_good = Some(signal.clone());
                self.consecutive_concealed = 0;
                SupervisedWindow {
                    sequence,
                    rung,
                    signal,
                    demotions: outcome.demotions,
                    decoded,
                }
            }
            None => {
                // Bottom rung: concealment, which cannot fail.
                let signal = if self.consecutive_concealed < self.max_conceal_reuse {
                    self.last_good.clone()
                } else {
                    None
                }
                .unwrap_or_else(|| vec![0.0; self.window]);
                self.consecutive_concealed += 1;
                registry
                    .counter(
                        "supervisor_rung_total",
                        &[("rung", LadderRung::Concealed.name())],
                    )
                    .inc();
                emit(EventKind::Commit, LadderRung::Concealed.code(), commit_arg);
                SupervisedWindow {
                    sequence,
                    rung: LadderRung::Concealed,
                    signal,
                    demotions: outcome.demotions,
                    decoded: None,
                }
            }
        }
    }
}

/// The single-session supervisor: a [`DecodeLadder`] and a
/// [`SessionLedger`] composed behind the original one-call API; see the
/// [module docs](self) for the ladder.
#[derive(Debug, Clone)]
pub struct RecoverySupervisor {
    ladder: DecodeLadder,
    ledger: SessionLedger,
}

impl RecoverySupervisor {
    /// Builds a supervisor from the system configuration, the trained
    /// low-res codec (must match the sensor's), and the supervisor policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on an invalid configuration.
    pub fn new(
        system: &SystemConfig,
        lowres_codec: LowResCodec,
        config: SupervisorConfig,
    ) -> Result<Self, CoreError> {
        Ok(RecoverySupervisor {
            ladder: DecodeLadder::new(system, lowres_codec, config.watchdog)?,
            ledger: SessionLedger::new(system.window, config.max_conceal_reuse),
        })
    }

    /// The framing codec (for the sensor side of a simulation).
    #[must_use]
    pub fn frame_codec(&self) -> &FrameCodec {
        self.ladder.frame_codec()
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        self.ladder.config()
    }

    /// The stateless ladder half (shared with multi-session services).
    #[must_use]
    pub fn ladder(&self) -> &DecodeLadder {
        &self.ladder
    }

    /// Resets the per-session half (concealment memory, staleness counter,
    /// sequence tracking) for session close/reuse; the expensive stateless
    /// ladder is untouched.
    pub fn reset_session(&mut self) {
        self.ledger.reset();
    }

    /// Receives one wire frame (or `None` for a wholly lost packet) and
    /// walks the decode ladder until a rung yields a finite window. Never
    /// errors, never panics on adversarial input, never skips a window:
    /// the bottom rung always succeeds.
    pub fn receive(&mut self, packet: Option<&[u8]>) -> SupervisedWindow {
        let _span = hybridcs_obs::span!("supervisor.receive");
        let parsed = self.ladder.parse(packet);
        if let Some(seq) = parsed.sequence {
            self.ledger.track_sequence(seq);
        }
        let outcome = self.ladder.solve(
            parsed.measurements.as_deref(),
            parsed.lowres.as_ref(),
            false,
        );
        self.ledger.commit(parsed.sequence, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::default_training_windows;
    use crate::{train_lowres_codec, HybridFrontEnd};
    use hybridcs_ecg::{EcgGenerator, GeneratorConfig};

    fn setup() -> (HybridFrontEnd, RecoverySupervisor, Vec<f64>) {
        let config = SystemConfig {
            measurements: 64,
            ..SystemConfig::default()
        };
        let codec =
            train_lowres_codec(config.lowres_bits, &default_training_windows(config.window))
                .unwrap();
        let frontend = HybridFrontEnd::new(&config, codec.clone()).unwrap();
        let supervisor =
            RecoverySupervisor::new(&config, codec, SupervisorConfig::default()).unwrap();
        let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).unwrap();
        let window = generator.generate(2.0, 0x5D_01)[..config.window].to_vec();
        (frontend, supervisor, window)
    }

    /// The ladder must be shareable across worker threads.
    #[test]
    fn decode_ladder_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DecodeLadder>();
    }

    #[test]
    fn skip_solvers_demotes_to_lowres_with_shed_reason() {
        let (frontend, supervisor, window) = setup();
        let encoded = frontend.encode(&window).unwrap();
        let bytes = supervisor.frame_codec().serialize(0, &encoded).unwrap();
        let parsed = supervisor.ladder().parse(Some(&bytes));
        let outcome =
            supervisor
                .ladder()
                .solve(parsed.measurements.as_deref(), parsed.lowres.as_ref(), true);
        let (rung, signal, decoded) = outcome.chosen.expect("low-res rung should succeed");
        assert_eq!(rung, LadderRung::LowResOnly);
        assert_eq!(signal.len(), window.len());
        assert!(decoded.is_none());
        assert_eq!(
            outcome.demotions,
            vec![(LadderRung::Hybrid, "shed"), (LadderRung::CsOnly, "shed"),]
        );
    }

    #[test]
    fn split_halves_match_receive() {
        let (frontend, mut supervisor, window) = setup();
        let encoded = frontend.encode(&window).unwrap();
        let bytes = supervisor.frame_codec().serialize(0, &encoded).unwrap();

        // Drive the split API by hand...
        let ladder = supervisor.ladder().clone();
        let mut ledger = SessionLedger::new(
            supervisor.config().window,
            SupervisorConfig::default().max_conceal_reuse,
        );
        let parsed = ladder.parse(Some(&bytes));
        let outcome = ladder.solve(
            parsed.measurements.as_deref(),
            parsed.lowres.as_ref(),
            false,
        );
        let split = ledger.commit(parsed.sequence, outcome);

        // ...and compare with the one-call path.
        let composed = supervisor.receive(Some(&bytes));
        assert_eq!(split, composed);
        assert_eq!(split.rung, LadderRung::Hybrid);
    }

    #[test]
    fn ledger_state_round_trips_and_reset_clears() {
        let mut ledger = SessionLedger::new(4, 2);
        ledger.track_sequence(0);
        ledger.commit(
            Some(0),
            LadderOutcome {
                chosen: Some((LadderRung::LowResOnly, vec![0.5; 4], None)),
                demotions: Vec::new(),
            },
        );
        ledger.commit(None, LadderOutcome::empty());
        let state = ledger.state();
        assert_eq!(state.last_good, Some(vec![0.5; 4]));
        assert_eq!(state.consecutive_concealed, 1);
        assert_eq!(state.expected_sequence, Some(1));

        // Restore into a fresh ledger: behaviour continues identically.
        let mut restored = SessionLedger::new(4, 2);
        restored.restore(state.clone());
        assert_eq!(restored.state(), state);
        let concealed = restored.commit(None, LadderOutcome::empty());
        assert_eq!(concealed.signal, vec![0.5; 4], "still within reuse budget");

        // Reset clears everything a reused session id could inherit.
        ledger.reset();
        assert_eq!(
            ledger.state(),
            LedgerState {
                last_good: None,
                consecutive_concealed: 0,
                expected_sequence: None,
            }
        );
        let fresh = ledger.commit(None, LadderOutcome::empty());
        assert_eq!(fresh.signal, vec![0.0; 4], "no stale concealment source");
    }

    #[test]
    fn supervisor_reset_session_drops_degradation_state() {
        let (frontend, mut supervisor, window) = setup();
        let encoded = frontend.encode(&window).unwrap();
        let bytes = supervisor.frame_codec().serialize(0, &encoded).unwrap();
        supervisor.receive(Some(&bytes));
        let concealed = supervisor.receive(None);
        assert_eq!(concealed.rung, LadderRung::Concealed);
        assert_ne!(concealed.signal, vec![0.0; window.len()]);
        supervisor.reset_session();
        // After reset, a lost packet conceals to zeros — no inherited
        // last-good window from the previous "session".
        let after = supervisor.receive(None);
        assert_eq!(after.rung, LadderRung::Concealed);
        assert_eq!(after.signal, vec![0.0; window.len()]);
    }

    /// The batched ladder must reproduce the serial ladder bit for bit for
    /// every section-survival pattern, including shed and lost windows.
    #[test]
    fn batched_ladder_matches_serial_per_window() {
        let (frontend, supervisor, window) = setup();
        let ladder = supervisor.ladder();
        let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).unwrap();
        let windows: Vec<Vec<f64>> = (0..4)
            .map(|w| generator.generate(2.0, 0x6E_00 + w)[..window.len()].to_vec())
            .collect();
        let parsed: Vec<ParsedSections> = windows
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let encoded = frontend.encode(w).unwrap();
                let bytes = ladder
                    .frame_codec()
                    .serialize(u32::try_from(i).unwrap(), &encoded)
                    .unwrap();
                ladder.parse(Some(&bytes))
            })
            .collect();
        // Full frame / measurements-only / low-res-only / shed — one of each.
        let jobs: Vec<LadderJob<'_>> = parsed
            .iter()
            .enumerate()
            .map(|(i, p)| LadderJob {
                measurements: if i == 2 {
                    None
                } else {
                    p.measurements.as_deref()
                },
                lowres: if i == 1 { None } else { p.lowres.as_ref() },
                skip_solvers: i == 3,
                context: None,
            })
            .collect();
        let mut ws = SolverWorkspace::new();
        let serial: Vec<LadderOutcome> = jobs
            .iter()
            .map(|j| ladder.solve_with(j.measurements, j.lowres, j.skip_solvers, &mut ws))
            .collect();
        let batched = ladder.solve_batch_with(&jobs, &mut ws);
        assert_eq!(batched, serial);
        assert_eq!(
            batched[0].chosen.as_ref().map(|(rung, _, _)| *rung),
            Some(LadderRung::Hybrid)
        );
        assert_eq!(
            batched[1].chosen.as_ref().map(|(rung, _, _)| *rung),
            Some(LadderRung::CsOnly)
        );
        assert_eq!(
            batched[2].chosen.as_ref().map(|(rung, _, _)| *rung),
            Some(LadderRung::LowResOnly)
        );
        assert_eq!(
            batched[3].chosen.as_ref().map(|(rung, _, _)| *rung),
            Some(LadderRung::LowResOnly)
        );
    }

    #[test]
    fn ledger_conceals_with_last_good_then_zeros() {
        let mut ledger = SessionLedger::new(4, 2);
        let good = ledger.commit(
            Some(0),
            LadderOutcome {
                chosen: Some((LadderRung::LowResOnly, vec![1.0; 4], None)),
                demotions: Vec::new(),
            },
        );
        assert_eq!(good.rung, LadderRung::LowResOnly);
        // Two concealments reuse the last good window...
        for _ in 0..2 {
            let hidden = ledger.commit(None, LadderOutcome::empty());
            assert_eq!(hidden.rung, LadderRung::Concealed);
            assert_eq!(hidden.signal, vec![1.0; 4]);
        }
        // ...then the reuse budget is spent and the ledger flat-lines.
        let stale = ledger.commit(None, LadderOutcome::empty());
        assert_eq!(stale.signal, vec![0.0; 4]);
    }
}
