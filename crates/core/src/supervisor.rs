//! The receiver-side recovery supervisor: a decode ladder that degrades
//! gracefully instead of failing.
//!
//! [`ResilientReceiver`](crate::telemetry::ResilientReceiver) already maps
//! per-section CRC verdicts to fallback decodes, but it still *errors
//! upward*: a solver blow-up or an unusable frame yields
//! [`RecoveredWindow::Lost`](crate::telemetry::RecoveredWindow) and the
//! caller has to cope. [`RecoverySupervisor`] closes that last gap — its
//! [`receive`](RecoverySupervisor::receive) **always** returns a finite
//! signal of the configured window length, chosen from a four-rung ladder:
//!
//! 1. [`Hybrid`](LadderRung::Hybrid) — both sections intact, Eq. (1) with
//!    the box, watched by a [`SolverWatchdog`];
//! 2. [`CsOnly`](LadderRung::CsOnly) — box dropped (low-res section lost
//!    or the hybrid solve tripped the watchdog), plain CS on the same
//!    measurements;
//! 3. [`LowResOnly`](LadderRung::LowResOnly) — CS section lost: cell
//!    midpoints from the low-resolution stream;
//! 4. [`Concealed`](LadderRung::Concealed) — nothing usable: repeat the
//!    last good window (bounded by
//!    [`SupervisorConfig::max_conceal_reuse`], then flat-line zeros).
//!
//! Every ladder decision, demotion and sequence gap is counted in the
//! [global metrics registry](hybridcs_obs::global) under `supervisor_*`
//! names, and watchdog trips under `solver_watchdog_trips` — so a
//! resilience run can report exactly how it degraded.
//!
//! Unlike the plain decoder path, every supervised solve runs with an
//! *active* observer (the watchdog), which costs one extra `Φ`-application
//! per iteration. That is the price of divergence detection; the clean
//! benchmarking paths keep using [`HybridDecoder`] directly.

use crate::codec::{DecodedWindow, EncodedWindow};
use crate::telemetry::FrameCodec;
use crate::{CoreError, HybridDecoder, SystemConfig};
use hybridcs_coding::{LowResCodec, Payload};
use hybridcs_frontend::{LowResChannel, LowResFrame};
use hybridcs_solver::{SolverWatchdog, WatchdogConfig};

/// Which rung of the decode ladder produced a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderRung {
    /// Full hybrid reconstruction (box-constrained Eq. (1)).
    Hybrid,
    /// Plain-CS reconstruction; the box was unavailable or harmful.
    CsOnly,
    /// Low-resolution cell midpoints only.
    LowResOnly,
    /// Concealment: last good window, or zeros when staleness exceeded
    /// [`SupervisorConfig::max_conceal_reuse`].
    Concealed,
}

impl LadderRung {
    /// Stable lower-snake identifier (used as the metrics label).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            LadderRung::Hybrid => "hybrid",
            LadderRung::CsOnly => "cs_only",
            LadderRung::LowResOnly => "lowres_only",
            LadderRung::Concealed => "concealed",
        }
    }
}

/// Supervisor policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Watchdog thresholds applied to every supervised solve (hybrid and
    /// CS-only rungs). The default has no wall-clock budget, keeping
    /// supervised decodes deterministic; deployments add one.
    pub watchdog: WatchdogConfig,
    /// Consecutive concealed windows allowed to repeat the last good
    /// window before the supervisor flat-lines to zeros instead (stale
    /// ECG is worse than an honest gap once the gap is long).
    pub max_conceal_reuse: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            watchdog: WatchdogConfig::default(),
            max_conceal_reuse: 8,
        }
    }
}

/// One supervised window: the chosen rung, the (always finite) signal, and
/// the demotion trail explaining every rung that was tried and failed.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedWindow {
    /// Frame sequence number, when the header survived.
    pub sequence: Option<u32>,
    /// The rung that produced `signal`.
    pub rung: LadderRung,
    /// The reconstruction — always `window` samples, always finite.
    pub signal: Vec<f64>,
    /// Rungs attempted before `rung`, with the failure reason
    /// (`"decode_error"`, `"watchdog"`, `"non_finite"`).
    pub demotions: Vec<(LadderRung, &'static str)>,
    /// The solver output backing `signal`, for the hybrid/CS-only rungs.
    pub decoded: Option<DecodedWindow>,
}

/// The supervisor. Owns the frame codec, the decoder, and the concealment
/// state; see the [module docs](self) for the ladder.
#[derive(Debug, Clone)]
pub struct RecoverySupervisor {
    frame_codec: FrameCodec,
    decoder: HybridDecoder,
    lowres_channel: LowResChannel,
    lowres_codec: LowResCodec,
    config: SupervisorConfig,
    last_good: Option<Vec<f64>>,
    consecutive_concealed: usize,
    expected_sequence: Option<u32>,
}

impl RecoverySupervisor {
    /// Builds a supervisor from the system configuration, the trained
    /// low-res codec (must match the sensor's), and the supervisor policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on an invalid configuration.
    pub fn new(
        system: &SystemConfig,
        lowres_codec: LowResCodec,
        config: SupervisorConfig,
    ) -> Result<Self, CoreError> {
        Ok(RecoverySupervisor {
            frame_codec: FrameCodec::new(system)?,
            decoder: HybridDecoder::new(system, lowres_codec.clone())?,
            lowres_channel: LowResChannel::new(system.lowres_bits)?,
            lowres_codec,
            config,
            last_good: None,
            consecutive_concealed: 0,
            expected_sequence: None,
        })
    }

    /// The framing codec (for the sensor side of a simulation).
    #[must_use]
    pub fn frame_codec(&self) -> &FrameCodec {
        &self.frame_codec
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        self.decoder.config()
    }

    /// Receives one wire frame (or `None` for a wholly lost packet) and
    /// walks the decode ladder until a rung yields a finite window. Never
    /// errors, never panics on adversarial input, never skips a window:
    /// the bottom rung always succeeds.
    pub fn receive(&mut self, packet: Option<&[u8]>) -> SupervisedWindow {
        let _span = hybridcs_obs::span!("supervisor.receive");
        let registry = hybridcs_obs::global();
        registry.counter("supervisor_windows_total", &[]).inc();

        let (sequence, measurements, lowres) = match packet {
            None => (None, None, None),
            Some(bytes) => match self.frame_codec.deserialize_sections(bytes) {
                Ok(sections) => (
                    Some(sections.sequence),
                    sections.measurements,
                    sections.lowres,
                ),
                Err(_) => {
                    registry
                        .counter("supervisor_header_unusable_total", &[])
                        .inc();
                    (None, None, None)
                }
            },
        };
        if let Some(seq) = sequence {
            self.track_sequence(seq);
        }

        let mut demotions: Vec<(LadderRung, &'static str)> = Vec::new();

        if let (Some(meas), Some(lr)) = (&measurements, &lowres) {
            match self.try_decode(meas, lr, true) {
                Ok(decoded) => {
                    return self.finish(
                        sequence,
                        LadderRung::Hybrid,
                        decoded.signal.clone(),
                        demotions,
                        Some(decoded),
                    );
                }
                Err(reason) => demotions.push((LadderRung::Hybrid, reason)),
            }
        }
        if let Some(meas) = &measurements {
            let placeholder = Payload {
                bytes: Vec::new(),
                bit_len: 0,
            };
            match self.try_decode(meas, &placeholder, false) {
                Ok(decoded) => {
                    return self.finish(
                        sequence,
                        LadderRung::CsOnly,
                        decoded.signal.clone(),
                        demotions,
                        Some(decoded),
                    );
                }
                Err(reason) => demotions.push((LadderRung::CsOnly, reason)),
            }
        }
        if let Some(lr) = &lowres {
            match self.lowres_midpoints(lr) {
                Ok(signal) => {
                    return self.finish(sequence, LadderRung::LowResOnly, signal, demotions, None);
                }
                Err(reason) => demotions.push((LadderRung::LowResOnly, reason)),
            }
        }

        // Bottom rung: concealment, which cannot fail.
        let window = self.decoder.config().window;
        let signal = if self.consecutive_concealed < self.config.max_conceal_reuse {
            self.last_good.clone()
        } else {
            None
        }
        .unwrap_or_else(|| vec![0.0; window]);
        self.consecutive_concealed += 1;
        for (rung, reason) in &demotions {
            registry
                .counter(
                    "supervisor_rung_failed_total",
                    &[("rung", rung.name()), ("reason", reason)],
                )
                .inc();
        }
        registry
            .counter(
                "supervisor_rung_total",
                &[("rung", LadderRung::Concealed.name())],
            )
            .inc();
        SupervisedWindow {
            sequence,
            rung: LadderRung::Concealed,
            signal,
            demotions,
            decoded: None,
        }
    }

    /// Counts sequence gaps: `supervisor_sequence_gap_events_total` per
    /// discontinuity and `supervisor_missing_frames_total` for the frames
    /// skipped over.
    fn track_sequence(&mut self, sequence: u32) {
        if let Some(expected) = self.expected_sequence {
            if sequence > expected {
                let registry = hybridcs_obs::global();
                registry
                    .counter("supervisor_sequence_gap_events_total", &[])
                    .inc();
                registry
                    .counter("supervisor_missing_frames_total", &[])
                    .add(u64::from(sequence - expected));
            }
        }
        self.expected_sequence = Some(sequence.wrapping_add(1));
    }

    /// Runs one watched decode; a solver error, a watchdog trip, or a
    /// non-finite output all demote instead of propagating.
    fn try_decode(
        &self,
        measurements: &[f64],
        lowres: &Payload,
        use_box: bool,
    ) -> Result<DecodedWindow, &'static str> {
        let system = self.decoder.config();
        let encoded = EncodedWindow {
            measurements: measurements.to_vec(),
            lowres: lowres.clone(),
            window_len: system.window,
            measurement_bits: system.measurement_bits,
        };
        let mut watchdog = SolverWatchdog::new(self.config.watchdog);
        let result = if use_box {
            self.decoder.decode_observed(&encoded, &mut watchdog)
        } else {
            self.decoder.decode_normal_observed(&encoded, &mut watchdog)
        };
        match result {
            Err(_) => Err("decode_error"),
            Ok(decoded) => {
                if watchdog.trip().is_some() {
                    return Err("watchdog");
                }
                if decoded.signal.iter().any(|v| !v.is_finite()) {
                    return Err("non_finite");
                }
                Ok(decoded)
            }
        }
    }

    /// Cell-midpoint reconstruction from the low-resolution stream.
    fn lowres_midpoints(&self, lowres: &Payload) -> Result<Vec<f64>, &'static str> {
        let window = self.decoder.config().window;
        let codes = self
            .lowres_codec
            .decode(lowres, window)
            .map_err(|_| "decode_error")?;
        let frame =
            LowResFrame::from_codes(codes, &self.lowres_channel).map_err(|_| "decode_error")?;
        let half = frame.step() / 2.0;
        let signal: Vec<f64> = frame.samples().iter().map(|v| v + half).collect();
        if signal.iter().any(|v| !v.is_finite()) {
            return Err("non_finite");
        }
        Ok(signal)
    }

    /// Books a successful rung: counters, demotion trail, concealment
    /// reset, last-good update.
    fn finish(
        &mut self,
        sequence: Option<u32>,
        rung: LadderRung,
        signal: Vec<f64>,
        demotions: Vec<(LadderRung, &'static str)>,
        decoded: Option<DecodedWindow>,
    ) -> SupervisedWindow {
        let registry = hybridcs_obs::global();
        for (failed, reason) in &demotions {
            registry
                .counter(
                    "supervisor_rung_failed_total",
                    &[("rung", failed.name()), ("reason", reason)],
                )
                .inc();
        }
        registry
            .counter("supervisor_rung_total", &[("rung", rung.name())])
            .inc();
        self.last_good = Some(signal.clone());
        self.consecutive_concealed = 0;
        SupervisedWindow {
            sequence,
            rung,
            signal,
            demotions,
            decoded,
        }
    }
}
