use crate::codec::EncodedWindow;
use crate::{CoreError, SystemConfig};
use hybridcs_coding::LowResCodec;
use hybridcs_frontend::{LowResChannel, Rmpi, RmpiConfig};

/// The sensor-side hybrid front end of Fig. 1: the RMPI CS channel and the
/// parallel low-resolution channel with its entropy coder.
///
/// # Example
///
/// ```
/// use hybridcs_core::{HybridFrontEnd, SystemConfig};
///
/// # fn main() -> Result<(), hybridcs_core::CoreError> {
/// let config = SystemConfig::default();
/// let windows = hybridcs_core::experiment::default_training_windows(config.window);
/// let codec = hybridcs_core::train_lowres_codec(config.lowres_bits, &windows)?;
/// let frontend = HybridFrontEnd::new(&config, codec)?;
/// let window = vec![0.1; 512];
/// let encoded = frontend.encode(&window)?;
/// assert_eq!(encoded.measurements.len(), config.measurements);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HybridFrontEnd {
    config: SystemConfig,
    rmpi: Rmpi,
    lowres_channel: LowResChannel,
    lowres_codec: LowResCodec,
}

impl HybridFrontEnd {
    /// Builds the front end from a validated configuration and a trained
    /// low-resolution codec.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the configuration is invalid or the codec's
    /// bit depth disagrees with `config.lowres_bits`.
    pub fn new(config: &SystemConfig, lowres_codec: LowResCodec) -> Result<Self, CoreError> {
        config.validate()?;
        if lowres_codec.bits() != config.lowres_bits {
            return Err(CoreError::BadConfig {
                name: "lowres_codec bits (must match config.lowres_bits)",
                value: f64::from(lowres_codec.bits()),
            });
        }
        let rmpi = Rmpi::new(RmpiConfig {
            channels: config.measurements,
            window: config.window,
            seed: config.seed,
            amplifier_noise_rms: 0.0,
            measurement_bits: config.measurement_bits,
            measurement_full_scale: config.measurement_full_scale_mv,
        })?;
        let lowres_channel = LowResChannel::new(config.lowres_bits)?;
        Ok(HybridFrontEnd {
            config: config.clone(),
            rmpi,
            lowres_channel,
            lowres_codec,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The RMPI model (exposed for power accounting and tests).
    #[must_use]
    pub fn rmpi(&self) -> &Rmpi {
        &self.rmpi
    }

    /// The low-resolution channel.
    #[must_use]
    pub fn lowres_channel(&self) -> &LowResChannel {
        &self.lowres_channel
    }

    /// Acquires and packetizes one window (millivolts, length
    /// `config.window`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::WindowMismatch`] for a wrong-length window and
    /// propagates entropy-coding failures.
    pub fn encode(&self, window_mv: &[f64]) -> Result<EncodedWindow, CoreError> {
        let _span = hybridcs_obs::span!("encode");
        if window_mv.len() != self.config.window {
            return Err(CoreError::WindowMismatch {
                expected: self.config.window,
                actual: window_mv.len(),
            });
        }
        let measurements = self.rmpi.acquire(window_mv, self.config.seed)?;
        let lowres = {
            let _span = hybridcs_obs::span!("encode.lowres");
            let frame = self.lowres_channel.acquire(window_mv);
            self.lowres_codec.encode(frame.codes())?
        };
        Ok(EncodedWindow {
            measurements,
            lowres,
            window_len: self.config.window,
            measurement_bits: self.config.measurement_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::default_training_windows;
    use crate::train_lowres_codec;

    fn frontend() -> HybridFrontEnd {
        let config = SystemConfig::default();
        let codec =
            train_lowres_codec(config.lowres_bits, &default_training_windows(config.window))
                .unwrap();
        HybridFrontEnd::new(&config, codec).unwrap()
    }

    #[test]
    fn encode_produces_both_payloads() {
        let fe = frontend();
        let window: Vec<f64> = (0..512).map(|i| (i as f64 * 0.05).sin()).collect();
        let encoded = fe.encode(&window).unwrap();
        assert_eq!(encoded.measurements.len(), 96);
        assert!(encoded.lowres.bit_len > 0);
        assert_eq!(encoded.window_len, 512);
    }

    #[test]
    fn encode_rejects_wrong_window() {
        let fe = frontend();
        assert!(matches!(
            fe.encode(&[0.0; 100]),
            Err(CoreError::WindowMismatch { .. })
        ));
    }

    #[test]
    fn encode_is_deterministic() {
        let fe = frontend();
        let window: Vec<f64> = (0..512).map(|i| (i as f64 * 0.02).cos()).collect();
        assert_eq!(fe.encode(&window).unwrap(), fe.encode(&window).unwrap());
    }

    #[test]
    fn codec_bit_depth_must_match() {
        let config = SystemConfig::default();
        let codec = train_lowres_codec(6, &default_training_windows(config.window)).unwrap();
        assert!(matches!(
            HybridFrontEnd::new(&config, codec),
            Err(CoreError::BadConfig { .. })
        ));
    }
}
