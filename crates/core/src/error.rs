use std::error::Error;
use std::fmt;

/// Errors produced by the hybrid codec layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A system-configuration value was out of range.
    BadConfig {
        /// Name of the offending field.
        name: &'static str,
        /// Value supplied.
        value: f64,
    },
    /// A window did not match the configured length.
    WindowMismatch {
        /// Configured window length.
        expected: usize,
        /// Length supplied.
        actual: usize,
    },
    /// The acquisition front end rejected an input.
    FrontEnd(hybridcs_frontend::FrontEndError),
    /// The entropy-coding layer failed.
    Coding(hybridcs_coding::CodingError),
    /// The recovery solver failed.
    Solver(hybridcs_solver::SolverError),
    /// The wavelet transform rejected a configuration.
    Transform(hybridcs_dsp::DspError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadConfig { name, value } => {
                write!(f, "configuration field {name} out of range: {value}")
            }
            CoreError::WindowMismatch { expected, actual } => write!(
                f,
                "window length mismatch: configured {expected}, got {actual}"
            ),
            CoreError::FrontEnd(e) => write!(f, "front end failed: {e}"),
            CoreError::Coding(e) => write!(f, "entropy coding failed: {e}"),
            CoreError::Solver(e) => write!(f, "recovery failed: {e}"),
            CoreError::Transform(e) => write!(f, "transform failed: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::FrontEnd(e) => Some(e),
            CoreError::Coding(e) => Some(e),
            CoreError::Solver(e) => Some(e),
            CoreError::Transform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hybridcs_frontend::FrontEndError> for CoreError {
    fn from(e: hybridcs_frontend::FrontEndError) -> Self {
        CoreError::FrontEnd(e)
    }
}

impl From<hybridcs_coding::CodingError> for CoreError {
    fn from(e: hybridcs_coding::CodingError) -> Self {
        CoreError::Coding(e)
    }
}

impl From<hybridcs_solver::SolverError> for CoreError {
    fn from(e: hybridcs_solver::SolverError) -> Self {
        CoreError::Solver(e)
    }
}

impl From<hybridcs_dsp::DspError> for CoreError {
    fn from(e: hybridcs_dsp::DspError) -> Self {
        CoreError::Transform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e = CoreError::from(hybridcs_dsp::DspError::ZeroLevels);
        assert!(e.to_string().contains("transform"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
