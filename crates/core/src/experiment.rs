//! Corpus sweep runner: evaluates hybrid and normal CS across records and
//! compression ratios, producing the data behind Figs. 7–8.

use crate::{CoreError, HybridCodec, SystemConfig};
use hybridcs_ecg::Corpus;
use hybridcs_metrics::{prd_to_snr_db, SummaryStats};

/// The paper's Fig. 7 compression-ratio grid (percent).
pub const PAPER_CR_GRID: [f64; 9] = [50.0, 56.0, 62.0, 69.0, 75.0, 81.0, 88.0, 94.0, 97.0];

/// Re-export of the built-in offline training set used by
/// [`HybridCodec::with_default_training`], handy for building custom
/// codecs in examples and benches.
#[must_use]
pub fn default_training_windows(window: usize) -> Vec<Vec<f64>> {
    crate::training::default_training_windows(window)
}

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Compression-ratio grid in percent (e.g. [`PAPER_CR_GRID`]).
    pub cr_points: Vec<f64>,
    /// Windows evaluated per record (the reconstruction cost per window is
    /// what limits sweep size, not data availability).
    pub windows_per_record: usize,
    /// Base system configuration; `measurements` is overridden per CR
    /// point.
    pub base: SystemConfig,
    /// Worker threads (clamped to the record count).
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            cr_points: PAPER_CR_GRID.to_vec(),
            windows_per_record: 4,
            base: SystemConfig::default(),
            threads: 8,
        }
    }
}

/// Quality of one record at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordQuality {
    /// Record id.
    pub record_id: u32,
    /// Aggregate PRD (%) over the evaluated windows (energy-weighted).
    pub prd: f64,
    /// SNR in dB derived from the aggregate PRD.
    pub snr_db: f64,
}

/// One compression-ratio point of the sweep: per-record quality for both
/// decoders.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityPoint {
    /// Nominal CS-channel compression ratio (percent).
    pub cr_percent: f64,
    /// Measurements per window at this point.
    pub measurements: usize,
    /// Mean low-resolution overhead (percent of the original stream).
    pub overhead_percent: f64,
    /// Hybrid-CS per-record quality.
    pub hybrid: Vec<RecordQuality>,
    /// Normal-CS per-record quality.
    pub normal: Vec<RecordQuality>,
}

impl QualityPoint {
    /// Mean hybrid SNR over records, in dB.
    #[must_use]
    pub fn mean_hybrid_snr(&self) -> f64 {
        mean(self.hybrid.iter().map(|r| r.snr_db))
    }

    /// Mean normal-CS SNR over records, in dB.
    #[must_use]
    pub fn mean_normal_snr(&self) -> f64 {
        mean(self.normal.iter().map(|r| r.snr_db))
    }

    /// Mean hybrid PRD over records, in percent.
    #[must_use]
    pub fn mean_hybrid_prd(&self) -> f64 {
        mean(self.hybrid.iter().map(|r| r.prd))
    }

    /// Mean normal-CS PRD over records, in percent.
    #[must_use]
    pub fn mean_normal_prd(&self) -> f64 {
        mean(self.normal.iter().map(|r| r.prd))
    }

    /// Box-plot statistics of the hybrid per-record SNRs (Fig. 8 bottom).
    #[must_use]
    pub fn hybrid_snr_stats(&self) -> Option<SummaryStats> {
        SummaryStats::from_samples(&self.hybrid.iter().map(|r| r.snr_db).collect::<Vec<_>>())
    }

    /// Box-plot statistics of the normal per-record SNRs (Fig. 8 top).
    #[must_use]
    pub fn normal_snr_stats(&self) -> Option<SummaryStats> {
        SummaryStats::from_samples(&self.normal.iter().map(|r| r.snr_db).collect::<Vec<_>>())
    }

    /// Net hybrid compression ratio: the nominal CS ratio minus the
    /// measured low-resolution overhead.
    #[must_use]
    pub fn net_hybrid_cr(&self) -> f64 {
        hybridcs_metrics::net_compression_ratio(self.cr_percent, self.overhead_percent)
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Runs the full quality sweep: every record × every CR point, decoding
/// each window with both the hybrid and the normal reconstruction.
/// Records are distributed over `threads` worker threads.
///
/// # Errors
///
/// Propagates the first configuration or codec error. Solver
/// non-convergence is *not* an error (the decoded quality simply reflects
/// it, exactly as in the paper where normal CS "fails to converge" at high
/// CR).
pub fn quality_sweep(corpus: &Corpus, sweep: &SweepConfig) -> Result<Vec<QualityPoint>, CoreError> {
    if sweep.cr_points.is_empty() || sweep.windows_per_record == 0 {
        return Err(CoreError::BadConfig {
            name: "sweep (cr_points/windows_per_record)",
            value: sweep.cr_points.len() as f64,
        });
    }

    // Build one codec per CR point up front (shared, read-only).
    let mut codecs = Vec::with_capacity(sweep.cr_points.len());
    for &cr in &sweep.cr_points {
        let m = ((sweep.base.window as f64) * (1.0 - cr / 100.0)).round() as usize;
        let config = SystemConfig {
            measurements: m.clamp(1, sweep.base.window),
            ..sweep.base.clone()
        };
        codecs.push(HybridCodec::with_default_training(&config)?);
    }

    let records = corpus.records();
    let threads = sweep.threads.clamp(1, records.len().max(1));
    // per-record results: results[record][cr] = (hybrid, normal, overhead)
    let mut per_record: Vec<Vec<(RecordQuality, RecordQuality, f64)>> =
        vec![Vec::new(); records.len()];

    std::thread::scope(|scope| {
        let chunks: Vec<_> = per_record
            .chunks_mut(records.len().div_ceil(threads))
            .collect();
        let mut start = 0usize;
        let mut handles = Vec::new();
        for chunk in chunks {
            let record_slice = &records[start..start + chunk.len()];
            start += chunk.len();
            let codecs = &codecs;
            let sweep = &sweep;
            handles.push(scope.spawn(move || {
                for (slot, record) in chunk.iter_mut().zip(record_slice) {
                    *slot = evaluate_record(record, codecs, sweep);
                }
            }));
        }
        for h in handles {
            h.join().expect("sweep worker panicked");
        }
    });

    // Transpose into per-CR points.
    let mut points = Vec::with_capacity(sweep.cr_points.len());
    for (ci, &cr) in sweep.cr_points.iter().enumerate() {
        let mut hybrid = Vec::with_capacity(records.len());
        let mut normal = Vec::with_capacity(records.len());
        let mut overheads = Vec::with_capacity(records.len());
        for rec_results in &per_record {
            let (h, n, ov) = rec_results[ci];
            hybrid.push(h);
            normal.push(n);
            overheads.push(ov);
        }
        points.push(QualityPoint {
            cr_percent: cr,
            measurements: codecs[ci].config().measurements,
            overhead_percent: mean(overheads.into_iter()),
            hybrid,
            normal,
        });
    }
    Ok(points)
}

/// Evaluates one record against every codec; aggregates PRD over windows
/// energy-weighted (equivalent to concatenating the evaluated windows).
fn evaluate_record(
    record: &hybridcs_ecg::EcgRecord,
    codecs: &[HybridCodec],
    sweep: &SweepConfig,
) -> Vec<(RecordQuality, RecordQuality, f64)> {
    let window = sweep.base.window;
    let windows: Vec<&[f64]> = record
        .windows(window)
        .take(sweep.windows_per_record)
        .collect();

    codecs
        .iter()
        .map(|codec| {
            let mut err_h = 0.0;
            let mut err_n = 0.0;
            let mut energy = 0.0;
            let mut lowres_bits = 0usize;
            for w in &windows {
                let encoded = codec.encode(w).expect("window length matches config");
                lowres_bits += encoded.lowres_payload_bits();
                let hybrid = codec.decode(&encoded).expect("decode cannot fail here");
                let normal = codec
                    .decode_normal(&encoded)
                    .expect("decode cannot fail here");
                for ((&x, xh), xn) in w.iter().zip(&hybrid.signal).zip(&normal.signal) {
                    err_h += (x - xh) * (x - xh);
                    err_n += (x - xn) * (x - xn);
                    energy += x * x;
                }
            }
            let prd_h = (err_h / energy.max(1e-30)).sqrt() * 100.0;
            let prd_n = (err_n / energy.max(1e-30)).sqrt() * 100.0;
            let raw_bits = windows.len() * window * sweep.base.original_bits as usize;
            let overhead = lowres_bits as f64 / raw_bits.max(1) as f64 * 100.0;
            (
                RecordQuality {
                    record_id: record.id(),
                    prd: prd_h,
                    snr_db: prd_to_snr_db(prd_h),
                },
                RecordQuality {
                    record_id: record.id(),
                    prd: prd_n,
                    snr_db: prd_to_snr_db(prd_n),
                },
                overhead,
            )
        })
        .collect()
}

/// A selected operating point: the cheapest configuration meeting a
/// quality target on a given corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// The selected configuration (smallest `measurements` meeting the
    /// target).
    pub config: SystemConfig,
    /// Corpus-aggregate hybrid SNR measured at that configuration.
    pub measured_snr_db: f64,
}

/// Finds the smallest measurement count in `m_grid` whose **hybrid**
/// reconstruction meets `target_snr_db` on the corpus — the procedure
/// behind the paper's Section VI operating points, packaged as an API.
///
/// `m_grid` is evaluated in ascending order; the first success wins (the
/// SNR-vs-m curve is monotone up to solver noise). Returns `None` when no
/// grid point reaches the target.
///
/// # Errors
///
/// Returns [`CoreError`] on invalid configurations or an empty grid.
pub fn select_operating_point(
    corpus: &Corpus,
    base: &SystemConfig,
    target_snr_db: f64,
    m_grid: &[usize],
    windows_per_record: usize,
) -> Result<Option<OperatingPoint>, CoreError> {
    if m_grid.is_empty() || windows_per_record == 0 {
        return Err(CoreError::BadConfig {
            name: "m_grid/windows_per_record",
            value: m_grid.len() as f64,
        });
    }
    let mut grid = m_grid.to_vec();
    grid.sort_unstable();
    for m in grid {
        let config = SystemConfig {
            measurements: m,
            ..base.clone()
        };
        let codec = HybridCodec::with_default_training(&config)?;
        let mut err = 0.0f64;
        let mut energy = 0.0f64;
        for record in corpus.records() {
            for window in record.windows(config.window).take(windows_per_record) {
                let encoded = codec.encode(window)?;
                let decoded = codec.decode(&encoded)?;
                for (&x, xh) in window.iter().zip(&decoded.signal) {
                    err += (x - xh) * (x - xh);
                    energy += x * x;
                }
            }
        }
        let snr = prd_to_snr_db((err / energy.max(1e-30)).sqrt() * 100.0);
        if snr >= target_snr_db {
            return Ok(Some(OperatingPoint {
                config,
                measured_snr_db: snr,
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridcs_ecg::CorpusConfig;
    use hybridcs_solver::PdhgOptions;

    fn fast_base() -> SystemConfig {
        SystemConfig {
            algorithm: crate::DecoderAlgorithm::Pdhg(PdhgOptions {
                max_iterations: 400,
                tolerance: 1e-4,
                ..PdhgOptions::default()
            }),
            ..SystemConfig::default()
        }
    }

    #[test]
    fn small_sweep_shows_hybrid_advantage_at_high_cr() {
        let corpus = Corpus::generate(&CorpusConfig {
            records: 3,
            duration_s: 3.0,
            seed: 5,
        });
        let sweep = SweepConfig {
            cr_points: vec![94.0],
            windows_per_record: 1,
            base: fast_base(),
            threads: 3,
        };
        let points = quality_sweep(&corpus, &sweep).unwrap();
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert_eq!(p.hybrid.len(), 3);
        assert!(
            p.mean_hybrid_snr() > p.mean_normal_snr(),
            "hybrid {} vs normal {}",
            p.mean_hybrid_snr(),
            p.mean_normal_snr()
        );
        assert!(p.overhead_percent > 0.0 && p.overhead_percent < 30.0);
        assert!(p.net_hybrid_cr() < p.cr_percent);
    }

    #[test]
    fn operating_point_selects_smallest_sufficient_m() {
        let corpus = Corpus::generate(&CorpusConfig {
            records: 2,
            duration_s: 2.0,
            seed: 11,
        });
        // A lenient 10 dB target: even tiny m reaches it with the box.
        let point = select_operating_point(&corpus, &fast_base(), 10.0, &[64, 16], 1)
            .unwrap()
            .expect("10 dB reachable");
        assert_eq!(point.config.measurements, 16, "ascending order respected");
        assert!(point.measured_snr_db >= 10.0);
        // An absurd 60 dB target is unreachable.
        assert!(
            select_operating_point(&corpus, &fast_base(), 60.0, &[16, 64], 1)
                .unwrap()
                .is_none()
        );
        // Degenerate inputs error.
        assert!(select_operating_point(&corpus, &fast_base(), 10.0, &[], 1).is_err());
    }

    #[test]
    fn reweighted_decoder_end_to_end() {
        let corpus = Corpus::generate(&CorpusConfig {
            records: 1,
            duration_s: 2.0,
            seed: 13,
        });
        let window = &corpus.records()[0].samples_mv()[..512];
        let config = SystemConfig {
            measurements: 64,
            algorithm: crate::DecoderAlgorithm::Reweighted(hybridcs_solver::ReweightedOptions {
                outer_iterations: 2,
                inner: PdhgOptions {
                    max_iterations: 400,
                    tolerance: 1e-4,
                    ..PdhgOptions::default()
                },
                ..hybridcs_solver::ReweightedOptions::default()
            }),
            ..SystemConfig::default()
        };
        let codec = HybridCodec::with_default_training(&config).unwrap();
        let encoded = codec.encode(window).unwrap();
        let decoded = codec.decode(&encoded).unwrap();
        let snr = hybridcs_metrics::snr_db(window, &decoded.signal);
        assert!(snr > 14.0, "reweighted end-to-end SNR {snr}");
    }

    #[test]
    fn sweep_rejects_empty_grid() {
        let corpus = Corpus::generate(&CorpusConfig {
            records: 1,
            duration_s: 2.0,
            seed: 1,
        });
        let sweep = SweepConfig {
            cr_points: vec![],
            ..SweepConfig::default()
        };
        assert!(quality_sweep(&corpus, &sweep).is_err());
    }

    #[test]
    fn stats_helpers_work() {
        let p = QualityPoint {
            cr_percent: 90.0,
            measurements: 51,
            overhead_percent: 7.9,
            hybrid: vec![
                RecordQuality {
                    record_id: 100,
                    prd: 5.0,
                    snr_db: 26.0,
                },
                RecordQuality {
                    record_id: 101,
                    prd: 7.0,
                    snr_db: 23.1,
                },
            ],
            normal: vec![
                RecordQuality {
                    record_id: 100,
                    prd: 50.0,
                    snr_db: 6.0,
                },
                RecordQuality {
                    record_id: 101,
                    prd: 70.0,
                    snr_db: 3.1,
                },
            ],
        };
        assert!((p.mean_hybrid_snr() - 24.55).abs() < 1e-9);
        assert!((p.mean_normal_prd() - 60.0).abs() < 1e-9);
        assert!((p.net_hybrid_cr() - 82.1).abs() < 1e-9);
        assert!(p.hybrid_snr_stats().is_some());
        assert!(p.normal_snr_stats().is_some());
    }
}
