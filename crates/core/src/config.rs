use crate::CoreError;
use hybridcs_dsp::{Dwt, Wavelet};
use hybridcs_solver::{AdmmOptions, PdhgOptions, ReweightedOptions};

/// Which convex solver the decoder runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecoderAlgorithm {
    /// Chambolle–Pock primal–dual (the default decoder).
    Pdhg(PdhgOptions),
    /// Three-split ADMM (used by the solver ablation and cross-checks).
    Admm(AdmmOptions),
    /// Iteratively-reweighted ℓ₁ around PDHG — a software-only upgrade
    /// worth a few dB at fixed `m` (see `ablation_weighted_l1`).
    Reweighted(ReweightedOptions),
}

impl Default for DecoderAlgorithm {
    fn default() -> Self {
        DecoderAlgorithm::Pdhg(PdhgOptions::default())
    }
}

/// End-to-end system configuration shared by encoder and decoder.
///
/// Both sides construct the sensing matrix from `(measurements, window,
/// seed)`, so a config value is the *entire* shared state — nothing else
/// crosses the air interface besides the per-window payloads.
///
/// # Example
///
/// ```
/// use hybridcs_core::SystemConfig;
///
/// let config = SystemConfig::for_compression_ratio(81.25).unwrap();
/// assert_eq!(config.measurements, 96);
/// assert!((config.cs_compression_ratio() - 81.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Processing-window length `n` in samples (512 ≈ 1.42 s at 360 Hz).
    pub window: usize,
    /// Sparsifying wavelet family.
    pub wavelet: Wavelet,
    /// DWT decomposition depth.
    pub levels: usize,
    /// CS measurements per window `m` (= RMPI channels).
    pub measurements: usize,
    /// Low-resolution channel bit depth `B` (the paper settles on 7).
    pub lowres_bits: u32,
    /// CS-measurement digitizer resolution (the paper uses 12).
    pub measurement_bits: u32,
    /// Digitizer full scale in millivolts.
    pub measurement_full_scale_mv: f64,
    /// Chipping-sequence seed shared between encoder and decoder.
    pub seed: u64,
    /// Safety factor applied to the analytic quantization-noise radius
    /// when forming the solver's fidelity budget σ.
    pub sigma_scale: f64,
    /// Bit depth the compression-ratio accounting treats as "original"
    /// (the paper uses 12-bit originals).
    pub original_bits: u32,
    /// Decoder algorithm.
    pub algorithm: DecoderAlgorithm,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            window: 512,
            wavelet: Wavelet::Db4,
            levels: 5,
            measurements: 96,
            lowres_bits: 7,
            measurement_bits: 12,
            measurement_full_scale_mv: 2.5,
            seed: 0xEC61,
            sigma_scale: 1.5,
            original_bits: 12,
            algorithm: DecoderAlgorithm::default(),
        }
    }
}

impl SystemConfig {
    /// A config whose CS channel alone achieves (approximately) the given
    /// compression ratio: `m = round(n·(1 − cr/100))`, clamped to `[1, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] for ratios outside `(0, 100)`.
    pub fn for_compression_ratio(cr_percent: f64) -> Result<Self, CoreError> {
        if !(0.0..100.0).contains(&cr_percent) || cr_percent == 0.0 {
            return Err(CoreError::BadConfig {
                name: "compression_ratio",
                value: cr_percent,
            });
        }
        let base = SystemConfig::default();
        let m = ((base.window as f64) * (1.0 - cr_percent / 100.0)).round() as usize;
        Ok(SystemConfig {
            measurements: m.clamp(1, base.window),
            ..base
        })
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] (or [`CoreError::Transform`]) on
    /// the first inconsistent field.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.window == 0 {
            return Err(CoreError::BadConfig {
                name: "window",
                value: 0.0,
            });
        }
        if self.measurements == 0 || self.measurements > self.window {
            return Err(CoreError::BadConfig {
                name: "measurements",
                value: self.measurements as f64,
            });
        }
        if self.sigma_scale <= 0.0 || !self.sigma_scale.is_finite() {
            return Err(CoreError::BadConfig {
                name: "sigma_scale",
                value: self.sigma_scale,
            });
        }
        if self.original_bits == 0 {
            return Err(CoreError::BadConfig {
                name: "original_bits",
                value: 0.0,
            });
        }
        // DWT must support the window length.
        self.dwt()?.layout(self.window)?;
        Ok(())
    }

    /// The configured wavelet transform.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Transform`] when `levels` is zero.
    pub fn dwt(&self) -> Result<Dwt, CoreError> {
        Ok(Dwt::new(self.wavelet, self.levels)?)
    }

    /// Compression ratio of the CS channel alone (Eq. 3 with equal bit
    /// widths): `(1 − m/n)·100`.
    #[must_use]
    pub fn cs_compression_ratio(&self) -> f64 {
        (1.0 - self.measurements as f64 / self.window as f64) * 100.0
    }

    /// Undersampling fraction `δ = m/n` (the paper's Fig. 9 parameter).
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.measurements as f64 / self.window as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(SystemConfig::default().validate().is_ok());
    }

    #[test]
    fn paper_operating_points() {
        let cfg = SystemConfig::default();
        // m = 96 over n = 512 is the paper's 20 dB hybrid point: CR 81.25%.
        assert!((cfg.cs_compression_ratio() - 81.25).abs() < 1e-9);
        assert!((cfg.delta() - 0.1875).abs() < 1e-9);
    }

    #[test]
    fn for_compression_ratio_inverts() {
        for cr in [50.0, 62.0, 81.25, 96.875] {
            let cfg = SystemConfig::for_compression_ratio(cr).unwrap();
            assert!(
                (cfg.cs_compression_ratio() - cr).abs() < 0.2,
                "cr {cr} -> m {}",
                cfg.measurements
            );
        }
    }

    #[test]
    fn for_compression_ratio_rejects_out_of_range() {
        assert!(SystemConfig::for_compression_ratio(0.0).is_err());
        assert!(SystemConfig::for_compression_ratio(100.0).is_err());
        assert!(SystemConfig::for_compression_ratio(-5.0).is_err());
    }

    #[test]
    fn extreme_cr_clamps_to_one_measurement() {
        let cfg = SystemConfig::for_compression_ratio(99.99).unwrap();
        assert_eq!(cfg.measurements, 1);
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let bad = [
            SystemConfig {
                measurements: 0,
                ..SystemConfig::default()
            },
            SystemConfig {
                measurements: 1000,
                ..SystemConfig::default()
            },
            SystemConfig {
                sigma_scale: -1.0,
                ..SystemConfig::default()
            },
            SystemConfig {
                window: 500, // not divisible by 2^5
                ..SystemConfig::default()
            },
            SystemConfig {
                original_bits: 0,
                ..SystemConfig::default()
            },
        ];
        for cfg in bad {
            assert!(cfg.validate().is_err());
        }
    }

    #[test]
    fn default_algorithm_is_pdhg() {
        assert!(matches!(
            SystemConfig::default().algorithm,
            DecoderAlgorithm::Pdhg(_)
        ));
    }
}
