use crate::{CoreError, HybridDecoder, HybridFrontEnd, SystemConfig};
use hybridcs_coding::Payload;
use hybridcs_solver::RecoveryResult;

/// One transmitted window: digitized CS measurements plus the
/// entropy-coded low-resolution stream.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedWindow {
    /// Digitized RMPI measurements (length = configured `measurements`).
    pub measurements: Vec<f64>,
    /// Huffman-coded low-resolution payload.
    pub lowres: Payload,
    /// Window length in samples (for decode-side validation).
    pub window_len: usize,
    /// Bits per transmitted measurement.
    pub measurement_bits: u32,
}

impl EncodedWindow {
    /// CS-channel payload size in bits.
    #[must_use]
    pub fn cs_payload_bits(&self) -> usize {
        self.measurements.len() * self.measurement_bits as usize
    }

    /// Low-resolution-channel payload size in bits.
    #[must_use]
    pub fn lowres_payload_bits(&self) -> usize {
        self.lowres.bit_len
    }

    /// Total transmitted bits for this window.
    #[must_use]
    pub fn total_bits(&self) -> usize {
        self.cs_payload_bits() + self.lowres_payload_bits()
    }

    /// Net compression ratio against an `original_bits`-per-sample source
    /// (Eq. 3 applied to the full hybrid payload).
    #[must_use]
    pub fn net_compression_ratio(&self, original_bits: u32) -> f64 {
        hybridcs_metrics::compression_ratio_percent(
            self.window_len * original_bits as usize,
            self.total_bits(),
        )
    }
}

/// One reconstructed window.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedWindow {
    /// The reconstructed signal in millivolts.
    pub signal: Vec<f64>,
    /// Full solver report (iterations, residual, objective).
    pub recovery: RecoveryResult,
    /// Whether the low-resolution box constraint was used.
    pub used_box: bool,
}

/// Convenience bundle of a matched encoder/decoder pair — the full hybrid
/// system of Fig. 1.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct HybridCodec {
    frontend: HybridFrontEnd,
    decoder: HybridDecoder,
}

impl HybridCodec {
    /// Builds a codec pair, training the low-resolution codebook on the
    /// built-in offline training set (disjoint from evaluation seeds).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on an invalid configuration.
    pub fn with_default_training(config: &SystemConfig) -> Result<Self, CoreError> {
        let windows = crate::training::default_training_windows(config.window);
        let codec = crate::train_lowres_codec(config.lowres_bits, &windows)?;
        Ok(HybridCodec {
            frontend: HybridFrontEnd::new(config, codec.clone())?,
            decoder: HybridDecoder::new(config, codec)?,
        })
    }

    /// Builds a codec pair from an externally trained low-resolution codec.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on an invalid configuration or mismatched
    /// codec bit depth.
    pub fn new(
        config: &SystemConfig,
        lowres_codec: hybridcs_coding::LowResCodec,
    ) -> Result<Self, CoreError> {
        Ok(HybridCodec {
            frontend: HybridFrontEnd::new(config, lowres_codec.clone())?,
            decoder: HybridDecoder::new(config, lowres_codec)?,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        self.frontend.config()
    }

    /// The sensor-side front end.
    #[must_use]
    pub fn frontend(&self) -> &HybridFrontEnd {
        &self.frontend
    }

    /// The receiver-side decoder.
    #[must_use]
    pub fn decoder(&self) -> &HybridDecoder {
        &self.decoder
    }

    /// Encodes one window.
    ///
    /// # Errors
    ///
    /// See [`HybridFrontEnd::encode`].
    pub fn encode(&self, window_mv: &[f64]) -> Result<EncodedWindow, CoreError> {
        self.frontend.encode(window_mv)
    }

    /// Decodes one window with the hybrid (box-constrained) reconstruction.
    ///
    /// # Errors
    ///
    /// See [`HybridDecoder::decode`].
    pub fn decode(&self, encoded: &EncodedWindow) -> Result<DecodedWindow, CoreError> {
        self.decoder.decode(encoded)
    }

    /// Decodes one window with the normal-CS baseline reconstruction.
    ///
    /// # Errors
    ///
    /// See [`HybridDecoder::decode_normal`].
    pub fn decode_normal(&self, encoded: &EncodedWindow) -> Result<DecodedWindow, CoreError> {
        self.decoder.decode_normal(encoded)
    }
}

/// The traditional single-channel digital-CS codec: identical RMPI channel,
/// no parallel path — the baseline system of the paper's comparisons.
#[derive(Debug, Clone)]
pub struct NormalCsCodec {
    inner: HybridCodec,
}

impl NormalCsCodec {
    /// Builds the baseline codec for a configuration (the low-resolution
    /// settings are ignored at decode time; the encoder still needs a codec
    /// object, so the default-trained one is reused).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on an invalid configuration.
    pub fn with_default_training(config: &SystemConfig) -> Result<Self, CoreError> {
        Ok(NormalCsCodec {
            inner: HybridCodec::with_default_training(config)?,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        self.inner.config()
    }

    /// Encodes one window — only the CS measurements are meaningful for
    /// this codec; the returned [`EncodedWindow::lowres`] payload would not
    /// be transmitted, and the rate accounting should use
    /// [`EncodedWindow::cs_payload_bits`].
    ///
    /// # Errors
    ///
    /// See [`HybridFrontEnd::encode`].
    pub fn encode(&self, window_mv: &[f64]) -> Result<EncodedWindow, CoreError> {
        self.inner.encode(window_mv)
    }

    /// Decodes with plain BPDN (no box).
    ///
    /// # Errors
    ///
    /// See [`HybridDecoder::decode_normal`].
    pub fn decode(&self, encoded: &EncodedWindow) -> Result<DecodedWindow, CoreError> {
        self.inner.decode_normal(encoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridcs_ecg::{EcgGenerator, GeneratorConfig};

    fn ecg_window(n: usize, seed: u64) -> Vec<f64> {
        let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).unwrap();
        generator.generate(2.0, seed)[..n].to_vec()
    }

    #[test]
    fn rate_accounting_adds_up() {
        let config = SystemConfig::default();
        let codec = HybridCodec::with_default_training(&config).unwrap();
        let window = ecg_window(512, 21);
        let encoded = codec.encode(&window).unwrap();
        assert_eq!(encoded.cs_payload_bits(), 96 * 12);
        assert!(encoded.lowres_payload_bits() > 0);
        assert_eq!(
            encoded.total_bits(),
            encoded.cs_payload_bits() + encoded.lowres_payload_bits()
        );
        // Net CR: 81.25% CS compression minus the low-res overhead.
        let net = encoded.net_compression_ratio(12);
        assert!(net > 60.0 && net < 81.25, "net CR {net}");
    }

    #[test]
    fn normal_codec_ignores_box() {
        let config = SystemConfig {
            measurements: 64,
            ..SystemConfig::default()
        };
        let codec = NormalCsCodec::with_default_training(&config).unwrap();
        let window = ecg_window(512, 23);
        let encoded = codec.encode(&window).unwrap();
        let decoded = codec.decode(&encoded).unwrap();
        assert!(!decoded.used_box);
        assert_eq!(decoded.signal.len(), 512);
    }

    #[test]
    fn hybrid_and_normal_share_measurements() {
        let config = SystemConfig::default();
        let hybrid = HybridCodec::with_default_training(&config).unwrap();
        let normal = NormalCsCodec::with_default_training(&config).unwrap();
        let window = ecg_window(512, 25);
        let eh = hybrid.encode(&window).unwrap();
        let en = normal.encode(&window).unwrap();
        assert_eq!(eh.measurements, en.measurements);
    }
}
