use crate::CoreError;
use hybridcs_coding::{HuffmanCodebook, LowResCodec};
use hybridcs_ecg::{EcgGenerator, GeneratorConfig, NoiseModel};
use hybridcs_frontend::LowResChannel;

/// Trains a low-resolution frame codec at `bits` resolution from analog
/// training windows (millivolt traces): each window is quantized by the
/// B-bit floor channel and its difference statistics accumulated into the
/// Huffman codebook.
///
/// This is the paper's *offline* codebook-generation step; the resulting
/// codec (68 bytes of codebook at 7 bits) is stored on the node.
///
/// # Errors
///
/// Returns [`CoreError`] if the channel cannot be built at `bits` or the
/// training set contributes no difference symbols.
///
/// # Example
///
/// ```
/// use hybridcs_core::train_lowres_codec;
///
/// # fn main() -> Result<(), hybridcs_core::CoreError> {
/// let windows = hybridcs_core::experiment::default_training_windows(512);
/// let codec = train_lowres_codec(7, &windows)?;
/// assert_eq!(codec.bits(), 7);
/// assert!(codec.codebook().storage_bytes() > 0);
/// # Ok(())
/// # }
/// ```
pub fn train_lowres_codec(
    bits: u32,
    training_windows: &[Vec<f64>],
) -> Result<LowResCodec, CoreError> {
    let channel = LowResChannel::new(bits)?;
    let sequences: Vec<Vec<u32>> = training_windows
        .iter()
        .map(|w| channel.acquire(w).codes().to_vec())
        .collect();
    let codebook = HuffmanCodebook::train_from_code_sequences(sequences.iter().map(|v| &v[..]))?;
    Ok(LowResCodec::new(codebook, bits)?)
}

/// Like [`train_lowres_codec`] but with the zero-run-length stage enabled
/// ([`hybridcs_coding::RleLowResCodec`]) — the variant needed to reach the
/// paper's sub-1-bit-per-sample overheads at coarse resolutions (Table I).
///
/// # Errors
///
/// Same conditions as [`train_lowres_codec`].
pub fn train_rle_lowres_codec(
    bits: u32,
    training_windows: &[Vec<f64>],
) -> Result<hybridcs_coding::RleLowResCodec, CoreError> {
    let channel = LowResChannel::new(bits)?;
    let sequences: Vec<Vec<u32>> = training_windows
        .iter()
        .map(|w| channel.acquire(w).codes().to_vec())
        .collect();
    Ok(hybridcs_coding::RleLowResCodec::train(
        sequences.iter().map(|v| &v[..]),
        bits,
    )?)
}

/// Builds the default offline training set: a few normal-sinus strips and
/// one ambulatory-noise strip, from a **training seed disjoint from every
/// evaluation seed** so codebooks are never trained on test data.
pub(crate) fn default_training_windows(window: usize) -> Vec<Vec<f64>> {
    const TRAINING_SEED: u64 = 0x7124_1234;
    let mut windows = Vec::new();
    let mut configs = vec![GeneratorConfig::normal_sinus()];
    let mut ambulatory = GeneratorConfig::normal_sinus();
    ambulatory.noise = NoiseModel::ambulatory();
    configs.push(ambulatory);
    let mut fast = GeneratorConfig::normal_sinus();
    fast.rhythm = hybridcs_ecg::RhythmModel::from_heart_rate_bpm(105.0, 0.03, 0.1, 0.25)
        .expect("training rhythm valid");
    configs.push(fast);

    for (k, config) in configs.into_iter().enumerate() {
        let generator = EcgGenerator::new(config).expect("training configs are valid");
        let strip = generator.generate(20.0, TRAINING_SEED + k as u64);
        for chunk in strip.chunks_exact(window) {
            windows.push(chunk.to_vec());
        }
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_produces_compact_codebook() {
        let windows = default_training_windows(512);
        assert!(windows.len() > 20);
        let codec = train_lowres_codec(7, &windows).unwrap();
        // The paper quotes 68 bytes at 7 bits; our serialization should land
        // in the same regime (tens of bytes, not hundreds).
        let bytes = codec.codebook().storage_bytes();
        assert!((20..200).contains(&bytes), "codebook storage {bytes} bytes");
    }

    #[test]
    fn trained_codec_compresses_unseen_data() {
        let windows = default_training_windows(512);
        let codec = train_lowres_codec(7, &windows).unwrap();
        // Fresh strip from a different seed.
        let generator = EcgGenerator::new(GeneratorConfig::normal_sinus()).unwrap();
        let strip = generator.generate(5.0, 999);
        let channel = LowResChannel::new(7).unwrap();
        let frame = channel.acquire(&strip[..512]);
        let bits = codec.encoded_bits(frame.codes()).unwrap();
        assert!(
            bits < 512 * 7 / 2,
            "entropy coding should at least halve the raw payload, got {bits}"
        );
        // And the roundtrip must be lossless.
        let payload = codec.encode(frame.codes()).unwrap();
        assert_eq!(codec.decode(&payload, 512).unwrap(), frame.codes());
    }

    #[test]
    fn training_errors_on_empty_set() {
        assert!(train_lowres_codec(7, &[]).is_err());
    }

    #[test]
    fn storage_grows_with_resolution() {
        let windows = default_training_windows(512);
        let low = train_lowres_codec(4, &windows).unwrap();
        let high = train_lowres_codec(10, &windows).unwrap();
        assert!(
            high.codebook().storage_bytes() > low.codebook().storage_bytes(),
            "10-bit {} vs 4-bit {}",
            high.codebook().storage_bytes(),
            low.codebook().storage_bytes()
        );
    }
}
