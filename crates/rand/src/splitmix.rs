//! SplitMix64 — the seeding generator.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is a tiny, full-period
//! 64-bit generator whose state-update is a plain counter increment. It is
//! the generator Blackman & Vigna recommend for expanding a single `u64`
//! seed into the larger state of the xoshiro family: consecutive outputs
//! are well decorrelated even for adjacent seeds, so `seed` and `seed + 1`
//! produce unrelated streams.

use crate::traits::{Rng, SeedableRng};

/// Weyl-sequence increment (golden-ratio constant) of SplitMix64.
pub(crate) const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 generator.
///
/// Used internally to seed [`crate::Xoshiro256PlusPlus`] and by the
/// property harness to derive independent per-case seeds; it is also a
/// perfectly serviceable (if statistically weaker) standalone generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose first output mixes `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

/// The stateless finalizer of SplitMix64 (Stafford "variant 13" mixer).
///
/// Exposed so seed-derivation code can hash small integers (case indices,
/// name hashes) into well-distributed 64-bit values without constructing a
/// generator.
#[must_use]
pub fn mix(z: u64) -> u64 {
    let mut z = z;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Reference outputs for seed 1234567 from the public-domain C
        // implementation (Vigna, https://prng.di.unimi.it/splitmix64.c).
        let mut rng = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6_457_827_717_110_365_317,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
            4_593_380_528_125_082_431,
            16_408_922_859_458_223_821,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn adjacent_seeds_decorrelate() {
        let a = SplitMix64::new(0).next_u64();
        let b = SplitMix64::new(1).next_u64();
        assert_ne!(a, b);
        // Hamming distance should be near 32 of 64 bits.
        let d = (a ^ b).count_ones();
        assert!((16..=48).contains(&d), "hamming distance {d}");
    }
}
