//! Gaussian deviates via the Box–Muller transform.
//!
//! Migrated from `hybridcs-ecg`'s private helper so every crate (noise
//! models, amplifier models, ADC dither) draws normals from one audited
//! implementation with one pinned stream.

use crate::traits::{Rng, RngExt};

/// Draws one standard-normal deviate via the Box–Muller transform.
///
/// Consumes exactly the uniform draws it needs from `rng` (two per call,
/// plus rejection redraws of the first uniform when it is subnormal), so
/// the mapping from the `u64` stream to the normal stream is deterministic.
///
/// # Example
///
/// ```
/// use hybridcs_rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let z = hybridcs_rand::normal::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard the logarithm against u1 == 0.
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal deviate with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std_dev < 0`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    mean + std_dev * standard_normal(rng)
}

/// Fills `out` with white Gaussian noise of the given standard deviation.
pub fn white_noise<R: Rng + ?Sized>(rng: &mut R, std_dev: f64, out: &mut [f64]) {
    for v in out.iter_mut() {
        *v = normal(rng, 0.0, std_dev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn normal_respects_parameters() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "variance {var}");
    }

    #[test]
    fn deterministic_under_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..8)
                .map(|_| standard_normal(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_std_dev_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = normal(&mut rng, 0.0, -1.0);
    }

    #[test]
    fn white_noise_fills_buffer() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0.0; 64];
        white_noise(&mut rng, 1.0, &mut buf);
        assert!(buf.iter().any(|v| v.abs() > 1e-6));
    }
}
