//! The generator traits: a minimal, stable subset of the `rand` crate's
//! API surface, shaped exactly like the call sites this workspace uses.
//!
//! * [`Rng`] — the backend contract: produce uniform `u64`s.
//! * [`SeedableRng`] — construct a generator from a `u64` seed.
//! * [`RngExt`] — the user-facing methods (`random`, `random_range`,
//!   `random_bool`, `fill_f64`), blanket-implemented for every [`Rng`].
//! * [`Sample`] / [`UniformSample`] — the type-driven draw protocols
//!   behind `random::<T>()` and `random_range(lo..hi)`.
//!
//! All derivations are pure integer/float arithmetic on the `u64` stream,
//! so every method is bit-reproducible across platforms (see the
//! `stream_stability` integration test, which pins the exact outputs).

use std::ops::Range;

/// A deterministic pseudo-random generator: a stream of uniform `u64`s.
pub trait Rng {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 uniformly distributed random bits (the high half of
    /// [`Rng::next_u64`], which for xoshiro-family generators is the
    /// better-mixed half).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
///
/// Implementations must expand the seed with SplitMix64 (or use it
/// directly, for SplitMix64 itself) so that nearby seeds yield unrelated
/// streams.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from their natural domain via
/// [`RngExt::random`].
///
/// For floats the natural domain is `[0, 1)`; for integers and `bool` it
/// is the whole type.
pub trait Sample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits (the standard
    /// `(x >> 11) · 2⁻⁵³` construction).
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Sample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types drawable uniformly from a half-open range via
/// [`RngExt::random_range`].
pub trait UniformSample: Sized {
    /// Draws uniformly from `[lo, hi)`. Callers guarantee `lo < hi`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased uniform draw from `[0, n)` via Lemire's widening-multiply
/// rejection method (deterministic given the `u64` stream).
pub(crate) fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut product = u128::from(rng.next_u64()) * u128::from(n);
    let mut low = product as u64;
    if low < n {
        // Reject the biased low region (n.wrapping_neg() % n == 2^64 mod n).
        let threshold = n.wrapping_neg() % n;
        while low < threshold {
            product = u128::from(rng.next_u64()) * u128::from(n);
            low = product as u64;
        }
    }
    (product >> 64) as u64
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let width = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_u64_below(rng, width) as $t)
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Two's-complement width is exact even when the range
                // straddles zero.
                let width = (hi as i64 as u64).wrapping_sub(lo as i64 as u64);
                lo.wrapping_add(uniform_u64_below(rng, width) as $t)
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = f64::sample(rng);
        // The lerp form keeps the result strictly below `hi` for u < 1.
        let v = lo + (hi - lo) * u;
        if v < hi {
            v
        } else {
            // Guard rounding at the top of very narrow ranges.
            f64::from_bits(hi.to_bits() - 1).max(lo)
        }
    }
}

impl UniformSample for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = f32::sample(rng);
        let v = lo + (hi - lo) * u;
        if v < hi {
            v
        } else {
            f32::from_bits(hi.to_bits() - 1).max(lo)
        }
    }
}

/// The user-facing draw methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws one `T` from its natural domain (`[0, 1)` for floats, the
    /// full type for integers and `bool`).
    fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: UniformSample + PartialOrd>(&mut self, range: Range<T>) -> T {
        assert!(
            range.start < range.end,
            "random_range called with empty range"
        );
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample(self) < p
    }

    /// Fills `out` with independent uniform draws from `[0, 1)`.
    fn fill_f64(&mut self, out: &mut [f64]) {
        for v in out.iter_mut() {
            *v = f64::sample(self);
        }
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u = rng.random_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.random_range(-20i64..20);
            assert!((-20..20).contains(&i));
            let f = rng.random_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_f64_is_half_open() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn random_bool_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..64).all(|_| !rng.random_bool(0.0)));
        assert!((0..64).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn lemire_is_unbiased_over_small_modulus() {
        // A coarse chi-square-free sanity check: each residue of a
        // 7-bucket draw should get roughly 1/7 of the mass.
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.random_range(0usize..7)] += 1;
        }
        for c in counts {
            let p = f64::from(c) / f64::from(n);
            assert!((p - 1.0 / 7.0).abs() < 0.01, "bucket probability {p}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5usize..5);
    }
}
