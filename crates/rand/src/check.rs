//! A seeded property-testing harness: generation, shrinking, and
//! deterministic failure reproduction — a hermetic stand-in for the
//! subset of `proptest` this workspace used.
//!
//! # Model
//!
//! A property is a function `Fn(&T) -> Result<(), String>` over inputs
//! produced by a [`Gen<T>`] (a generator plus a shrinker). [`check`] runs
//! the property over `cases` independently seeded inputs; on the first
//! failure it greedily shrinks the input and panics with a report that
//! includes the **case seed**, from which the exact failing input can be
//! regenerated.
//!
//! # Reproducing a failure
//!
//! The failure report prints a line of the form
//!
//! ```text
//! reproduce with: HYBRIDCS_CHECK_SEED=0x3fa91c0b77a2e415 cargo test -q <test_name>
//! ```
//!
//! Setting that environment variable makes every [`check`] call in the
//! process run exactly one case from that seed, regenerating the same
//! input (and re-shrinking it the same way — the whole pipeline is a pure
//! function of the seed).
//!
//! # Environment knobs
//!
//! * `HYBRIDCS_CHECK_SEED` — run a single case from this seed (decimal or
//!   `0x`-prefixed hex).
//! * `HYBRIDCS_CHECK_CASES` — override the per-property case count
//!   (default 64).
//!
//! # Example
//!
//! ```
//! use hybridcs_rand::check::{check, vec_of, f64_in};
//!
//! check("norm is non-negative", &vec_of(f64_in(-10.0, 10.0), 1, 32), |xs| {
//!     let norm: f64 = xs.iter().map(|v| v * v).sum::<f64>().sqrt();
//!     if norm >= 0.0 { Ok(()) } else { Err(format!("norm {norm}")) }
//! });
//! ```

use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Once;

use crate::rngs::StdRng;
use crate::splitmix::{mix, SplitMix64};
use crate::traits::{Rng, SeedableRng};

/// Default number of cases per property (the workspace floor is 64).
pub const DEFAULT_CASES: u32 = 64;

/// Configuration for a [`check_with`] run.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Number of seeded cases to run.
    pub cases: u32,
    /// Base seed for the per-property case stream. The per-case seeds are
    /// derived from it and the property name, so two properties in one
    /// binary never share inputs.
    pub base_seed: u64,
    /// When set, run exactly one case from this seed (what the failure
    /// report prints). Overrides `cases`/`base_seed`.
    pub replay_seed: Option<u64>,
    /// Upper bound on accepted shrink steps before reporting.
    pub max_shrink_steps: u32,
}

impl Default for CheckConfig {
    /// Reads `HYBRIDCS_CHECK_CASES` and `HYBRIDCS_CHECK_SEED` from the
    /// environment.
    fn default() -> Self {
        let cases = std::env::var("HYBRIDCS_CHECK_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        let replay_seed = std::env::var("HYBRIDCS_CHECK_SEED")
            .ok()
            .and_then(|v| parse_seed(&v));
        CheckConfig {
            cases,
            base_seed: 0,
            replay_seed,
            max_shrink_steps: 1024,
        }
    }
}

fn parse_seed(text: &str) -> Option<u64> {
    let t = text.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// Shared generate closure of a [`Gen`].
type GenerateFn<T> = Rc<dyn Fn(&mut StdRng) -> T>;
/// Shared shrink closure of a [`Gen`].
type ShrinkFn<T> = Rc<dyn Fn(&T) -> Vec<T>>;

/// A value generator paired with a shrinker.
///
/// `Gen` is cheap to clone (shared closures) and composes through
/// [`zip2`]/[`zip3`]/[`zip4`] and [`vec_of`]. Shrink candidates are
/// ordered most-aggressive-first; the runner takes the first candidate
/// that still fails, so aggressive early candidates shrink in few steps.
pub struct Gen<T> {
    generate: GenerateFn<T>,
    shrink: ShrinkFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            generate: Rc::clone(&self.generate),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T> Gen<T> {
    /// Builds a generator from explicit generate/shrink closures.
    pub fn new(
        generate: impl Fn(&mut StdRng) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Gen {
            generate: Rc::new(generate),
            shrink: Rc::new(shrink),
        }
    }

    /// Draws one value.
    pub fn generate(&self, rng: &mut StdRng) -> T {
        (self.generate)(rng)
    }

    /// Proposes simpler candidate values, most aggressive first.
    pub fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }
}

// ---------------------------------------------------------------------------
// Scalar generators
// ---------------------------------------------------------------------------

fn push_unique<T: PartialEq>(out: &mut Vec<T>, candidate: T, current: &T) {
    if candidate != *current && !out.contains(&candidate) {
        out.push(candidate);
    }
}

/// Uniform `f64` in `[lo, hi)`, shrinking toward zero (or toward `lo` when
/// the range excludes zero).
pub fn f64_in(lo: f64, hi: f64) -> Gen<f64> {
    assert!(lo < hi, "f64_in requires lo < hi");
    let target = if lo <= 0.0 && 0.0 < hi { 0.0 } else { lo };
    Gen::new(
        move |rng| crate::traits::UniformSample::sample_range(rng, lo, hi),
        move |&v| {
            let mut out = Vec::new();
            push_unique(&mut out, target, &v);
            let mid = target + (v - target) / 2.0;
            if mid.is_finite() && (mid - target).abs() < (v - target).abs() {
                push_unique(&mut out, mid, &v);
            }
            out
        },
    )
}

/// Any `u64`, shrinking toward zero.
pub fn u64_any() -> Gen<u64> {
    Gen::new(
        |rng| rng.next_u64(),
        |&v| {
            let mut out = Vec::new();
            push_unique(&mut out, 0, &v);
            push_unique(&mut out, v / 2, &v);
            if v > 0 {
                push_unique(&mut out, v - 1, &v);
            }
            out
        },
    )
}

/// Any `u8`, shrinking toward zero.
pub fn u8_any() -> Gen<u8> {
    Gen::new(
        |rng| rng.next_u64() as u8,
        |&v| {
            let mut out = Vec::new();
            push_unique(&mut out, 0, &v);
            push_unique(&mut out, v / 2, &v);
            out
        },
    )
}

/// Any `bool`, shrinking toward `false`.
pub fn bool_any() -> Gen<bool> {
    Gen::new(
        |rng| rng.next_u64() >> 63 == 1,
        |&v| if v { vec![false] } else { Vec::new() },
    )
}

macro_rules! int_range_gen {
    ($name:ident, $t:ty) => {
        /// Uniform draw from the half-open range `[lo, hi)`, shrinking
        /// toward zero when the range contains it, else toward `lo`.
        pub fn $name(lo: $t, hi: $t) -> Gen<$t> {
            assert!(lo < hi, concat!(stringify!($name), " requires lo < hi"));
            #[allow(unused_comparisons)]
            let target = if lo <= 0 && 0 < hi { 0 } else { lo };
            Gen::new(
                move |rng| crate::traits::UniformSample::sample_range(rng, lo, hi),
                move |&v| {
                    let mut out = Vec::new();
                    push_unique(&mut out, target, &v);
                    let mid = target + (v - target) / 2;
                    push_unique(&mut out, mid, &v);
                    if v > target {
                        push_unique(&mut out, v - 1, &v);
                    } else if v < target {
                        push_unique(&mut out, v + 1, &v);
                    }
                    out
                },
            )
        }
    };
}

int_range_gen!(u32_in, u32);
int_range_gen!(usize_in, usize);
int_range_gen!(i64_in, i64);
int_range_gen!(u64_in, u64);

/// Uniformly selects one of `items`, shrinking toward the first entry.
pub fn choice<T: Clone + PartialEq + 'static>(items: Vec<T>) -> Gen<T> {
    assert!(!items.is_empty(), "choice requires at least one item");
    let shrink_items = items.clone();
    Gen::new(
        move |rng| {
            let i = crate::traits::UniformSample::sample_range(rng, 0usize, items.len());
            items[i].clone()
        },
        move |v| {
            if *v != shrink_items[0] {
                vec![shrink_items[0].clone()]
            } else {
                Vec::new()
            }
        },
    )
}

// ---------------------------------------------------------------------------
// Collection and tuple generators
// ---------------------------------------------------------------------------

/// `Vec<T>` with length uniform in `[min_len, max_len)`.
///
/// Shrinks by halving toward `min_len`, dropping endpoints, then
/// shrinking one element at a time (first candidate per position).
pub fn vec_of<T: Clone + 'static>(elem: Gen<T>, min_len: usize, max_len: usize) -> Gen<Vec<T>> {
    assert!(min_len < max_len, "vec_of requires min_len < max_len");
    let gen_elem = elem.clone();
    Gen::new(
        move |rng| {
            let len = crate::traits::UniformSample::sample_range(rng, min_len, max_len);
            (0..len).map(|_| gen_elem.generate(rng)).collect()
        },
        move |v: &Vec<T>| shrink_vec(&elem, v, min_len),
    )
}

/// `Vec<T>` of exactly `len` elements; shrinks elementwise only.
pub fn vec_len<T: Clone + 'static>(elem: Gen<T>, len: usize) -> Gen<Vec<T>> {
    let gen_elem = elem.clone();
    Gen::new(
        move |rng| (0..len).map(|_| gen_elem.generate(rng)).collect(),
        move |v: &Vec<T>| shrink_vec(&elem, v, v.len()),
    )
}

fn shrink_vec<T: Clone>(elem: &Gen<T>, v: &[T], min_len: usize) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = Vec::new();
    if v.len() > min_len {
        let half = (v.len() / 2).max(min_len);
        if half < v.len() {
            out.push(v[..half].to_vec());
        }
        out.push(v[..v.len() - 1].to_vec());
        out.push(v[1..].to_vec());
    }
    for (i, x) in v.iter().enumerate() {
        if let Some(candidate) = elem.shrink(x).into_iter().next() {
            let mut copy = v.to_vec();
            copy[i] = candidate;
            out.push(copy);
        }
    }
    out
}

/// Pairs two generators; shrinks componentwise.
pub fn zip2<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    let (ga, gb) = (a.clone(), b.clone());
    Gen::new(
        move |rng| (ga.generate(rng), gb.generate(rng)),
        move |(va, vb)| {
            let mut out = Vec::new();
            for ca in a.shrink(va) {
                out.push((ca, vb.clone()));
            }
            for cb in b.shrink(vb) {
                out.push((va.clone(), cb));
            }
            out
        },
    )
}

/// Triples three generators; shrinks componentwise.
pub fn zip3<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
) -> Gen<(A, B, C)> {
    let flat = zip2(zip2(a, b), c);
    Gen::new(
        {
            let flat = flat.clone();
            move |rng| {
                let ((va, vb), vc) = flat.generate(rng);
                (va, vb, vc)
            }
        },
        move |(va, vb, vc)| {
            flat.shrink(&((va.clone(), vb.clone()), vc.clone()))
                .into_iter()
                .map(|((a, b), c)| (a, b, c))
                .collect()
        },
    )
}

/// Quadruples four generators; shrinks componentwise.
pub fn zip4<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static, D: Clone + 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
    d: Gen<D>,
) -> Gen<(A, B, C, D)> {
    let flat = zip2(zip2(a, b), zip2(c, d));
    Gen::new(
        {
            let flat = flat.clone();
            move |rng| {
                let ((va, vb), (vc, vd)) = flat.generate(rng);
                (va, vb, vc, vd)
            }
        },
        move |(va, vb, vc, vd)| {
            flat.shrink(&((va.clone(), vb.clone()), (vc.clone(), vd.clone())))
                .into_iter()
                .map(|((a, b), (c, d))| (a, b, c, d))
                .collect()
        },
    )
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

thread_local! {
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once per process) a panic hook that stays silent while the
/// harness probes properties, so shrinking does not spray backtraces.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs `prop` against `input`, translating both `Err` returns and panics
/// into a failure message.
fn run_case<T, F>(prop: &F, input: &T) -> Option<String>
where
    F: Fn(&T) -> Result<(), String>,
{
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(input)));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    match outcome {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(msg),
        Err(payload) => Some(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_owned()
    }
}

/// FNV-1a, used to give each property its own case-seed stream.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// Runs `prop` over [`CheckConfig::default`]-many seeded cases of `gen`.
///
/// # Panics
///
/// Panics with a shrunk counterexample and a reproduction seed on the
/// first failing case. See the module docs for the report format.
pub fn check<T, F>(name: &str, gen: &Gen<T>, prop: F)
where
    T: Clone + Debug,
    F: Fn(&T) -> Result<(), String>,
{
    check_with(name, &CheckConfig::default(), gen, prop);
}

/// [`check`] with an explicit configuration (used by the harness's own
/// tests and by suites that need more cases).
pub fn check_with<T, F>(name: &str, config: &CheckConfig, gen: &Gen<T>, prop: F)
where
    T: Clone + Debug,
    F: Fn(&T) -> Result<(), String>,
{
    install_quiet_hook();

    if let Some(seed) = config.replay_seed {
        if let Some(report) = try_case(name, config, gen, &prop, seed, 0) {
            panic!("{report}");
        }
        return;
    }

    let mut stream = SplitMix64::new(mix(config.base_seed) ^ hash_name(name));
    for case in 0..config.cases {
        let case_seed = stream.next_u64();
        if let Some(report) = try_case(name, config, gen, &prop, case_seed, case) {
            panic!("{report}");
        }
    }
}

/// Runs one case; on failure shrinks greedily and renders the report.
fn try_case<T, F>(
    name: &str,
    config: &CheckConfig,
    gen: &Gen<T>,
    prop: &F,
    case_seed: u64,
    case_index: u32,
) -> Option<String>
where
    T: Clone + Debug,
    F: Fn(&T) -> Result<(), String>,
{
    let mut rng = StdRng::seed_from_u64(case_seed);
    let input = gen.generate(&mut rng);
    let first_error = run_case(prop, &input)?;

    let mut current = input;
    let mut error = first_error;
    let mut steps = 0u32;
    'shrinking: while steps < config.max_shrink_steps {
        for candidate in gen.shrink(&current) {
            if let Some(msg) = run_case(prop, &candidate) {
                current = candidate;
                error = msg;
                steps += 1;
                continue 'shrinking;
            }
        }
        break;
    }

    Some(format!(
        "property '{name}' failed (case {case_index}, seed 0x{case_seed:016x})\n  \
         counterexample ({steps} shrink steps): {current:?}\n  \
         error: {error}\n  \
         reproduce with: HYBRIDCS_CHECK_SEED=0x{case_seed:016x} cargo test -q {test}",
        test = name.split_whitespace().next().unwrap_or(name),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counted = std::cell::Cell::new(0u32);
        check(
            "sum of squares is non-negative",
            &vec_of(f64_in(-5.0, 5.0), 0, 16),
            |xs| {
                counted.set(counted.get() + 1);
                let s: f64 = xs.iter().map(|v| v * v).sum();
                if s >= 0.0 {
                    Ok(())
                } else {
                    Err(format!("sum {s}"))
                }
            },
        );
        assert!(counted.get() >= DEFAULT_CASES);
    }

    #[test]
    fn shrinking_reaches_a_small_counterexample() {
        // Broken property: "all vectors have fewer than 3 elements".
        // The minimal counterexample is any 3-element vector; the shrinker
        // must land exactly on length 3.
        let config = CheckConfig {
            cases: 64,
            base_seed: 1,
            replay_seed: None,
            max_shrink_steps: 1024,
        };
        let failure = panic::catch_unwind(|| {
            check_with(
                "vec shorter than 3",
                &config,
                &vec_of(u32_in(0, 100), 0, 64),
                |xs| {
                    if xs.len() < 3 {
                        Ok(())
                    } else {
                        Err(format!("len {}", xs.len()))
                    }
                },
            );
        })
        .expect_err("property must fail");
        let msg = format!("{:?}", failure.downcast_ref::<String>().unwrap());
        assert!(msg.contains("error: len 3"), "not fully shrunk: {msg}");
        assert!(msg.contains("[0, 0, 0]"), "elements not shrunk: {msg}");
    }

    #[test]
    fn panics_inside_properties_are_failures() {
        let config = CheckConfig {
            cases: 8,
            base_seed: 0,
            replay_seed: None,
            max_shrink_steps: 16,
        };
        let failure = panic::catch_unwind(|| {
            check_with("always panics", &config, &u64_any(), |_| {
                panic!("boom");
            })
        })
        .expect_err("property must fail");
        let msg = failure.downcast_ref::<String>().unwrap();
        assert!(msg.contains("panic: boom"), "panic not captured: {msg}");
    }

    #[test]
    fn distinct_properties_get_distinct_streams() {
        let first = std::cell::RefCell::new(Vec::<u64>::new());
        check("stream probe a", &u64_any(), |v| {
            first.borrow_mut().push(*v);
            Ok(())
        });
        let second = std::cell::RefCell::new(Vec::<u64>::new());
        check("stream probe b", &u64_any(), |v| {
            second.borrow_mut().push(*v);
            Ok(())
        });
        assert_ne!(first.into_inner(), second.into_inner());
    }
}
