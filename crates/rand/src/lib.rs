//! # hybridcs-rand — hermetic randomness and property testing
//!
//! The workspace's only source of pseudo-randomness, plus the seeded
//! property-testing harness the test suites run on. Everything here is
//! implemented in-repo — **no external crates** — so the build and the
//! tier-1 test suite work with `CARGO_NET_OFFLINE=true` on a machine that
//! has never touched crates.io (the hermetic-build policy in README.md).
//!
//! ## Generators
//!
//! * [`rngs::StdRng`] — SplitMix64-seeded xoshiro256++, the standard
//!   generator behind every stochastic component of the codec.
//! * [`SplitMix64`] — the seeding/stream-splitting generator.
//!
//! ## Stream-stability guarantee
//!
//! For a fixed seed, the byte-for-byte output of [`rngs::StdRng`] — and of
//! every derived draw ([`RngExt::random`], [`RngExt::random_range`],
//! [`RngExt::random_bool`], [`normal::standard_normal`]) — is **pinned**:
//! the `stream_stability` integration test asserts exact values, so any
//! change to the algorithms is a deliberate, test-visible breaking change.
//! This is what makes corpus seeds, sensing-matrix seeds, and recorded
//! experiment results stable across releases and platforms.
//!
//! ## Property testing
//!
//! The [`check`] module provides seeded case generation, configurable case
//! counts, greedy input shrinking, and deterministic failure reproduction
//! from a printed seed. See its docs for the reproduction workflow.
//!
//! ```
//! use hybridcs_rand::{rngs::StdRng, RngExt, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let u: f64 = rng.random();            // uniform [0, 1)
//! let k = rng.random_range(0usize..10); // uniform integer
//! let fair = rng.random_bool(0.5);      // Bernoulli
//! assert!((0.0..1.0).contains(&u) && k < 10 && (fair || !fair));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod normal;
mod splitmix;
mod traits;
mod xoshiro;

pub use splitmix::{mix, SplitMix64};
pub use traits::{Rng, RngExt, Sample, SeedableRng, UniformSample};
pub use xoshiro::{rngs, Xoshiro256PlusPlus};

/// Asserts a condition inside a [`check::check`] property, returning
/// `Err` (instead of panicking) so the harness can shrink the input.
///
/// With one argument, the failure message is the stringified condition;
/// extra arguments are a `format!` message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts two values are equal inside a [`check::check`] property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?} at {}:{}",
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Asserts two values are not equal inside a [`check::check`] property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: `left != right` (both {:?}) at {}:{}",
                l,
                file!(),
                line!()
            ));
        }
    }};
}
