//! xoshiro256++ — the workspace's standard generator.
//!
//! Blackman & Vigna's xoshiro256++ 1.0 (2019): 256 bits of state, period
//! 2²⁵⁶ − 1, passes BigCrush, and needs only shifts/rotates/adds — ideal
//! for a hermetic reproduction that must be bit-identical on every
//! platform. Seeding expands a single `u64` through SplitMix64 as the
//! authors recommend.

use crate::splitmix::SplitMix64;
use crate::traits::{Rng, SeedableRng};

/// The xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Builds a generator from raw state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the one fixed point of the
    /// transition function).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256++ state must be non-zero"
        );
        Xoshiro256PlusPlus { s }
    }
}

impl Rng for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    /// Expands `seed` into 256 bits of state with four SplitMix64 draws.
    /// SplitMix64 never yields four consecutive zeros, so the state is
    /// always valid.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256PlusPlus {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator: SplitMix64-seeded xoshiro256++.
    ///
    /// Every stochastic component (corpus synthesis, chipping sequences,
    /// sensing matrices, noise models, the property harness) draws from
    /// this type, and its stream is pinned by the `stream_stability`
    /// integration test — changing the algorithm is a breaking change to
    /// every recorded result in `results/`.
    pub type StdRng = super::Xoshiro256PlusPlus;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // First outputs of xoshiro256++ from the authors' C reference
        // (https://prng.di.unimi.it/xoshiro256plusplus.c) with state
        // {1, 2, 3, 4}.
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 5] = [
            41_943_041,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeded_streams_differ_and_reproduce() {
        let draw = |seed: u64| {
            let mut r = Xoshiro256PlusPlus::seed_from_u64(seed);
            (0..16).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256PlusPlus::from_state([0; 4]);
    }
}
