//! Meta-tests of the property harness itself: a deliberately broken
//! property must fail, print a seed, and reproduce **deterministically**
//! from that seed alone — the acceptance criterion for offline failure
//! triage ("copy the seed from CI output, replay locally").

use std::panic;

use hybridcs_rand::check::{check_with, f64_in, vec_of, CheckConfig};

/// Captures the harness's failure report for a deliberately broken
/// property (a flipped inequality: claims every vector sums to < 1.0).
fn failure_report(config: &CheckConfig) -> String {
    let result = panic::catch_unwind(|| {
        check_with(
            "broken_sum_bound",
            config,
            &vec_of(f64_in(0.0, 10.0), 1, 32),
            |xs| {
                let sum: f64 = xs.iter().sum();
                // Flipped inequality — fails for most generated vectors.
                if sum < 1.0 {
                    Ok(())
                } else {
                    Err(format!("sum {sum} not < 1.0"))
                }
            },
        );
    });
    let payload = result.expect_err("broken property must fail");
    payload
        .downcast_ref::<String>()
        .expect("harness reports are String panics")
        .clone()
}

/// Pulls the `HYBRIDCS_CHECK_SEED=0x...` seed out of a failure report.
fn extract_seed(report: &str) -> u64 {
    let marker = "HYBRIDCS_CHECK_SEED=0x";
    let at = report.find(marker).expect("report must name the seed");
    let hex: String = report[at + marker.len()..]
        .chars()
        .take_while(char::is_ascii_hexdigit)
        .collect();
    u64::from_str_radix(&hex, 16).expect("seed must be valid hex")
}

fn counterexample_line(report: &str) -> &str {
    report
        .lines()
        .find(|l| l.contains("counterexample"))
        .expect("report must show the counterexample")
}

#[test]
fn broken_property_reproduces_from_printed_seed() {
    let config = CheckConfig {
        cases: 64,
        base_seed: 0xDA7E_2015,
        replay_seed: None,
        max_shrink_steps: 1024,
    };
    let first = failure_report(&config);
    let seed = extract_seed(&first);

    // Replay exactly as a user would: same property, seed from the report.
    let replay = failure_report(&CheckConfig {
        replay_seed: Some(seed),
        ..config.clone()
    });

    assert_eq!(
        counterexample_line(&first),
        counterexample_line(&replay),
        "replay from the printed seed must regenerate the identical shrunk \
         counterexample\nfirst:\n{first}\nreplay:\n{replay}"
    );
    assert_eq!(
        seed,
        extract_seed(&replay),
        "replay must print the same seed"
    );
}

#[test]
fn failure_report_is_stable_across_runs() {
    // The whole pipeline (case seeds, generation, shrinking) is a pure
    // function of the configuration — two runs must agree byte-for-byte.
    let config = CheckConfig {
        cases: 64,
        base_seed: 42,
        replay_seed: None,
        max_shrink_steps: 1024,
    };
    assert_eq!(failure_report(&config), failure_report(&config));
}

#[test]
fn shrunk_counterexample_is_minimal() {
    // For the flipped bound "sum < 1.0" over positive vectors the greedy
    // shrinker should reach a single-element vector (len 1 is the floor).
    let config = CheckConfig {
        cases: 64,
        base_seed: 7,
        replay_seed: None,
        max_shrink_steps: 4096,
    };
    let report = failure_report(&config);
    let line = counterexample_line(&report);
    let commas = line.matches(',').count();
    assert_eq!(
        commas, 0,
        "expected a 1-element counterexample, got: {line}"
    );
}
