//! Pins the exact output stream of every public draw primitive.
//!
//! These values ARE the crate's stream-stability guarantee: corpus seeds,
//! chipping/sensing-matrix seeds, and every recorded experiment in
//! `results/` assume this mapping from seed to stream. If one of these
//! assertions fails, an algorithm changed — that is a breaking change that
//! invalidates recorded results and must be called out loudly, not
//! papered over by re-pinning.

use hybridcs_rand::normal::standard_normal;
use hybridcs_rand::rngs::StdRng;
use hybridcs_rand::{Rng, RngExt, SeedableRng, SplitMix64};

#[test]
fn stdrng_u64_stream_is_pinned() {
    let mut rng = StdRng::seed_from_u64(0);
    let expected: [u64; 8] = [
        5_987_356_902_031_041_503,
        7_051_070_477_665_621_255,
        6_633_766_593_972_829_180,
        211_316_841_551_650_330,
        9_136_120_204_379_184_874,
        379_361_710_973_160_858,
        15_813_423_377_499_357_806,
        15_596_884_590_815_070_553,
    ];
    for e in expected {
        assert_eq!(rng.next_u64(), e);
    }
}

#[test]
fn stdrng_f64_stream_is_pinned() {
    // random::<f64>() is (next_u64 >> 11) · 2⁻⁵³; these decimal literals
    // are exact (each is a dyadic rational with ≤ 53 mantissa bits).
    let mut rng = StdRng::seed_from_u64(0);
    let expected: [f64; 4] = [
        0.324_575_268_031_406_7,
        0.382_239_296_511_673_43,
        0.359_617_207_647_355_3,
        0.011_455_508_934_653_635,
    ];
    for e in expected {
        let v: f64 = rng.random();
        assert_eq!(v.to_bits(), e.to_bits(), "got {v:?}, pinned {e:?}");
    }
}

#[test]
fn splitmix_stream_is_pinned() {
    let mut sm = SplitMix64::new(0);
    let expected: [u64; 4] = [
        16_294_208_416_658_607_535,
        7_960_286_522_194_355_700,
        487_617_019_471_545_679,
        17_909_611_376_780_542_444,
    ];
    for e in expected {
        assert_eq!(sm.next_u64(), e);
    }
}

#[test]
fn derived_draws_are_pinned() {
    // random_range / random_bool / standard_normal are pure functions of
    // the u64 stream; pin one probe of each so their derivations (Lemire
    // rejection, threshold compare, Box–Muller) cannot silently change.
    let mut rng = StdRng::seed_from_u64(7);
    let r = rng.random_range(0usize..1000);
    let b = rng.random_bool(0.5);
    let z = standard_normal(&mut rng);
    assert_eq!(r, 55);
    assert!(b);
    assert_eq!(
        z.to_bits(),
        (-0.730_977_379_815_950_8_f64).to_bits(),
        "normal draw {z:?}"
    );
}

#[test]
fn seeds_are_independent() {
    // 64 adjacent seeds must give 64 distinct first draws — the SplitMix64
    // expansion is exactly what guarantees this.
    let mut firsts: Vec<u64> = (0..64)
        .map(|s| StdRng::seed_from_u64(s).next_u64())
        .collect();
    firsts.sort_unstable();
    firsts.dedup();
    assert_eq!(firsts.len(), 64);
}
