//! Property-based tests for the linear-algebra kernels.

use hybridcs_linalg::{
    conjugate_gradient, operator_norm_est, vector, CgOptions, Cholesky, Matrix,
    PowerIterationOptions, QrFactorization,
};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, len)
}

fn finite_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1e2..1e2f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized correctly"))
}

proptest! {
    #[test]
    fn dot_is_commutative(x in finite_vec(16), y in finite_vec(16)) {
        let a = vector::dot(&x, &y);
        let b = vector::dot(&y, &x);
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
    }

    #[test]
    fn cauchy_schwarz(x in finite_vec(12), y in finite_vec(12)) {
        let lhs = vector::dot(&x, &y).abs();
        let rhs = vector::norm2(&x) * vector::norm2(&y);
        prop_assert!(lhs <= rhs * (1.0 + 1e-9) + 1e-9);
    }

    #[test]
    fn triangle_inequality(x in finite_vec(12), y in finite_vec(12)) {
        let sum = vector::add(&x, &y);
        prop_assert!(vector::norm2(&sum) <= vector::norm2(&x) + vector::norm2(&y) + 1e-9);
    }

    #[test]
    fn norm_ordering(x in finite_vec(10)) {
        // ‖x‖∞ ≤ ‖x‖₂ ≤ ‖x‖₁ for every vector.
        let inf = vector::norm_inf(&x);
        let two = vector::norm2(&x);
        let one = vector::norm1(&x);
        prop_assert!(inf <= two * (1.0 + 1e-12) + 1e-12);
        prop_assert!(two <= one * (1.0 + 1e-12) + 1e-12);
    }

    #[test]
    fn clamp_box_is_idempotent(x in finite_vec(8)) {
        let lo = vec![-10.0; 8];
        let hi = vec![10.0; 8];
        let mut once = x.clone();
        vector::clamp_box(&mut once, &lo, &hi);
        let mut twice = once.clone();
        vector::clamp_box(&mut twice, &lo, &hi);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn matvec_is_linear(m in finite_matrix(5, 7), x in finite_vec(7), y in finite_vec(7), a in -5.0..5.0f64) {
        // A(ax + y) == a·Ax + Ay
        let axy: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| a * xi + yi).collect();
        let lhs = m.matvec(&axy);
        let mut rhs = m.matvec(&y);
        vector::axpy(a, &m.matvec(&x), &mut rhs);
        for (l, r) in lhs.iter().zip(&rhs) {
            prop_assert!((l - r).abs() <= 1e-6 * l.abs().max(1.0));
        }
    }

    #[test]
    fn adjoint_identity(m in finite_matrix(6, 4), x in finite_vec(4), y in finite_vec(6)) {
        // ⟨Ax, y⟩ == ⟨x, Aᵀy⟩
        let lhs = vector::dot(&m.matvec(&x), &y);
        let rhs = vector::dot(&x, &m.matvec_transpose(&y));
        prop_assert!((lhs - rhs).abs() <= 1e-6 * lhs.abs().max(1.0));
    }

    #[test]
    fn transpose_involution(m in finite_matrix(4, 6)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn cholesky_solves_spd_systems(m in finite_matrix(5, 5), x_true in finite_vec(5)) {
        // Build an SPD matrix A = MᵀM + I.
        let mut a = m.gram();
        for i in 0..5 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let b = a.matvec(&x_true);
        let chol = Cholesky::factor(&a).expect("SPD by construction");
        let x = chol.solve(&b);
        let r = vector::sub(&a.matvec(&x), &b);
        prop_assert!(vector::norm2(&r) <= 1e-6 * vector::norm2(&b).max(1.0));
    }

    #[test]
    fn qr_least_squares_residual_is_orthogonal(m in finite_matrix(8, 3), b in finite_vec(8)) {
        // For the LS minimizer, Aᵀ(Ax − b) == 0.
        let qr = match QrFactorization::factor(&m) {
            Ok(qr) => qr,
            Err(_) => return Ok(()),
        };
        let x = match qr.solve_least_squares(&b) {
            Ok(x) => x,
            Err(_) => return Ok(()), // rank-deficient random draw
        };
        let r = vector::sub(&m.matvec(&x), &b);
        let g = m.matvec_transpose(&r);
        let scale = m.frobenius_norm() * vector::norm2(&b) + 1.0;
        prop_assert!(vector::norm2(&g) <= 1e-7 * scale);
    }

    #[test]
    fn cg_agrees_with_cholesky(m in finite_matrix(6, 6), x_true in finite_vec(6)) {
        let mut a = m.gram();
        for i in 0..6 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let b = a.matvec(&x_true);
        let chol = Cholesky::factor(&a).expect("SPD");
        let x_direct = chol.solve(&b);
        let apply = |v: &[f64], out: &mut [f64]| out.copy_from_slice(&a.matvec(v));
        let (x_cg, _) = conjugate_gradient(
            apply,
            &b,
            &[0.0; 6],
            CgOptions { max_iterations: 200, tolerance: 1e-12 },
        )
        .expect("SPD system converges");
        let d = vector::dist2(&x_cg, &x_direct);
        prop_assert!(d <= 1e-5 * vector::norm2(&x_direct).max(1.0));
    }

    #[test]
    fn operator_norm_bounds_matvec_amplification(m in finite_matrix(5, 5), x in finite_vec(5)) {
        prop_assume!(vector::norm2(&x) > 1e-6);
        let (norm, _) = operator_norm_est(
            5,
            5,
            |v, out| out.copy_from_slice(&m.matvec(v)),
            |v, out| out.copy_from_slice(&m.matvec_transpose(v)),
            PowerIterationOptions::default(),
        );
        let amplification = vector::norm2(&m.matvec(&x)) / vector::norm2(&x);
        // The estimate may undershoot slightly; allow 1% slack.
        prop_assert!(amplification <= norm * 1.01 + 1e-9);
    }
}
