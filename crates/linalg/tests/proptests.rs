//! Property-based tests for the linear-algebra kernels, on the in-repo
//! `hybridcs_rand::check` harness (≥ 64 seeded cases each).

use hybridcs_linalg::{
    conjugate_gradient, operator_norm_est, vector, CgOptions, Cholesky, Matrix,
    PowerIterationOptions, QrFactorization,
};
use hybridcs_rand::check::{check, f64_in, vec_len, zip2, zip3, zip4, Gen};
use hybridcs_rand::{prop_assert, prop_assert_eq};

fn finite_vec(len: usize) -> Gen<Vec<f64>> {
    vec_len(f64_in(-1e3, 1e3), len)
}

/// Entries for a `rows × cols` matrix, built inside the property.
fn matrix_entries(rows: usize, cols: usize) -> Gen<Vec<f64>> {
    vec_len(f64_in(-1e2, 1e2), rows * cols)
}

fn to_matrix(rows: usize, cols: usize, data: &[f64]) -> Matrix {
    Matrix::from_vec(rows, cols, data.to_vec()).expect("sized correctly")
}

#[test]
fn dot_is_commutative() {
    check(
        "dot_is_commutative",
        &zip2(finite_vec(16), finite_vec(16)),
        |(x, y)| {
            let a = vector::dot(x, y);
            let b = vector::dot(y, x);
            prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
            Ok(())
        },
    );
}

#[test]
fn cauchy_schwarz() {
    check(
        "cauchy_schwarz",
        &zip2(finite_vec(12), finite_vec(12)),
        |(x, y)| {
            let lhs = vector::dot(x, y).abs();
            let rhs = vector::norm2(x) * vector::norm2(y);
            prop_assert!(lhs <= rhs * (1.0 + 1e-9) + 1e-9, "{lhs} > {rhs}");
            Ok(())
        },
    );
}

#[test]
fn triangle_inequality() {
    check(
        "triangle_inequality",
        &zip2(finite_vec(12), finite_vec(12)),
        |(x, y)| {
            let sum = vector::add(x, y);
            prop_assert!(vector::norm2(&sum) <= vector::norm2(x) + vector::norm2(y) + 1e-9);
            Ok(())
        },
    );
}

#[test]
fn norm_ordering() {
    check("norm_ordering", &finite_vec(10), |x| {
        // ‖x‖∞ ≤ ‖x‖₂ ≤ ‖x‖₁ for every vector.
        let inf = vector::norm_inf(x);
        let two = vector::norm2(x);
        let one = vector::norm1(x);
        prop_assert!(inf <= two * (1.0 + 1e-12) + 1e-12, "{inf} > {two}");
        prop_assert!(two <= one * (1.0 + 1e-12) + 1e-12, "{two} > {one}");
        Ok(())
    });
}

#[test]
fn clamp_box_is_idempotent() {
    check("clamp_box_is_idempotent", &finite_vec(8), |x| {
        let lo = vec![-10.0; 8];
        let hi = vec![10.0; 8];
        let mut once = x.clone();
        vector::clamp_box(&mut once, &lo, &hi);
        let mut twice = once.clone();
        vector::clamp_box(&mut twice, &lo, &hi);
        prop_assert_eq!(once, twice);
        Ok(())
    });
}

#[test]
fn matvec_is_linear() {
    check(
        "matvec_is_linear",
        &zip4(
            matrix_entries(5, 7),
            finite_vec(7),
            finite_vec(7),
            f64_in(-5.0, 5.0),
        ),
        |(entries, x, y, a)| {
            // A(ax + y) == a·Ax + Ay
            let m = to_matrix(5, 7, entries);
            let axy: Vec<f64> = x.iter().zip(y).map(|(xi, yi)| a * xi + yi).collect();
            let lhs = m.matvec(&axy);
            let mut rhs = m.matvec(y);
            vector::axpy(*a, &m.matvec(x), &mut rhs);
            for (l, r) in lhs.iter().zip(&rhs) {
                prop_assert!((l - r).abs() <= 1e-6 * l.abs().max(1.0), "{l} vs {r}");
            }
            Ok(())
        },
    );
}

#[test]
fn adjoint_identity() {
    check(
        "adjoint_identity",
        &zip3(matrix_entries(6, 4), finite_vec(4), finite_vec(6)),
        |(entries, x, y)| {
            // ⟨Ax, y⟩ == ⟨x, Aᵀy⟩
            let m = to_matrix(6, 4, entries);
            let lhs = vector::dot(&m.matvec(x), y);
            let rhs = vector::dot(x, &m.matvec_transpose(y));
            prop_assert!(
                (lhs - rhs).abs() <= 1e-6 * lhs.abs().max(1.0),
                "{lhs} vs {rhs}"
            );
            Ok(())
        },
    );
}

#[test]
fn transpose_involution() {
    check("transpose_involution", &matrix_entries(4, 6), |entries| {
        let m = to_matrix(4, 6, entries);
        prop_assert_eq!(m.transpose().transpose(), m);
        Ok(())
    });
}

#[test]
fn cholesky_solves_spd_systems() {
    check(
        "cholesky_solves_spd_systems",
        &zip2(matrix_entries(5, 5), finite_vec(5)),
        |(entries, x_true)| {
            // Build an SPD matrix A = MᵀM + I.
            let m = to_matrix(5, 5, entries);
            let mut a = m.gram();
            for i in 0..5 {
                a.set(i, i, a.get(i, i) + 1.0);
            }
            let b = a.matvec(x_true);
            let chol = Cholesky::factor(&a).expect("SPD by construction");
            let x = chol.solve(&b);
            let r = vector::sub(&a.matvec(&x), &b);
            prop_assert!(vector::norm2(&r) <= 1e-6 * vector::norm2(&b).max(1.0));
            Ok(())
        },
    );
}

#[test]
fn qr_least_squares_residual_is_orthogonal() {
    check(
        "qr_least_squares_residual_is_orthogonal",
        &zip2(matrix_entries(8, 3), finite_vec(8)),
        |(entries, b)| {
            // For the LS minimizer, Aᵀ(Ax − b) == 0.
            let m = to_matrix(8, 3, entries);
            let qr = match QrFactorization::factor(&m) {
                Ok(qr) => qr,
                Err(_) => return Ok(()),
            };
            let x = match qr.solve_least_squares(b) {
                Ok(x) => x,
                Err(_) => return Ok(()), // rank-deficient random draw
            };
            let r = vector::sub(&m.matvec(&x), b);
            let g = m.matvec_transpose(&r);
            let scale = m.frobenius_norm() * vector::norm2(b) + 1.0;
            prop_assert!(vector::norm2(&g) <= 1e-7 * scale);
            Ok(())
        },
    );
}

#[test]
fn cg_agrees_with_cholesky() {
    check(
        "cg_agrees_with_cholesky",
        &zip2(matrix_entries(6, 6), finite_vec(6)),
        |(entries, x_true)| {
            let m = to_matrix(6, 6, entries);
            let mut a = m.gram();
            for i in 0..6 {
                a.set(i, i, a.get(i, i) + 1.0);
            }
            let b = a.matvec(x_true);
            let chol = Cholesky::factor(&a).expect("SPD");
            let x_direct = chol.solve(&b);
            let apply = |v: &[f64], out: &mut [f64]| out.copy_from_slice(&a.matvec(v));
            let (x_cg, _) = conjugate_gradient(
                apply,
                &b,
                &[0.0; 6],
                CgOptions {
                    max_iterations: 200,
                    tolerance: 1e-12,
                },
            )
            .expect("SPD system converges");
            let d = vector::dist2(&x_cg, &x_direct);
            prop_assert!(d <= 1e-5 * vector::norm2(&x_direct).max(1.0));
            Ok(())
        },
    );
}

#[test]
fn operator_norm_bounds_matvec_amplification() {
    check(
        "operator_norm_bounds_matvec_amplification",
        &zip2(matrix_entries(5, 5), finite_vec(5)),
        |(entries, x)| {
            if vector::norm2(x) <= 1e-6 {
                return Ok(()); // discard degenerate draws
            }
            let m = to_matrix(5, 5, entries);
            let (norm, _) = operator_norm_est(
                5,
                5,
                |v, out| out.copy_from_slice(&m.matvec(v)),
                |v, out| out.copy_from_slice(&m.matvec_transpose(v)),
                PowerIterationOptions::default(),
            );
            let amplification = vector::norm2(&m.matvec(x)) / vector::norm2(x);
            // The estimate may undershoot slightly; allow 1% slack.
            prop_assert!(
                amplification <= norm * 1.01 + 1e-9,
                "{amplification} > {norm}"
            );
            Ok(())
        },
    );
}
